#include "table/zonemap_block.h"

#include <gtest/gtest.h>

namespace leveldbpp {

TEST(ZoneRange, ExtendAndOverlap) {
  ZoneRange r;
  EXPECT_FALSE(r.present);
  EXPECT_FALSE(r.Overlaps("a", "z"));

  r.Extend("mango");
  EXPECT_TRUE(r.present);
  EXPECT_EQ("mango", r.min);
  EXPECT_EQ("mango", r.max);

  r.Extend("apple");
  r.Extend("peach");
  EXPECT_EQ("apple", r.min);
  EXPECT_EQ("peach", r.max);

  EXPECT_TRUE(r.Overlaps("banana", "orange"));
  EXPECT_TRUE(r.Overlaps("a", "apple"));      // Touching at min
  EXPECT_TRUE(r.Overlaps("peach", "z"));      // Touching at max
  EXPECT_FALSE(r.Overlaps("q", "z"));         // Above
  EXPECT_FALSE(r.Overlaps("a", "aardvark"));  // Below
}

TEST(ZoneMap, RoundTrip) {
  ZoneMapBuilder builder({"UserID", "CreationTime"});
  // Block 0: users b..d, times 100..200
  builder.Add(0, "b");
  builder.Add(0, "d");
  builder.Add(1, "100");
  builder.Add(1, "200");
  builder.FinishBlock();
  // Block 1: only UserID present
  builder.Add(0, "x");
  builder.FinishBlock();
  // Block 2: nothing
  builder.FinishBlock();

  Slice serialized = builder.Finish();
  ZoneMapReader reader;
  ASSERT_TRUE(ZoneMapReader::Decode(serialized, &reader).ok());

  ASSERT_TRUE(reader.HasAttribute("UserID"));
  ASSERT_TRUE(reader.HasAttribute("CreationTime"));
  ASSERT_FALSE(reader.HasAttribute("Missing"));
  ASSERT_EQ(3u, reader.NumBlocks("UserID"));

  // Block-level checks.
  EXPECT_TRUE(reader.BlockMayOverlap("UserID", 0, "c", "c"));
  EXPECT_FALSE(reader.BlockMayOverlap("UserID", 0, "e", "w"));
  EXPECT_TRUE(reader.BlockMayOverlap("UserID", 1, "x", "x"));
  EXPECT_FALSE(reader.BlockMayOverlap("UserID", 2, "a", "z"));  // Empty block
  EXPECT_FALSE(reader.BlockMayOverlap("CreationTime", 1, "000", "999"));

  // File-level checks.
  EXPECT_TRUE(reader.FileMayOverlap("UserID", "c", "c"));
  EXPECT_TRUE(reader.FileMayOverlap("UserID", "w", "z"));
  EXPECT_FALSE(reader.FileMayOverlap("UserID", "y", "z"));
  EXPECT_TRUE(reader.FileMayOverlap("CreationTime", "150", "160"));
  EXPECT_FALSE(reader.FileMayOverlap("CreationTime", "201", "999"));

  // Unknown attributes fail open.
  EXPECT_TRUE(reader.FileMayOverlap("Missing", "a", "b"));
  EXPECT_TRUE(reader.BlockMayOverlap("Missing", 0, "a", "b"));
}

TEST(ZoneMap, FileRangeTracksAllBlocks) {
  ZoneMapBuilder builder({"A"});
  builder.Add(0, "m");
  builder.FinishBlock();
  builder.Add(0, "a");
  builder.FinishBlock();
  builder.Add(0, "z");
  builder.FinishBlock();
  EXPECT_EQ("a", builder.FileRange(0).min);
  EXPECT_EQ("z", builder.FileRange(0).max);
}

TEST(ZoneMap, DecodeRejectsCorruption) {
  ZoneMapBuilder builder({"A"});
  builder.Add(0, "value");
  builder.FinishBlock();
  std::string data = builder.Finish().ToString();

  ZoneMapReader reader;
  // Truncations must be detected, not crash.
  for (size_t cut = 1; cut < data.size(); cut++) {
    ZoneMapReader r;
    Status s = ZoneMapReader::Decode(Slice(data.data(), data.size() - cut),
                                     &r);
    // Either detected as corrupt, or decodes a shorter valid prefix; never
    // crashes. Most cuts must be detected.
    (void)s;
  }
  EXPECT_FALSE(ZoneMapReader::Decode(Slice("\xff\xff\xff"), &reader).ok());
}

TEST(ZoneMap, BinaryAttributeValues) {
  // Zone maps must handle arbitrary bytes in attribute values.
  ZoneMapBuilder builder({"A"});
  std::string v1("\x01\x02\x00\x03", 4);
  std::string v2("\xff\xfe", 2);
  builder.Add(0, Slice(v1));
  builder.Add(0, Slice(v2));
  builder.FinishBlock();
  ZoneMapReader reader;
  ASSERT_TRUE(ZoneMapReader::Decode(builder.Finish(), &reader).ok());
  EXPECT_TRUE(reader.BlockMayOverlap("A", 0, Slice(v1), Slice(v1)));
  EXPECT_TRUE(reader.BlockMayOverlap("A", 0, Slice(v2), Slice(v2)));
  EXPECT_FALSE(reader.BlockMayOverlap("A", 0, Slice("\x00", 1),
                                      Slice("\x00\xff", 2)));
}

}  // namespace leveldbpp
