// End-to-end engine tests: put/get/delete, WAL recovery, flush and
// compaction behaviour, iterators, and the extended hooks used by the
// secondary-index layer (GetWithMeta, IsNewestVersion, GetFragments).

#include "db/db_impl.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "db/filename.h"
#include "env/env.h"
#include "table/filter_policy.h"
#include "util/random.h"

namespace leveldbpp {

class DBTest : public testing::Test {
 protected:
  DBTest() : env_(NewMemEnv()), dbname_("/db_test") {
    filter_policy_.reset(NewBloomFilterPolicy(10));
    ReopenWithDefaults();
  }

  ~DBTest() override {
    db_.reset();
    DestroyDB(dbname_, LastOptions());
  }

  Options DefaultOptions() {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 << 10;  // Small: force flushes in tests
    options.max_file_size = 32 << 10;
    options.max_bytes_for_level_base = 128 << 10;
    options.filter_policy = filter_policy_.get();
    return options;
  }

  Options LastOptions() { return last_options_; }

  void ReopenWithDefaults() { Reopen(DefaultOptions()); }

  void Reopen(const Options& options) {
    db_.reset();
    last_options_ = options;
    DBImpl* raw = nullptr;
    Status s = DBImpl::Open(options, dbname_, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }

  Status Delete(const std::string& k) { return db_->Delete(WriteOptions(), k); }

  std::string Get(const std::string& k) {
    std::string result;
    Status s = db_->Get(ReadOptions(), k, &result);
    if (s.IsNotFound()) {
      return "NOT_FOUND";
    } else if (!s.ok()) {
      return s.ToString();
    }
    return result;
  }

  int NumTableFilesAtLevel(int level) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(
        "leveldbpp.num-files-at-level" + std::to_string(level), &value));
    return std::stoi(value);
  }

  int TotalTableFiles() {
    int result = 0;
    for (int level = 0; level < 7; level++) {
      result += NumTableFilesAtLevel(level);
    }
    return result;
  }

  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<DBImpl> db_;
  Options last_options_;
};

TEST_F(DBTest, Empty) { ASSERT_EQ("NOT_FOUND", Get("foo")); }

TEST_F(DBTest, ReadWrite) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("bar", "v2").ok());
  ASSERT_TRUE(Put("foo", "v3").ok());
  ASSERT_EQ("v3", Get("foo"));
  ASSERT_EQ("v2", Get("bar"));
}

TEST_F(DBTest, PutDeleteGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  ASSERT_EQ("v2", Get("foo"));
  ASSERT_TRUE(Delete("foo").ok());
  ASSERT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DBTest, GetFromImmutableLayers) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));
  // Fill the memtable so "foo" is pushed into an SSTable.
  Random rnd(301);
  std::string filler(10000, 'x');
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), filler).ok());
  }
  ASSERT_GT(TotalTableFiles(), 0);
  ASSERT_EQ("v1", Get("foo"));
}

TEST_F(DBTest, Recovery) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Put("baz", "v5").ok());

  Reopen(LastOptions());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_EQ("v5", Get("baz"));

  ASSERT_TRUE(Put("bar", "v2").ok());
  ASSERT_TRUE(Put("foo", "v3").ok());

  Reopen(LastOptions());
  ASSERT_EQ("v3", Get("foo"));
  ASSERT_TRUE(Put("foo", "v4").ok());
  ASSERT_EQ("v4", Get("foo"));
  ASSERT_EQ("v2", Get("bar"));
  ASSERT_EQ("v5", Get("baz"));
}

TEST_F(DBTest, RecoveryWithLargeLog) {
  ASSERT_TRUE(Put("big1", std::string(200000, '1')).ok());
  ASSERT_TRUE(Put("big2", std::string(200000, '2')).ok());
  ASSERT_TRUE(Put("small3", std::string(10, '3')).ok());
  ASSERT_TRUE(Put("small4", std::string(10, '4')).ok());

  Reopen(LastOptions());
  ASSERT_EQ(std::string(200000, '1'), Get("big1"));
  ASSERT_EQ(std::string(200000, '2'), Get("big2"));
  ASSERT_EQ(std::string(10, '3'), Get("small3"));
  ASSERT_EQ(std::string(10, '4'), Get("small4"));
}

TEST_F(DBTest, ManyKeysWithCompactions) {
  // Enough data to trigger multiple flushes and compactions.
  std::map<std::string, std::string> model;
  Random64 rnd(17);
  for (int i = 0; i < 5000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(2000));
    std::string value = "value" + std::to_string(i) +
                        std::string(rnd.Uniform(200), 'p');
    ASSERT_TRUE(Put(key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key)) << "key=" << key;
  }
  // Should have spilled into multiple levels.
  ASSERT_GT(TotalTableFiles(), 1);

  // And survive recovery.
  Reopen(LastOptions());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key));
  }
}

TEST_F(DBTest, IteratorBasic) {
  ASSERT_TRUE(Put("a", "va").ok());
  ASSERT_TRUE(Put("b", "vb").ok());
  ASSERT_TRUE(Put("c", "vc").ok());
  ASSERT_TRUE(Delete("b").ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  ASSERT_EQ("va", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("c", iter->key().ToString());
  iter->Next();
  ASSERT_FALSE(iter->Valid());

  iter->Seek("b");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("c", iter->key().ToString());
}

TEST_F(DBTest, IteratorAcrossLevels) {
  std::map<std::string, std::string> model;
  Random64 rnd(3);
  for (int i = 0; i < 3000; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "k%08llu",
                  static_cast<unsigned long long>(rnd.Uniform(1000)));
    std::string value = "v" + std::to_string(i) + std::string(100, 'f');
    ASSERT_TRUE(Put(buf, value).ok());
    model[buf] = value;
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_TRUE(mit != model.end());
    ASSERT_EQ(mit->first, iter->key().ToString());
    ASSERT_EQ(mit->second, iter->value().ToString());
  }
  ASSERT_TRUE(mit == model.end());
}

TEST_F(DBTest, CompactAllMovesEverythingDown) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        Put("key" + std::to_string(i), std::string(300, 'z')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  // After full compaction nothing remains in level 0.
  ASSERT_EQ(0, NumTableFilesAtLevel(0));
  ASSERT_GT(TotalTableFiles(), 0);
  ASSERT_EQ(std::string(300, 'z'), Get("key1234"));
}

TEST_F(DBTest, DeleteSurvivesCompaction) {
  ASSERT_TRUE(Put("doomed", "v").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(Delete("doomed").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_EQ("NOT_FOUND", Get("doomed"));
  Reopen(LastOptions());
  ASSERT_EQ("NOT_FOUND", Get("doomed"));
}

TEST_F(DBTest, GetWithMetaReportsLocation) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  std::string value;
  DBImpl::RecordLocation loc;
  ASSERT_TRUE(db_->GetWithMeta(ReadOptions(), "foo", &value, &loc).ok());
  ASSERT_EQ(-1, loc.level);  // Still in the memtable
  SequenceNumber first_seq = loc.seq;

  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->GetWithMeta(ReadOptions(), "foo", &value, &loc).ok());
  ASSERT_GE(loc.level, 0);  // Now on disk
  ASSERT_EQ(first_seq, loc.seq);
}

TEST_F(DBTest, IsNewestVersion) {
  ASSERT_TRUE(Put("k", "v1").ok());
  std::string value;
  DBImpl::RecordLocation loc1;
  ASSERT_TRUE(db_->GetWithMeta(ReadOptions(), "k", &value, &loc1).ok());
  ASSERT_TRUE(db_->IsNewestVersion("k", loc1.seq));

  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->IsNewestVersion("k", loc1.seq));

  // Overwrite: old sequence no longer newest.
  ASSERT_TRUE(Put("k", "v2").ok());
  ASSERT_FALSE(db_->IsNewestVersion("k", loc1.seq));

  DBImpl::RecordLocation loc2;
  ASSERT_TRUE(db_->GetWithMeta(ReadOptions(), "k", &value, &loc2).ok());
  ASSERT_TRUE(db_->IsNewestVersion("k", loc2.seq));

  // Push both versions to disk; newest must still win.
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->IsNewestVersion("k", loc2.seq));
  ASSERT_FALSE(db_->IsNewestVersion("k", loc1.seq));
}

TEST_F(DBTest, GetFragmentsSeesAllVersionsAcrossLevels) {
  Options options = DefaultOptions();
  options.write_buffer_size = 64 << 10;
  Reopen(options);

  // v1 flushed to disk; v2 in a later file; v3 in the memtable.
  ASSERT_TRUE(Put("frag", "v1").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(Put("frag", "v2").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(Put("frag", "v3").ok());

  std::vector<std::string> values;
  ASSERT_TRUE(db_->GetFragments(ReadOptions(), "frag",
                                [&](int, SequenceNumber, bool deleted,
                                    const Slice& v) {
                                  if (!deleted) values.push_back(v.ToString());
                                  return true;
                                })
                  .ok());
  // Compaction de-duplicates within one table, so we see the newest from
  // each distinct residence, newest first.
  ASSERT_GE(values.size(), 2u);
  ASSERT_EQ("v3", values[0]);
  ASSERT_EQ("v2", values[1]);
}

TEST_F(DBTest, DestroyRemovesEverything) {
  ASSERT_TRUE(Put("a", "1").ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(dbname_, LastOptions()).ok());
  std::vector<std::string> children;
  env_->GetChildren(dbname_, &children);
  ASSERT_TRUE(children.empty());
}

TEST_F(DBTest, NoCompression) {
  Options options = DefaultOptions();
  options.compression = kNoCompression;
  Reopen(options);
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put("nk" + std::to_string(i), std::string(100, 'q')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_EQ(std::string(100, 'q'), Get("nk500"));
}

// Randomized differential test against std::map.
TEST_F(DBTest, RandomizedAgainstModel) {
  Random64 rnd(99);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 8000; step++) {
    std::string key = "rk" + std::to_string(rnd.Uniform(500));
    int op = static_cast<int>(rnd.Uniform(10));
    if (op < 7) {
      std::string value =
          "val" + std::to_string(step) + std::string(rnd.Uniform(120), 'm');
      ASSERT_TRUE(Put(key, value).ok());
      model[key] = value;
    } else if (op < 9) {
      ASSERT_TRUE(Delete(key).ok());
      model.erase(key);
    } else {
      auto it = model.find(key);
      std::string expected =
          (it == model.end()) ? "NOT_FOUND" : it->second;
      ASSERT_EQ(expected, Get(key)) << "step " << step;
    }
  }
  // Full verification, then after reopen.
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key));
  }
  Reopen(LastOptions());
  for (const auto& [key, value] : model) {
    ASSERT_EQ(value, Get(key));
  }
}

}  // namespace leveldbpp
