// Concurrent write-path tests: group-commit writer queue, background
// flush/compaction, readers and secondary-index queries racing writers, and
// the determinism guarantee of the synchronous (paper) mode.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/document.h"
#include "db/db_impl.h"
#include "env/env.h"
#include "env/statistics.h"
#include "table/filter_policy.h"

namespace leveldbpp {

namespace {

std::string Key(int writer, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%02d-k%06d", writer, i);
  return buf;
}

std::string Value(int writer, int i) {
  // A JSON doc so the secondary-index paths have something to extract.
  char num[16];
  std::snprintf(num, sizeof(num), "%06d", i);
  return "{\"Attr\":\"" + std::string(num) + "\",\"Owner\":\"w" +
         std::to_string(writer) + "\",\"pad\":\"" + std::string(64, 'p') +
         "\"}";
}

}  // namespace

class ConcurrencyTest : public testing::Test {
 protected:
  ConcurrencyTest() : env_(NewMemEnv()), dbname_("/conc_test") {
    filter_policy_.reset(NewBloomFilterPolicy(10));
  }

  ~ConcurrencyTest() override {
    db_.reset();
    Options options;
    options.env = env_.get();
    DestroyDB(dbname_, options);
  }

  Options BaseOptions() {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 << 10;  // Small: force flushes mid-test
    options.max_file_size = 32 << 10;
    options.max_bytes_for_level_base = 128 << 10;
    options.filter_policy = filter_policy_.get();
    options.statistics = &stats_;
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    DBImpl* raw = nullptr;
    Status s = DBImpl::Open(options, dbname_, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  Statistics stats_;
  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<DBImpl> db_;
};

// N writers with background compaction: every write must survive, and the
// published sequence number must advance by exactly one per Put.
TEST_F(ConcurrencyTest, ConcurrentWritersNoLostUpdates) {
  Options options = BaseOptions();
  options.background_compaction = true;
  Open(options);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 1500;

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w]() {
      SequenceNumber prev = 0;
      for (int i = 0; i < kPerWriter; i++) {
        if (!db_->Put(WriteOptions(), Key(w, i), Value(w, i)).ok()) {
          failures.fetch_add(1);
          return;
        }
        // The global sequence must be monotone as observed by any thread.
        SequenceNumber seq = db_->LastSequence();
        if (seq < prev) {
          failures.fetch_add(1);
          return;
        }
        prev = seq;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  // Exactly one sequence number per Put: none lost, none double-assigned.
  EXPECT_EQ(db_->LastSequence(),
            static_cast<SequenceNumber>(kWriters * kPerWriter));

  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kPerWriter; i++) {
      ASSERT_TRUE(db_->Get(ReadOptions(), Key(w, i), &value).ok())
          << "lost write " << Key(w, i);
      ASSERT_EQ(value, Value(w, i));
    }
  }

  // The writer queue must account for every Write() call it absorbed.
  EXPECT_EQ(stats_.Get(kGroupCommitWrites),
            static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_GE(stats_.Get(kGroupCommitWrites), stats_.Get(kGroupCommitBatches));
}

// Readers (point gets, iterators) and secondary-index queries race writers
// while background flushes/compactions churn the file layout underneath.
TEST_F(ConcurrencyTest, ReadersAndIndexQueriesDuringWrites) {
  Options options = BaseOptions();
  options.background_compaction = true;
  options.secondary_attributes = {"Attr"};
  options.attribute_extractor = JsonAttributeExtractor::Instance();
  options.secondary_filter_policy = filter_policy_.get();
  Open(options);

  constexpr int kWriters = 2;
  constexpr int kPerWriter = 1200;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < kPerWriter; i++) {
        if (!db_->Put(WriteOptions(), Key(w, i), Value(w, i)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  // Point readers: a key that has been written must stay visible with its
  // exact value (writers never overwrite).
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&, r]() {
      std::string value;
      while (!done.load(std::memory_order_acquire)) {
        for (int w = 0; w < kWriters; w++) {
          int i = r * 37 % kPerWriter;
          Status s = db_->Get(ReadOptions(), Key(w, i), &value);
          if (s.ok() && value != Value(w, i)) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  // Iterator reader: full scans must always see well-formed records.
  threads.emplace_back([&]() {
    while (!done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      int n = 0;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        if (it->key().size() < 3 || it->value().size() < 3) {
          failures.fetch_add(1);
          return;
        }
        n++;
      }
      if (!it->status().ok()) {
        failures.fetch_add(1);
        return;
      }
      (void)n;
    }
  });

  // Secondary-index reader: memtable lookup + embedded scan across the
  // moving file layout. Matches must decode to records that contain the
  // queried attribute range.
  threads.emplace_back([&]() {
    while (!done.load(std::memory_order_acquire)) {
      std::atomic<int> matches{0};
      db_->MemTableSecondaryLookup(
          "Attr", "000100", "000200",
          [&](const Slice& key, SequenceNumber, const Slice&) {
            if (key.size() < 3) failures.fetch_add(1);
            matches.fetch_add(1);
          });
      Status s = db_->EmbeddedScan(
          ReadOptions(), "Attr", "000100", "000200",
          [&](Table* t, size_t block, int, uint64_t) {
            if (t == nullptr || block > (1u << 20)) failures.fetch_add(1);
          },
          [](SequenceNumber) { return true; });
      if (!s.ok()) failures.fetch_add(1);
    }
  });

  for (int w = 0; w < kWriters; w++) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); i++) threads[i].join();

  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kPerWriter; i++) {
      ASSERT_TRUE(db_->Get(ReadOptions(), Key(w, i), &value).ok());
      ASSERT_EQ(value, Value(w, i));
    }
  }
}

// CompactAll (forced rotation through the writer queue) must be safe while
// other threads keep writing.
TEST_F(ConcurrencyTest, CompactAllRacesWriters) {
  Options options = BaseOptions();
  options.background_compaction = true;
  Open(options);

  constexpr int kPerWriter = 800;
  std::atomic<int> failures{0};
  std::thread writer([&]() {
    for (int i = 0; i < kPerWriter; i++) {
      if (!db_->Put(WriteOptions(), Key(0, i), Value(0, i)).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  std::thread compactor([&]() {
    for (int i = 0; i < 3; i++) {
      if (!db_->CompactAll().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  writer.join();
  compactor.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());

  std::string value;
  for (int i = 0; i < kPerWriter; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(0, i), &value).ok());
    ASSERT_EQ(value, Value(0, i));
  }
}

// Regression guard for the paper benchmarks: with background_compaction off
// (the default), the same workload must produce the identical file layout
// and identical I/O counters run after run.
TEST_F(ConcurrencyTest, SyncModeIsDeterministic) {
  auto run = [&](Statistics* stats, std::string* layout,
                 uint64_t counters[4]) {
    std::unique_ptr<Env> env(NewMemEnv());
    Options options = BaseOptions();
    options.env = env.get();
    options.statistics = stats;
    ASSERT_FALSE(options.background_compaction);  // Paper mode is default.
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/det", &raw).ok());
    std::unique_ptr<DBImpl> db(raw);
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(0, i), Value(0, i)).ok());
    }
    ASSERT_TRUE(db->GetProperty("leveldbpp.sstables", layout));
    counters[0] = stats->Get(kFlushCount);
    counters[1] = stats->Get(kCompactionCount);
    counters[2] = stats->Get(kWalBytesWritten);
    counters[3] = stats->Get(kCompactionBytesWritten);
    // The write path must never have injected concurrency artifacts.
    EXPECT_EQ(stats->Get(kWriteStallMicros), 0u);
    EXPECT_EQ(stats->Get(kWriteSlowdownMicros), 0u);
  };

  Statistics stats_a, stats_b;
  std::string layout_a, layout_b;
  uint64_t counters_a[4], counters_b[4];
  run(&stats_a, &layout_a, counters_a);
  run(&stats_b, &layout_b, counters_b);

  EXPECT_EQ(layout_a, layout_b);
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(counters_a[i], counters_b[i]) << "counter " << i;
  }
}

// The stats property must expose the write-stall / group-commit tickers.
TEST_F(ConcurrencyTest, StatsProperty) {
  Options options = BaseOptions();
  Open(options);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  std::string value;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.stats", &value));
  EXPECT_NE(value.find("groupcommit.batches"), std::string::npos) << value;
}

}  // namespace leveldbpp
