#include "db/memtable.h"

#include <gtest/gtest.h>

#include <map>

#include "core/document.h"
#include "json/json.h"

namespace leveldbpp {

class MemTableTest : public testing::Test {
 protected:
  MemTableTest()
      : icmp_(BytewiseComparator()),
        mem_(new MemTable(icmp_, {"UserID"},
                          JsonAttributeExtractor::Instance())) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  static std::string Doc(const std::string& user) {
    return "{\"UserID\":\"" + user + "\"}";
  }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "k1", Doc("u1"));
  mem_->Add(2, kTypeValue, "k2", Doc("u2"));

  LookupKey lkey("k1", kMaxSequenceNumber);
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(lkey, &value, &s));
  ASSERT_EQ(Doc("u1"), value);

  LookupKey missing("nope", kMaxSequenceNumber);
  ASSERT_FALSE(mem_->Get(missing, &value, &s));
}

TEST_F(MemTableTest, VersionsNewestWins) {
  mem_->Add(1, kTypeValue, "k", Doc("old"));
  mem_->Add(5, kTypeValue, "k", Doc("new"));

  std::string value;
  SequenceNumber seq;
  bool deleted;
  ASSERT_TRUE(mem_->GetNewest("k", &value, &seq, &deleted));
  ASSERT_EQ(5u, seq);
  ASSERT_FALSE(deleted);
  ASSERT_EQ(Doc("new"), value);
}

TEST_F(MemTableTest, DeletionVisible) {
  mem_->Add(1, kTypeValue, "k", Doc("u"));
  mem_->Add(2, kTypeDeletion, "k", Slice());

  LookupKey lkey("k", kMaxSequenceNumber);
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(lkey, &value, &s));
  ASSERT_TRUE(s.IsNotFound());

  SequenceNumber seq;
  bool deleted;
  ASSERT_TRUE(mem_->GetNewest("k", &value, &seq, &deleted));
  ASSERT_TRUE(deleted);
  ASSERT_EQ(2u, seq);
}

TEST_F(MemTableTest, SnapshotReadsOlderVersion) {
  mem_->Add(1, kTypeValue, "k", Doc("v1"));
  mem_->Add(9, kTypeValue, "k", Doc("v9"));
  // A lookup as of sequence 5 must see v1.
  LookupKey lkey("k", 5);
  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(lkey, &value, &s));
  ASSERT_EQ(Doc("v1"), value);
}

TEST_F(MemTableTest, SecondaryLookupFindsAllVersions) {
  mem_->Add(1, kTypeValue, "t1", Doc("alice"));
  mem_->Add(2, kTypeValue, "t2", Doc("bob"));
  mem_->Add(3, kTypeValue, "t3", Doc("alice"));
  mem_->Add(4, kTypeValue, "t1", Doc("bob"));  // t1 switches to bob

  std::multimap<std::string, SequenceNumber> hits;
  mem_->SecondaryLookup("UserID", "alice", "alice",
                        [&](const Slice& key, SequenceNumber seq,
                            const Slice&) {
                          hits.emplace(key.ToString(), seq);
                        });
  // Stale (t1, seq1) entry is still reported — validity checks are the
  // caller's job, as in the paper.
  ASSERT_EQ(2u, hits.size());
  ASSERT_EQ(1u, hits.count("t1"));
  ASSERT_EQ(1u, hits.count("t3"));
}

TEST_F(MemTableTest, SecondaryLookupRange) {
  mem_->Add(1, kTypeValue, "t1", Doc("a"));
  mem_->Add(2, kTypeValue, "t2", Doc("c"));
  mem_->Add(3, kTypeValue, "t3", Doc("e"));

  std::vector<std::string> keys;
  mem_->SecondaryLookup("UserID", "b", "d",
                        [&](const Slice& key, SequenceNumber,
                            const Slice&) { keys.push_back(key.ToString()); });
  ASSERT_EQ(1u, keys.size());
  ASSERT_EQ("t2", keys[0]);

  keys.clear();
  mem_->SecondaryLookup("UserID", "a", "e",
                        [&](const Slice& key, SequenceNumber,
                            const Slice&) { keys.push_back(key.ToString()); });
  ASSERT_EQ(3u, keys.size());
}

TEST_F(MemTableTest, SecondaryLookupUnknownAttribute) {
  mem_->Add(1, kTypeValue, "t1", Doc("a"));
  int calls = 0;
  mem_->SecondaryLookup("Nope", "a", "z",
                        [&](const Slice&, SequenceNumber, const Slice&) {
                          calls++;
                        });
  ASSERT_EQ(0, calls);
}

TEST_F(MemTableTest, IteratorOrdering) {
  mem_->Add(2, kTypeValue, "b", Doc("x"));
  mem_->Add(1, kTypeValue, "a", Doc("y"));
  mem_->Add(3, kTypeValue, "a", Doc("z"));  // Newer version of "a"

  std::unique_ptr<Iterator> it(mem_->NewIterator());
  it->SeekToFirst();
  // "a" seq 3 first (newest first within a user key), then "a" seq 1,
  // then "b".
  ASSERT_TRUE(it->Valid());
  ASSERT_EQ("a", ExtractUserKey(it->key()).ToString());
  ASSERT_EQ(3u, ExtractSequence(it->key()));
  it->Next();
  ASSERT_EQ("a", ExtractUserKey(it->key()).ToString());
  ASSERT_EQ(1u, ExtractSequence(it->key()));
  it->Next();
  ASSERT_EQ("b", ExtractUserKey(it->key()).ToString());
  it->Next();
  ASSERT_FALSE(it->Valid());
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  ASSERT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

}  // namespace leveldbpp
