#include "db/table_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "db/filename.h"
#include "env/env.h"
#include "table/table_builder.h"

namespace leveldbpp {
namespace {

class TableCacheTest : public testing::Test {
 protected:
  TableCacheTest() : env_(NewMemEnv()) {
    options_.env = env_.get();
    env_->CreateDir("/tc");
    cache_ = std::make_unique<TableCache>("/tc", options_, 4);
  }

  // Write a small table file with the given number holding key->value.
  uint64_t WriteTable(uint64_t number, const std::string& key,
                      const std::string& value) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env_->NewWritableFile(TableFileName("/tc", number), &file).ok());
    TableBuilder builder(options_, file.get());
    builder.Add(key, value);
    EXPECT_TRUE(builder.Finish().ok());
    uint64_t size = builder.FileSize();
    EXPECT_TRUE(file->Close().ok());
    return size;
  }

  Options options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<TableCache> cache_;
};

TEST_F(TableCacheTest, IterateAndGet) {
  uint64_t size = WriteTable(7, "hello", "world");

  std::unique_ptr<Iterator> it(
      cache_->NewIterator(ReadOptions(), 7, size));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("hello", it->key().ToString());
  EXPECT_EQ("world", it->value().ToString());

  struct Result {
    bool found = false;
    std::string value;
  } result;
  ASSERT_TRUE(cache_
                  ->Get(ReadOptions(), 7, size, "hello", &result,
                        [](void* arg, const Slice&, const Slice& v) {
                          auto* r = reinterpret_cast<Result*>(arg);
                          r->found = true;
                          r->value = v.ToString();
                        })
                  .ok());
  EXPECT_TRUE(result.found);
  EXPECT_EQ("world", result.value);
}

TEST_F(TableCacheTest, MissingFileReportsError) {
  std::unique_ptr<Iterator> it(
      cache_->NewIterator(ReadOptions(), 999, 1234));
  EXPECT_FALSE(it->status().ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(TableCacheTest, WithTablePinsForCallDuration) {
  uint64_t size = WriteTable(3, "a", "b");
  bool called = false;
  ASSERT_TRUE(cache_
                  ->WithTable(3, size,
                              [&](Table* t) {
                                called = true;
                                EXPECT_EQ(1u, t->NumDataBlocks());
                              })
                  .ok());
  EXPECT_TRUE(called);
}

TEST_F(TableCacheTest, EvictDropsCachedTable) {
  uint64_t size = WriteTable(5, "k", "v");
  // Open once (caches it), evict, delete the file: a re-open must fail,
  // proving the cache entry is really gone.
  std::unique_ptr<Iterator> it(cache_->NewIterator(ReadOptions(), 5, size));
  ASSERT_TRUE(it->status().ok());
  it.reset();
  cache_->Evict(5);
  ASSERT_TRUE(env_->RemoveFile(TableFileName("/tc", 5)).ok());
  std::unique_ptr<Iterator> it2(cache_->NewIterator(ReadOptions(), 5, size));
  EXPECT_FALSE(it2->status().ok());
}

TEST_F(TableCacheTest, CapacityEvictionStillCorrect) {
  // More tables than cache capacity (4): every lookup still succeeds.
  std::vector<uint64_t> sizes(10);
  for (uint64_t i = 1; i <= 10; i++) {
    sizes[i - 1] = WriteTable(i, "key" + std::to_string(i), "v");
  }
  for (int round = 0; round < 3; round++) {
    for (uint64_t i = 1; i <= 10; i++) {
      std::unique_ptr<Iterator> it(
          cache_->NewIterator(ReadOptions(), i, sizes[i - 1]));
      it->SeekToFirst();
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ("key" + std::to_string(i), it->key().ToString());
    }
  }
}

}  // namespace
}  // namespace leveldbpp
