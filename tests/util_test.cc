// Tests for the utility kernel: Slice, Status, Arena, Histogram,
// Comparator, merging iterator.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "table/iterator.h"
#include "table/merger.h"
#include "util/arena.h"
#include "util/comparator.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

TEST(SliceTest, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("hello!"));

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());

  EXPECT_LT(Slice("abc").compare("abd"), 0);
  EXPECT_GT(Slice("abcd").compare("abc"), 0);
  EXPECT_EQ(0, Slice("x").compare("x"));
  EXPECT_TRUE(Slice("a") == Slice("a"));
  EXPECT_TRUE(Slice("a") != Slice("b"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(StatusTest, Basics) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ("OK", ok.ToString());

  Status nf = Status::NotFound("key", "missing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ("NotFound: key: missing", nf.ToString());

  Status copy = nf;  // Copyable
  EXPECT_TRUE(copy.IsNotFound());

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(ArenaTest, Basics) {
  Arena arena;
  EXPECT_EQ(0u, arena.MemoryUsage());
  char* p = arena.Allocate(100);
  ASSERT_NE(nullptr, p);
  memset(p, 'x', 100);
  EXPECT_GE(arena.MemoryUsage(), 100u);
}

TEST(ArenaTest, RandomizedAllocationsStayIntact) {
  Arena arena;
  Random64 rnd(301);
  std::vector<std::pair<size_t, char*>> allocated;
  size_t bytes = 0;
  for (int i = 0; i < 2000; i++) {
    size_t s = (rnd.Uniform(10) == 0) ? 1 + rnd.Uniform(6000)
                                      : 1 + rnd.Uniform(100);
    char* r = (rnd.Uniform(2) == 0) ? arena.AllocateAligned(s)
                                    : arena.Allocate(s);
    for (size_t b = 0; b < s; b++) {
      r[b] = static_cast<char>(i % 256);
    }
    bytes += s;
    allocated.emplace_back(s, r);
    ASSERT_GE(arena.MemoryUsage(), bytes);
    ASSERT_LT(arena.MemoryUsage(), bytes * 1.10 + 8192);
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    for (size_t b = 0; b < allocated[i].first; b++) {
      ASSERT_EQ(static_cast<char>(i % 256), allocated[i].second[b]);
    }
  }
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  Random64 rnd(7);
  for (int i = 0; i < 200; i++) {
    arena.Allocate(1 + rnd.Uniform(7));  // Misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(100u, h.Count());
  EXPECT_NEAR(50.5, h.Average(), 0.01);
  EXPECT_NEAR(50, h.Median(), 5);
  EXPECT_NEAR(25, h.Percentile(25), 5);
  EXPECT_NEAR(75, h.Percentile(75), 5);
  EXPECT_EQ(1, h.Min());
  EXPECT_EQ(100, h.Max());
}

TEST(HistogramTest, BoxPlotWhiskersClampToData) {
  Histogram h;
  for (int i = 0; i < 100; i++) h.Add(100);
  h.Add(101);
  auto bp = h.GetBoxPlot();
  EXPECT_GE(bp.lo_whisker, 100);
  EXPECT_LE(bp.hi_whisker, 110);  // Bucketized, near data max
  EXPECT_LE(bp.q1, bp.median);
  EXPECT_LE(bp.median, bp.q3);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(100u, a.Count());
  EXPECT_EQ(10, a.Min());
  EXPECT_EQ(1000, a.Max());
  EXPECT_NEAR(505, a.Average(), 1);
}

TEST(ComparatorTest, ShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();
  std::string s = "abcdefghij";
  cmp->FindShortestSeparator(&s, "abzzzzzzzz");
  EXPECT_EQ("abd", s);  // Shortened and still in (start, limit)

  s = "abc";
  cmp->FindShortestSeparator(&s, "abcd");  // Prefix: unchanged
  EXPECT_EQ("abc", s);

  s = "zzz";
  cmp->FindShortestSeparator(&s, "aaa");  // Misordered: unchanged
  EXPECT_EQ("zzz", s);
}

TEST(ComparatorTest, ShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();
  std::string s = "abc";
  cmp->FindShortSuccessor(&s);
  EXPECT_EQ("b", s);

  s = "\xff\xff";
  cmp->FindShortSuccessor(&s);
  EXPECT_EQ("\xff\xff", s);  // All-0xff: unchanged
}

// ---- Merging iterator ----

namespace {
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> kv)
      : kv_(std::move(kv)), index_(kv_.size()) {}
  bool Valid() const override { return index_ < kv_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = kv_.empty() ? 0 : kv_.size() - 1; }
  void Seek(const Slice& target) override {
    index_ = 0;
    while (index_ < kv_.size() && Slice(kv_[index_].first) < target) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override { index_ = (index_ == 0) ? kv_.size() : index_ - 1; }
  Slice key() const override { return kv_[index_].first; }
  Slice value() const override { return kv_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t index_;
};
}  // namespace

TEST(MergerTest, MergesSortedSources) {
  Iterator* children[3] = {
      new VectorIterator({{"a", "1"}, {"d", "4"}, {"g", "7"}}),
      new VectorIterator({{"b", "2"}, {"e", "5"}}),
      new VectorIterator({{"c", "3"}, {"f", "6"}, {"h", "8"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 3));
  std::string keys;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    keys += merged->key().ToString();
  }
  EXPECT_EQ("abcdefgh", keys);

  merged->Seek("e");
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("e", merged->key().ToString());
}

TEST(MergerTest, EarlierChildWinsTies) {
  Iterator* children[2] = {
      new VectorIterator(std::vector<std::pair<std::string, std::string>>{{"k", "newer"}}),
      new VectorIterator(std::vector<std::pair<std::string, std::string>>{{"k", "older"}}),
  };
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(BytewiseComparator(), children, 2));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("newer", merged->value().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("older", merged->value().ToString());
  merged->Next();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergerTest, ZeroAndOneChild) {
  std::unique_ptr<Iterator> empty(
      NewMergingIterator(BytewiseComparator(), nullptr, 0));
  empty->SeekToFirst();
  EXPECT_FALSE(empty->Valid());

  Iterator* one[1] = {new VectorIterator(std::vector<std::pair<std::string, std::string>>{{"a", "1"}})};
  std::unique_ptr<Iterator> single(
      NewMergingIterator(BytewiseComparator(), one, 1));
  single->SeekToFirst();
  ASSERT_TRUE(single->Valid());
  EXPECT_EQ("a", single->key().ToString());
}

}  // namespace leveldbpp
