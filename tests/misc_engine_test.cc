// Odds and ends: DB properties, statistics plumbing, options sanitization,
// iterator cleanups, merger interaction with tombstones in the memtable.

#include <gtest/gtest.h>

#include <memory>

#include "core/posting_list.h"
#include "db/db_impl.h"
#include "db/write_batch.h"
#include "env/env.h"
#include "table/iterator.h"

namespace leveldbpp {
namespace {

class MiscEngineTest : public testing::Test {
 protected:
  MiscEngineTest() : env_(NewMemEnv()) {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.statistics = &stats_;
    DBImpl* raw = nullptr;
    EXPECT_TRUE(DBImpl::Open(options, "/miscdb", &raw).ok());
    db_.reset(raw);
  }

  Statistics stats_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(MiscEngineTest, Properties) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         std::string(100, 'v'))
                    .ok());
  }
  std::string value;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.num-files-at-level0", &value));
  ASSERT_TRUE(db_->GetProperty("leveldbpp.total-bytes", &value));
  EXPECT_GT(std::stoull(value), 10000u);  // Repetitive values compress well
  ASSERT_TRUE(db_->GetProperty("leveldbpp.approximate-memory-usage", &value));
  EXPECT_GT(std::stoull(value), 0u);
  ASSERT_TRUE(db_->GetProperty("leveldbpp.sstables", &value));
  EXPECT_NE(std::string::npos, value.find("--- level 0 ---"));
  ASSERT_TRUE(db_->GetProperty("leveldbpp.levels", &value));
  EXPECT_EQ(0u, value.find("files["));

  EXPECT_FALSE(db_->GetProperty("leveldbpp.nope", &value));
  EXPECT_FALSE(db_->GetProperty("other.prefix", &value));
  EXPECT_FALSE(db_->GetProperty("leveldbpp.num-files-at-level99", &value));
}

TEST_F(MiscEngineTest, StatisticsRecordEngineActivity) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                         std::string(150, 'v'))
                    .ok());
  }
  EXPECT_GT(stats_.Get(kWalBytesWritten), 3000u * 150);
  EXPECT_GT(stats_.Get(kFlushCount), 0u);
  EXPECT_GT(stats_.Get(kCompactionBytesWritten), 0u);

  StatsSnapshot before = StatsSnapshot::Take(stats_);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "k10", &value).ok());
  StatsSnapshot after = StatsSnapshot::Take(stats_);
  EXPECT_GT(after.Delta(before, kBlockRead), 0u);

  std::string dump = stats_.ToString();
  EXPECT_NE(std::string::npos, dump.find("wal.bytes.written"));

  stats_.Reset();
  EXPECT_EQ(0u, stats_.Get(kBlockRead));
}

TEST_F(MiscEngineTest, IteratorCleanupsRunOnDestroy) {
  int cleanups = 0;
  {
    std::unique_ptr<Iterator> it(NewEmptyIterator());
    it->RegisterCleanup([&] { cleanups++; });
    it->RegisterCleanup([&] { cleanups += 10; });
    EXPECT_EQ(0, cleanups);
  }
  EXPECT_EQ(11, cleanups);
}

TEST(OptionsSanitization, SecondaryAttrsDroppedWithoutExtractor) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.secondary_attributes = {"UserID"};  // But no extractor!
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/sanedb", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);
  // The engine dropped the attrs rather than building broken meta.
  EXPECT_TRUE(db->options().secondary_attributes.empty());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "{\"UserID\":\"u\"}").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
}

TEST(OptionsSanitization, ExtremeValuesClamped) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.write_buffer_size = 1;    // Absurdly small
  options.max_file_size = 1;        // Absurdly small
  options.block_size = 1;           // Absurdly small
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/clampdb", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);
  EXPECT_GE(db->options().write_buffer_size, 64u << 10);
  EXPECT_GE(db->options().max_file_size, 16u << 10);
  EXPECT_GE(db->options().block_size, 1u << 10);
  // And it still works.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k250", &value).ok());
}

TEST(MergerTombstone, PutAfterDeleteInMemtableDoesNotResurrect) {
  // With a ValueMerger installed, a Put after a whole-key Delete must not
  // merge with pre-tombstone fragments.
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();

  std::string frag_a, frag_b;
  PostingList::Serialize({{"t1", 1, false}}, &frag_a);
  PostingList::Serialize({{"t2", 5, false}}, &frag_b);

  WriteBatch b1;
  b1.Put("u", frag_a);
  WriteBatchInternal::SetSequence(&b1, 1);
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&b1, mem,
                                             PostingListMerger::Instance())
                  .ok());
  WriteBatch b2;
  b2.Delete("u");
  WriteBatchInternal::SetSequence(&b2, 2);
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&b2, mem,
                                             PostingListMerger::Instance())
                  .ok());
  WriteBatch b3;
  b3.Put("u", frag_b);
  WriteBatchInternal::SetSequence(&b3, 3);
  ASSERT_TRUE(WriteBatchInternal::InsertInto(&b3, mem,
                                             PostingListMerger::Instance())
                  .ok());

  std::string value;
  SequenceNumber seq;
  bool deleted;
  ASSERT_TRUE(mem->GetNewest("u", &value, &seq, &deleted));
  ASSERT_FALSE(deleted);
  std::vector<PostingEntry> entries;
  ASSERT_TRUE(PostingList::Parse(Slice(value), &entries));
  ASSERT_EQ(1u, entries.size());
  EXPECT_EQ("t2", entries[0].primary_key) << "t1 must stay deleted";
  mem->Unref();
}

TEST(DestroyDBTest, MissingDirectoryIsOk) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  EXPECT_TRUE(DestroyDB("/never-existed", options).ok());
}

}  // namespace
}  // namespace leveldbpp
