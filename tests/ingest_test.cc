// Ingestion and maintenance-axis suite (ctest label: ingest):
//
//   1. DBImpl::IngestExternalFiles — placement, fresh sequences, atomic
//      MANIFEST splice, reopen durability, input validation.
//   2. Pipelined flush (max_immutable_memtables > 1) — multi-writer drain,
//      queue-depth histogram, recovery with several WALs in flight.
//   3. SecondaryDB::IngestWithIndexes — every variant's query results are
//      byte-identical to a store built by the equivalent Put sequence.
//   4. Index maintenance modes (kDeferredBatch / kTimestampValidated) —
//      byte-identical lookups vs. kSync on a mixed workload.
//   5. Crash and repair: multi-imm crash cycles, ingest-then-crash
//      atomicity, ingest-then-RepairDB across the variant matrix.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crash_harness.h"
#include "core/secondary_db.h"
#include "env/fault_injection_env.h"

namespace leveldbpp {
namespace {

using crash::Op;
using crash::PutOp;
using crash::DeleteOp;
using crash::UserDoc;

IngestFeed FeedFrom(const std::vector<std::pair<std::string, std::string>>* kv,
                    size_t* pos) {
  *pos = 0;
  return [kv, pos](std::string* key, std::string* value) {
    if (*pos >= kv->size()) return false;
    *key = (*kv)[*pos].first;
    *value = (*kv)[*pos].second;
    (*pos)++;
    return true;
  };
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

// ---------------------------------------------------------------------------
// 1. DBImpl::IngestExternalFiles
// ---------------------------------------------------------------------------

class IngestDBTest : public testing::Test {
 protected:
  IngestDBTest() : env_(NewMemEnv()) {}

  Options MakeOptions() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.statistics = &stats_;
    return options;
  }

  DBImpl* OpenDB(const std::string& name) {
    DBImpl* db = nullptr;
    Status s = DBImpl::Open(MakeOptions(), name, &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return db;
  }

  static int FilesAtLevel(DBImpl* db, int level) {
    std::string v;
    EXPECT_TRUE(db->GetProperty(
        "leveldbpp.num-files-at-level" + std::to_string(level), &v));
    return std::stoi(v);
  }

  std::unique_ptr<Env> env_;
  Statistics stats_;
};

TEST_F(IngestDBTest, EmptyDBLandsAtBottomLevelAndSurvivesReopen) {
  const int n = 500;
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = 0; i < n; i++) kv.emplace_back(Key(i), "v" + std::to_string(i));

  std::unique_ptr<DBImpl> db(OpenDB("/ingest_bottom"));
  size_t pos;
  IngestStats st;
  ASSERT_TRUE(db->IngestExternalFiles(FeedFrom(&kv, &pos), &st).ok());
  EXPECT_GE(st.files, 1u);
  EXPECT_EQ(static_cast<uint64_t>(n), st.keys);
  EXPECT_GT(st.bytes, 0u);
  EXPECT_EQ(st.first_seq + n - 1, st.last_seq);

  // Nothing overlaps an empty tree: the files belong at the bottom level,
  // where they never cost a rewrite.
  EXPECT_EQ(0, FilesAtLevel(db.get(), 0));
  EXPECT_GE(FilesAtLevel(db.get(), 6), 1);

  std::string value;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ("v" + std::to_string(i), value);
  }

  EXPECT_EQ(st.files, stats_.Get(kIngestFiles));
  EXPECT_EQ(st.keys, stats_.Get(kIngestKeys));
  EXPECT_EQ(st.bytes, stats_.Get(kIngestBytes));

  // The splice is a synced MANIFEST commit: a plain reopen (no WAL replay
  // involved — ingest bypasses the log) must see everything.
  db.reset();
  db.reset(OpenDB("/ingest_bottom"));
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ("v" + std::to_string(i), value);
  }
}

TEST_F(IngestDBTest, RejectsUnsortedAndDuplicateKeys) {
  std::unique_ptr<DBImpl> db(OpenDB("/ingest_unsorted"));
  std::vector<std::pair<std::string, std::string>> bad = {
      {"b", "1"}, {"a", "2"}};
  size_t pos;
  Status s = db->IngestExternalFiles(FeedFrom(&bad, &pos), nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  std::vector<std::pair<std::string, std::string>> dup = {
      {"a", "1"}, {"a", "2"}};
  s = db->IngestExternalFiles(FeedFrom(&dup, &pos), nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // A rejected ingest must leave the DB fully writable and empty.
  ASSERT_TRUE(db->Put(WriteOptions(), "x", "y").ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "a", &value).IsNotFound());
}

TEST_F(IngestDBTest, FreshSequencesBeatExistingVersions) {
  std::unique_ptr<DBImpl> db(OpenDB("/ingest_overlap"));
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "old").ok());
  }
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = 50; i < 150; i++) kv.emplace_back(Key(i), "new");
  size_t pos;
  ASSERT_TRUE(db->IngestExternalFiles(FeedFrom(&kv, &pos), nullptr).ok());

  std::string value;
  for (int i = 0; i < 150; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(i < 50 ? "old" : "new", value) << Key(i);
  }

  // And a later memtable write is newer still.
  ASSERT_TRUE(db->Put(WriteOptions(), Key(60), "newest").ok());
  ASSERT_TRUE(db->Get(ReadOptions(), Key(60), &value).ok());
  EXPECT_EQ("newest", value);
}

TEST_F(IngestDBTest, ParallelBuildMatchesSerialBuild) {
  // Chunks of a strictly-increasing feed are independent until the splice,
  // so the wave-parallel table builds must produce the same store as a
  // strictly serial ingest: same file count, same key->value map, same
  // sequence window.
  const int n = 4000;
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = 0; i < n; i++) {
    kv.emplace_back(Key(i), "v" + std::to_string(i) + std::string(40, 'p'));
  }

  IngestStats st[2];
  std::unique_ptr<DBImpl> dbs[2];
  for (int which = 0; which < 2; which++) {
    Options options = MakeOptions();
    options.ingest_parallelism = which == 0 ? 1 : 8;
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options,
                             which == 0 ? "/ingest_serial" : "/ingest_wave",
                             &raw)
                    .ok());
    dbs[which].reset(raw);
    size_t pos;
    ASSERT_TRUE(
        dbs[which]->IngestExternalFiles(FeedFrom(&kv, &pos), &st[which]).ok());
    ASSERT_GE(st[which].files, 4u) << "need a multi-wave ingest to test";
  }

  EXPECT_EQ(st[0].files, st[1].files);
  EXPECT_EQ(st[0].keys, st[1].keys);
  EXPECT_EQ(st[0].bytes, st[1].bytes);
  EXPECT_EQ(st[0].last_seq - st[0].first_seq, st[1].last_seq - st[1].first_seq);
  for (int level = 0; level < 7; level++) {
    EXPECT_EQ(FilesAtLevel(dbs[0].get(), level),
              FilesAtLevel(dbs[1].get(), level))
        << "level " << level;
  }
  std::string serial_value, wave_value;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(dbs[0]->Get(ReadOptions(), Key(i), &serial_value).ok());
    ASSERT_TRUE(dbs[1]->Get(ReadOptions(), Key(i), &wave_value).ok());
    EXPECT_EQ(serial_value, wave_value) << Key(i);
  }
}

TEST_F(IngestDBTest, EmptyFeedIsANoop) {
  std::unique_ptr<DBImpl> db(OpenDB("/ingest_empty"));
  std::vector<std::pair<std::string, std::string>> kv;
  size_t pos;
  IngestStats st;
  ASSERT_TRUE(db->IngestExternalFiles(FeedFrom(&kv, &pos), &st).ok());
  EXPECT_EQ(0u, st.files);
  EXPECT_EQ(0u, st.keys);
  EXPECT_EQ(0u, stats_.Get(kIngestFiles));
}

// ---------------------------------------------------------------------------
// 2. Pipelined flush
// ---------------------------------------------------------------------------

TEST_F(IngestDBTest, PipelinedFlushDrainsMultiWriterLoad) {
  Options options = MakeOptions();
  options.write_buffer_size = 16 << 10;
  options.background_compaction = true;
  options.max_immutable_memtables = 4;
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/pipelined", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  const int kThreads = 4, kPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      std::string pad(120, 'p');
      for (int i = 0; i < kPerThread; i++) {
        const std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        if (!db->Put(WriteOptions(), key, pad).ok()) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(0, failures.load());
  ASSERT_TRUE(db->WaitForBackgroundWork().ok());

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      const std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_TRUE(db->Get(ReadOptions(), key, &value).ok()) << key;
    }
  }

  // The workload (4 writers, 16KB buffers) must actually have pipelined:
  // at least one rotation happened while an earlier flush was still
  // pending, i.e. the queue got deeper than the classic single slot.
  Histogram depth = stats_.GetHistogram(kHistFlushQueueDepth);
  ASSERT_GT(depth.Count(), 0u);
  EXPECT_GT(depth.Max(), 1.0);
}

TEST_F(IngestDBTest, PipelinedFlushRecoversAllWals) {
  // Several immutable memtables in flight means several live WALs; closing
  // the DB mid-queue and reopening must replay every unflushed one (the
  // MANIFEST's log number may only advance past a WAL once its memtable
  // flushed).
  Options options = MakeOptions();
  options.write_buffer_size = 8 << 10;
  options.background_compaction = true;
  options.max_immutable_memtables = 6;
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/pipelined_reopen", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  std::string pad(200, 'q');
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), pad + std::to_string(i)).ok());
  }
  // Close WITHOUT waiting for background work: queued memtables die with
  // the process and only their WALs survive.
  db.reset();

  ASSERT_TRUE(DBImpl::Open(options, "/pipelined_reopen", &raw).ok());
  db.reset(raw);
  std::string value;
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(pad + std::to_string(i), value);
  }
}

// ---------------------------------------------------------------------------
// 3. SecondaryDB::IngestWithIndexes
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> MakeDocs(int n,
                                                          int first = 0) {
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = first; i < first + n; i++) {
    kv.emplace_back(Key(i), UserDoc("u" + std::to_string(i % 7), 5000 + i,
                                    /*pad=*/64));
  }
  return kv;
}

SecondaryDBOptions MakeSecondaryOptions(Env* env, IndexType type) {
  SecondaryDBOptions options;
  options.base.env = env;
  options.base.write_buffer_size = 64 << 10;
  options.base.max_file_size = 32 << 10;
  options.index_type = type;
  options.indexed_attributes = {"UserID"};
  return options;
}

void ExpectSameResults(SecondaryDB* a, SecondaryDB* b,
                       const std::string& trace) {
  std::vector<QueryResult> ra, rb;
  for (int u = 0; u < 7; u++) {
    const std::string user = "u" + std::to_string(u);
    for (size_t k : {size_t(0), size_t(3)}) {
      ASSERT_TRUE(a->Lookup("UserID", user, k, &ra).ok()) << trace;
      ASSERT_TRUE(b->Lookup("UserID", user, k, &rb).ok()) << trace;
      ASSERT_EQ(ra.size(), rb.size()) << trace << " user=" << user;
      for (size_t i = 0; i < ra.size(); i++) {
        EXPECT_EQ(ra[i].primary_key, rb[i].primary_key) << trace;
        EXPECT_EQ(ra[i].seq, rb[i].seq) << trace;
        EXPECT_EQ(ra[i].value, rb[i].value) << trace;
      }
    }
  }
  for (size_t k : {size_t(0), size_t(5)}) {
    ASSERT_TRUE(a->RangeLookup("UserID", "u0", "u6", k, &ra).ok()) << trace;
    ASSERT_TRUE(b->RangeLookup("UserID", "u0", "u6", k, &rb).ok()) << trace;
    ASSERT_EQ(ra.size(), rb.size()) << trace;
    for (size_t i = 0; i < ra.size(); i++) {
      EXPECT_EQ(ra[i].primary_key, rb[i].primary_key) << trace;
      EXPECT_EQ(ra[i].seq, rb[i].seq) << trace;
      EXPECT_EQ(ra[i].value, rb[i].value) << trace;
    }
  }
}

class IngestVariantsTest : public testing::TestWithParam<IndexType> {};

TEST_P(IngestVariantsTest, MatchesThePutPathExactly) {
  const IndexType type = GetParam();
  std::unique_ptr<Env> env(NewMemEnv());
  const auto docs = MakeDocs(400);

  std::unique_ptr<SecondaryDB> put_db, ingest_db;
  ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(env.get(), type),
                                "/put_twin", &put_db)
                  .ok());
  for (const auto& [key, doc] : docs) {
    ASSERT_TRUE(put_db->Put(key, doc).ok());
  }

  ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(env.get(), type),
                                "/ingest_twin", &ingest_db)
                  .ok());
  size_t pos;
  IngestStats st;
  ASSERT_TRUE(ingest_db->IngestWithIndexes(FeedFrom(&docs, &pos), &st).ok());
  EXPECT_EQ(docs.size(), st.keys);
  EXPECT_GE(st.files, 1u);

  // Both stores started empty, so the sequence windows coincide and every
  // query answer — keys, sequence numbers, values — must be identical.
  ExpectSameResults(put_db.get(), ingest_db.get(),
                    std::string("fresh/") + IndexTypeName(type));
  ASSERT_TRUE(ingest_db->VerifyIndexConsistency().ok());
}

TEST_P(IngestVariantsTest, BackfillIntoNonEmptyStore) {
  const IndexType type = GetParam();
  std::unique_ptr<Env> env(NewMemEnv());
  const auto first = MakeDocs(120);
  const auto second = MakeDocs(200, /*first=*/200);

  std::unique_ptr<SecondaryDB> put_db, ingest_db;
  ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(env.get(), type),
                                "/backfill_twin", &put_db)
                  .ok());
  ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(env.get(), type),
                                "/backfill", &ingest_db)
                  .ok());
  for (const auto& [key, doc] : first) {
    ASSERT_TRUE(put_db->Put(key, doc).ok());
    ASSERT_TRUE(ingest_db->Put(key, doc).ok());
  }
  for (const auto& [key, doc] : second) {
    ASSERT_TRUE(put_db->Put(key, doc).ok());
  }
  size_t pos;
  ASSERT_TRUE(
      ingest_db->IngestWithIndexes(FeedFrom(&second, &pos), nullptr).ok());

  // The non-empty-index fallbacks (Lazy/Eager replay, Composite splice)
  // must still agree with the pure-Put twin answer for answer.
  ExpectSameResults(put_db.get(), ingest_db.get(),
                    std::string("backfill/") + IndexTypeName(type));
  ASSERT_TRUE(ingest_db->VerifyIndexConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, IngestVariantsTest,
    testing::Values(IndexType::kNoIndex, IndexType::kEmbedded,
                    IndexType::kLazy, IndexType::kEager,
                    IndexType::kComposite),
    [](const testing::TestParamInfo<IndexType>& info) {
      return IndexTypeName(info.param);
    });

// Regression for Lazy's non-empty BulkLoad: the ingested fragment is the
// MERGE of the new batch with every existing fragment of the attribute and
// is forced to level 0. Natural ingest placement would sink the merged
// fragment below the fragments it absorbed, and the level-by-level scan's
// early stop would then answer top-k queries from stale shadowed entries.
// Deletion markers must also survive the merge — they still shadow
// occurrences in fragments the walk hasn't reached.
TEST(LazyIngestMergeTest, BulkLoadMergesExistingFragmentsAndKeepsMarkers) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<SecondaryDB> put_db, ingest_db;
  ASSERT_TRUE(SecondaryDB::Open(
                  MakeSecondaryOptions(env.get(), IndexType::kLazy),
                  "/merge_twin", &put_db)
                  .ok());
  ASSERT_TRUE(SecondaryDB::Open(
                  MakeSecondaryOptions(env.get(), IndexType::kLazy),
                  "/merge", &ingest_db)
                  .ok());

  // Seed overlapping posting lists, with deletes so the index carries
  // deletion markers, then compact so the fragments live in SSTable levels
  // (the merge has to read them back, not just splice next to them).
  const auto first = MakeDocs(80);
  for (const auto& [key, doc] : first) {
    ASSERT_TRUE(put_db->Put(key, doc).ok());
    ASSERT_TRUE(ingest_db->Put(key, doc).ok());
  }
  for (int i = 3; i < 80; i += 16) {
    ASSERT_TRUE(put_db->Delete(Key(i)).ok());
    ASSERT_TRUE(ingest_db->Delete(Key(i)).ok());
  }
  ASSERT_TRUE(ingest_db->CompactAll().ok());

  // Backfill a second batch over the SAME users, so every touched posting
  // list must merge with the compacted fragments.
  const auto second = MakeDocs(60, /*first=*/200);
  for (const auto& [key, doc] : second) {
    ASSERT_TRUE(put_db->Put(key, doc).ok());
  }
  size_t pos;
  ASSERT_TRUE(
      ingest_db->IngestWithIndexes(FeedFrom(&second, &pos), nullptr).ok());

  // Small k engages the early-stop scan; k=0 checks the full lists. Both
  // run inside ExpectSameResults against the pure-Put twin.
  ExpectSameResults(put_db.get(), ingest_db.get(), "lazy-merge");

  // Deleted keys must stay shadowed after the merge rebuilt the fragment.
  std::vector<QueryResult> results;
  for (int u = 0; u < 7; u++) {
    ASSERT_TRUE(ingest_db->Lookup("UserID", "u" + std::to_string(u), 0,
                                  &results)
                    .ok());
    for (const QueryResult& r : results) {
      for (int i = 3; i < 80; i += 16) {
        EXPECT_NE(r.primary_key, Key(i)) << "deleted key resurfaced";
      }
    }
  }
  ASSERT_TRUE(ingest_db->VerifyIndexConsistency().ok());
}

// ---------------------------------------------------------------------------
// 4. Index maintenance modes
// ---------------------------------------------------------------------------

struct MaintenanceCase {
  IndexType type;
  IndexMaintenance mode;
};

class MaintenanceModeTest : public testing::TestWithParam<MaintenanceCase> {};

// Mixed workload with updates (keys changing user), deletes, and re-puts,
// sized to cross several flushes of the 64KB buffer.
std::vector<Op> MixedWorkload() {
  std::vector<Op> ops;
  uint64_t ts = 1000;
  for (int i = 0; i < 300; i++) {
    if (i % 11 == 7) {
      ops.push_back(DeleteOp(Key((i * 3) % 80)));
      continue;
    }
    ops.push_back(PutOp(Key((i * 13) % 80), "u" + std::to_string((i * 5) % 7),
                        ts++, /*pad=*/500));
  }
  return ops;
}

TEST_P(MaintenanceModeTest, ByteIdenticalToSync) {
  const MaintenanceCase c = GetParam();
  std::unique_ptr<Env> env(NewMemEnv());
  const std::vector<Op> ops = MixedWorkload();

  SecondaryDBOptions sync_options = MakeSecondaryOptions(env.get(), c.type);
  SecondaryDBOptions mode_options = sync_options;
  mode_options.index_maintenance = c.mode;
  mode_options.deferred_batch_max_ops = 64;  // Exercise the cap drain too

  std::unique_ptr<SecondaryDB> sync_db, mode_db;
  ASSERT_TRUE(SecondaryDB::Open(sync_options, "/maint_sync", &sync_db).ok());
  ASSERT_TRUE(SecondaryDB::Open(mode_options, "/maint_mode", &mode_db).ok());

  for (const Op& op : ops) {
    if (op.kind == Op::kPut) {
      ASSERT_TRUE(sync_db->Put(op.key, op.doc).ok());
      ASSERT_TRUE(mode_db->Put(op.key, op.doc).ok());
    } else {
      ASSERT_TRUE(sync_db->Delete(op.key).ok());
      ASSERT_TRUE(mode_db->Delete(op.key).ok());
    }
  }

  ExpectSameResults(sync_db.get(), mode_db.get(), IndexTypeName(c.type));
  ASSERT_TRUE(mode_db->VerifyIndexConsistency().ok());

  if (c.mode == IndexMaintenance::kDeferredBatch) {
    EXPECT_GT(mode_db->primary_statistics()->Get(kIndexDeferredOps), 0u);
    EXPECT_GT(mode_db->primary_statistics()->Get(kIndexDeferredApplies), 0u);
  } else {
    // The point lookups inside ExpectSameResults must have taken the
    // metadata-only fast path.
    EXPECT_GT(mode_db->primary_statistics()->Get(kTimestampValidations), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MaintenanceModeTest,
    testing::Values(
        MaintenanceCase{IndexType::kLazy, IndexMaintenance::kDeferredBatch},
        MaintenanceCase{IndexType::kEager, IndexMaintenance::kDeferredBatch},
        MaintenanceCase{IndexType::kComposite,
                        IndexMaintenance::kDeferredBatch},
        MaintenanceCase{IndexType::kLazy,
                        IndexMaintenance::kTimestampValidated},
        MaintenanceCase{IndexType::kEager,
                        IndexMaintenance::kTimestampValidated},
        MaintenanceCase{IndexType::kComposite,
                        IndexMaintenance::kTimestampValidated}),
    [](const testing::TestParamInfo<MaintenanceCase>& info) {
      return std::string(IndexTypeName(info.param.type)) +
             (info.param.mode == IndexMaintenance::kDeferredBatch
                  ? "Deferred"
                  : "Timestamp");
    });

TEST(MaintenanceModeOpenTest, SyncWritesComboIsRejected) {
  std::unique_ptr<Env> env(NewMemEnv());
  for (IndexMaintenance mode : {IndexMaintenance::kDeferredBatch,
                                IndexMaintenance::kTimestampValidated}) {
    SecondaryDBOptions options =
        MakeSecondaryOptions(env.get(), IndexType::kLazy);
    options.sync_writes = true;
    options.index_maintenance = mode;
    std::unique_ptr<SecondaryDB> db;
    Status s = SecondaryDB::Open(options, "/maint_reject", &db);
    EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  }
}

TEST(MaintenanceModeOpenTest, DeferredBufferDrainsOnClose) {
  std::unique_ptr<Env> env(NewMemEnv());
  SecondaryDBOptions options =
      MakeSecondaryOptions(env.get(), IndexType::kEager);
  options.index_maintenance = IndexMaintenance::kDeferredBatch;
  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(options, "/maint_close", &db).ok());
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(db->Put(Key(i), UserDoc("u1", 100 + i, 32)).ok());
    }
    // No query: the ops can only reach the index via the close-time drain.
  }
  options.index_maintenance = IndexMaintenance::kSync;
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(options, "/maint_close", &db).ok());
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u1", 0, &results).ok());
  EXPECT_EQ(20u, results.size());
}

// ---------------------------------------------------------------------------
// 5. Crash and repair
// ---------------------------------------------------------------------------

class IngestCrashTest : public testing::TestWithParam<IndexType> {};

TEST_P(IngestCrashTest, MultiImmCrashCycles) {
  const IndexType type = GetParam();
  // Several small immutable memtables in flight at the crash: background
  // flushing with a deep queue and a write buffer far below the workload
  // volume. Each queued memtable has its own WAL; recovery must replay
  // every unflushed one.
  crash::OptionsTweak tweak = [](SecondaryDBOptions* options) {
    options->base.write_buffer_size = 16 << 10;
    options->base.background_compaction = true;
    options->base.max_immutable_memtables = 4;
  };
  std::vector<Op> ops;
  uint64_t ts = 2000;
  for (int i = 0; i < 80; i++) {
    ops.push_back(PutOp(Key((i * 11) % 40), "u" + std::to_string(i % 5), ts++,
                        /*pad=*/600));
  }
  const uint64_t total = crash::CountEnvOps(type, ops, tweak);
  ASSERT_GT(total, 0u);
  // A handful of deterministic points spread across the run (the dense
  // sweep lives in crash_recovery_test; this matrix pins the pipelined
  // configuration).
  for (uint64_t at : {total / 5, total / 2, (total * 4) / 5, total + 50}) {
    crash::RunCrashCycle(type, ops, at,
                         FaultInjectionEnv::CrashMode::kDropUnsynced,
                         /*seed=*/123, "multi-imm crash_at=" +
                             std::to_string(at),
                         tweak);
  }
}

TEST_P(IngestCrashTest, IngestSurvivesCrashAfterReturn) {
  const IndexType type = GetParam();
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv env(base.get());
  const auto docs = MakeDocs(150);
  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(
        SecondaryDB::Open(MakeSecondaryOptions(&env, type), "/icrash", &db)
            .ok());
    size_t pos;
    ASSERT_TRUE(db->IngestWithIndexes(FeedFrom(&docs, &pos), nullptr).ok());
    // "Process exit" without further syncs.
  }
  ASSERT_TRUE(
      env.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());

  // An acknowledged ingest is a synced MANIFEST commit on the PRIMARY
  // table, so every record must survive the crash. Index tables are derived
  // data with no such contract (their own ingests sync too, but index WAL
  // paths may not be); rebuild them and verify queryability.
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(
      SecondaryDB::Open(MakeSecondaryOptions(&env, type), "/icrash", &db)
          .ok());
  std::string value;
  for (const auto& [key, doc] : docs) {
    ASSERT_TRUE(db->Get(key, &value).ok()) << key;
    EXPECT_EQ(doc, value);
  }
  ASSERT_TRUE(db->RebuildIndex().ok());
  ASSERT_TRUE(db->VerifyIndexConsistency().ok());
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u3", 0, &results).ok());
  EXPECT_FALSE(results.empty());
}

TEST_P(IngestCrashTest, IngestInterruptedIsAtomic) {
  const IndexType type = GetParam();
  const auto docs = MakeDocs(200);
  // Sweep fault points through the ingest's own I/O: whatever the point,
  // after the crash the primary holds either ALL the records or NONE —
  // never a partial splice.
  for (uint64_t fail_at : {2u, 8u, 20u, 60u}) {
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv env(base.get());
    bool acked = false;
    {
      std::unique_ptr<SecondaryDB> db;
      ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(&env, type),
                                    "/iatomic", &db)
                      .ok());
      env.ResetOpCount();
      env.FailAfter(fail_at, FaultInjectionEnv::kOpAllWrites);
      size_t pos;
      Status s = db->IngestWithIndexes(FeedFrom(&docs, &pos), nullptr);
      acked = s.ok();
    }
    ASSERT_TRUE(
        env.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());
    env.ClearFaults();

    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(MakeSecondaryOptions(&env, type),
                                  "/iatomic", &db)
                    .ok())
        << "fail_at=" << fail_at;
    size_t present = 0;
    std::string value;
    for (const auto& [key, doc] : docs) {
      if (db->Get(key, &value).ok()) present++;
    }
    if (acked) {
      EXPECT_EQ(docs.size(), present) << "fail_at=" << fail_at;
    } else {
      EXPECT_TRUE(present == 0 || present == docs.size())
          << "fail_at=" << fail_at << " present=" << present;
    }
  }
}

TEST_P(IngestCrashTest, IngestThenRepairRoundTrip) {
  const IndexType type = GetParam();
  std::unique_ptr<Env> env(NewMemEnv());
  SecondaryDBOptions options = MakeSecondaryOptions(env.get(), type);
  const auto docs = MakeDocs(150);
  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(options, "/irepair", &db).ok());
    size_t pos;
    ASSERT_TRUE(db->IngestWithIndexes(FeedFrom(&docs, &pos), nullptr).ok());
  }
  // RepairDB rebuilds the MANIFEST from a directory scan: ingested tables
  // must salvage exactly like flushed ones.
  ASSERT_TRUE(SecondaryDB::Repair(options, "/irepair").ok());
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(options, "/irepair", &db).ok());
  ASSERT_TRUE(db->RebuildIndex().ok());
  ASSERT_TRUE(db->VerifyIndexConsistency().ok());
  std::string value;
  for (const auto& [key, doc] : docs) {
    ASSERT_TRUE(db->Get(key, &value).ok()) << key;
    EXPECT_EQ(doc, value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, IngestCrashTest,
    testing::Values(IndexType::kNoIndex, IndexType::kEmbedded,
                    IndexType::kLazy, IndexType::kEager,
                    IndexType::kComposite),
    [](const testing::TestParamInfo<IndexType>& info) {
      return IndexTypeName(info.param);
    });

}  // namespace
}  // namespace leveldbpp
