// Two-level iterator: index-entry -> block materialization, empty-block
// skipping, and seek behaviour, driven end-to-end through a multi-block
// table.

#include "table/two_level_iterator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "env/env.h"
#include "table/table.h"
#include "table/table_builder.h"

namespace leveldbpp {
namespace {

class TwoLevelIteratorTest : public testing::Test {
 protected:
  TwoLevelIteratorTest() : env_(NewMemEnv()) {}

  void BuildTable(int num_entries) {
    options_.env = env_.get();
    options_.block_size = 256;  // Tiny blocks -> deep two-level structure
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/t", &file).ok());
    TableBuilder builder(options_, file.get());
    for (int i = 0; i < num_entries; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%06d", i * 2);  // Even keys only
      std::string value = "val" + std::to_string(i) + std::string(40, 'x');
      builder.Add(key, value);
      entries_[key] = value;
    }
    ASSERT_TRUE(builder.Finish().ok());
    uint64_t size = builder.FileSize();
    ASSERT_TRUE(file->Close().ok());

    ASSERT_TRUE(env_->NewRandomAccessFile("/t", &raf_).ok());
    Table* table = nullptr;
    ASSERT_TRUE(Table::Open(options_, raf_.get(), size, &table).ok());
    table_.reset(table);
    ASSERT_GT(table_->NumDataBlocks(), 4u);  // Actually multi-block
  }

  Options options_;
  std::unique_ptr<Env> env_;
  std::map<std::string, std::string> entries_;
  std::unique_ptr<RandomAccessFile> raf_;
  std::unique_ptr<Table> table_;
};

TEST_F(TwoLevelIteratorTest, FullForwardScan) {
  BuildTable(500);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  auto mit = entries_.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_TRUE(mit != entries_.end());
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_TRUE(mit == entries_.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TwoLevelIteratorTest, SeeksAcrossBlockBoundaries) {
  BuildTable(500);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  // Seek to every present key.
  for (const auto& [key, value] : entries_) {
    it->Seek(key);
    ASSERT_TRUE(it->Valid()) << key;
    EXPECT_EQ(key, it->key().ToString());
  }
  // Seek to absent (odd) keys: lands on the next even key.
  for (int i = 1; i < 999; i += 97) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    it->Seek(key);
    auto expect = entries_.lower_bound(key);
    if (expect == entries_.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(expect->first, it->key().ToString());
    }
  }
}

TEST_F(TwoLevelIteratorTest, SeekPastEndInvalid) {
  BuildTable(100);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TwoLevelIteratorTest, ScanAfterSeekReachesEnd) {
  BuildTable(200);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  it->Seek("key000300");  // Middle
  int count = 0;
  for (; it->Valid(); it->Next()) count++;
  // Entries at/after key000300: keys 300..398 even = 50 of first 200*2.
  EXPECT_EQ(static_cast<int>(entries_.size()) - 150, count);
}

}  // namespace
}  // namespace leveldbpp
