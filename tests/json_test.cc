#include "json/json.h"

#include <gtest/gtest.h>

namespace leveldbpp {
namespace json {

TEST(Json, ParseScalars) {
  Value v;
  ASSERT_TRUE(Parse("null", &v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(Parse("true", &v));
  EXPECT_TRUE(v.as_bool());
  ASSERT_TRUE(Parse("false", &v));
  EXPECT_FALSE(v.as_bool());
  ASSERT_TRUE(Parse("42", &v));
  EXPECT_EQ(42, v.as_int());
  ASSERT_TRUE(Parse("-3.5", &v));
  EXPECT_DOUBLE_EQ(-3.5, v.as_number());
  ASSERT_TRUE(Parse("1e3", &v));
  EXPECT_DOUBLE_EQ(1000.0, v.as_number());
  ASSERT_TRUE(Parse("\"hello\"", &v));
  EXPECT_EQ("hello", v.as_string());
}

TEST(Json, ParseStringEscapes) {
  Value v;
  ASSERT_TRUE(Parse(R"("a\"b\\c\/d\n\tA")", &v));
  EXPECT_EQ("a\"b\\c/d\n\tA", v.as_string());
}

TEST(Json, ParseNested) {
  Value v;
  ASSERT_TRUE(Parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})", &v));
  ASSERT_TRUE(v.is_object());
  const Value& a = v["a"];
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(3u, a.as_array().size());
  EXPECT_EQ(1, a.as_array()[0].as_int());
  EXPECT_EQ("c", a.as_array()[2]["b"].as_string());
  EXPECT_TRUE(v["d"]["e"].is_null());
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(Json, ParseWhitespace) {
  Value v;
  ASSERT_TRUE(Parse("  {  \"a\" :\n [ 1 , 2 ]\t } ", &v));
  EXPECT_EQ(2u, v["a"].as_array().size());
}

TEST(Json, RejectsMalformed) {
  Value v;
  EXPECT_FALSE(Parse("", &v));
  EXPECT_FALSE(Parse("{", &v));
  EXPECT_FALSE(Parse("[1,", &v));
  EXPECT_FALSE(Parse("\"unterminated", &v));
  EXPECT_FALSE(Parse("{\"a\":}", &v));
  EXPECT_FALSE(Parse("tru", &v));
  EXPECT_FALSE(Parse("1 2", &v));  // Trailing garbage
  EXPECT_FALSE(Parse("{'a':1}", &v));  // Single quotes
}

TEST(Json, SerializeRoundTrip) {
  const char* docs[] = {
      R"({"Body":"text","UserID":"u1"})",
      R"([["t1",100],["t2",99,1]])",
      R"({"nested":{"arr":[1,2,3],"s":"x"}})",
      "[]",
      "{}",
  };
  for (const char* doc : docs) {
    Value v;
    ASSERT_TRUE(Parse(doc, &v)) << doc;
    EXPECT_EQ(doc, v.ToString()) << doc;
  }
}

TEST(Json, IntegersSerializeExactly) {
  // Sequence numbers up to 2^53 must round-trip exactly.
  Value v;
  ASSERT_TRUE(Parse("9007199254740992", &v));
  EXPECT_EQ("9007199254740992", v.ToString());
  ASSERT_TRUE(Parse("123456789012345", &v));
  EXPECT_EQ(123456789012345LL, v.as_int());
}

TEST(Json, SerializeEscapes) {
  Value v(std::string("line1\nline2\t\"quoted\""));
  EXPECT_EQ(R"("line1\nline2\t\"quoted\"")", v.ToString());
}

TEST(Json, BuildProgrammatically) {
  Object obj;
  obj["name"] = Value(std::string("bob"));
  obj["count"] = Value(static_cast<int64_t>(7));
  Array arr;
  arr.push_back(Value(true));
  obj["flags"] = Value(std::move(arr));
  Value v(std::move(obj));
  EXPECT_EQ(R"({"count":7,"flags":[true],"name":"bob"})", v.ToString());
}

}  // namespace json
}  // namespace leveldbpp
