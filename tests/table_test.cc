// SSTable round-trip tests: build a table with secondary meta blocks, read
// it back, verify iteration, point gets, bloom pruning, and the embedded
// scan surface.

#include "table/table.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/document.h"
#include "env/env.h"
#include "table/filter_policy.h"
#include "table/table_builder.h"
#include "util/random.h"

namespace leveldbpp {

class TableTest : public testing::Test {
 protected:
  TableTest() : env_(NewMemEnv()) {
    primary_filter_.reset(NewBloomFilterPolicy(10));
    secondary_filter_.reset(NewBloomFilterPolicy(20));
  }

  Options MakeOptions(bool with_secondary) {
    Options options;
    options.env = env_.get();
    options.block_size = 512;  // Small blocks -> many blocks per table
    options.filter_policy = primary_filter_.get();
    if (with_secondary) {
      options.secondary_attributes = {"UserID"};
      options.secondary_filter_policy = secondary_filter_.get();
      options.attribute_extractor = JsonAttributeExtractor::Instance();
    }
    return options;
  }

  // Build a table of `entries` (must be sorted) and open it.
  void Build(const std::map<std::string, std::string>& entries,
             bool with_secondary) {
    options_ = MakeOptions(with_secondary);
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/table", &file).ok());
    TableBuilder builder(options_, file.get());
    for (const auto& [key, value] : entries) {
      builder.Add(key, value);
    }
    ASSERT_TRUE(builder.Finish().ok());
    file_size_ = builder.FileSize();
    ASSERT_TRUE(file->Close().ok());

    ASSERT_TRUE(env_->NewRandomAccessFile("/table", &raf_).ok());
    Table* table = nullptr;
    ASSERT_TRUE(Table::Open(options_, raf_.get(), file_size_, &table).ok());
    table_.reset(table);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> primary_filter_;
  std::unique_ptr<const FilterPolicy> secondary_filter_;
  Options options_;
  uint64_t file_size_ = 0;
  std::unique_ptr<RandomAccessFile> raf_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, IterateRoundTrip) {
  std::map<std::string, std::string> entries;
  Random64 rnd(5);
  for (int i = 0; i < 500; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i * 3);
    entries[key] = "value" + std::to_string(i) +
                   std::string(rnd.Uniform(100), 'x');
  }
  Build(entries, false);

  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  auto mit = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_TRUE(mit != entries.end());
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_TRUE(mit == entries.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(TableTest, SeekLandsAtLowerBound) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%04d", i * 10);
    entries[key] = "v";
  }
  Build(entries, false);

  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  it->Seek("k0005");  // Between k0000 and k0010
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0010", it->key().ToString());

  it->Seek("k0990");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0990", it->key().ToString());

  it->Seek("zzz");
  EXPECT_FALSE(it->Valid());
}

TEST_F(TableTest, InternalGetFindsEntries) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; i++) {
    entries["key" + std::to_string(1000 + i)] = "val" + std::to_string(i);
  }
  Build(entries, false);

  struct Result {
    bool found = false;
    std::string value;
  };
  auto handler = [](void* arg, const Slice& k, const Slice& v) {
    (void)k;
    Result* r = reinterpret_cast<Result*>(arg);
    r->found = true;
    r->value = v.ToString();
  };

  Result r;
  ASSERT_TRUE(
      table_->InternalGet(ReadOptions(), "key1050", &r, handler).ok());
  ASSERT_TRUE(r.found);
  EXPECT_EQ("val50", r.value);
}

TEST_F(TableTest, KeyMayExistNoIOUsesBloom) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 300; i++) {
    entries["present" + std::to_string(i)] = "v";
  }
  Build(entries, false);

  EXPECT_TRUE(table_->KeyMayExistNoIO("present42"));
  // Absent keys within the table's key range must (almost always) be
  // filtered by the bloom; check a bunch and require most to be filtered.
  int filtered = 0;
  for (int i = 0; i < 100; i++) {
    if (!table_->KeyMayExistNoIO("present" + std::to_string(i) + "x")) {
      filtered++;
    }
  }
  EXPECT_GT(filtered, 90);
}

TEST_F(TableTest, EmbeddedSecondaryMeta) {
  // Documents for three users spread across many blocks.
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 600; i++) {
    const char* user = (i % 3 == 0) ? "alice" : (i % 3 == 1 ? "bob" : "carol");
    char key[32];
    std::snprintf(key, sizeof(key), "t%06d", i);
    entries[key] = std::string("{\"UserID\":\"") + user +
                   "\",\"Body\":\"" + std::string(50, 'b') + "\"}";
  }
  Build(entries, true);

  const size_t nblocks = table_->NumDataBlocks();
  ASSERT_GT(nblocks, 5u);

  // Every block contains all three users (round-robin layout), so blooms
  // must answer "maybe" for them and "no" for strangers.
  size_t alice_blocks = 0, stranger_blocks = 0;
  for (size_t b = 0; b < nblocks; b++) {
    if (table_->SecondaryBlockMayContain("UserID", "alice", b)) {
      alice_blocks++;
    }
    if (table_->SecondaryBlockMayContain("UserID", "mallory", b)) {
      stranger_blocks++;
    }
  }
  EXPECT_EQ(nblocks, alice_blocks);
  EXPECT_EQ(0u, stranger_blocks);

  // Zone maps: file range covers [alice, carol]; nothing beyond.
  EXPECT_TRUE(table_->SecondaryFileMayOverlap("UserID", "alice", "bob"));
  EXPECT_FALSE(table_->SecondaryFileMayOverlap("UserID", "dave", "zed"));
  EXPECT_FALSE(table_->SecondaryFileMayOverlap("UserID", "a", "al"));

  // Block iterator: data comes back intact.
  std::unique_ptr<Iterator> it(
      table_->NewDataBlockIterator(ReadOptions(), 0));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("t000000", it->key().ToString());
}

TEST_F(TableTest, EmbeddedMetaAbsentForPlainTables) {
  std::map<std::string, std::string> entries{{"a", "1"}, {"b", "2"}};
  Build(entries, false);
  // Fail open: without zone maps everything may overlap.
  EXPECT_TRUE(table_->SecondaryFileMayOverlap("UserID", "x", "y"));
  EXPECT_TRUE(table_->SecondaryBlockMayContain("UserID", "x", 0));
}

TEST_F(TableTest, TombstoneValuesSkipSecondaryMeta) {
  // Empty values (tombstones) must not break attribute extraction.
  std::map<std::string, std::string> entries;
  entries["k1"] = "{\"UserID\":\"u\"}";
  entries["k2"] = "";  // Tombstone-like
  Build(entries, true);
  EXPECT_TRUE(table_->SecondaryFileMayOverlap("UserID", "u", "u"));
}

TEST_F(TableTest, CorruptFooterRejected) {
  std::map<std::string, std::string> entries{{"a", "1"}};
  Build(entries, false);
  // Open with a bogus (too small) size.
  Table* t = nullptr;
  Status s = Table::Open(options_, raf_.get(), 10, &t);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, t);
}

}  // namespace leveldbpp
