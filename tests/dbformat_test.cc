#include "db/dbformat.h"

#include <gtest/gtest.h>

namespace leveldbpp {

static std::string IKey(const std::string& user_key, uint64_t seq,
                        ValueType vt) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey(user_key, seq, vt));
  return encoded;
}

static void TestKey(const std::string& key, uint64_t seq, ValueType vt) {
  std::string encoded = IKey(key, seq, vt);

  Slice in(encoded);
  ParsedInternalKey decoded("", 0, kTypeValue);

  ASSERT_TRUE(ParseInternalKey(in, &decoded));
  ASSERT_EQ(key, decoded.user_key.ToString());
  ASSERT_EQ(seq, decoded.sequence);
  ASSERT_EQ(vt, decoded.type);

  ASSERT_TRUE(!ParseInternalKey(Slice("bar"), &decoded));
}

TEST(FormatTest, InternalKey_EncodeDecode) {
  const char* keys[] = {"", "k", "hello", "longggggggggggggggggggggg"};
  const uint64_t seq[] = {1,
                          2,
                          3,
                          (1ull << 8) - 1,
                          1ull << 8,
                          (1ull << 8) + 1,
                          (1ull << 16) - 1,
                          1ull << 16,
                          (1ull << 16) + 1,
                          (1ull << 32) - 1,
                          1ull << 32,
                          (1ull << 32) + 1};
  for (const char* key : keys) {
    for (uint64_t s : seq) {
      TestKey(key, s, kTypeValue);
      TestKey("hello", 1, kTypeDeletion);
    }
  }
}

TEST(FormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Same user key: HIGHER sequence sorts FIRST.
  EXPECT_LT(icmp.Compare(IKey("a", 100, kTypeValue),
                         IKey("a", 99, kTypeValue)),
            0);
  // Different user keys: user comparator decides.
  EXPECT_LT(icmp.Compare(IKey("a", 1, kTypeValue),
                         IKey("b", 100, kTypeValue)),
            0);
  // Deletion sorts after value at the same seq (type desc).
  EXPECT_LT(icmp.Compare(IKey("a", 5, kTypeValue),
                         IKey("a", 5, kTypeDeletion)),
            0);
}

TEST(FormatTest, InternalKeyShortSeparator) {
  InternalKeyComparator icmp(BytewiseComparator());
  auto Shorten = [&](std::string s, const std::string& l) {
    icmp.FindShortestSeparator(&s, l);
    return s;
  };
  // When user keys are same
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue),
                    IKey("foo", 99, kTypeValue)));

  // When user keys are misordered
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue),
                    IKey("bar", 99, kTypeValue)));

  // When user keys are different, but correctly ordered
  ASSERT_EQ(IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
            Shorten(IKey("foo", 100, kTypeValue),
                    IKey("hello", 200, kTypeValue)));

  // When start user key is prefix of limit user key
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue),
                    IKey("foobar", 200, kTypeValue)));
}

TEST(FormatTest, InternalKeyShortestSuccessor) {
  InternalKeyComparator icmp(BytewiseComparator());
  auto Successor = [&](std::string s) {
    icmp.FindShortSuccessor(&s);
    return s;
  };
  ASSERT_EQ(IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
            Successor(IKey("foo", 100, kTypeValue)));
  ASSERT_EQ(IKey("\xff\xff", 100, kTypeValue),
            Successor(IKey("\xff\xff", 100, kTypeValue)));
}

TEST(FormatTest, ExtractHelpers) {
  std::string k = IKey("user", 42, kTypeDeletion);
  EXPECT_EQ("user", ExtractUserKey(k).ToString());
  EXPECT_EQ(42u, ExtractSequence(k));
  EXPECT_EQ(kTypeDeletion, ExtractValueType(k));
}

TEST(FormatTest, LookupKeyEncodings) {
  LookupKey lkey("mykey", 77);
  EXPECT_EQ("mykey", lkey.user_key().ToString());
  Slice ik = lkey.internal_key();
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ik, &parsed));
  EXPECT_EQ("mykey", parsed.user_key.ToString());
  EXPECT_EQ(77u, parsed.sequence);
  // memtable_key = varint32 length prefix + internal key
  Slice mk = lkey.memtable_key();
  uint32_t len;
  Slice mk_copy = mk;
  ASSERT_TRUE(GetVarint32(&mk_copy, &len));
  EXPECT_EQ(ik.size(), len);

  // Long keys exercise the heap-allocation path.
  std::string long_key(5000, 'q');
  LookupKey lkey2(long_key, 1);
  EXPECT_EQ(long_key, lkey2.user_key().ToString());
}

TEST(FormatTest, InternalFilterPolicyStripsTag) {
  class RecordingPolicy : public FilterPolicy {
   public:
    const char* Name() const override { return "rec"; }
    void CreateFilter(const Slice* keys, int n,
                      std::string* dst) const override {
      for (int i = 0; i < n; i++) {
        dst->append(keys[i].data(), keys[i].size());
        dst->push_back('|');
      }
    }
    bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
      return filter.ToString().find(key.ToString() + "|") !=
             std::string::npos;
    }
  };
  RecordingPolicy base;
  InternalFilterPolicy policy(&base);

  std::string ik = IKey("alpha", 9, kTypeValue);
  Slice keys[1] = {Slice(ik)};
  std::string filter;
  policy.CreateFilter(keys, 1, &filter);
  // The filter content is built from USER keys.
  EXPECT_EQ("alpha|", filter);
  // Matching also happens on the user key extracted from an internal key.
  std::string probe = IKey("alpha", 12345, kTypeDeletion);
  EXPECT_TRUE(policy.KeyMayMatch(Slice(probe), Slice(filter)));
  std::string miss = IKey("beta", 9, kTypeValue);
  EXPECT_FALSE(policy.KeyMayMatch(Slice(miss), Slice(filter)));
}

}  // namespace leveldbpp
