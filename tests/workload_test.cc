// Workload generator tests: distribution shape (Figure 7), time
// correlation, operation-mix ratios, and document well-formedness.

#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "core/document.h"
#include "json/json.h"
#include "workload/zipf.h"

namespace leveldbpp {

TEST(Zipf, RanksAreSkewed) {
  ZipfGenerator zipf(1000, 1.0, 42);
  std::map<uint64_t, uint64_t> counts;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    counts[zipf.Next()]++;
  }
  // Rank 0 should dominate; roughly 1/H(1000) ~ 13% of samples.
  EXPECT_GT(counts[0], kSamples / 10u);
  // Monotone-ish decay between well-separated ranks.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[200]);
  // All ranks in range.
  for (const auto& [rank, unused] : counts) {
    EXPECT_LT(rank, 1000u);
  }
}

TEST(Zipf, Deterministic) {
  ZipfGenerator a(100, 1.0, 7), b(100, 1.0, 7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(TweetGen, DocumentsAreValidJson) {
  TweetGenerator gen(TweetGeneratorOptions{});
  for (int i = 0; i < 100; i++) {
    Tweet t = gen.Next();
    json::Value doc;
    ASSERT_TRUE(json::Parse(Slice(t.ToJson()), &doc)) << t.ToJson();
    EXPECT_EQ(t.user_id, doc["UserID"].as_string());
    EXPECT_EQ(t.creation_time, doc["CreationTime"].as_string());
    EXPECT_EQ(t.tweet_id, doc["TweetID"].as_string());
    // The extractor used by the engine agrees.
    std::string extracted;
    ASSERT_TRUE(JsonAttributeExtractor::Instance()->Extract(
        Slice(t.ToJson()), "UserID", &extracted));
    EXPECT_EQ(t.user_id, extracted);
  }
}

TEST(TweetGen, TweetIdsAreMonotonic) {
  TweetGenerator gen(TweetGeneratorOptions{});
  std::string prev;
  for (int i = 0; i < 1000; i++) {
    Tweet t = gen.Next();
    EXPECT_GT(t.tweet_id, prev);
    prev = t.tweet_id;
  }
}

TEST(TweetGen, CreationTimeIsTimeCorrelated) {
  // The property zone maps exploit: CreationTime never decreases with
  // insertion order (as a fixed-width string, also bytewise).
  TweetGenerator gen(TweetGeneratorOptions{});
  std::string prev = gen.Next().creation_time;
  for (int i = 0; i < 5000; i++) {
    Tweet t = gen.Next();
    EXPECT_GE(t.creation_time, prev);
    EXPECT_EQ(12u, t.creation_time.size());
    prev = t.creation_time;
  }
}

TEST(TweetGen, TweetsPerSecondBounded) {
  TweetGeneratorOptions options;
  options.mean_tweets_per_second = 10;
  TweetGenerator gen(options);
  std::map<std::string, int> per_second;
  for (int i = 0; i < 20000; i++) {
    per_second[gen.Next().creation_time]++;
  }
  for (const auto& [ts, count] : per_second) {
    EXPECT_LE(count, 2 * 10);  // Uniform in [0, 2*mean]
  }
}

TEST(Workload, MixedRatiosApproximatelyRespected) {
  WorkloadGenerator gen(TweetGeneratorOptions{}, 5);
  MixedRatios ratios = MixedRatios::ReadHeavy();  // 20/70/10
  int puts = 0, gets = 0, lookups = 0;
  const int kOps = 20000;
  for (int i = 0; i < kOps; i++) {
    Operation op = gen.NextMixed(ratios, 10);
    switch (op.type) {
      case OpType::kPut:
        puts++;
        break;
      case OpType::kGet:
        gets++;
        break;
      case OpType::kLookup:
        lookups++;
        break;
      default:
        FAIL();
    }
  }
  EXPECT_NEAR(0.20, static_cast<double>(puts) / kOps, 0.02);
  EXPECT_NEAR(0.70, static_cast<double>(gets) / kOps, 0.02);
  EXPECT_NEAR(0.10, static_cast<double>(lookups) / kOps, 0.02);
}

TEST(Workload, UpdatesTargetExistingKeys) {
  WorkloadGenerator gen(TweetGeneratorOptions{}, 5);
  std::set<std::string> inserted;
  for (int i = 0; i < 100; i++) {
    inserted.insert(gen.NextPut().key);
  }
  for (int i = 0; i < 50; i++) {
    Operation op = gen.NextUpdate();
    EXPECT_EQ(OpType::kPut, op.type);
    EXPECT_TRUE(inserted.count(op.key)) << op.key;
    EXPECT_FALSE(op.document.empty());
  }
}

TEST(Workload, QueryConditionsComeFromInsertedData) {
  WorkloadGenerator gen(TweetGeneratorOptions{}, 5);
  std::set<std::string> users;
  for (int i = 0; i < 500; i++) {
    Operation op = gen.NextPut();
    json::Value doc;
    ASSERT_TRUE(json::Parse(Slice(op.document), &doc));
    users.insert(doc["UserID"].as_string());
  }
  for (int i = 0; i < 100; i++) {
    Operation op = gen.NextUserLookup(10);
    EXPECT_EQ(OpType::kLookup, op.type);
    EXPECT_EQ("UserID", op.attribute);
    EXPECT_TRUE(users.count(op.lo)) << op.lo;
    EXPECT_EQ(op.lo, op.hi);
    EXPECT_EQ(10u, op.k);
  }
}

TEST(Workload, RangeBoundsWellFormed) {
  WorkloadGenerator gen(TweetGeneratorOptions{}, 5);
  for (int i = 0; i < 200; i++) gen.NextPut();

  for (int i = 0; i < 50; i++) {
    Operation op = gen.NextUserRangeLookup(10, 5);
    EXPECT_EQ(OpType::kRangeLookup, op.type);
    EXPECT_LE(op.lo, op.hi);

    Operation top = gen.NextTimeRangeLookup(5, 0);
    EXPECT_LE(top.lo, top.hi);
    EXPECT_EQ(12u, top.lo.size());
    EXPECT_EQ(12u, top.hi.size());
  }
}

}  // namespace leveldbpp
