// Corruption survival: seeded bit-flips against every file a store owns
// (data / filter / zone-map / index blocks, MANIFEST, CURRENT, WAL tail)
// must quarantine-and-degrade — never return garbage — and the
// RepairDB -> reopen -> RebuildIndex -> VerifyIndexConsistency drill must
// bring every index variant back to a state whose query answers are exactly
// derivable from the salvaged primary table. Also covers the
// background-error ladder: transient IOErrors auto-recover (backoff retries
// or an explicit Resume()), corruption stays sticky.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crash_harness.h"
#include "db/db_impl.h"
#include "db/filename.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "env/statistics.h"
#include "table/block.h"
#include "table/format.h"
#include "util/comparator.h"

namespace leveldbpp {
namespace {

std::string NumKey(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::vector<std::string> FilesOfType(Env* env, const std::string& dir,
                                     FileType want) {
  std::vector<std::string> out;
  std::vector<std::string> children;
  if (!env->GetChildren(dir, &children).ok()) return out;
  for (const std::string& f : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == want) {
      out.push_back(dir + "/" + f);
    }
  }
  std::sort(out.begin(), out.end());  // Zero-padded names: numeric order
  return out;
}

void CorruptMiddle(FaultInjectionEnv* env, const std::string& path,
                   size_t nbytes = 16) {
  uint64_t size = 0;
  ASSERT_TRUE(env->GetFileSize(path, &size).ok()) << path;
  ASSERT_GT(size, 0u) << path;
  ASSERT_TRUE(env->CorruptFile(path, size / 2, nbytes).ok()) << path;
}

// Where each region of an SSTable lives, recovered from its own footer:
// lets a test flip bits in exactly the block kind it is targeting.
struct TableLayout {
  uint64_t file_size = 0;
  BlockHandle metaindex;
  BlockHandle index;
  std::map<std::string, BlockHandle> meta_blocks;  // metaindex name -> handle
};

Status ReadLayout(Env* env, const std::string& fname, TableLayout* out) {
  Status s = env->GetFileSize(fname, &out->file_size);
  std::unique_ptr<RandomAccessFile> file;
  if (s.ok()) s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  if (out->file_size < Footer::kEncodedLength) {
    return Status::Corruption(fname, "file too short for a footer");
  }
  char scratch[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(out->file_size - Footer::kEncodedLength,
                 Footer::kEncodedLength, &footer_input, scratch);
  if (!s.ok()) return s;
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;
  out->metaindex = footer.metaindex_handle();
  out->index = footer.index_handle();
  BlockContents contents;
  s = ReadBlock(file.get(), /*verify_checksums=*/true,
                footer.metaindex_handle(), &contents, nullptr);
  if (!s.ok()) return s;
  Block block(contents);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice v = it->value();
    BlockHandle h;
    if (h.DecodeFrom(&v).ok()) {
      out->meta_blocks[it->key().ToString()] = h;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Engine-level (DBImpl): quarantine fallthrough, RepairDB, Resume, retries.
// ---------------------------------------------------------------------------

class RepairEngineTest : public testing::Test {
 protected:
  static constexpr const char* kName = "/repair-db";

  RepairEngineTest() : base_(NewMemEnv()), env_(base_.get()) {}

  Options MakeOptions(bool paranoid = false) {
    Options options;
    options.env = &env_;
    options.write_buffer_size = 64 << 10;
    options.paranoid_checks = paranoid;
    options.statistics = &stats_;
    return options;
  }

  void Open(bool paranoid = false) {
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(MakeOptions(paranoid), kName, &raw).ok());
    db_.reset(raw);
  }
  void Close() { db_.reset(); }

  static std::string Value(int i, char tag) {
    return "value-" + std::string(1, tag) + "-" + std::to_string(i) +
           std::string(120, tag);
  }

  void Build(int n, char tag) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, tag)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
  Statistics stats_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(RepairEngineTest, QuarantinedBlockFallsThroughToOlderVersion) {
  const int kNum = 60;
  Open();
  Build(kNum, 'a');  // v1, fully compacted below L0
  Close();
  auto old_tables = FilesOfType(&env_, kName, kTableFile);
  ASSERT_FALSE(old_tables.empty());

  Open();
  for (int i = 0; i < kNum; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'b')).ok());
  }
  Close();  // v2 lives only in the WAL...
  Open();   // ...until replay flushes it into a fresh L0 table
  Close();

  // Corrupt every data (and filter) block of the new tables, leaving the
  // index block and footer intact so the tables still open.
  std::set<std::string> old_set(old_tables.begin(), old_tables.end());
  int corrupted = 0;
  for (const std::string& path : FilesOfType(&env_, kName, kTableFile)) {
    if (old_set.count(path)) continue;
    TableLayout layout;
    ASSERT_TRUE(ReadLayout(&env_, path, &layout).ok()) << path;
    ASSERT_GT(layout.metaindex.offset(), 0u);
    ASSERT_TRUE(env_.CorruptFile(path, 0, layout.metaindex.offset()).ok());
    corrupted++;
  }
  ASSERT_GT(corrupted, 0) << "the v2 flush never produced a table";

  Open();
  for (int i = 0; i < kNum; i++) {
    std::string value;
    Status s = db_->Get(ReadOptions(), NumKey(i), &value);
    ASSERT_TRUE(s.ok()) << NumKey(i) << ": " << s.ToString();
    EXPECT_EQ(Value(i, 'a'), value)
        << NumKey(i) << " did not fall through to the older version";
  }
  EXPECT_GT(stats_.Get(kCorruptionBlocksDetected), 0u);
  EXPECT_GT(stats_.Get(kCorruptionBlocksQuarantined), 0u);
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.quarantine", &prop));
  EXPECT_FALSE(prop.empty());
  ASSERT_TRUE(db_->GetProperty("leveldbpp.stats", &prop));
  EXPECT_NE(std::string::npos, prop.find("quarantined blocks"));
  Close();

  // Paranoid mode keeps fail-fast semantics: the same damage surfaces.
  Open(/*paranoid=*/true);
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), NumKey(0), &value).IsCorruption());
}

TEST_F(RepairEngineTest, RepairDBRecoversAllDataAfterManifestCorruption) {
  const int kNum = 300;
  Open();
  Build(kNum, 'a');
  Close();

  auto manifests = FilesOfType(&env_, kName, kDescriptorFile);
  ASSERT_FALSE(manifests.empty());
  for (const std::string& m : manifests) CorruptMiddle(&env_, m);

  Options no_create = MakeOptions();
  no_create.create_if_missing = false;
  DBImpl* raw = nullptr;
  ASSERT_FALSE(DBImpl::Open(no_create, kName, &raw).ok());
  ASSERT_EQ(nullptr, raw);

  ASSERT_TRUE(RepairDB(kName, MakeOptions()).ok());
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);
  EXPECT_EQ(0u, stats_.Get(kRepairTablesDropped));

  // Only metadata was damaged: the rebuilt store must hold every record.
  Open();
  for (int i = 0; i < kNum; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'a'), value);
  }
}

TEST_F(RepairEngineTest, RepairDBRebuildsCurrentPointer) {
  const int kNum = 100;
  Open();
  Build(kNum, 'a');
  Close();

  ASSERT_TRUE(env_.RemoveFile(std::string(kName) + "/CURRENT").ok());
  Options no_create = MakeOptions();
  no_create.create_if_missing = false;
  DBImpl* raw = nullptr;
  ASSERT_FALSE(DBImpl::Open(no_create, kName, &raw).ok());

  ASSERT_TRUE(RepairDB(kName, MakeOptions()).ok());
  Open();
  for (int i = 0; i < kNum; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'a'), value);
  }
}

TEST_F(RepairEngineTest, RepairDBDropsCorruptBlocksWithoutGarbage) {
  const int kNum = 500;
  Open();
  Build(kNum, 'a');
  Close();

  auto tables = FilesOfType(&env_, kName, kTableFile);
  ASSERT_FALSE(tables.empty());
  for (const std::string& t : tables) CorruptMiddle(&env_, t);

  ASSERT_TRUE(RepairDB(kName, MakeOptions()).ok());
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);

  Open();
  int missing = 0;
  for (int i = 0; i < kNum; i++) {
    std::string value;
    Status s = db_->Get(ReadOptions(), NumKey(i), &value);
    if (s.IsNotFound()) {
      missing++;
      continue;
    }
    ASSERT_TRUE(s.ok()) << NumKey(i) << ": " << s.ToString();
    ASSERT_EQ(Value(i, 'a'), value)
        << "silent wrong answer for " << NumKey(i);
  }
  EXPECT_GT(missing, 0) << "the corrupt block's records cannot survive";
  EXPECT_LT(missing, kNum) << "intact blocks must survive the rewrite";

  // Damaged originals are archived under lost/, never silently binned.
  auto lost = FilesOfType(&env_, std::string(kName) + "/lost", kTableFile);
  EXPECT_FALSE(lost.empty());

  // Salvage counts surface through the standard stats property.
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.stats", &prop));
  EXPECT_NE(std::string::npos, prop.find("repair.tables.salvaged"));
}

TEST_F(RepairEngineTest, RepairDBSalvagesWalPrefixAfterTornTail) {
  const int kNum = 50;
  Open();
  for (int i = 0; i < kNum; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'w')).ok());
  }
  Close();  // Everything lives only in the WAL.

  auto logs = FilesOfType(&env_, kName, kLogFile);
  ASSERT_EQ(1u, logs.size());
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(logs[0], &size).ok());
  ASSERT_GT(size, 32u);
  ASSERT_TRUE(env_.CorruptFile(logs[0], size - 24, 24).ok());

  ASSERT_TRUE(RepairDB(kName, MakeOptions()).ok());
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);

  Open();
  // The flipped bytes land inside the final record only: every earlier
  // acknowledged write survives, the torn one is dropped, nothing is mixed.
  for (int i = 0; i < kNum - 1; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'w'), value);
  }
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), NumKey(kNum - 1), &value).IsNotFound());

  // A WAL that lost bytes is archived for forensics, not deleted.
  auto lost_logs = FilesOfType(&env_, std::string(kName) + "/lost", kLogFile);
  EXPECT_FALSE(lost_logs.empty());
}

TEST_F(RepairEngineTest, ResumeClearsTransientBackgroundError) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'a')).ok());

  // Allow one more file creation (the WAL rotation), then fail the flush's
  // table build with a sticky IOError.
  env_.FailAfter(1, FaultInjectionEnv::kOpNewWritable);
  Status s;
  int failed_at = 0;
  for (int i = 1; i < 2000 && s.ok(); i++) {
    s = db_->Put(WriteOptions(), NumKey(i), Value(i, 'a'));
    failed_at = i;
  }
  ASSERT_FALSE(s.ok()) << "the flush never failed";
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  // The error is sticky: nothing is accepted until recovery.
  EXPECT_FALSE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'x')).ok());

  // With the fault still armed, Resume's own flush fails and re-records.
  EXPECT_FALSE(db_->Resume().ok());
  EXPECT_FALSE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'x')).ok());

  env_.ClearFaults();
  ASSERT_TRUE(db_->Resume().ok());
  EXPECT_GT(stats_.Get(kBgErrorAutorecovered), 0u);

  // Every write acknowledged before the fault is still there, and the
  // store accepts new writes again.
  for (int i = 0; i < failed_at; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'a'), value);
  }
  ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(9999), Value(9999, 'z')).ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(9999), &value).ok());
  EXPECT_EQ(Value(9999, 'z'), value);
}

TEST_F(RepairEngineTest, ResumeRefusesPermanentCorruption) {
  const int kNum = 300;
  Open();
  Build(kNum, 'a');
  Close();
  for (const std::string& t : FilesOfType(&env_, kName, kTableFile)) {
    CorruptMiddle(&env_, t);
  }

  Open();
  // Overlap the damaged tables so the forced merge must read them.
  ASSERT_TRUE(
      db_->Put(WriteOptions(), NumKey(kNum / 2), Value(kNum / 2, 'b')).ok());
  Status s = db_->CompactAll();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Permanent damage: Resume refuses and the error stays sticky — RepairDB
  // is the only way out.
  Status r = db_->Resume();
  EXPECT_TRUE(r.IsCorruption()) << r.ToString();
  EXPECT_FALSE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'x')).ok());
  EXPECT_EQ(0u, stats_.Get(kBgErrorAutorecovered));
}

TEST_F(RepairEngineTest, BgErrorRetriesAbsorbTransientFailures) {
  Options options = MakeOptions();
  options.bg_error_retries = 12;  // Backoff spans ~4s: ample healing time
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, kName, &raw).ok());
  db_.reset(raw);

  env_.FailAfter(1, FaultInjectionEnv::kOpNewWritable);
  std::thread healer([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    env_.ClearFaults();
  });
  Status s;
  const int kNum = 1000;
  for (int i = 0; i < kNum && s.ok(); i++) {
    s = db_->Put(WriteOptions(), NumKey(i), Value(i, 'r'));
  }
  healer.join();
  ASSERT_TRUE(s.ok()) << "the retry budget should have absorbed the fault: "
                      << s.ToString();
  EXPECT_GT(stats_.Get(kBgErrorAutorecovered), 0u);
  for (int i : {0, kNum / 2, kNum - 1}) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'r'), value);
  }
}

// ---------------------------------------------------------------------------
// SecondaryDB matrix: each corruption target x all five index variants, with
// the golden-model repair drill: corrupt -> Repair -> reopen -> RebuildIndex
// -> VerifyIndexConsistency -> answers derivable from the salvaged primary.
// ---------------------------------------------------------------------------

std::vector<crash::Op> MakeWorkload() {
  std::vector<crash::Op> ops;
  const int kUsers = 7;
  for (int i = 0; i < 140; i++) {
    ops.push_back(
        crash::PutOp(NumKey(i), "user" + std::to_string(i % kUsers), 1000 + i));
  }
  for (int i = 0; i < 140; i += 9) {  // Overwrites that move the record's user
    ops.push_back(crash::PutOp(
        NumKey(i), "user" + std::to_string((i + 1) % kUsers), 2000 + i));
  }
  for (int i = 3; i < 140; i += 17) {
    ops.push_back(crash::DeleteOp(NumKey(i)));
  }
  return ops;
}

void CollectKeysUsers(const std::vector<crash::Op>& ops,
                      std::set<std::string>* keys,
                      std::set<std::string>* users) {
  for (const crash::Op& op : ops) {
    keys->insert(op.key);
    if (op.kind == crash::Op::kPut) users->insert(op.user);
  }
}

// Every key must hold its golden value or nothing. Returns how many of the
// model's records are gone (dropped with a corrupt block) — wrong answers
// fail immediately.
size_t NoGarbageCount(SecondaryDB* db, const std::set<std::string>& keys,
                      const crash::Model& model) {
  size_t missing = 0;
  for (const std::string& key : keys) {
    std::string value;
    Status s = db->Get(key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key << ": " << s.ToString();
      continue;
    }
    if (s.IsNotFound()) {
      missing++;
      continue;
    }
    EXPECT_TRUE(s.ok()) << key << ": " << s.ToString();
    EXPECT_EQ(it->second, value) << "silent wrong answer for " << key;
  }
  return missing;
}

class SecondaryRepairTest : public testing::TestWithParam<IndexType> {
 protected:
  static constexpr const char* kPath = "/store";

  SecondaryRepairTest() : base_(NewMemEnv()), env_(base_.get()) {}

  std::string PrimaryDir() const { return std::string(kPath) + "/primary"; }

  SecondaryDBOptions MakeOptions() {
    SecondaryDBOptions options = crash::MakeCrashOptions(&env_, GetParam());
    options.base.statistics = &stats_;
    // The all-'p' padding compresses to nothing, which would collapse the
    // store into one tiny table; stored size must track record count so
    // compactions split at max_file_size and corruption stays partial.
    options.base.compression = kNoCompression;
    return options;
  }

  bool Standalone() const {
    return GetParam() == IndexType::kLazy || GetParam() == IndexType::kEager ||
           GetParam() == IndexType::kComposite;
  }

  // Build + compact the whole workload; `tail` (if any) is applied after the
  // compaction so it lives only in the primary WAL at close.
  void BuildStore(const std::vector<crash::Op>& ops, crash::Model* model,
                  const std::vector<crash::Op>& tail = {},
                  crash::Model* tail_model = nullptr) {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
    bool hit_error = false;
    // Two compacted batches: the second CompactAll is a real overlapping
    // merge whose output splits at max_file_size, so the store holds
    // several tables and single-table corruption is a partial loss.
    const size_t half = ops.size() / 2;
    std::vector<crash::Op> first(ops.begin(), ops.begin() + half);
    std::vector<crash::Op> second(ops.begin() + half, ops.end());
    crash::ApplyOps(db.get(), first, model, &hit_error);
    ASSERT_FALSE(hit_error);
    ASSERT_TRUE(db->CompactAll().ok());
    crash::ApplyOps(db.get(), second, model, &hit_error);
    ASSERT_FALSE(hit_error);
    ASSERT_TRUE(db->CompactAll().ok());
    if (!tail.empty()) {
      crash::ApplyOps(db.get(), tail, tail_model, &hit_error);
      ASSERT_FALSE(hit_error);
    }
  }

  // The Repair -> reopen -> RebuildIndex -> VerifyIndexConsistency drill.
  void RepairAndReopen(std::unique_ptr<SecondaryDB>* db) {
    ASSERT_TRUE(SecondaryDB::Repair(MakeOptions(), kPath).ok());
    ASSERT_TRUE(SecondaryDB::Open(MakeOptions(), kPath, db).ok());
    ASSERT_TRUE((*db)->RebuildIndex().ok());
    ASSERT_TRUE((*db)->VerifyIndexConsistency().ok());
    if (Standalone()) {
      EXPECT_GT(stats_.Get(kIndexRebuildEntries), 0u);
    }
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
  Statistics stats_;
};

TEST_P(SecondaryRepairTest, DataBlockCorruptionQuarantinesThenRepairs) {
  auto ops = MakeWorkload();
  crash::Model model;
  BuildStore(ops, &model);

  auto tables = FilesOfType(&env_, PrimaryDir(), kTableFile);
  ASSERT_FALSE(tables.empty());
  CorruptMiddle(&env_, tables[0]);

  std::set<std::string> keys, users;
  CollectKeysUsers(ops, &keys, &users);

  {
    // Pre-repair: the store still opens; the damaged block quarantines and
    // queries degrade to missing data, never wrong data.
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
    NoGarbageCount(db.get(), keys, model);
    EXPECT_GT(stats_.Get(kCorruptionBlocksDetected), 0u);
    EXPECT_GT(stats_.Get(kCorruptionBlocksQuarantined), 0u);
    std::string prop;
    ASSERT_TRUE(db->primary()->GetProperty("leveldbpp.quarantine", &prop));
    EXPECT_FALSE(prop.empty());
    // Secondary lookups may shrink but every result must match the model.
    std::vector<QueryResult> results;
    for (const std::string& u : users) {
      ASSERT_TRUE(db->Lookup("UserID", u, 0, &results).ok()) << u;
      for (const QueryResult& r : results) {
        auto it = model.find(r.primary_key);
        ASSERT_TRUE(it != model.end()) << r.primary_key;
        EXPECT_EQ(it->second, r.value) << r.primary_key;
      }
    }
  }

  std::unique_ptr<SecondaryDB> db;
  RepairAndReopen(&db);
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);

  size_t missing = NoGarbageCount(db.get(), keys, model);
  EXPECT_GT(missing, 0u) << "the corrupt block's records cannot survive";
  EXPECT_LT(missing, model.size()) << "intact blocks must survive";
  crash::VerifyIndexesMatchPrimary(db.get(), keys, users, "post-repair");

  std::string prop;
  ASSERT_TRUE(db->primary()->GetProperty("leveldbpp.stats", &prop));
  EXPECT_NE(std::string::npos, prop.find("repair.tables.salvaged"));
}

TEST_P(SecondaryRepairTest, ManifestCorruptionRepairsToFullGolden) {
  auto ops = MakeWorkload();
  crash::Model model;
  BuildStore(ops, &model);

  auto manifests = FilesOfType(&env_, PrimaryDir(), kDescriptorFile);
  ASSERT_FALSE(manifests.empty());
  // Stomp each manifest's HEAD: the log reader can resync past a damaged
  // middle record (losing one edit), but the opening snapshot record is
  // unskippable, so recovery deterministically fails for every variant.
  for (const std::string& m : manifests) {
    ASSERT_TRUE(env_.CorruptFile(m, 0, 512).ok()) << m;
  }

  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_FALSE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
  }

  std::unique_ptr<SecondaryDB> db;
  RepairAndReopen(&db);
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);
  EXPECT_EQ(0u, stats_.Get(kRepairTablesDropped));
  // Only metadata was damaged: the drill must restore the exact model.
  crash::VerifyRecovered(db.get(), ops, model, nullptr, "manifest-repair");
}

TEST_P(SecondaryRepairTest, CurrentCorruptionRepairsToFullGolden) {
  auto ops = MakeWorkload();
  crash::Model model;
  BuildStore(ops, &model);

  const std::string current = PrimaryDir() + "/CURRENT";
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(current, &size).ok());
  ASSERT_TRUE(env_.CorruptFile(current, 0, size).ok());

  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_FALSE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
  }

  std::unique_ptr<SecondaryDB> db;
  RepairAndReopen(&db);
  crash::VerifyRecovered(db.get(), ops, model, nullptr, "current-repair");
}

TEST_P(SecondaryRepairTest, WalTailCorruptionSalvagesThePrefix) {
  auto ops = MakeWorkload();
  std::vector<crash::Op> tail;
  for (int i = 0; i < 10; i++) {  // Fresh keys: their pre-state is "absent"
    tail.push_back(
        crash::PutOp(NumKey(9000 + i), "user" + std::to_string(i % 7),
                     5000 + i));
  }
  crash::Model model, tail_model;
  BuildStore(ops, &model, tail, &tail_model);

  auto logs = FilesOfType(&env_, PrimaryDir(), kLogFile);
  ASSERT_FALSE(logs.empty());
  const std::string& wal = logs.back();  // Highest number = live WAL
  uint64_t size = 0;
  ASSERT_TRUE(env_.GetFileSize(wal, &size).ok());
  ASSERT_GT(size, 32u);
  ASSERT_TRUE(env_.CorruptFile(wal, size - 24, 24).ok());

  std::unique_ptr<SecondaryDB> db;
  RepairAndReopen(&db);
  EXPECT_GT(stats_.Get(kRepairTablesSalvaged), 0u);

  // Pre-tail state is fully captured in tables: exact golden.
  std::set<std::string> keys, users;
  CollectKeysUsers(ops, &keys, &users);
  EXPECT_EQ(0u, NoGarbageCount(db.get(), keys, model));

  // Tail ops lived only in the WAL; the torn final record is dropped, every
  // earlier one survives, and none may come back mangled.
  size_t tail_missing = 0;
  for (const auto& [key, doc] : tail_model) {
    std::string value;
    Status s = db->Get(key, &value);
    if (s.IsNotFound()) {
      tail_missing++;
      continue;
    }
    ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
    EXPECT_EQ(doc, value) << key;
  }
  EXPECT_GT(tail_missing, 0u) << "the torn record cannot survive";
  EXPECT_LT(tail_missing, tail_model.size()) << "the prefix must survive";

  std::set<std::string> all_keys = keys, all_users = users;
  CollectKeysUsers(tail, &all_keys, &all_users);
  crash::VerifyIndexesMatchPrimary(db.get(), all_keys, all_users, "wal-tail");
}

TEST_P(SecondaryRepairTest, IndexBlockCorruptionDropsTheTable) {
  auto ops = MakeWorkload();
  crash::Model model;
  BuildStore(ops, &model);

  auto tables = FilesOfType(&env_, PrimaryDir(), kTableFile);
  // Dropping one whole table must be a PARTIAL loss for this test to mean
  // anything, so the store must span several tables.
  ASSERT_GE(tables.size(), 2u);
  TableLayout layout;
  ASSERT_TRUE(ReadLayout(&env_, tables[0], &layout).ok());
  ASSERT_TRUE(
      env_.CorruptFile(tables[0], layout.index.offset(),
                       std::min<uint64_t>(layout.index.size(), 32))
          .ok());

  std::set<std::string> keys, users;
  CollectKeysUsers(ops, &keys, &users);

  {
    // The table no longer opens at all; non-paranoid point reads route
    // around the whole file — degrading to missing, never to garbage.
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
    size_t missing = NoGarbageCount(db.get(), keys, model);
    EXPECT_GT(missing, 0u);
  }

  std::unique_ptr<SecondaryDB> db;
  RepairAndReopen(&db);
  // An unopenable table cannot be block-salvaged: it is dropped whole (and
  // archived), while the other tables survive.
  EXPECT_GT(stats_.Get(kRepairTablesDropped), 0u);
  size_t missing = NoGarbageCount(db.get(), keys, model);
  EXPECT_GT(missing, 0u);
  EXPECT_LT(missing, model.size());
  crash::VerifyIndexesMatchPrimary(db.get(), keys, users, "index-block");

  auto lost = FilesOfType(&env_, PrimaryDir() + "/lost", kTableFile);
  EXPECT_FALSE(lost.empty());
}

TEST_P(SecondaryRepairTest, MetaBlockCorruptionFailsOpenNotWrong) {
  if (GetParam() != IndexType::kEmbedded) {
    GTEST_SKIP() << "zone maps / secondary filters are Embedded-only";
  }
  auto ops = MakeWorkload();
  crash::Model model;
  BuildStore(ops, &model);

  // Flip bits in every zone-map and secondary-filter meta block. Meta reads
  // verify their checksums and fail OPEN (no pruning, no filtering) rather
  // than trusting garbage that could wrongly rule blocks out.
  int corrupted = 0;
  for (const std::string& path : FilesOfType(&env_, PrimaryDir(), kTableFile)) {
    TableLayout layout;
    ASSERT_TRUE(ReadLayout(&env_, path, &layout).ok()) << path;
    for (const auto& [name, handle] : layout.meta_blocks) {
      if (name == "zonemaps" || name.rfind("secfilter.", 0) == 0) {
        ASSERT_TRUE(env_.CorruptFile(path, handle.offset(),
                                     std::min<uint64_t>(handle.size(), 16))
                        .ok());
        corrupted++;
      }
    }
  }
  ASSERT_GT(corrupted, 0) << "embedded tables must carry meta blocks";

  // No data block was touched: every query stays exactly correct, the
  // engine just loses its pruning accelerators for the damaged tables.
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(MakeOptions(), kPath, &db).ok());
  crash::VerifyRecovered(db.get(), ops, model, nullptr, "meta-fail-open");
}

std::string IndexTypeName(const testing::TestParamInfo<IndexType>& info) {
  switch (info.param) {
    case IndexType::kNoIndex: return "NoIndex";
    case IndexType::kEmbedded: return "Embedded";
    case IndexType::kLazy: return "Lazy";
    case IndexType::kEager: return "Eager";
    case IndexType::kComposite: return "Composite";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SecondaryRepairTest,
                         testing::Values(IndexType::kNoIndex,
                                         IndexType::kEmbedded,
                                         IndexType::kLazy, IndexType::kEager,
                                         IndexType::kComposite),
                         IndexTypeName);

}  // namespace
}  // namespace leveldbpp
