// Variant-specific unit tests: behaviours unique to one index strategy
// (posting-list maintenance in Eager, fragment scattering in Lazy,
// composite-key encoding, embedded early termination).

#include <gtest/gtest.h>

#include <memory>

#include "core/composite_index.h"
#include "core/posting_list.h"
#include "core/secondary_db.h"
#include "core/standalone_index.h"
#include "env/env.h"

namespace leveldbpp {
namespace {

std::string Doc(const std::string& user, int ts = 0) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012d", ts);
  return "{\"CreationTime\":\"" + std::string(buf) + "\",\"UserID\":\"" +
         user + "\"}";
}

class VariantTest : public testing::Test {
 protected:
  VariantTest() : env_(NewMemEnv()) {}

  std::unique_ptr<SecondaryDB> Open(IndexType type) {
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.write_buffer_size = 64 << 10;
    options.index_type = type;
    options.indexed_attributes = {"UserID"};
    std::unique_ptr<SecondaryDB> db;
    Status s =
        SecondaryDB::Open(options, "/vt_" + std::to_string(n_++), &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return db;
  }

  std::unique_ptr<Env> env_;
  int n_ = 0;
};

// ---- Composite key codec ----

TEST(CompositeKeyCodec, RoundTrip) {
  std::string key = CompositeIndex::MakeCompositeKey("alice", "tweet:17");
  Slice attr, pkey;
  ASSERT_TRUE(CompositeIndex::SplitCompositeKey(Slice(key), &attr, &pkey));
  EXPECT_EQ("alice", attr.ToString());
  EXPECT_EQ("tweet:17", pkey.ToString());
}

TEST(CompositeKeyCodec, OrderingGroupsByAttribute) {
  // All composite keys of one attribute value sort contiguously, and
  // different attribute values never interleave.
  std::string a1 = CompositeIndex::MakeCompositeKey("aa", "z");
  std::string a2 = CompositeIndex::MakeCompositeKey("ab", "a");
  EXPECT_LT(a1, a2);  // "aa" group entirely before "ab" group
  std::string b1 = CompositeIndex::MakeCompositeKey("u1", "t1");
  std::string b2 = CompositeIndex::MakeCompositeKey("u1", "t2");
  EXPECT_LT(b1, b2);  // Within a group: primary-key order
}

TEST(CompositeKeyCodec, RejectsKeyWithoutSeparator) {
  Slice attr, pkey;
  EXPECT_FALSE(CompositeIndex::SplitCompositeKey("no-separator", &attr,
                                                 &pkey));
}

TEST(CompositeKeyCodec, EmptyPrimaryKeyAndAttr) {
  std::string key = CompositeIndex::MakeCompositeKey("", "");
  Slice attr, pkey;
  ASSERT_TRUE(CompositeIndex::SplitCompositeKey(Slice(key), &attr, &pkey));
  EXPECT_TRUE(attr.empty());
  EXPECT_TRUE(pkey.empty());
}

// ---- Eager posting-list maintenance ----

TEST_F(VariantTest, EagerListStaysSortedAndDeduplicated) {
  auto db = Open(IndexType::kEager);
  ASSERT_TRUE(db->Put("t1", Doc("u1")).ok());
  ASSERT_TRUE(db->Put("t2", Doc("u1")).ok());
  ASSERT_TRUE(db->Put("t3", Doc("u1")).ok());
  // Re-put t1 under the same user: its entry must move to the front, not
  // duplicate.
  ASSERT_TRUE(db->Put("t1", Doc("u1")).ok());

  auto* eager = dynamic_cast<StandAloneIndex*>(db->index("UserID"));
  ASSERT_NE(nullptr, eager);
  std::string list;
  ASSERT_TRUE(eager->index_db()->Get(ReadOptions(), "u1", &list).ok());
  std::vector<PostingEntry> entries;
  ASSERT_TRUE(PostingList::Parse(Slice(list), &entries));
  ASSERT_EQ(3u, entries.size());
  EXPECT_EQ("t1", entries[0].primary_key);  // Newest
  EXPECT_EQ("t3", entries[1].primary_key);
  EXPECT_EQ("t2", entries[2].primary_key);
  for (size_t i = 1; i < entries.size(); i++) {
    EXPECT_GT(entries[i - 1].seq, entries[i].seq);
  }
}

TEST_F(VariantTest, EagerDeleteRemovesFromList) {
  auto db = Open(IndexType::kEager);
  ASSERT_TRUE(db->Put("t1", Doc("u1")).ok());
  ASSERT_TRUE(db->Put("t2", Doc("u1")).ok());
  ASSERT_TRUE(db->Delete("t1").ok());

  auto* eager = dynamic_cast<StandAloneIndex*>(db->index("UserID"));
  std::string list;
  ASSERT_TRUE(eager->index_db()->Get(ReadOptions(), "u1", &list).ok());
  std::vector<PostingEntry> entries;
  ASSERT_TRUE(PostingList::Parse(Slice(list), &entries));
  ASSERT_EQ(1u, entries.size());
  EXPECT_EQ("t2", entries[0].primary_key);

  // Deleting the last entry erases the list key entirely.
  ASSERT_TRUE(db->Delete("t2").ok());
  EXPECT_TRUE(
      eager->index_db()->Get(ReadOptions(), "u1", &list).IsNotFound());
}

// ---- Lazy fragment behaviour ----

TEST_F(VariantTest, LazyWritesAreFragmentsNotLists) {
  auto db = Open(IndexType::kLazy);
  // Lazy never reads the index table on writes: stats prove it.
  auto* lazy = dynamic_cast<StandAloneIndex*>(db->index("UserID"));
  ASSERT_NE(nullptr, lazy);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put("t" + std::to_string(i), Doc("u1")).ok());
  }
  // All fragments still fit in the memtable: zero index-table block reads.
  EXPECT_EQ(0u, lazy->index_statistics()->Get(kBlockRead));
  // And the memtable-merged fragment holds all 100 entries.
  std::string list;
  ASSERT_TRUE(lazy->index_db()->Get(ReadOptions(), "u1", &list).ok());
  std::vector<PostingEntry> entries;
  ASSERT_TRUE(PostingList::Parse(Slice(list), &entries));
  EXPECT_EQ(100u, entries.size());
}

TEST_F(VariantTest, EagerReadsOnEveryWrite) {
  auto db = Open(IndexType::kEager);
  auto* eager = dynamic_cast<StandAloneIndex*>(db->index("UserID"));
  // Force the index list to disk, then watch a write read it back.
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put("t" + std::to_string(i), Doc("u1")).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  uint64_t reads_before = eager->index_statistics()->Get(kBlockRead);
  ASSERT_TRUE(db->Put("t_new", Doc("u1")).ok());
  EXPECT_GT(eager->index_statistics()->Get(kBlockRead), reads_before)
      << "Eager OnPut must read the current posting list";
}

TEST_F(VariantTest, LazyDeletionMarkerShadowsAcrossLevels) {
  auto db = Open(IndexType::kLazy);
  ASSERT_TRUE(db->Put("t1", Doc("u1")).ok());
  ASSERT_TRUE(db->Put("t2", Doc("u1")).ok());
  ASSERT_TRUE(db->CompactAll().ok());  // Entries now on disk

  ASSERT_TRUE(db->Delete("t1").ok());  // Marker in the index memtable
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(1u, results.size());
  EXPECT_EQ("t2", results[0].primary_key);

  // Compaction resolves marker + entry; the answer is unchanged.
  ASSERT_TRUE(db->CompactAll().ok());
  ASSERT_TRUE(db->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(1u, results.size());
  EXPECT_EQ("t2", results[0].primary_key);
}

// ---- Embedded early termination ----

TEST_F(VariantTest, EmbeddedLookupStopsAtMemtableWhenPossible) {
  auto db = Open(IndexType::kEmbedded);
  // Old data on disk...
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put("old" + std::to_string(i), Doc("u1", i)).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  // ...fresh matches in the memtable.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put("new" + std::to_string(i), Doc("u1", 9000 + i)).ok());
  }
  Statistics* stats = db->primary_statistics();
  uint64_t reads_before = stats->Get(kBlockRead);
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u1", 5, &results).ok());
  ASSERT_EQ(5u, results.size());
  for (const QueryResult& r : results) {
    EXPECT_EQ(0u, r.primary_key.find("new")) << r.primary_key;
  }
  // Heap filled from the memtable; the disk was never touched.
  EXPECT_EQ(reads_before, stats->Get(kBlockRead));
}

TEST_F(VariantTest, EmbeddedUnlimitedLookupMustScanAllLevels) {
  auto db = Open(IndexType::kEmbedded);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put("t" + std::to_string(i),
                        Doc("u" + std::to_string(i % 5), i))
                    .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u2", 0, &results).ok());
  EXPECT_EQ(400u, results.size());
}

// ---- Cross-variant: result payload identity ----

TEST_F(VariantTest, AllVariantsReturnIdenticalPayloads) {
  std::vector<std::unique_ptr<SecondaryDB>> dbs;
  for (IndexType type :
       {IndexType::kNoIndex, IndexType::kEmbedded, IndexType::kLazy,
        IndexType::kEager, IndexType::kComposite}) {
    dbs.push_back(Open(type));
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(dbs.back()
                      ->Put("t" + std::to_string(i),
                            Doc("u" + std::to_string(i % 7), i))
                      .ok());
    }
  }
  std::vector<QueryResult> reference;
  ASSERT_TRUE(dbs[0]->Lookup("UserID", "u3", 10, &reference).ok());
  ASSERT_EQ(10u, reference.size());
  for (size_t v = 1; v < dbs.size(); v++) {
    std::vector<QueryResult> results;
    ASSERT_TRUE(dbs[v]->Lookup("UserID", "u3", 10, &results).ok());
    ASSERT_EQ(reference.size(), results.size()) << v;
    for (size_t i = 0; i < results.size(); i++) {
      EXPECT_EQ(reference[i].primary_key, results[i].primary_key);
      EXPECT_EQ(reference[i].seq, results[i].seq);
      EXPECT_EQ(reference[i].value, results[i].value);
    }
  }
}

}  // namespace
}  // namespace leveldbpp
