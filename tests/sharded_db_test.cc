// ShardedDB: cross-shard equivalence, reopen, crash recovery, and
// aggregated stats.
//
// The load-bearing property is the equivalence matrix: a ShardedDB at any
// shard count must return BYTE-IDENTICAL answers — same keys, same
// sequence numbers, same values, same order — as one unsharded SecondaryDB
// fed the same operation stream, for every index variant. Sharding is a
// serving-layer optimization; it must never be observable in results.

#include "serve/sharded_db.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crash_harness.h"
#include "env/fault_injection_env.h"
#include "json/json.h"

namespace leveldbpp {
namespace {

std::vector<IndexType> AllTypes() {
  return {IndexType::kNoIndex, IndexType::kEmbedded, IndexType::kLazy,
          IndexType::kEager, IndexType::kComposite};
}

// Small buffers so the workload crosses flush boundaries on every shard
// count (at N=8 each shard sees ~1/8th of the data).
SecondaryDBOptions TestShardOptions(Env* env, IndexType type) {
  SecondaryDBOptions options;
  options.base.env = env;
  options.base.write_buffer_size = 16 << 10;
  options.base.max_file_size = 8 << 10;
  options.index_type = type;
  options.indexed_attributes = {"UserID"};
  return options;
}

// Deterministic mixed workload: overwrites (127 distinct keys under 400
// ops) and interleaved deletes, users recycled so LOOKUP hits multi-result
// posting lists with cross-shard recency interleaving.
std::vector<crash::Op> MakeWorkload(size_t n = 400) {
  std::vector<crash::Op> ops;
  for (size_t i = 0; i < n; i++) {
    const std::string key = "k" + std::to_string((i * 37) % 127);
    if (i % 11 == 7) {
      ops.push_back(crash::DeleteOp(key));
    } else {
      const std::string user = "user" + std::to_string(i % 13);
      ops.push_back(crash::PutOp(key, user, 1000 + i, /*pad=*/64));
    }
  }
  return ops;
}

void ApplySharded(ShardedDB* db, const std::vector<crash::Op>& ops) {
  for (const crash::Op& op : ops) {
    Status s = (op.kind == crash::Op::kPut) ? db->Put(op.key, op.doc)
                                            : db->Delete(op.key);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

void ApplyUnsharded(SecondaryDB* db, const std::vector<crash::Op>& ops) {
  for (const crash::Op& op : ops) {
    Status s = (op.kind == crash::Op::kPut) ? db->Put(op.key, op.doc)
                                            : db->Delete(op.key);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

void ExpectSameResults(const std::vector<QueryResult>& want,
                       const std::vector<QueryResult>& got,
                       const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); i++) {
    EXPECT_EQ(want[i].primary_key, got[i].primary_key)
        << what << " [" << i << "]";
    EXPECT_EQ(want[i].seq, got[i].seq) << what << " [" << i << "]";
    EXPECT_EQ(want[i].value, got[i].value) << what << " [" << i << "]";
  }
}

/// Every query both stores can answer, compared byte-for-byte.
void CompareStores(SecondaryDB* reference, ShardedDB* sharded,
                   const std::string& trace) {
  SCOPED_TRACE(trace);
  std::vector<QueryResult> want, got;
  for (int u = 0; u < 13; u++) {
    const std::string user = "user" + std::to_string(u);
    for (size_t k : {size_t{0}, size_t{3}}) {
      ASSERT_TRUE(reference->Lookup("UserID", user, k, &want).ok());
      ASSERT_TRUE(sharded->Lookup("UserID", user, k, &got).ok());
      ExpectSameResults(want, got,
                        "Lookup(" + user + ", k=" + std::to_string(k) + ")");
    }
  }
  for (size_t k : {size_t{0}, size_t{5}}) {
    ASSERT_TRUE(
        reference->RangeLookup("UserID", "user0", "user9", k, &want).ok());
    ASSERT_TRUE(sharded->RangeLookup("UserID", "user0", "user9", k, &got).ok());
    ExpectSameResults(want, got, "RangeLookup(k=" + std::to_string(k) + ")");
  }
  for (int i = 0; i < 127; i++) {
    const std::string key = "k" + std::to_string(i);
    std::string want_value, got_value;
    Status ws = reference->Get(key, &want_value);
    Status gs = sharded->Get(key, &got_value);
    ASSERT_EQ(ws.ok(), gs.ok()) << "Get(" << key << ")";
    ASSERT_EQ(ws.IsNotFound(), gs.IsNotFound()) << "Get(" << key << ")";
    if (ws.ok()) EXPECT_EQ(want_value, got_value) << "Get(" << key << ")";
  }
}

TEST(ShardedDBTest, EquivalenceMatrix) {
  const std::vector<crash::Op> ops = MakeWorkload();
  for (IndexType type : AllTypes()) {
    // One unsharded reference store per variant.
    std::unique_ptr<Env> ref_env(NewMemEnv());
    std::unique_ptr<SecondaryDB> reference;
    ASSERT_TRUE(SecondaryDB::Open(TestShardOptions(ref_env.get(), type),
                                  "/ref", &reference)
                    .ok());
    ApplyUnsharded(reference.get(), ops);

    for (int shards : {1, 2, 4, 8}) {
      const std::string trace = std::string(IndexTypeName(type)) + " N=" +
                                std::to_string(shards);
      std::unique_ptr<Env> env(NewMemEnv());
      ShardedDBOptions options;
      options.shard = TestShardOptions(env.get(), type);
      options.num_shards = shards;
      std::unique_ptr<ShardedDB> sharded;
      ASSERT_TRUE(ShardedDB::Open(options, "/sharded", &sharded).ok())
          << trace;
      ApplySharded(sharded.get(), ops);

      CompareStores(reference.get(), sharded.get(), trace);

      // And again after full compaction on both sides: results must not
      // depend on LSM shape either.
      ASSERT_TRUE(sharded->CompactAll().ok()) << trace;
      CompareStores(reference.get(), sharded.get(), trace + " compacted");
    }
    ASSERT_TRUE(reference->CompactAll().ok());
  }
}

TEST(ShardedDBTest, InlineFanoutIsEquivalentToo) {
  const std::vector<crash::Op> ops = MakeWorkload(200);
  std::unique_ptr<Env> ref_env(NewMemEnv());
  std::unique_ptr<SecondaryDB> reference;
  ASSERT_TRUE(
      SecondaryDB::Open(TestShardOptions(ref_env.get(), IndexType::kLazy),
                        "/ref", &reference)
          .ok());
  ApplyUnsharded(reference.get(), ops);

  std::unique_ptr<Env> env(NewMemEnv());
  ShardedDBOptions options;
  options.shard = TestShardOptions(env.get(), IndexType::kLazy);
  options.num_shards = 4;
  options.fanout_parallelism = 1;  // Sequential fan-out path
  std::unique_ptr<ShardedDB> sharded;
  ASSERT_TRUE(ShardedDB::Open(options, "/sharded", &sharded).ok());
  ApplySharded(sharded.get(), ops);
  CompareStores(reference.get(), sharded.get(), "inline fanout");
}

// Satellite of the range-query engine: with `sorted_views` on, every
// shard's RANGELOOKUP drives the snapshot-iterator stack (Eager and
// Composite resolve ranges through the index table's merged iterator) —
// and the answers must STILL be byte-identical to a plain heap-merge
// unsharded store. Docs are padded and the level budget shrunk so each
// shard's primary cascades into >= 2 levels below L0 (the sorted view's
// engagement condition), which the aggregated build ticker proves fired.
// Like crash::PutOp but with incompressible padding: SimpleLZ squashes a
// constant-character pad to a few bytes, so docs padded with 'p' runs never
// grow the on-disk levels past max_bytes_for_level_base no matter how many
// are written. Sorted views only build with >= 2 populated levels below L0.
crash::Op NoisyPutOp(std::string key, std::string user, uint64_t ts,
                     size_t pad) {
  std::string noise(pad, ' ');
  uint64_t x = ts * 6364136223846793005ull + 1442695040888963407ull;
  for (size_t i = 0; i < pad; i++) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    noise[i] = static_cast<char>('A' + ((x >> 33) % 26));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(ts));
  std::string doc = "{\"CreationTime\":\"" + std::string(buf) +
                    "\",\"Pad\":\"" + noise + "\",\"UserID\":\"" + user +
                    "\"}";
  return crash::Op{crash::Op::kPut, std::move(key), std::move(doc),
                   std::move(user)};
}

TEST(ShardedDBTest, SortedViewRangeLookupMatchesUnsharded) {
  std::vector<crash::Op> ops;
  for (size_t i = 0; i < 1500; i++) {
    const std::string key = "k" + std::to_string((i * 37) % 127);
    if (i % 11 == 7) {
      ops.push_back(crash::DeleteOp(key));
    } else {
      ops.push_back(NoisyPutOp(key, "user" + std::to_string(i % 13),
                               1000 + i, /*pad=*/2000));
    }
  }

  for (IndexType type : {IndexType::kEager, IndexType::kComposite}) {
    // Reference: unsharded, heap-merge (views off) — the paper-exact path.
    std::unique_ptr<Env> ref_env(NewMemEnv());
    std::unique_ptr<SecondaryDB> reference;
    ASSERT_TRUE(SecondaryDB::Open(TestShardOptions(ref_env.get(), type),
                                  "/ref", &reference)
                    .ok());
    ApplyUnsharded(reference.get(), ops);

    for (int shards : {1, 4}) {
      const std::string trace = std::string(IndexTypeName(type)) +
                                " sorted-view N=" + std::to_string(shards);
      std::unique_ptr<Env> env(NewMemEnv());
      ShardedDBOptions options;
      options.shard = TestShardOptions(env.get(), type);
      options.shard.base.sorted_views = true;
      // write_buffer_size/max_file_size sanitize to their 64K/16K floors;
      // 24K lets L1 retain a file at quiescence (16K file ~ score 0.67)
      // while the ~65K live set per shard overflows into L2.
      options.shard.base.max_bytes_for_level_base = 24 << 10;
      options.num_shards = shards;
      std::unique_ptr<ShardedDB> sharded;
      ASSERT_TRUE(ShardedDB::Open(options, "/sharded", &sharded).ok())
          << trace;
      ApplySharded(sharded.get(), ops);

      EXPECT_GT(sharded->TotalTicker(kSortedViewBuilds), 0u) << trace;
      CompareStores(reference.get(), sharded.get(), trace);

      // Results must not depend on LSM shape with the view in play either.
      ASSERT_TRUE(sharded->CompactAll().ok()) << trace;
      CompareStores(reference.get(), sharded.get(), trace + " compacted");
    }
  }
}

TEST(ShardedDBTest, ReopenKeepsSequencesGloballyComparable) {
  const std::vector<crash::Op> ops = MakeWorkload();
  const auto half = ops.begin() + ops.size() / 2;

  std::unique_ptr<Env> ref_env(NewMemEnv());
  std::unique_ptr<SecondaryDB> reference;
  ASSERT_TRUE(
      SecondaryDB::Open(TestShardOptions(ref_env.get(), IndexType::kComposite),
                        "/ref", &reference)
          .ok());
  ApplyUnsharded(reference.get(), {ops.begin(), ops.end()});

  std::unique_ptr<Env> env(NewMemEnv());
  ShardedDBOptions options;
  options.shard = TestShardOptions(env.get(), IndexType::kComposite);
  options.num_shards = 2;
  std::unique_ptr<ShardedDB> sharded;
  ASSERT_TRUE(ShardedDB::Open(options, "/sharded", &sharded).ok());
  ApplySharded(sharded.get(), {ops.begin(), half});

  // Close and reopen mid-stream: recovery must CAS-max the shared counter
  // back above every shard's recovered LastSequence, or the second half's
  // sequence numbers would collide / diverge from the reference.
  sharded.reset();
  ASSERT_TRUE(ShardedDB::Open(options, "/sharded", &sharded).ok());
  ApplySharded(sharded.get(), {half, ops.end()});

  CompareStores(reference.get(), sharded.get(), "reopened at half");
}

TEST(ShardedDBTest, ShardCountMismatchIsRejected) {
  std::unique_ptr<Env> env(NewMemEnv());
  ShardedDBOptions options;
  options.shard = TestShardOptions(env.get(), IndexType::kEmbedded);
  options.num_shards = 2;
  std::unique_ptr<ShardedDB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).ok());
  ASSERT_TRUE(db->Put("k", "{\"UserID\":\"u\"}").ok());
  db.reset();

  options.num_shards = 4;
  Status s = ShardedDB::Open(options, "/s", &db);
  ASSERT_TRUE(s.IsInvalidArgument()) << s.ToString();

  options.num_shards = 2;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get("k", &value).ok());
}

TEST(ShardedDBTest, ManagedFieldsAreRejected) {
  std::unique_ptr<Env> env(NewMemEnv());
  ShardedDBOptions options;
  options.shard = TestShardOptions(env.get(), IndexType::kEmbedded);

  Statistics stats;
  options.shard.base.statistics = &stats;
  std::unique_ptr<ShardedDB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).IsInvalidArgument());
  options.shard.base.statistics = nullptr;

  std::atomic<uint64_t> seq{0};
  options.shard.base.shared_sequence = &seq;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).IsInvalidArgument());
  options.shard.base.shared_sequence = nullptr;

  options.num_shards = 0;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).IsInvalidArgument());
}

TEST(ShardedDBTest, StatsJsonAggregatesPerShard) {
  std::unique_ptr<Env> env(NewMemEnv());
  ShardedDBOptions options;
  options.shard = TestShardOptions(env.get(), IndexType::kLazy);
  options.num_shards = 3;
  std::unique_ptr<ShardedDB> db;
  ASSERT_TRUE(ShardedDB::Open(options, "/s", &db).ok());

  // Route every write to ONE shard so per-shard attribution is observable.
  const int target = db->ShardFor("pinned");
  int written = 0;
  for (int i = 0; i < 500 && written < 40; i++) {
    const std::string key = "p" + std::to_string(i);
    if (db->ShardFor(key) != target) continue;
    ASSERT_TRUE(db->Put(key, crash::UserDoc("u1", 2000 + i, 64)).ok());
    written++;
  }
  ASSERT_GT(written, 0);
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(static_cast<size_t>(written), results.size());

  std::string prop;
  ASSERT_TRUE(db->GetProperty("leveldbpp.stats.json", &prop));
  json::Value root;
  ASSERT_TRUE(json::Parse(Slice(prop), &root)) << prop;
  ASSERT_EQ(3, root["num_shards"].as_int());
  const json::Array& shards = root["shards"].as_array();
  ASSERT_EQ(3u, shards.size());

  // WAL bytes land only on the shard the writes routed to.
  for (int i = 0; i < 3; i++) {
    const int64_t wal =
        shards[i]["tickers"]["wal.bytes.written"].as_int();
    if (i == target) {
      EXPECT_GT(wal, 0) << "shard " << i;
    } else {
      EXPECT_EQ(0, wal) << "shard " << i;
    }
  }

  // The serving layer's own counters fold into the aggregate.
  const json::Value& agg = root["aggregate"]["tickers"];
  EXPECT_EQ(written, agg["shard.writes.routed"].as_int());
  EXPECT_EQ(1, agg["shard.lookup.fanouts"].as_int());
  EXPECT_EQ(static_cast<int64_t>(db->TotalTicker(kWalBytesWritten)),
            agg["wal.bytes.written"].as_int());

  // Merge/fan-out tickers live on statistics() too.
  EXPECT_EQ(static_cast<uint64_t>(written),
            db->statistics()->Get(kShardWritesRouted));
}

TEST(ShardedDBTest, CrashAndReopenRecoversAcknowledgedOps) {
  // Sharded spin on the crash harness: sync_writes ShardedDB on a
  // FaultInjectionEnv, crash at a sweep of syscall counts, reopen, and
  // check every ACKNOWLEDGED op is visible (the one in-flight op may land
  // either way) and LOOKUP agrees with the recovered primary state.
  const std::vector<crash::Op> ops = MakeWorkload(120);
  for (uint64_t crash_at : {5, 23, 61, 140, 300}) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv env(base.get(), /*seed=*/1234 + crash_at);
    ShardedDBOptions options;
    options.shard = crash::MakeCrashOptions(&env, IndexType::kComposite);
    options.num_shards = 3;

    crash::Model model;
    const crash::Op* in_flight = nullptr;
    {
      std::unique_ptr<ShardedDB> db;
      ASSERT_TRUE(ShardedDB::Open(options, "/crash", &db).ok());
      env.ResetOpCount();
      env.FailAfter(crash_at, FaultInjectionEnv::kOpAllWrites);
      size_t acked = 0;
      bool hit_error = false;
      for (const crash::Op& op : ops) {
        Status s = (op.kind == crash::Op::kPut) ? db->Put(op.key, op.doc)
                                                : db->Delete(op.key);
        if (!s.ok()) {
          hit_error = true;
          break;
        }
        if (op.kind == crash::Op::kPut) {
          model[op.key] = op.doc;
        } else {
          model.erase(op.key);
        }
        acked++;
      }
      if (hit_error) in_flight = &ops[acked];
    }
    ASSERT_TRUE(env.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced)
                    .ok());
    env.ClearFaults();

    std::unique_ptr<ShardedDB> db;
    ASSERT_TRUE(ShardedDB::Open(options, "/crash", &db).ok())
        << "reopen after crash failed";

    // 1. Every key: model state, except the in-flight op's two-valued key.
    std::set<std::string> keys;
    for (const crash::Op& op : ops) keys.insert(op.key);
    for (const std::string& key : keys) {
      std::string value;
      Status s = db->Get(key, &value);
      auto it = model.find(key);
      const bool matches_model = (it == model.end())
                                     ? s.IsNotFound()
                                     : (s.ok() && value == it->second);
      if (in_flight != nullptr && key == in_flight->key) {
        const bool matches_post = (in_flight->kind == crash::Op::kPut)
                                      ? (s.ok() && value == in_flight->doc)
                                      : s.IsNotFound();
        ASSERT_TRUE(matches_model || matches_post)
            << "in-flight key=" << key << " status=" << s.ToString();
      } else {
        ASSERT_TRUE(matches_model)
            << "key=" << key << " status=" << s.ToString();
      }
    }

    // 2. LOOKUP answers must be exactly the recovered primary's records:
    // for each user, the returned keys match the keys whose recovered doc
    // carries that user, values match Get, and order is newest-first.
    for (int u = 0; u < 13; u++) {
      const std::string user = "user" + std::to_string(u);
      std::set<std::string> expect_keys;
      for (const std::string& key : keys) {
        std::string value;
        if (db->Get(key, &value).ok() &&
            value.find("\"UserID\":\"" + user + "\"") != std::string::npos) {
          expect_keys.insert(key);
        }
      }
      std::vector<QueryResult> got;
      ASSERT_TRUE(db->Lookup("UserID", user, 0, &got).ok());
      std::set<std::string> got_keys;
      for (size_t i = 0; i < got.size(); i++) {
        got_keys.insert(got[i].primary_key);
        std::string value;
        ASSERT_TRUE(db->Get(got[i].primary_key, &value).ok());
        EXPECT_EQ(value, got[i].value);
        if (i > 0) EXPECT_GT(got[i - 1].seq, got[i].seq) << "order";
      }
      EXPECT_EQ(expect_keys, got_keys) << "user=" << user;
    }
  }
}

}  // namespace
}  // namespace leveldbpp
