// Corruption handling: flipped bits in SSTables and logs must surface as
// errors (or be safely skipped), never as silent wrong answers or crashes.

#include <gtest/gtest.h>

#include <memory>

#include "db/db_impl.h"
#include "db/filename.h"
#include "env/env.h"

namespace leveldbpp {
namespace {

class CorruptionTest : public testing::Test {
 protected:
  CorruptionTest() : env_(NewMemEnv()) { Open(); }

  void Open(bool paranoid = false) {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.paranoid_checks = paranoid;
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/corrupt", &raw).ok());
    db_.reset(raw);
  }

  void Build(int n) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i),
                           "value" + std::to_string(i) +
                               std::string(100, 'v'))
                      .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  // Flip bytes in the middle of every table file.
  void CorruptTables() {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren("/corrupt", &children).ok());
    int corrupted = 0;
    for (const std::string& f : children) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(f, &number, &type) || type != kTableFile) continue;
      std::string path = "/corrupt/" + f;
      std::unique_ptr<SequentialFile> in;
      ASSERT_TRUE(env_->NewSequentialFile(path, &in).ok());
      std::string contents;
      char scratch[1 << 16];
      Slice chunk;
      while (in->Read(sizeof(scratch), &chunk, scratch).ok() &&
             !chunk.empty()) {
        contents.append(chunk.data(), chunk.size());
      }
      // Stomp a span in the middle of the file (data blocks).
      size_t mid = contents.size() / 2;
      for (size_t i = 0; i < 16 && mid + i < contents.size(); i++) {
        contents[mid + i] ^= 0x5A;
      }
      std::unique_ptr<WritableFile> out;
      ASSERT_TRUE(env_->NewWritableFile(path, &out).ok());
      ASSERT_TRUE(out->Append(contents).ok());
      ASSERT_TRUE(out->Close().ok());
      corrupted++;
    }
    ASSERT_GT(corrupted, 0);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(CorruptionTest, ChecksummedReadsDetectCorruption) {
  Build(2000);
  db_.reset();
  CorruptTables();
  Open();

  // With checksum verification ON, reads of mangled blocks must report
  // corruption — and never return a wrong value.
  ReadOptions read_options;
  read_options.verify_checksums = true;
  int errors = 0, ok = 0;
  for (int i = 0; i < 2000; i += 10) {
    std::string value;
    Status s = db_->Get(read_options, Key(i), &value);
    if (s.ok()) {
      ASSERT_EQ(0u, value.find("value" + std::to_string(i)))
          << "silent wrong answer for " << Key(i);
      ok++;
    } else {
      errors++;
    }
  }
  EXPECT_GT(errors, 0) << "corruption went completely unnoticed";
  EXPECT_GT(ok, 0) << "untouched blocks should still read fine";
}

TEST_F(CorruptionTest, MissingManifestFailsOpenCleanly) {
  Build(100);
  db_.reset();
  // Remove CURRENT: open must fail with a clear error, not crash.
  ASSERT_TRUE(env_->RemoveFile("/corrupt/CURRENT").ok());
  Options options;
  options.env = env_.get();
  options.create_if_missing = false;
  DBImpl* raw = nullptr;
  Status s = DBImpl::Open(options, "/corrupt", &raw);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, raw);
}

TEST_F(CorruptionTest, TruncatedTableDetectedAtOpen) {
  Build(500);
  db_.reset();
  // Truncate every table file to 10 bytes: opening them must fail, reads
  // must error rather than crash.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/corrupt", &children).ok());
  for (const std::string& f : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == kTableFile) {
      std::unique_ptr<WritableFile> out;
      ASSERT_TRUE(env_->NewWritableFile("/corrupt/" + f, &out).ok());
      ASSERT_TRUE(out->Append("truncated!").ok());
      ASSERT_TRUE(out->Close().ok());
    }
  }
  Open();
  std::string value;
  Status s = db_->Get(ReadOptions(), Key(42), &value);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace leveldbpp
