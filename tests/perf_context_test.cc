// PerfContext correctness: for every index variant, the per-query totals a
// thread-local PerfContext accumulates must equal the deltas of the global
// tickers (summed over the primary table and every stand-alone index
// table) around that query — at read_parallelism 0 AND 4, for every
// ticker. The named counters (posting entries / candidate records /
// validation attempts) are additionally placed so their per-query value is
// independent of read_parallelism, which the cross-parallelism test pins
// down with unlimited (k == 0) queries.

#include "util/perf_context.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/document.h"
#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

std::string MakeDoc(const std::string& user, uint64_t ctime,
                    const std::string& body) {
  json::Object obj;
  obj["UserID"] = json::Value(user);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%012llu",
                static_cast<unsigned long long>(ctime));
  obj["CreationTime"] = json::Value(std::string(ts));
  obj["Body"] = json::Value(body);
  return json::Value(std::move(obj)).ToString();
}

std::string UserName(int u) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "user%03d", u);
  return buf;
}

std::string Ctime(uint64_t t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(t));
  return buf;
}

// The named counters, snapshotted as one comparable unit.
struct CounterSnapshot {
  uint64_t posting_entries_scanned = 0;
  uint64_t candidate_records_scanned = 0;
  uint64_t candidates_validated = 0;
  uint64_t candidates_valid = 0;

  bool operator==(const CounterSnapshot& o) const {
    return posting_entries_scanned == o.posting_entries_scanned &&
           candidate_records_scanned == o.candidate_records_scanned &&
           candidates_validated == o.candidates_validated &&
           candidates_valid == o.candidates_valid;
  }
};

}  // namespace

class PerfContextTest : public testing::TestWithParam<IndexType> {
 protected:
  PerfContextTest() : env_(NewMemEnv()), path_("/perfdb") {}
  ~PerfContextTest() override { DisablePerfContext(); }

  void Open(int read_parallelism) {
    db_.reset();
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.write_buffer_size = 64 << 10;
    options.base.max_file_size = 32 << 10;
    options.base.max_bytes_for_level_base = 128 << 10;
    options.base.read_parallelism = read_parallelism;
    options.index_type = GetParam();
    options.indexed_attributes = {"UserID", "CreationTime"};
    Status s = SecondaryDB::Open(options, path_, &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // Same randomized history as parallel_query_test: inserts, moves between
  // users (creating stale index entries), deletes, periodic compaction so
  // candidates spread over memtable + many levels.
  void BuildWorkload() {
    Random rnd(301);
    uint64_t ctime = 1;
    for (int i = 0; i < 1500; i++) {
      const int key_id = rnd.Uniform(400);
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d", key_id);
      const int op = rnd.Uniform(10);
      if (op == 0) {
        ASSERT_TRUE(db_->Delete(key).ok());
      } else {
        const int user = rnd.Uniform(25);
        ASSERT_TRUE(
            db_->Put(key, MakeDoc(UserName(user), ctime, "body")).ok());
      }
      ctime++;
      if (i == 700) {
        ASSERT_TRUE(db_->CompactAll().ok());
      } else if (i % 400 == 399) {
        ASSERT_TRUE(db_->MaybeCompact().ok());
      }
    }
  }

  std::array<uint64_t, kTickerCount> SnapshotTotals() {
    std::array<uint64_t, kTickerCount> snap{};
    for (uint32_t i = 0; i < kTickerCount; i++) {
      snap[i] = db_->TotalTicker(static_cast<Ticker>(i));
    }
    return snap;
  }

  // Run one operation with a freshly reset PerfContext and assert that, for
  // EVERY ticker, the per-query mirror equals the global delta (summed over
  // the primary table and all index tables).
  void CheckParity(const std::string& what,
                   const std::function<Status()>& op) {
    PerfContext* perf = GetPerfContext();
    const std::array<uint64_t, kTickerCount> before = SnapshotTotals();
    perf->Reset();
    Status s = op();
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << what << ": " << s.ToString();
    for (uint32_t i = 0; i < kTickerCount; i++) {
      const Ticker t = static_cast<Ticker>(i);
      EXPECT_EQ(db_->TotalTicker(t) - before[i], perf->TickerValue(t))
          << what << " ticker " << TickerName(t);
    }
    observed_block_reads_ += perf->TickerValue(kBlockRead);
  }

  void CheckParityForAllQueries() {
    for (size_t k : {size_t{0}, size_t{1}, size_t{5}}) {
      for (int u = 0; u < 25; u += 5) {
        CheckParity(
            "lookup user " + std::to_string(u) + " k" + std::to_string(k),
            [&]() {
              std::vector<QueryResult> results;
              return db_->Lookup("UserID", UserName(u), k, &results);
            });
      }
      const std::pair<uint64_t, uint64_t> ranges[] = {
          {1, 1500}, {200, 400}, {1499, 1500}};
      for (const auto& [lo, hi] : ranges) {
        CheckParity("rangelookup " + std::to_string(lo) + ".." +
                        std::to_string(hi) + " k" + std::to_string(k),
                    [&]() {
                      std::vector<QueryResult> results;
                      return db_->RangeLookup("CreationTime", Ctime(lo),
                                              Ctime(hi), k, &results);
                    });
      }
    }
    for (int key_id = 0; key_id < 400; key_id += 40) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d", key_id);
      CheckParity(std::string("get ") + key, [&]() {
        std::string value;
        return db_->Get(key, &value);
      });
    }
  }

  // Named-counter totals over the full unlimited (k == 0) query sweep.
  CounterSnapshot CollectCounters() {
    PerfContext* perf = GetPerfContext();
    EnablePerfContext();
    perf->Reset();
    for (int u = 0; u < 25; u += 3) {
      std::vector<QueryResult> results;
      EXPECT_TRUE(db_->Lookup("UserID", UserName(u), 0, &results).ok());
    }
    const std::pair<uint64_t, uint64_t> ranges[] = {
        {1, 1500}, {200, 400}, {1000, 1100}};
    for (const auto& [lo, hi] : ranges) {
      std::vector<QueryResult> results;
      EXPECT_TRUE(
          db_->RangeLookup("CreationTime", Ctime(lo), Ctime(hi), 0, &results)
              .ok());
    }
    CounterSnapshot snap;
    snap.posting_entries_scanned = perf->posting_entries_scanned;
    snap.candidate_records_scanned = perf->candidate_records_scanned;
    snap.candidates_validated = perf->candidates_validated;
    snap.candidates_valid = perf->candidates_valid;
    return snap;
  }

  std::unique_ptr<Env> env_;
  std::string path_;
  std::unique_ptr<SecondaryDB> db_;
  uint64_t observed_block_reads_ = 0;
};

TEST_P(PerfContextTest, PerQueryTotalsEqualTickerDeltas) {
  Open(/*read_parallelism=*/0);
  BuildWorkload();
  EnablePerfContext();
  CheckParityForAllQueries();

  Open(/*read_parallelism=*/4);  // Reopen over the same store
  CheckParityForAllQueries();

  // The sweep must have exercised real I/O, or the parity checks above
  // compared zeros against zeros.
  EXPECT_GT(observed_block_reads_, 0u);
}

TEST_P(PerfContextTest, NamedCountersIndependentOfParallelism) {
  Open(/*read_parallelism=*/0);
  BuildWorkload();
  // Reopen before the baseline so every run sees the identical all-on-disk
  // layout: recovery flushes the tail of the workload out of the memtable,
  // and the embedded memtable path enumerates only in-range records while
  // a flushed block is scanned wholesale — a layout difference, not a
  // parallelism difference.
  Open(/*read_parallelism=*/0);
  const CounterSnapshot sequential = CollectCounters();

  // The workload must feed each variant's counters: scan variants visit
  // candidate records, posting variants parse entries and validate them.
  const IndexType type = GetParam();
  if (type == IndexType::kNoIndex || type == IndexType::kEmbedded) {
    EXPECT_GT(sequential.candidate_records_scanned, 0u);
  } else {
    EXPECT_GT(sequential.posting_entries_scanned, 0u);
    EXPECT_GT(sequential.candidates_validated, 0u);
    EXPECT_GT(sequential.candidates_valid, 0u);
    EXPECT_LE(sequential.candidates_valid, sequential.candidates_validated);
  }

  for (int parallelism : {2, 4}) {
    Open(parallelism);
    const CounterSnapshot parallel = CollectCounters();
    EXPECT_EQ(sequential.posting_entries_scanned,
              parallel.posting_entries_scanned)
        << "p=" << parallelism;
    EXPECT_EQ(sequential.candidate_records_scanned,
              parallel.candidate_records_scanned)
        << "p=" << parallelism;
    EXPECT_EQ(sequential.candidates_validated, parallel.candidates_validated)
        << "p=" << parallelism;
    EXPECT_EQ(sequential.candidates_valid, parallel.candidates_valid)
        << "p=" << parallelism;
  }
}

TEST_P(PerfContextTest, DisabledContextRecordsNothing) {
  Open(/*read_parallelism=*/0);
  BuildWorkload();
  PerfContext* perf = GetPerfContext();
  DisablePerfContext();
  perf->Reset();
  std::vector<QueryResult> results;
  ASSERT_TRUE(db_->Lookup("UserID", UserName(3), 0, &results).ok());
  for (uint32_t i = 0; i < kTickerCount; i++) {
    EXPECT_EQ(0u, perf->TickerValue(static_cast<Ticker>(i)));
  }
  EXPECT_EQ(0u, perf->posting_entries_scanned);
  EXPECT_EQ(0u, perf->candidate_records_scanned);
  EXPECT_EQ(0u, perf->candidates_validated);
  EXPECT_EQ(0u, perf->lookup_micros);
}

TEST_P(PerfContextTest, LookupTimerAccumulates) {
  Open(/*read_parallelism=*/0);
  BuildWorkload();
  PerfContext* perf = GetPerfContext();
  EnablePerfContext();
  perf->Reset();
  // A large query sweep takes well over a microsecond in aggregate.
  for (int round = 0; round < 20; round++) {
    for (int u = 0; u < 25; u++) {
      std::vector<QueryResult> results;
      ASSERT_TRUE(db_->Lookup("UserID", UserName(u), 0, &results).ok());
    }
  }
  EXPECT_GT(perf->lookup_micros, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, PerfContextTest,
                         testing::Values(IndexType::kNoIndex,
                                         IndexType::kEmbedded,
                                         IndexType::kLazy, IndexType::kEager,
                                         IndexType::kComposite),
                         [](const testing::TestParamInfo<IndexType>& info) {
                           return IndexTypeName(info.param);
                         });

// ---- Plumbing unit tests (no database) ----

TEST(PerfContextUnitTest, StatisticsRecordMirrorsIntoActiveContext) {
  Statistics stats;
  PerfContext* perf = GetPerfContext();
  EnablePerfContext();
  perf->Reset();
  stats.Record(kBlockRead, 3);
  stats.Record(kBlockReadBytes, 4096);
  EXPECT_EQ(3u, perf->TickerValue(kBlockRead));
  EXPECT_EQ(4096u, perf->TickerValue(kBlockReadBytes));
  // Mirroring covers ANY Statistics object, not a specific one.
  Statistics other;
  other.Record(kBlockRead);
  EXPECT_EQ(4u, perf->TickerValue(kBlockRead));
  // The global counters are untouched by the mirror.
  EXPECT_EQ(3u, stats.Get(kBlockRead));

  DisablePerfContext();
  stats.Record(kBlockRead, 100);
  EXPECT_EQ(4u, perf->TickerValue(kBlockRead));
}

TEST(PerfContextUnitTest, SwapRedirectsAndRestores) {
  Statistics stats;
  PerfContext* perf = GetPerfContext();
  EnablePerfContext();
  perf->Reset();

  PerfContext task_local;
  PerfContext* prev = SwapThreadPerfContext(&task_local);
  EXPECT_EQ(perf, prev);
  stats.Record(kParallelTasks, 7);
  SwapThreadPerfContext(prev);

  EXPECT_EQ(7u, task_local.TickerValue(kParallelTasks));
  EXPECT_EQ(0u, perf->TickerValue(kParallelTasks));

  perf->MergeFrom(task_local);
  EXPECT_EQ(7u, perf->TickerValue(kParallelTasks));
  DisablePerfContext();
}

TEST(PerfContextUnitTest, MergeFromAddsEveryField) {
  PerfContext a, b;
  a.tickers[kBlockRead] = 2;
  b.tickers[kBlockRead] = 5;
  a.posting_entries_scanned = 10;
  b.posting_entries_scanned = 1;
  b.candidates_validated = 3;
  a.lookup_micros = 100;
  b.lookup_micros = 50;
  b.validate_micros = 25;
  a.MergeFrom(b);
  EXPECT_EQ(7u, a.TickerValue(kBlockRead));
  EXPECT_EQ(11u, a.posting_entries_scanned);
  EXPECT_EQ(3u, a.candidates_validated);
  EXPECT_EQ(150u, a.lookup_micros);
  EXPECT_EQ(25u, a.validate_micros);

  a.Reset();
  EXPECT_EQ(0u, a.TickerValue(kBlockRead));
  EXPECT_EQ(0u, a.posting_entries_scanned);
  EXPECT_EQ(0u, a.lookup_micros);
}

TEST(PerfContextUnitTest, ContextsAreThreadLocal) {
  PerfContext* main_ctx = GetPerfContext();
  EnablePerfContext();
  main_ctx->Reset();
  Statistics stats;
  std::thread other([&stats]() {
    // This thread never enabled recording: its Records are not mirrored,
    // and its context is a different instance from the main thread's.
    EXPECT_EQ(nullptr, CurrentThreadPerfContext());
    stats.Record(kBlockRead, 9);
    EXPECT_NE(nullptr, GetPerfContext());
  });
  other.join();
  EXPECT_EQ(0u, main_ctx->TickerValue(kBlockRead));
  EXPECT_EQ(9u, stats.Get(kBlockRead));
  DisablePerfContext();
}

TEST(PerfContextUnitTest, FieldRegistriesAndDumps) {
  const auto& counters = PerfContext::CounterFields();
  const auto& timers = PerfContext::TimerFields();
  EXPECT_EQ(6u, counters.size());
  EXPECT_EQ(4u, timers.size());
  for (const auto& f : counters) {
    EXPECT_EQ(0u, std::string(f.name).find("perf.")) << f.name;
  }
  for (const auto& f : timers) {
    EXPECT_EQ(0u, std::string(f.name).find("perf.")) << f.name;
  }

  PerfContext ctx;
  ctx.tickers[kBlockRead] = 12;
  ctx.posting_entries_scanned = 34;
  ctx.lookup_micros = 56;
  const std::string text = ctx.ToString();
  EXPECT_NE(std::string::npos, text.find(TickerName(kBlockRead)));
  EXPECT_NE(std::string::npos, text.find("perf.posting.entries.scanned"));
  EXPECT_NE(std::string::npos, text.find("perf.lookup.micros"));
  // Zero-valued entries are skipped by default.
  EXPECT_EQ(std::string::npos, text.find("perf.validate.micros"));
  EXPECT_NE(std::string::npos,
            ctx.ToString(/*include_zeros=*/true).find("perf.validate.micros"));

  json::Value parsed;
  ASSERT_TRUE(json::Parse(Slice(ctx.ToJson()), &parsed)) << ctx.ToJson();
  EXPECT_EQ(12, parsed["tickers"][TickerName(kBlockRead)].as_int());
  EXPECT_EQ(34, parsed["counters"]["perf.posting.entries.scanned"].as_int());
  EXPECT_EQ(56, parsed["timers"]["perf.lookup.micros"].as_int());
}

}  // namespace leveldbpp
