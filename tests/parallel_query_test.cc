// Parallel-vs-sequential equivalence: with Options::read_parallelism > 1
// every index variant's LOOKUP / RANGELOOKUP must return byte-identical
// results (primary keys, sequence numbers, values, order) to the strictly
// sequential read path, because the fan-out only reorders WHEN candidate
// work happens, never WHAT is admitted. Also races parallel queries against
// a live writer + background compaction for the sanitizer builds.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/document.h"
#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

std::string MakeDoc(const std::string& user, uint64_t ctime,
                    const std::string& body) {
  json::Object obj;
  obj["UserID"] = json::Value(user);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%012llu",
                static_cast<unsigned long long>(ctime));
  obj["CreationTime"] = json::Value(std::string(ts));
  obj["Body"] = json::Value(body);
  return json::Value(std::move(obj)).ToString();
}

std::string UserName(int u) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "user%03d", u);
  return buf;
}

std::string Ctime(uint64_t t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(t));
  return buf;
}

// Flatten a result list so a plain string compare checks keys, sequence
// numbers, values AND order at once.
std::string Flatten(const std::vector<QueryResult>& results) {
  std::string out;
  for (const QueryResult& r : results) {
    out.append(r.primary_key);
    out.push_back('@');
    out.append(std::to_string(r.seq));
    out.push_back('=');
    out.append(r.value);
    out.push_back(';');
  }
  return out;
}

}  // namespace

class ParallelQueryTest : public testing::TestWithParam<IndexType> {
 protected:
  ParallelQueryTest() : env_(NewMemEnv()), path_("/pqdb") {}

  void Open(int read_parallelism) {
    db_.reset();
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.write_buffer_size = 64 << 10;
    options.base.max_file_size = 32 << 10;
    options.base.max_bytes_for_level_base = 128 << 10;
    options.base.read_parallelism = read_parallelism;
    options.index_type = GetParam();
    options.indexed_attributes = {"UserID", "CreationTime"};
    Status s = SecondaryDB::Open(options, path_, &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // Randomized history: inserts, updates that move records between users
  // and timestamps (creating stale index entries), deletes, and periodic
  // compaction so candidates spread over memtable + many levels.
  void BuildWorkload() {
    Random rnd(301);
    uint64_t ctime = 1;
    for (int i = 0; i < 1500; i++) {
      const int key_id = rnd.Uniform(400);
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d", key_id);
      const int op = rnd.Uniform(10);
      if (op == 0) {
        ASSERT_TRUE(db_->Delete(key).ok());
      } else {
        const int user = rnd.Uniform(25);
        ASSERT_TRUE(
            db_->Put(key, MakeDoc(UserName(user), ctime, "body")).ok());
      }
      ctime++;
      if (i == 700) {
        ASSERT_TRUE(db_->CompactAll().ok());
      } else if (i % 400 == 399) {
        ASSERT_TRUE(db_->MaybeCompact().ok());
      }
    }
  }

  // Every query shape the index surface offers, over several users, ranges
  // and K values (k == 0 exercises the unlimited path).
  std::vector<std::string> RunAllQueries() {
    std::vector<std::string> flat;
    for (size_t k : {size_t{0}, size_t{1}, size_t{5}, size_t{20}}) {
      for (int u = 0; u < 25; u += 3) {
        std::vector<QueryResult> results;
        Status s = db_->Lookup("UserID", UserName(u), k, &results);
        EXPECT_TRUE(s.ok()) << s.ToString();
        flat.push_back(Flatten(results));
      }
      const std::pair<uint64_t, uint64_t> ranges[] = {
          {1, 1500}, {200, 400}, {1000, 1100}, {1499, 1500}};
      for (const auto& [lo, hi] : ranges) {
        std::vector<QueryResult> results;
        Status s = db_->RangeLookup("CreationTime", Ctime(lo), Ctime(hi), k,
                                    &results);
        EXPECT_TRUE(s.ok()) << s.ToString();
        flat.push_back(Flatten(results));
      }
    }
    return flat;
  }

  std::unique_ptr<Env> env_;
  std::string path_;
  std::unique_ptr<SecondaryDB> db_;
};

TEST_P(ParallelQueryTest, ParallelResultsByteIdenticalToSequential) {
  Open(/*read_parallelism=*/0);
  BuildWorkload();
  std::vector<std::string> sequential = RunAllQueries();
  ASSERT_FALSE(sequential.empty());

  for (int parallelism : {2, 4, 8}) {
    Open(parallelism);  // Reopen over the same store
    std::vector<std::string> parallel = RunAllQueries();
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); i++) {
      EXPECT_EQ(sequential[i], parallel[i])
          << IndexTypeName(GetParam()) << " query " << i << " parallelism "
          << parallelism;
    }
  }
}

// Sanitizer workout: parallel queries racing one writer and background
// compaction. Results need not be deterministic here; they must be valid
// (status ok, every returned record's attribute inside the query range).
TEST_P(ParallelQueryTest, ConcurrentWriterDuringParallelQueries) {
  db_.reset();
  SecondaryDBOptions options;
  options.base.env = env_.get();
  options.base.write_buffer_size = 32 << 10;
  options.base.max_file_size = 16 << 10;
  options.base.max_bytes_for_level_base = 64 << 10;
  options.base.read_parallelism = 4;
  options.base.background_compaction = true;
  options.index_type = GetParam();
  options.indexed_attributes = {"UserID", "CreationTime"};
  ASSERT_TRUE(SecondaryDB::Open(options, path_, &db_).ok());

  for (int i = 0; i < 300; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(
        db_->Put(key, MakeDoc(UserName(i % 10), i + 1, "seed")).ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    Random rnd(17);
    uint64_t ctime = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%05d",
                    static_cast<int>(rnd.Uniform(300)));
      db_->Put(key, MakeDoc(UserName(rnd.Uniform(10)), ctime++, "upd"));
    }
  });

  const JsonAttributeExtractor* extractor =
      JsonAttributeExtractor::Instance();
  for (int round = 0; round < 40; round++) {
    const std::string user = UserName(round % 10);
    std::vector<QueryResult> results;
    Status s = db_->Lookup("UserID", user, 10, &results);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (const QueryResult& r : results) {
      std::string attr;
      ASSERT_TRUE(extractor->Extract(Slice(r.value), "UserID", &attr));
      ASSERT_EQ(user, attr);
    }
    results.clear();
    s = db_->RangeLookup("CreationTime", Ctime(1), Ctime(100000), 10,
                         &results);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ParallelQueryTest,
                         testing::Values(IndexType::kNoIndex,
                                         IndexType::kEmbedded,
                                         IndexType::kLazy, IndexType::kEager,
                                         IndexType::kComposite),
                         [](const testing::TestParamInfo<IndexType>& info) {
                           return IndexTypeName(info.param);
                         });

}  // namespace leveldbpp
