// Differential correctness: every index variant must produce exactly the
// same LOOKUP / RANGELOOKUP answers (keys AND recency order) as an
// in-memory reference model, under randomized workloads of inserts,
// updates (key overwrites that move records between secondary keys),
// deletes, full compactions and reopen-after-close.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

std::string MakeDoc(const std::string& user, uint64_t ctime,
                    const std::string& body) {
  json::Object obj;
  obj["UserID"] = json::Value(user);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%012llu",
                static_cast<unsigned long long>(ctime));
  obj["CreationTime"] = json::Value(std::string(ts));
  obj["Body"] = json::Value(body);
  return json::Value(std::move(obj)).ToString();
}

// Reference model: newest state of each key + a global write counter that
// mirrors the engine's sequence numbers.
class Model {
 public:
  void Put(const std::string& key, const std::string& user, uint64_t ctime) {
    counter_++;
    records_[key] = {user, ctime, counter_};
  }

  void Delete(const std::string& key) {
    counter_++;
    records_.erase(key);
  }

  struct Rec {
    std::string user;
    uint64_t ctime;
    uint64_t written_at;
  };

  std::vector<std::string> Lookup(const std::string& user, size_t k) const {
    std::vector<std::pair<uint64_t, std::string>> matches;
    for (const auto& [key, rec] : records_) {
      if (rec.user == user) matches.emplace_back(rec.written_at, key);
    }
    return TopK(std::move(matches), k);
  }

  std::vector<std::string> RangeLookup(uint64_t lo, uint64_t hi,
                                       size_t k) const {
    std::vector<std::pair<uint64_t, std::string>> matches;
    for (const auto& [key, rec] : records_) {
      if (rec.ctime >= lo && rec.ctime <= hi) {
        matches.emplace_back(rec.written_at, key);
      }
    }
    return TopK(std::move(matches), k);
  }

  const std::map<std::string, Rec>& records() const { return records_; }

 private:
  static std::vector<std::string> TopK(
      std::vector<std::pair<uint64_t, std::string>> matches, size_t k) {
    std::sort(matches.begin(), matches.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (k != 0 && matches.size() > k) matches.resize(k);
    std::vector<std::string> keys;
    keys.reserve(matches.size());
    for (auto& [seq, key] : matches) keys.push_back(std::move(key));
    return keys;
  }

  std::map<std::string, Rec> records_;
  uint64_t counter_ = 0;
};

class IndexEquivalenceTest : public testing::TestWithParam<IndexType> {
 protected:
  IndexEquivalenceTest() : env_(NewMemEnv()), path_("/eqdb") { Open(); }

  void Open() {
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.write_buffer_size = 64 << 10;
    options.base.max_file_size = 32 << 10;
    options.base.max_bytes_for_level_base = 128 << 10;
    options.index_type = GetParam();
    options.indexed_attributes = {"UserID", "CreationTime"};
    Status s = SecondaryDB::Open(options, path_, &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void Reopen() {
    db_.reset();
    Open();
  }

  std::vector<std::string> Lookup(const std::string& user, size_t k) {
    std::vector<QueryResult> results;
    Status s = db_->Lookup("UserID", user, k, &results);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::vector<std::string> keys;
    for (const auto& r : results) keys.push_back(r.primary_key);
    return keys;
  }

  std::vector<std::string> RangeLookup(uint64_t lo, uint64_t hi, size_t k) {
    char lo_s[32], hi_s[32];
    std::snprintf(lo_s, sizeof(lo_s), "%012llu",
                  static_cast<unsigned long long>(lo));
    std::snprintf(hi_s, sizeof(hi_s), "%012llu",
                  static_cast<unsigned long long>(hi));
    std::vector<QueryResult> results;
    Status s = db_->RangeLookup("CreationTime", lo_s, hi_s, k, &results);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::vector<std::string> keys;
    for (const auto& r : results) keys.push_back(r.primary_key);
    return keys;
  }

  void CheckAllUsers(const Model& model, size_t num_users,
                     const std::vector<size_t>& ks) {
    for (size_t u = 0; u < num_users; u++) {
      std::string user = "user" + std::to_string(u);
      for (size_t k : ks) {
        EXPECT_EQ(model.Lookup(user, k), Lookup(user, k))
            << "user=" << user << " k=" << k
            << " type=" << IndexTypeName(GetParam());
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::string path_;
  std::unique_ptr<SecondaryDB> db_;
};

TEST_P(IndexEquivalenceTest, BasicLookup) {
  Model model;
  db_->Put("t1", MakeDoc("u1", 100, "hello"));
  model.Put("t1", "u1", 100);
  db_->Put("t2", MakeDoc("u1", 101, "world"));
  model.Put("t2", "u1", 101);
  db_->Put("t3", MakeDoc("u2", 102, "x"));
  model.Put("t3", "u2", 102);

  EXPECT_EQ(model.Lookup("u1", 0), Lookup("u1", 0));
  EXPECT_EQ(model.Lookup("u1", 1), Lookup("u1", 1));
  EXPECT_EQ(model.Lookup("u2", 0), Lookup("u2", 0));
  EXPECT_EQ(model.Lookup("nobody", 0), Lookup("nobody", 0));
}

TEST_P(IndexEquivalenceTest, UpdateMovesRecordBetweenSecondaryKeys) {
  Model model;
  db_->Put("t1", MakeDoc("u1", 100, "a"));
  model.Put("t1", "u1", 100);
  db_->Put("t2", MakeDoc("u2", 101, "b"));
  model.Put("t2", "u2", 101);
  // Update t1: now belongs to u2 (the paper's Example 3).
  db_->Put("t1", MakeDoc("u2", 102, "c"));
  model.Put("t1", "u2", 102);

  EXPECT_EQ(model.Lookup("u1", 0), Lookup("u1", 0));  // Empty: stale filtered
  EXPECT_EQ(model.Lookup("u2", 0), Lookup("u2", 0));  // t1 newest, then t2
}

TEST_P(IndexEquivalenceTest, DeleteHidesRecord) {
  Model model;
  db_->Put("t1", MakeDoc("u1", 100, "a"));
  model.Put("t1", "u1", 100);
  db_->Put("t2", MakeDoc("u1", 101, "b"));
  model.Put("t2", "u1", 101);
  db_->Delete("t1");
  model.Delete("t1");

  EXPECT_EQ(model.Lookup("u1", 0), Lookup("u1", 0));

  db_->CompactAll();
  EXPECT_EQ(model.Lookup("u1", 0), Lookup("u1", 0));
}

TEST_P(IndexEquivalenceTest, RangeLookupBasic) {
  Model model;
  for (int i = 0; i < 50; i++) {
    std::string key = "t" + std::to_string(i);
    std::string user = "user" + std::to_string(i % 5);
    db_->Put(key, MakeDoc(user, 1000 + i, "body"));
    model.Put(key, user, 1000 + i);
  }
  EXPECT_EQ(model.RangeLookup(1010, 1020, 0), RangeLookup(1010, 1020, 0));
  EXPECT_EQ(model.RangeLookup(1010, 1020, 5), RangeLookup(1010, 1020, 5));
  EXPECT_EQ(model.RangeLookup(0, 9999999, 10), RangeLookup(0, 9999999, 10));
  EXPECT_EQ(model.RangeLookup(2000, 3000, 0), RangeLookup(2000, 3000, 0));
}

TEST_P(IndexEquivalenceTest, RandomizedWorkload) {
  Model model;
  Random64 rnd(0xC0FFEE ^ static_cast<uint64_t>(GetParam()));
  const size_t kUsers = 20;
  const std::vector<size_t> ks = {0, 1, 3, 10};

  for (int step = 0; step < 4000; step++) {
    int op = static_cast<int>(rnd.Uniform(100));
    std::string key = "t" + std::to_string(rnd.Uniform(600));
    if (op < 70) {
      std::string user = "user" + std::to_string(rnd.Uniform(kUsers));
      uint64_t ctime = 1000 + step;
      db_->Put(key, MakeDoc(user, ctime, std::string(rnd.Uniform(80), 'b')));
      model.Put(key, user, ctime);
    } else if (op < 80) {
      db_->Delete(key);
      model.Delete(key);
    } else if (op < 90) {
      std::string user = "user" + std::to_string(rnd.Uniform(kUsers));
      size_t k = ks[rnd.Uniform(ks.size())];
      ASSERT_EQ(model.Lookup(user, k), Lookup(user, k))
          << "step " << step << " type " << IndexTypeName(GetParam());
    } else {
      uint64_t lo = 1000 + rnd.Uniform(4100);
      uint64_t hi = lo + rnd.Uniform(500);
      size_t k = ks[rnd.Uniform(ks.size())];
      ASSERT_EQ(model.RangeLookup(lo, hi, k), RangeLookup(lo, hi, k))
          << "step " << step << " type " << IndexTypeName(GetParam());
    }
  }

  CheckAllUsers(model, kUsers, ks);
}

TEST_P(IndexEquivalenceTest, SurvivesCompactionAndReopen) {
  Model model;
  Random64 rnd(0xFEED ^ static_cast<uint64_t>(GetParam()));
  const size_t kUsers = 10;

  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 600; i++) {
      std::string key = "t" + std::to_string(rnd.Uniform(400));
      std::string user = "user" + std::to_string(rnd.Uniform(kUsers));
      uint64_t ctime = 1000 + round * 1000 + i;
      db_->Put(key, MakeDoc(user, ctime, std::string(60, 'z')));
      model.Put(key, user, ctime);
      if (rnd.Uniform(10) == 0) {
        std::string victim = "t" + std::to_string(rnd.Uniform(400));
        db_->Delete(victim);
        model.Delete(victim);
      }
    }
    if (round == 0) {
      ASSERT_TRUE(db_->CompactAll().ok());
    } else if (round == 1) {
      Reopen();
    }
    CheckAllUsers(model, kUsers, {0, 1, 5});
    EXPECT_EQ(model.RangeLookup(1000, 3800, 10), RangeLookup(1000, 3800, 10));
  }
}

TEST_P(IndexEquivalenceTest, GetUnaffectedByIndexing) {
  db_->Put("k1", MakeDoc("u1", 5, "v"));
  std::string value;
  ASSERT_TRUE(db_->Get("k1", &value).ok());
  json::Value doc;
  ASSERT_TRUE(json::Parse(Slice(value), &doc));
  EXPECT_EQ("u1", doc["UserID"].as_string());
  ASSERT_TRUE(db_->Delete("k1").ok());
  EXPECT_TRUE(db_->Get("k1", &value).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexTypes, IndexEquivalenceTest,
    testing::Values(IndexType::kNoIndex, IndexType::kEmbedded,
                    IndexType::kLazy, IndexType::kEager,
                    IndexType::kComposite),
    [](const testing::TestParamInfo<IndexType>& info) {
      return IndexTypeName(info.param);
    });

}  // namespace
}  // namespace leveldbpp
