#include "compress/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "util/random.h"

namespace leveldbpp {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  simplelz::Compress(Slice(input), &compressed);
  uint32_t ulen = 0;
  EXPECT_TRUE(simplelz::GetUncompressedLength(Slice(compressed), &ulen));
  EXPECT_EQ(input.size(), ulen);
  std::string output(ulen, '\0');
  EXPECT_TRUE(simplelz::Uncompress(Slice(compressed), output.data()));
  return output;
}

TEST(SimpleLZ, Empty) { EXPECT_EQ("", RoundTrip("")); }

TEST(SimpleLZ, Short) { EXPECT_EQ("abc", RoundTrip("abc")); }

TEST(SimpleLZ, RepetitiveCompresses) {
  std::string input;
  for (int i = 0; i < 1000; i++) {
    input += "the quick brown fox jumps over the lazy dog ";
  }
  std::string compressed;
  simplelz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(SimpleLZ, RunLengthOverlap) {
  // Overlapping copies (offset < length) exercise the byte-wise copy path.
  std::string input(5000, 'a');
  std::string compressed;
  simplelz::Compress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), 300u);
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(SimpleLZ, IncompressibleRoundTrips) {
  Random64 rnd(42);
  std::string input;
  for (int i = 0; i < 10000; i++) {
    input.push_back(static_cast<char>(rnd.Next() & 0xFF));
  }
  EXPECT_EQ(input, RoundTrip(input));
}

TEST(SimpleLZ, RandomizedStructuredData) {
  Random64 rnd(7);
  for (int trial = 0; trial < 50; trial++) {
    std::string input;
    int pieces = 1 + static_cast<int>(rnd.Uniform(40));
    for (int i = 0; i < pieces; i++) {
      if (rnd.Uniform(2) == 0) {
        input.append(static_cast<size_t>(rnd.Uniform(100)),
                     static_cast<char>('a' + rnd.Uniform(4)));
      } else {
        for (uint64_t j = rnd.Uniform(50); j > 0; j--) {
          input.push_back(static_cast<char>(rnd.Next() & 0xFF));
        }
      }
    }
    EXPECT_EQ(input, RoundTrip(input));
  }
}

TEST(SimpleLZ, RejectsTruncated) {
  std::string input(1000, 'x');
  std::string compressed;
  simplelz::Compress(Slice(input), &compressed);
  std::string output(1000, '\0');
  for (size_t cut = 1; cut < compressed.size(); cut += 3) {
    Slice truncated(compressed.data(), compressed.size() - cut);
    uint32_t ulen;
    if (simplelz::GetUncompressedLength(truncated, &ulen)) {
      EXPECT_FALSE(simplelz::Uncompress(truncated, output.data()));
    }
  }
}

}  // namespace
}  // namespace leveldbpp
