// Level-by-level iteration and fragment access: the engine hooks the Lazy
// and Composite indexes depend on (NewLevelIterators, GetFragments,
// EmbeddedScan recency ordering).

#include <gtest/gtest.h>

#include <memory>

#include "core/document.h"
#include "db/db_impl.h"
#include "env/env.h"
#include "table/filter_policy.h"

namespace leveldbpp {
namespace {

class LevelIteratorsTest : public testing::Test {
 protected:
  LevelIteratorsTest() : env_(NewMemEnv()) {
    filter_.reset(NewBloomFilterPolicy(10));
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.max_bytes_for_level_base = 128 << 10;
    options.filter_policy = filter_.get();
    DBImpl* raw = nullptr;
    Status s = DBImpl::Open(options, "/lvldb", &raw);
    EXPECT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  void FillAndSettle(int rounds) {
    for (int r = 0; r < rounds; r++) {
      for (int i = 0; i < 600; i++) {
        ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                             "round" + std::to_string(r) +
                                 std::string(150, 'x'))
                        .ok());
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> filter_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(LevelIteratorsTest, BucketsOrderedByRecency) {
  FillAndSettle(4);
  DBImpl::LevelIterators levels;
  ASSERT_TRUE(db_->NewLevelIterators(ReadOptions(), &levels).ok());
  ASSERT_GE(levels.iters.size(), 2u);  // Memtable + at least one disk bucket
  ASSERT_GE(levels.first_disk, 1u);

  // For a heavily-overwritten key, each bucket's newest version must have a
  // strictly decreasing sequence as we descend buckets.
  SequenceNumber prev_best = kMaxSequenceNumber;
  int buckets_with_key = 0;
  for (Iterator* it : levels.iters) {
    LookupKey lk("key42", kMaxSequenceNumber);
    it->Seek(lk.internal_key());
    if (it->Valid()) {
      ParsedInternalKey ikey;
      ASSERT_TRUE(ParseInternalKey(it->key(), &ikey));
      if (ikey.user_key == Slice("key42")) {
        EXPECT_LT(ikey.sequence, prev_best);
        prev_best = ikey.sequence;
        buckets_with_key++;
      }
    }
  }
  EXPECT_GE(buckets_with_key, 1);
}

TEST_F(LevelIteratorsTest, GetFragmentsNewestFirstAndStoppable) {
  // Three generations of one key in different residences.
  ASSERT_TRUE(db_->Put(WriteOptions(), "frag", "gen1").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "frag", "gen2").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "frag", "gen3").ok());  // In memtable

  std::vector<SequenceNumber> seqs;
  ASSERT_TRUE(db_->GetFragments(ReadOptions(), "frag",
                                [&](int, SequenceNumber seq, bool,
                                    const Slice&) {
                                  seqs.push_back(seq);
                                  return true;
                                })
                  .ok());
  ASSERT_GE(seqs.size(), 2u);
  for (size_t i = 1; i < seqs.size(); i++) {
    EXPECT_GT(seqs[i - 1], seqs[i]);
  }

  // Early termination: returning false stops the walk.
  int calls = 0;
  ASSERT_TRUE(db_->GetFragments(ReadOptions(), "frag",
                                [&](int, SequenceNumber, bool, const Slice&) {
                                  calls++;
                                  return false;
                                })
                  .ok());
  EXPECT_EQ(1, calls);
}

TEST_F(LevelIteratorsTest, GetFragmentsReportsTombstones) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "dead", "v1").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "dead").ok());

  std::vector<bool> deletions;
  ASSERT_TRUE(db_->GetFragments(ReadOptions(), "dead",
                                [&](int, SequenceNumber, bool deleted,
                                    const Slice&) {
                                  deletions.push_back(deleted);
                                  return true;
                                })
                  .ok());
  ASSERT_GE(deletions.size(), 2u);
  EXPECT_TRUE(deletions[0]);   // Newest fragment: the tombstone
  EXPECT_FALSE(deletions[1]);  // Older value still on disk
}

TEST_F(LevelIteratorsTest, ScanAllSkipsDeletedAndOldVersions) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "a1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "a", "a2").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "b", "b1").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "b").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "c", "c1").ok());

  std::string dump;
  ASSERT_TRUE(db_->ScanAll(ReadOptions(),
                           [&](const Slice& key, SequenceNumber,
                               const Slice& value) {
                             dump += key.ToString() + "=" +
                                     value.ToString() + ";";
                             return true;
                           })
                  .ok());
  EXPECT_EQ("a=a2;c=c1;", dump);
}

TEST_F(LevelIteratorsTest, EmbeddedScanVisitsL0FilesNewestFirst) {
  // Build a DB with embedded meta and multiple L0 files.
  Options options;
  options.env = env_.get();
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 32 << 10;
  // Raise the trigger so L0 files accumulate without compaction.
  options.l0_compaction_trigger = 100;
  options.secondary_attributes = {"UserID"};
  options.attribute_extractor = JsonAttributeExtractor::Instance();
  options.secondary_filter_policy = filter_.get();
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/l0db", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "t" + std::to_string(i),
                        "{\"UserID\":\"u1\",\"pad\":\"" +
                            std::string(100, 'p') + "\"}")
                    .ok());
  }
  std::string num_l0;
  ASSERT_TRUE(db->GetProperty("leveldbpp.num-files-at-level0", &num_l0));
  ASSERT_GT(std::stoi(num_l0), 1);

  std::vector<uint64_t> file_order;
  uint64_t prev_file = 0;
  ASSERT_TRUE(db->EmbeddedScan(
                    ReadOptions(), "UserID", "u1", "u1",
                    [&](Table*, size_t, int level, uint64_t file) {
                      ASSERT_EQ(0, level);
                      if (file != prev_file) {
                        file_order.push_back(file);
                        prev_file = file;
                      }
                    },
                    [](SequenceNumber) { return true; })
                  .ok());
  ASSERT_GT(file_order.size(), 1u);
  for (size_t i = 1; i < file_order.size(); i++) {
    EXPECT_GT(file_order[i - 1], file_order[i])
        << "L0 files must be visited newest-first";
  }
}

}  // namespace
}  // namespace leveldbpp
