// Data-block format tests: restart-point prefix compression round-trips,
// seeks, and parameterized restart intervals.

#include "table/block.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "table/block_builder.h"
#include "util/comparator.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

class BlockRoundTripTest : public testing::TestWithParam<int> {
 protected:
  // Builds a block from `entries` and returns an iterator over it.
  void Build(const std::map<std::string, std::string>& entries) {
    BlockBuilder builder(GetParam());
    for (const auto& [key, value] : entries) {
      builder.Add(key, value);
    }
    contents_ = builder.Finish().ToString();
    BlockContents bc;
    bc.data = Slice(contents_);
    bc.heap_allocated = false;
    bc.cachable = false;
    block_ = std::make_unique<Block>(bc);
  }

  Iterator* NewIterator() {
    return block_->NewIterator(BytewiseComparator());
  }

  std::string contents_;
  std::unique_ptr<Block> block_;
};

TEST_P(BlockRoundTripTest, Empty) {
  Build({});
  std::unique_ptr<Iterator> it(NewIterator());
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("anything");
  EXPECT_FALSE(it->Valid());
}

TEST_P(BlockRoundTripTest, IterationMatchesInput) {
  std::map<std::string, std::string> entries;
  Random64 rnd(GetParam());
  for (int i = 0; i < 300; i++) {
    // Shared prefixes stress the delta encoding.
    std::string key = "prefix/" + std::to_string(rnd.Uniform(10)) + "/key" +
                      std::to_string(i);
    entries[key] = "value" + std::to_string(i);
  }
  Build(entries);

  std::unique_ptr<Iterator> it(NewIterator());
  auto mit = entries.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_TRUE(mit != entries.end());
    EXPECT_EQ(mit->first, it->key().ToString());
    EXPECT_EQ(mit->second, it->value().ToString());
  }
  EXPECT_TRUE(mit == entries.end());
}

TEST_P(BlockRoundTripTest, SeekEveryKeyAndGaps) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i * 10);
    entries[key] = std::to_string(i);
  }
  Build(entries);
  std::unique_ptr<Iterator> it(NewIterator());

  for (const auto& [key, value] : entries) {
    it->Seek(key);
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(key, it->key().ToString());
    EXPECT_EQ(value, it->value().ToString());
  }
  // Seeks between keys land on the successor.
  it->Seek("k0015");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0020", it->key().ToString());
  // Before the first key.
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("k0000", it->key().ToString());
  // After the last key.
  it->Seek("zzzz");
  EXPECT_FALSE(it->Valid());
}

TEST_P(BlockRoundTripTest, EmptyKeysAndValues) {
  std::map<std::string, std::string> entries;
  entries[""] = "";  // Empty key is legal as the first entry
  entries["a"] = "";
  entries["b"] = std::string(1000, 'v');
  Build(entries);
  std::unique_ptr<Iterator> it(NewIterator());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("", it->key().ToString());
  it->Next();
  EXPECT_EQ("a", it->key().ToString());
  EXPECT_EQ("", it->value().ToString());
  it->Next();
  EXPECT_EQ(std::string(1000, 'v'), it->value().ToString());
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockRoundTripTest,
                         testing::Values(1, 2, 16, 128),
                         [](const testing::TestParamInfo<int>& info) {
                           return "Restart" + std::to_string(info.param);
                         });

TEST(BlockTest, CorruptContentsYieldErrorIterator) {
  BlockContents bc;
  std::string garbage = "\x01\x02";
  bc.data = Slice(garbage);
  bc.heap_allocated = false;
  bc.cachable = false;
  Block block(bc);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  EXPECT_FALSE(it->Valid());
  // Either an error iterator or safely invalid — never a crash.
  it->Seek("x");
  EXPECT_FALSE(it->Valid());
}

}  // namespace
}  // namespace leveldbpp
