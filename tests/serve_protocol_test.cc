// Wire protocol + server robustness: round-trips, concurrent clients, and
// the malformed-input gauntlet.
//
// The invariant under attack: NO byte stream a client can send — torn,
// truncated, oversized, or fuzzed — may crash or wedge the server. The
// worst allowed outcome is an error frame and a dropped connection; a
// fresh connection must always work afterwards.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/sharded_db.h"
#include "util/coding.h"

namespace leveldbpp {
namespace {

struct ServeFixture {
  std::unique_ptr<Env> env;
  std::unique_ptr<ShardedDB> db;
  std::unique_ptr<Server> server;

  explicit ServeFixture(int shards = 2) {
    env.reset(NewMemEnv());
    ShardedDBOptions options;
    options.shard.base.env = env.get();
    options.shard.base.write_buffer_size = 16 << 10;
    options.shard.index_type = IndexType::kLazy;
    options.shard.indexed_attributes = {"UserID"};
    options.num_shards = shards;
    EXPECT_TRUE(ShardedDB::Open(options, "/serve", &db).ok());
    EXPECT_TRUE(Server::Start(db.get(), ServerOptions(), &server).ok());
  }

  ~ServeFixture() {
    if (server != nullptr) server->Stop();
  }

  std::unique_ptr<Client> Connect() {
    std::unique_ptr<Client> client;
    EXPECT_TRUE(Client::Connect("127.0.0.1", server->port(), &client).ok());
    return client;
  }
};

std::string Doc(const std::string& user, int i) {
  return "{\"UserID\":\"" + user + "\",\"Seq\":" + std::to_string(i) + "}";
}

TEST(ServeProtocolTest, RoundTrips) {
  ServeFixture fx;
  std::unique_ptr<Client> client = fx.Connect();

  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Put("alpha", Doc("u1", 1)).ok());
  ASSERT_TRUE(client->Put("beta", Doc("u1", 2)).ok());
  ASSERT_TRUE(client->Put("gamma", Doc("u2", 3)).ok());

  std::string value;
  ASSERT_TRUE(client->Get("alpha", &value).ok());
  EXPECT_EQ(Doc("u1", 1), value);
  EXPECT_TRUE(client->Get("missing", &value).IsNotFound());

  std::vector<QueryResult> results;
  ASSERT_TRUE(client->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(2u, results.size());
  EXPECT_EQ("beta", results[0].primary_key);   // Newest first
  EXPECT_EQ("alpha", results[1].primary_key);
  EXPECT_GT(results[0].seq, results[1].seq);
  EXPECT_EQ(Doc("u1", 2), results[0].value);

  ASSERT_TRUE(client->RangeLookup("UserID", "u1", "u2", 0, &results).ok());
  EXPECT_EQ(3u, results.size());
  ASSERT_TRUE(client->RangeLookup("UserID", "u1", "u2", 1, &results).ok());
  ASSERT_EQ(1u, results.size());
  EXPECT_EQ("gamma", results[0].primary_key);

  ASSERT_TRUE(client->Delete("beta").ok());
  EXPECT_TRUE(client->Get("beta", &value).IsNotFound());
  ASSERT_TRUE(client->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(1u, results.size());

  std::string stats;
  ASSERT_TRUE(client->Stats(&stats).ok());
  EXPECT_NE(std::string::npos, stats.find("\"num_shards\":2"));
  EXPECT_NE(std::string::npos, stats.find("shard.writes.routed"));

  EXPECT_GE(fx.db->statistics()->Get(kServeRequests), 10u);
  EXPECT_GE(fx.db->statistics()->Get(kServeConnections), 1u);
  EXPECT_GT(fx.db->statistics()->Get(kServeBytesRead), 0u);
  EXPECT_GT(fx.db->statistics()->Get(kServeBytesWritten), 0u);
}

TEST(ServeProtocolTest, ConcurrentClients) {
  ServeFixture fx(/*shards=*/4);
  constexpr int kThreads = 4;
  constexpr int kOps = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&fx, t]() {
      std::unique_ptr<Client> client;
      ASSERT_TRUE(
          Client::Connect("127.0.0.1", fx.server->port(), &client).ok());
      std::vector<QueryResult> results;
      for (int i = 0; i < kOps; i++) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(client->Put(key, Doc("u" + std::to_string(i % 3), i)).ok());
        if (i % 5 == 0) {
          ASSERT_TRUE(
              client->Lookup("UserID", "u" + std::to_string(i % 3), 3,
                             &results)
                  .ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::unique_ptr<Client> client = fx.Connect();
  std::vector<QueryResult> results;
  ASSERT_TRUE(client->Lookup("UserID", "u0", 0, &results).ok());
  EXPECT_GT(results.size(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kOps,
            fx.db->statistics()->Get(kShardWritesRouted));
}

// A frame whose header promises more than max_frame_bytes must be refused
// from the header alone, with an error frame, and the connection dropped.
TEST(ServeProtocolTest, OversizedFrameIsRefused) {
  ServeFixture fx;
  std::unique_ptr<Client> client = fx.Connect();
  std::string huge(wire::kHeaderBytes, '\0');
  EncodeFixed32(&huge[0], wire::kMaxFrameBytes + 1);
  ASSERT_TRUE(client->SendRaw(huge).ok());

  wire::Response resp;
  ASSERT_TRUE(client->ReadRawResponse(&resp, /*timeout=*/2000000).ok());
  EXPECT_EQ(wire::kError, resp.code);
  EXPECT_EQ(1u, fx.db->statistics()->Get(kServeMalformedFrames));

  // Connection is dropped afterwards...
  EXPECT_FALSE(client->ReadRawResponse(&resp, 2000000).ok());
  // ...but the server lives on.
  EXPECT_TRUE(fx.Connect()->Ping().ok());
}

// A peer that vanishes mid-frame (torn header or torn payload) just closes
// its handler; the server keeps serving.
TEST(ServeProtocolTest, TornFramesDoNotWedgeTheServer) {
  ServeFixture fx;
  {
    std::unique_ptr<Client> client = fx.Connect();
    ASSERT_TRUE(client->SendRaw(Slice("\x02", 1)).ok());  // Partial header
  }
  {
    std::unique_ptr<Client> client = fx.Connect();
    std::string frame;
    wire::Request req;
    req.op = wire::kPut;
    req.key = "k";
    req.value = Doc("u", 1);
    wire::EncodeRequest(req, &frame);
    // Header + half the payload, then close.
    ASSERT_TRUE(
        client->SendRaw(Slice(frame.data(), frame.size() / 2)).ok());
  }
  EXPECT_TRUE(fx.Connect()->Ping().ok());
}

// Fuzz gauntlet: seeded mutations of valid frames. Any of (valid response |
// error frame | dropped connection) is acceptable; crash or wedge is not.
TEST(ServeProtocolTest, FuzzedFramesNeverWedge) {
  ServeFixture fx;

  // A pool of valid frames to mutate.
  std::vector<std::string> pool;
  {
    wire::Request req;
    std::string f;
    req.op = wire::kPut;
    req.key = "fuzz-key";
    req.value = Doc("u9", 7);
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();
    req.op = wire::kGet;
    req.key = "fuzz-key";
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();
    req.op = wire::kLookup;
    req.attribute = "UserID";
    req.value = "u9";
    req.k = 3;
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();
    req.op = wire::kRangeLookup;
    req.attribute = "UserID";
    req.lo = "a";
    req.hi = "z";
    req.k = 5;
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();
    req.op = wire::kPing;
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();  // PR 9 fields: deadline + degraded flag
    req.op = wire::kLookup;
    req.attribute = "UserID";
    req.value = "u9";
    req.k = 2;
    req.deadline_micros = 123456789;
    req.allow_degraded = true;
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
    f.clear();
    req = wire::Request();
    req.op = wire::kHealth;
    wire::EncodeRequest(req, &f);
    pool.push_back(f);
  }

  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  constexpr int kRounds = 200;
  int dropped = 0, answered = 0;
  for (int i = 0; i < kRounds; i++) {
    std::string frame = pool[next() % pool.size()];
    switch (i % 6) {
      case 0:  // Flip one byte
        frame[next() % frame.size()] ^= static_cast<char>(1 + next() % 255);
        break;
      case 1:  // Truncate
        frame.resize(1 + next() % (frame.size() - 1));
        break;
      case 2:  // Append garbage
        for (uint64_t n = 1 + next() % 8, j = 0; j < n; j++) {
          frame.push_back(static_cast<char>(next()));
        }
        break;
      case 3:  // Zero the length header (empty payload, trailing bytes)
        EncodeFixed32(&frame[0], 0);
        break;
      case 4:  // Huge length header
        EncodeFixed32(&frame[0],
                      wire::kMaxFrameBytes + 1 + next() % 1000000);
        break;
      case 5:  // Pure garbage, no structure at all
        frame.assign(4 + next() % 32, '\0');
        for (char& c : frame) c = static_cast<char>(next());
        break;
    }

    std::unique_ptr<Client> client = fx.Connect();
    ASSERT_TRUE(client != nullptr) << "round " << i;
    Status ss = client->SendRaw(frame);
    if (!ss.ok()) continue;  // Server already closed on us — acceptable
    wire::Response resp;
    // Short timeout: a mutation that leaves the server expecting more bytes
    // will never answer; closing our end unwedges its handler.
    Status rs = client->ReadRawResponse(&resp, /*timeout=*/100000);
    if (rs.ok()) {
      answered++;
    } else {
      dropped++;
    }
  }
  // Sanity on the distribution: both outcomes occur, and the malformed
  // counter moved (case 4 alone guarantees >= kRounds/6 rejections).
  EXPECT_GT(answered, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_GE(fx.db->statistics()->Get(kServeMalformedFrames),
            static_cast<uint64_t>(kRounds) / 6);

  // The server must still serve real traffic.
  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Put("after-fuzz", Doc("u1", 1)).ok());
  std::string value;
  ASSERT_TRUE(client->Get("after-fuzz", &value).ok());
  EXPECT_EQ(Doc("u1", 1), value);
}

TEST(ServeProtocolTest, StopWhileClientsConnected) {
  ServeFixture fx;
  std::unique_ptr<Client> idle = fx.Connect();     // Parked in recv
  std::unique_ptr<Client> active = fx.Connect();
  ASSERT_TRUE(active->Ping().ok());

  fx.server->Stop();  // Must not hang on the parked connection

  wire::Response resp;
  EXPECT_FALSE(idle->ReadRawResponse(&resp, 2000000).ok());
  std::unique_ptr<Client> late;
  EXPECT_FALSE(
      Client::Connect("127.0.0.1", fx.server->port(), &late).ok() &&
      late->Ping().ok());
}

TEST(ServeProtocolTest, WireCodecRejectsTrailingBytes) {
  wire::Request req;
  req.op = wire::kGet;
  req.key = "k";
  std::string frame;
  wire::EncodeRequest(req, &frame);
  // Strip the header, append a byte: strict decoding must refuse.
  std::string payload = frame.substr(wire::kHeaderBytes);
  payload.push_back('x');
  wire::Request decoded;
  EXPECT_TRUE(wire::DecodeRequest(Slice(payload), &decoded).IsCorruption());

  // And the pristine payload round-trips.
  payload.pop_back();
  ASSERT_TRUE(wire::DecodeRequest(Slice(payload), &decoded).ok());
  EXPECT_EQ(wire::kGet, decoded.op);
  EXPECT_EQ("k", decoded.key);

  wire::Response resp;
  resp.code = wire::kOk;
  resp.payload = "hello";
  resp.results.push_back(QueryResult{"pk", 42, "{\"a\":1}"});
  std::string rframe;
  wire::EncodeResponse(resp, &rframe);
  wire::Response rdecoded;
  ASSERT_TRUE(wire::DecodeResponse(
                  Slice(rframe.data() + wire::kHeaderBytes,
                        rframe.size() - wire::kHeaderBytes),
                  &rdecoded)
                  .ok());
  EXPECT_EQ("hello", rdecoded.payload);
  ASSERT_EQ(1u, rdecoded.results.size());
  EXPECT_EQ("pk", rdecoded.results[0].primary_key);
  EXPECT_EQ(42u, rdecoded.results[0].seq);
}

// PR 9 wire additions: deadlines, degradation flags, and the two new
// status codes must survive an encode/decode round trip exactly.
TEST(ServeProtocolTest, DeadlineAndDegradedFieldsRoundTrip) {
  wire::Request req;
  req.op = wire::kLookup;
  req.attribute = "UserID";
  req.value = "u1";
  req.k = 7;
  req.deadline_micros = 0x0123456789abcdefull;
  req.allow_degraded = true;
  std::string frame;
  wire::EncodeRequest(req, &frame);
  wire::Request decoded;
  ASSERT_TRUE(wire::DecodeRequest(Slice(frame.data() + wire::kHeaderBytes,
                                        frame.size() - wire::kHeaderBytes),
                                  &decoded)
                  .ok());
  EXPECT_EQ(req.deadline_micros, decoded.deadline_micros);
  EXPECT_TRUE(decoded.allow_degraded);
  EXPECT_EQ(7u, decoded.k);

  wire::Response resp;
  resp.code = wire::kRetryLater;
  resp.retry_after_micros = 10000;
  resp.payload = "busy";
  std::string rframe;
  wire::EncodeResponse(resp, &rframe);
  wire::Response rdecoded;
  ASSERT_TRUE(wire::DecodeResponse(
                  Slice(rframe.data() + wire::kHeaderBytes,
                        rframe.size() - wire::kHeaderBytes),
                  &rdecoded)
                  .ok());
  EXPECT_EQ(wire::kRetryLater, rdecoded.code);
  EXPECT_EQ(10000u, rdecoded.retry_after_micros);
  EXPECT_EQ("busy", rdecoded.payload);

  resp = wire::Response();
  resp.code = wire::kDeadlineExceeded;
  resp.payload = "too late";
  rframe.clear();
  wire::EncodeResponse(resp, &rframe);
  ASSERT_TRUE(wire::DecodeResponse(
                  Slice(rframe.data() + wire::kHeaderBytes,
                        rframe.size() - wire::kHeaderBytes),
                  &rdecoded)
                  .ok());
  EXPECT_EQ(wire::kDeadlineExceeded, rdecoded.code);

  resp = wire::Response();
  resp.code = wire::kOk;
  resp.degraded = true;
  resp.missing_shards = 3;
  resp.results.push_back(QueryResult{"pk", 9, "{\"a\":1}"});
  rframe.clear();
  wire::EncodeResponse(resp, &rframe);
  ASSERT_TRUE(wire::DecodeResponse(
                  Slice(rframe.data() + wire::kHeaderBytes,
                        rframe.size() - wire::kHeaderBytes),
                  &rdecoded)
                  .ok());
  EXPECT_TRUE(rdecoded.degraded);
  EXPECT_EQ(3u, rdecoded.missing_shards);
  ASSERT_EQ(1u, rdecoded.results.size());
}

// A response whose code byte is not a known StatusCode must be refused by
// strict decoding, not mapped to some arbitrary enum value.
TEST(ServeProtocolTest, UnknownStatusCodeIsRejected) {
  wire::Response resp;
  resp.code = wire::kOk;
  resp.payload = "x";
  std::string frame;
  wire::EncodeResponse(resp, &frame);
  std::string payload = frame.substr(wire::kHeaderBytes);
  for (uint8_t bad : {static_cast<uint8_t>(wire::kRetryLater + 1),
                      static_cast<uint8_t>(200), static_cast<uint8_t>(255)}) {
    payload[0] = static_cast<char>(bad);
    wire::Response decoded;
    EXPECT_TRUE(wire::DecodeResponse(Slice(payload), &decoded).IsCorruption())
        << "code " << static_cast<int>(bad);
  }
}

// Unknown flag bits (request and response) are malformed, so old decoders
// can never silently ignore semantics a future peer relies on.
TEST(ServeProtocolTest, UnknownFlagBitsAreRejected) {
  wire::Request req;
  req.op = wire::kGet;
  req.key = "k";
  std::string frame;
  wire::EncodeRequest(req, &frame);
  // Payload layout: [op:1][deadline:8][flags:1]...
  std::string payload = frame.substr(wire::kHeaderBytes);
  payload[9] = static_cast<char>(0x2);
  wire::Request decoded;
  EXPECT_TRUE(wire::DecodeRequest(Slice(payload), &decoded).IsCorruption());

  wire::Response resp;
  resp.code = wire::kOk;
  std::string rframe;
  wire::EncodeResponse(resp, &rframe);
  // Payload layout: [code:1][retry_after:8][flags:1]...
  std::string rpayload = rframe.substr(wire::kHeaderBytes);
  rpayload[9] = static_cast<char>(0x80);
  wire::Response rdecoded;
  EXPECT_TRUE(
      wire::DecodeResponse(Slice(rpayload), &rdecoded).IsCorruption());
}

}  // namespace
}  // namespace leveldbpp
