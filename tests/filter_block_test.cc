#include "table/filter_block.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/coding.h"
#include "util/hash.h"

namespace leveldbpp {

// For testing: emit an array with one hash value per key
class TestHashFilter : public FilterPolicy {
 public:
  const char* Name() const override { return "TestHashFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    for (int i = 0; i < n; i++) {
      uint32_t h = Hash(keys[i].data(), keys[i].size(), 1);
      PutFixed32(dst, h);
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    uint32_t h = Hash(key.data(), key.size(), 1);
    for (size_t i = 0; i + 4 <= filter.size(); i += 4) {
      if (h == DecodeFixed32(filter.data() + i)) {
        return true;
      }
    }
    return false;
  }
};

class FilterBlockTest : public testing::Test {
 protected:
  TestHashFilter policy_;
};

TEST_F(FilterBlockTest, EmptyBuilder) {
  FilterBlockBuilder builder(&policy_);
  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);
  ASSERT_EQ(0u, reader.NumFilters());
  // Out-of-range block indexes fail open.
  ASSERT_TRUE(reader.KeyMayMatch(0, "foo"));
}

TEST_F(FilterBlockTest, SingleBlock) {
  FilterBlockBuilder builder(&policy_);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.FinishBlock();
  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);
  ASSERT_EQ(1u, reader.NumFilters());
  ASSERT_TRUE(reader.KeyMayMatch(0, "foo"));
  ASSERT_TRUE(reader.KeyMayMatch(0, "bar"));
  ASSERT_TRUE(reader.KeyMayMatch(0, "box"));
  ASSERT_TRUE(!reader.KeyMayMatch(0, "missing"));
  ASSERT_TRUE(!reader.KeyMayMatch(0, "other"));
}

TEST_F(FilterBlockTest, PerBlockIsolation) {
  FilterBlockBuilder builder(&policy_);
  // Block 0
  builder.AddKey("block0-key");
  builder.FinishBlock();
  // Block 1: no keys at all (e.g. no record carried the attribute)
  builder.FinishBlock();
  // Block 2
  builder.AddKey("block2-key");
  builder.AddKey("shared-key");
  builder.FinishBlock();

  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);
  ASSERT_EQ(3u, reader.NumFilters());

  ASSERT_TRUE(reader.KeyMayMatch(0, "block0-key"));
  ASSERT_TRUE(!reader.KeyMayMatch(0, "block2-key"));

  // An EMPTY per-block filter means "definitely no keys here".
  ASSERT_TRUE(!reader.KeyMayMatch(1, "block0-key"));
  ASSERT_TRUE(!reader.KeyMayMatch(1, "anything"));

  ASSERT_TRUE(reader.KeyMayMatch(2, "block2-key"));
  ASSERT_TRUE(reader.KeyMayMatch(2, "shared-key"));
  ASSERT_TRUE(!reader.KeyMayMatch(2, "block0-key"));
}

TEST_F(FilterBlockTest, ManyBlocks) {
  FilterBlockBuilder builder(&policy_);
  const int kBlocks = 100;
  for (int b = 0; b < kBlocks; b++) {
    builder.AddKey("key-" + std::to_string(b));
    builder.FinishBlock();
  }
  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);
  ASSERT_EQ(static_cast<size_t>(kBlocks), reader.NumFilters());
  for (int b = 0; b < kBlocks; b++) {
    ASSERT_TRUE(reader.KeyMayMatch(b, "key-" + std::to_string(b)));
    ASSERT_TRUE(!reader.KeyMayMatch(b, "key-" + std::to_string(b + 1)));
  }
}

TEST_F(FilterBlockTest, CorruptContentsFailOpen) {
  FilterBlockReader reader(&policy_, Slice("garbage"));
  // Truncated/corrupt filter blocks never produce false negatives.
  ASSERT_TRUE(reader.KeyMayMatch(0, "anything"));
}

}  // namespace leveldbpp
