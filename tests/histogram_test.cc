// Histogram edge cases: empty and single-sample histograms must report
// sane summaries (the empty-percentile bug returned the 1e200 bucket
// sentinel before the guard), and Merge must behave as if the merged
// samples had been Added directly — including merges involving empty
// histograms in either position.

#include "util/histogram.h"

#include <gtest/gtest.h>

#include "env/statistics.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0, h.Sum());
  EXPECT_EQ(0, h.Average());
  EXPECT_EQ(0, h.StandardDeviation());
  // Regression: these previously surfaced the 1e200 min_ sentinel.
  EXPECT_EQ(0, h.Min());
  EXPECT_EQ(0, h.Max());
  EXPECT_EQ(0, h.Median());
  EXPECT_EQ(0, h.Percentile(0));
  EXPECT_EQ(0, h.Percentile(25));
  EXPECT_EQ(0, h.Percentile(100));
  Histogram::BoxPlot bp = h.GetBoxPlot();
  EXPECT_EQ(0, bp.lo_whisker);
  EXPECT_EQ(0, bp.q1);
  EXPECT_EQ(0, bp.median);
  EXPECT_EQ(0, bp.q3);
  EXPECT_EQ(0, bp.hi_whisker);
}

TEST(HistogramTest, SingleSampleQuantilesClampToTheSample) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(1u, h.Count());
  EXPECT_EQ(42, h.Min());
  EXPECT_EQ(42, h.Max());
  EXPECT_EQ(42, h.Average());
  // Every quantile of a one-sample distribution is that sample; the min/max
  // clamp inside Percentile must enforce it despite bucket interpolation.
  EXPECT_EQ(42, h.Percentile(1));
  EXPECT_EQ(42, h.Median());
  EXPECT_EQ(42, h.Percentile(99));
}

TEST(HistogramTest, ClearResetsToEmptyState) {
  Histogram h;
  h.Add(5);
  h.Add(500);
  h.Clear();
  EXPECT_EQ(0u, h.Count());
  EXPECT_EQ(0, h.Min());
  EXPECT_EQ(0, h.Median());
}

TEST(HistogramTest, MergeMatchesDirectAdds) {
  Random rnd(301);
  Histogram a, b, direct;
  for (int i = 0; i < 500; i++) {
    double v = 1 + rnd.Uniform(100000);
    a.Add(v);
    direct.Add(v);
  }
  for (int i = 0; i < 300; i++) {
    double v = 1 + rnd.Uniform(1000);
    b.Add(v);
    direct.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(direct.Count(), a.Count());
  EXPECT_EQ(direct.Sum(), a.Sum());
  EXPECT_EQ(direct.Min(), a.Min());
  EXPECT_EQ(direct.Max(), a.Max());
  EXPECT_EQ(direct.Average(), a.Average());
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    EXPECT_EQ(direct.Percentile(p), a.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentityBothWays) {
  Histogram samples;
  samples.Add(7);
  samples.Add(300);

  // Empty into non-empty: nothing changes. The empty side's min_ sentinel
  // (1e200) must not leak into the merged min.
  Histogram a = samples;
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(samples.Count(), a.Count());
  EXPECT_EQ(7, a.Min());
  EXPECT_EQ(300, a.Max());
  EXPECT_EQ(samples.Median(), a.Median());

  // Non-empty into empty: the result is a copy of the samples.
  Histogram b;
  b.Merge(samples);
  EXPECT_EQ(samples.Count(), b.Count());
  EXPECT_EQ(7, b.Min());
  EXPECT_EQ(300, b.Max());
  EXPECT_EQ(samples.Median(), b.Median());

  // Empty into empty stays empty (and keeps reporting zeros).
  Histogram c, d;
  c.Merge(d);
  EXPECT_EQ(0u, c.Count());
  EXPECT_EQ(0, c.Min());
  EXPECT_EQ(0, c.Percentile(50));
}

TEST(HistogramTest, OverflowBucketCapturesHugeValues) {
  Histogram h;
  h.Add(1e12);  // Beyond the 1e11 bucket: lands in the 1e200 overflow bucket
  h.Add(1);
  EXPECT_EQ(2u, h.Count());
  EXPECT_EQ(1, h.Min());
  EXPECT_EQ(1e12, h.Max());
  // Quantiles stay clamped to observed samples, not bucket bounds.
  EXPECT_LE(h.Percentile(99), 1e12);
}

TEST(HistogramTest, StatisticsHistogramRegistryRoundTrips) {
  Statistics stats;
  stats.RecordHistogram(kHistGetMicros, 100);
  stats.RecordHistogram(kHistGetMicros, 200);
  Histogram h = stats.GetHistogram(kHistGetMicros);
  EXPECT_EQ(2u, h.Count());
  EXPECT_EQ(100, h.Min());
  EXPECT_EQ(200, h.Max());
  // Untouched histograms stay empty.
  EXPECT_EQ(0u, stats.GetHistogram(kHistFlushMicros).Count());
  // The text dump names only the histograms that have samples.
  std::string text = stats.HistogramsToString();
  EXPECT_NE(std::string::npos, text.find("get.micros"));
  EXPECT_EQ(std::string::npos, text.find("flush.micros"));
  stats.Reset();
  EXPECT_EQ(0u, stats.GetHistogram(kHistGetMicros).Count());
}

TEST(HistogramTest, EveryHistogramTypeHasAName) {
  for (uint32_t i = 0; i < kHistogramCount; i++) {
    const char* name = HistogramName(static_cast<HistogramType>(i));
    ASSERT_NE(nullptr, name);
    EXPECT_GT(std::string(name).size(), 0u) << i;
  }
}

}  // namespace
}  // namespace leveldbpp
