// Deterministic crash-point recovery matrix: every index variant is driven
// through write -> crash -> reopen cycles with the crash placed at exact
// env-operation counts swept across the whole workload, under both clean
// power loss (unsynced data dropped) and torn writes (a seeded-random
// prefix of the unsynced tail survives). After each recovery the engine is
// checked against a golden model: no acknowledged write lost, no write
// accepted after a failure, and every Lookup/RangeLookup answer exactly
// derivable from the recovered primary table. See crash_harness.h.

#include "crash_harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace leveldbpp {
namespace {

using crash::DeleteOp;
using crash::Op;
using crash::PutOp;

// Deterministic mixed workload: 140 ops over 45 keys and 6 users, with
// updates (same key, different user), deletes, and re-puts after delete.
// Document padding makes the volume cross several memtable flushes at the
// harness's 64KB write buffer, so crash points land inside flush and
// version-edit I/O, not just WAL appends.
std::vector<Op> MakeWorkload() {
  std::vector<Op> ops;
  uint64_t ts = 1000;
  char key[16], user[8];
  for (int i = 0; i < 140; i++) {
    if (i % 9 == 5) {
      std::snprintf(key, sizeof(key), "key%03d", (i * 7) % 45);
      ops.push_back(DeleteOp(key));
      continue;
    }
    std::snprintf(key, sizeof(key), "key%03d", (i * 13) % 45);
    std::snprintf(user, sizeof(user), "u%d", (i * 5) % 6);
    ops.push_back(PutOp(key, user, ts++, /*pad=*/700));
  }
  return ops;
}

class CrashRecoveryTest : public testing::TestWithParam<IndexType> {};

TEST_P(CrashRecoveryTest, CrashPointMatrix) {
  const IndexType type = GetParam();
  const std::vector<Op> ops = MakeWorkload();

  // Probe the fault-free run for its total env-operation count, then sweep
  // crash points across it (plus one past the end: a crash with everything
  // acknowledged must recover the full model).
  const uint64_t total_ops = crash::CountEnvOps(type, ops);
  ASSERT_GT(total_ops, 0u);
  const uint64_t stride = std::max<uint64_t>(1, total_ops / 9);

  std::vector<uint64_t> crash_points;
  for (uint64_t n = 0; n < total_ops; n += stride) crash_points.push_back(n);
  crash_points.push_back(total_ops + 10);

  int point_index = 0;
  for (uint64_t crash_at : crash_points) {
    // Alternate crash modes across the sweep; the seed derives from the
    // crash point so every torn-tail cut is reproducible in isolation.
    const auto mode = (point_index++ % 2 == 0)
                          ? FaultInjectionEnv::CrashMode::kDropUnsynced
                          : FaultInjectionEnv::CrashMode::kTornTail;
    const uint32_t seed = 1000 + static_cast<uint32_t>(crash_at);
    crash::RunCrashCycle(
        type, ops, crash_at, mode, seed,
        std::string(IndexTypeName(type)) + " crash_at=" +
            std::to_string(crash_at) + "/" + std::to_string(total_ops) +
            " mode=" + crash::CrashModeName(mode) +
            " seed=" + std::to_string(seed));
    if (testing::Test::HasFatalFailure()) return;
  }
}

// Both crash modes at every boundary of one mid-workload operation: the
// fine-grained version of the matrix around a single op, catching
// off-by-one durability bugs the strided sweep could step over.
TEST_P(CrashRecoveryTest, EveryBoundaryOfOneOp) {
  const IndexType type = GetParam();
  std::vector<Op> ops;
  for (int i = 0; i < 12; i++) {
    ops.push_back(PutOp("key" + std::to_string(i % 5),
                        "u" + std::to_string(i % 3), 2000 + i));
  }
  ops.push_back(DeleteOp("key2"));

  // Env ops consumed by everything up to and including the 6th op, probed
  // by running the 6-op prefix.
  const std::vector<Op> prefix(ops.begin(), ops.begin() + 6);
  const uint64_t before = crash::CountEnvOps(type, prefix);
  const uint64_t after =
      crash::CountEnvOps(type, std::vector<Op>(ops.begin(), ops.begin() + 7));

  for (uint64_t crash_at = before; crash_at <= after; crash_at++) {
    for (auto mode : {FaultInjectionEnv::CrashMode::kDropUnsynced,
                      FaultInjectionEnv::CrashMode::kTornTail}) {
      const uint32_t seed = 7000 + static_cast<uint32_t>(crash_at);
      crash::RunCrashCycle(
          type, ops, crash_at, mode, seed,
          std::string(IndexTypeName(type)) + " boundary crash_at=" +
              std::to_string(crash_at) + " mode=" +
              crash::CrashModeName(mode) + " seed=" + std::to_string(seed));
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CrashRecoveryTest,
                         testing::Values(IndexType::kNoIndex,
                                         IndexType::kEmbedded,
                                         IndexType::kLazy, IndexType::kEager,
                                         IndexType::kComposite),
                         [](const testing::TestParamInfo<IndexType>& info) {
                           return IndexTypeName(info.param);
                         });

}  // namespace
}  // namespace leveldbpp
