// FaultInjectionEnv unit tests (durability tracking, crash simulation,
// deterministic and probabilistic error injection) plus DB-level checks:
// synced writes survive a simulated crash, injected write errors surface as
// non-OK Status and stick until reopen, and the recovery tickers
// (recovery.wal.records / recovery.torn.tail.bytes / fault.injected.errors)
// are plumbed through GetProperty("leveldbpp.stats").

#include "env/fault_injection_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "db/db_impl.h"
#include "db/filename.h"
#include "env/env.h"

namespace leveldbpp {
namespace {

std::string ReadFileOrDie(Env* env, const std::string& fname) {
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(env->NewSequentialFile(fname, &file).ok());
  std::string contents;
  char scratch[1 << 16];
  Slice chunk;
  while (file->Read(sizeof(scratch), &chunk, scratch).ok() &&
         !chunk.empty()) {
    contents.append(chunk.data(), chunk.size());
  }
  return contents;
}

class FaultInjectionEnvTest : public testing::Test {
 protected:
  FaultInjectionEnvTest() : base_(NewMemEnv()), env_(base_.get(), 301) {}

  std::unique_ptr<WritableFile> Create(const std::string& fname) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_.NewWritableFile(fname, &file).ok());
    return file;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
};

TEST_F(FaultInjectionEnvTest, DropUnsyncedKeepsExactlySyncedPrefix) {
  auto file = Create("/f");
  ASSERT_TRUE(file->Append("synced-part").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-volatile-tail").ok());
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());
  EXPECT_EQ("synced-part", ReadFileOrDie(&env_, "/f"));
}

TEST_F(FaultInjectionEnvTest, NeverSyncedFileDropsToEmpty) {
  auto file = Create("/f");
  ASSERT_TRUE(file->Append("all of this is volatile").ok());
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());
  EXPECT_EQ("", ReadFileOrDie(&env_, "/f"));
}

TEST_F(FaultInjectionEnvTest, TornTailIsAPrefixBetweenSyncedAndFullLength) {
  const std::string synced(100, 's');
  const std::string tail(400, 't');
  auto file = Create("/f");
  ASSERT_TRUE(file->Append(synced).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(tail).ok());
  ASSERT_TRUE(file->Close().ok());

  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kTornTail).ok());
  const std::string got = ReadFileOrDie(&env_, "/f");
  ASSERT_GE(got.size(), synced.size());
  ASSERT_LE(got.size(), synced.size() + tail.size());
  // Prefix semantics: whatever survived is a prefix of what was written.
  EXPECT_EQ((synced + tail).substr(0, got.size()), got);
}

TEST_F(FaultInjectionEnvTest, TornTailCutIsSeedDeterministic) {
  auto run = [](uint32_t seed) {
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv env(base.get(), seed);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile("/f", &file).ok());
    EXPECT_TRUE(file->Append(std::string(1000, 'x')).ok());
    EXPECT_TRUE(file->Close().ok());
    EXPECT_TRUE(
        env.SimulateCrash(FaultInjectionEnv::CrashMode::kTornTail).ok());
    uint64_t size = 0;
    EXPECT_TRUE(env.GetFileSize("/f", &size).ok());
    return size;
  };
  EXPECT_EQ(run(1234), run(1234));  // Same seed, same cut.
  // Different seeds disagree for at least one of a handful of tries (a
  // constant cut would defeat the point of the mode).
  bool differs = false;
  for (uint32_t s = 1; s <= 5 && !differs; s++) {
    differs = run(s) != run(s + 100);
  }
  EXPECT_TRUE(differs);
}

TEST_F(FaultInjectionEnvTest, FailAfterIsDeterministicAndSticky) {
  auto file = Create("/f");
  env_.FailAfter(2, FaultInjectionEnv::kOpAppend);
  EXPECT_TRUE(file->Append("one").ok());
  EXPECT_TRUE(file->Append("two").ok());
  EXPECT_FALSE(env_.FaultsTripped());
  Status s = file->Append("three");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(env_.FaultsTripped());
  // Sticky: the device stays gone, and failed appends leave no bytes.
  EXPECT_TRUE(file->Append("four").IsIOError());
  EXPECT_TRUE(file->Sync().ok());  // Mask is appends-only.
  ASSERT_TRUE(file->Close().ok());
  EXPECT_EQ("onetwo", ReadFileOrDie(&env_, "/f"));

  env_.ClearFaults();
  auto file2 = Create("/f2");
  EXPECT_TRUE(file2->Append("works again").ok());
}

TEST_F(FaultInjectionEnvTest, MaskSelectsOperationClass) {
  env_.FailAfter(0, FaultInjectionEnv::kOpSync);
  auto file = Create("/f");
  EXPECT_TRUE(file->Append("data").ok());  // Appends unaffected
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(file->Append("more").ok());
  EXPECT_TRUE(file->Sync().IsIOError());  // Still sticky for syncs

  env_.FailAfter(0, FaultInjectionEnv::kOpNewWritable);
  std::unique_ptr<WritableFile> blocked;
  EXPECT_TRUE(env_.NewWritableFile("/g", &blocked).IsIOError());
  EXPECT_FALSE(env_.FileExists("/g"));  // No base side effect
}

TEST_F(FaultInjectionEnvTest, OpCountObservesAllInterceptableOps) {
  env_.ResetOpCount();
  auto file = Create("/f");                       // 1: NewWritableFile
  ASSERT_TRUE(file->Append("x").ok());            // 2
  ASSERT_TRUE(file->Sync().ok());                 // 3
  ASSERT_TRUE(env_.RenameFile("/f", "/g").ok());  // 4
  ASSERT_TRUE(env_.RemoveFile("/g").ok());        // 5
  EXPECT_EQ(5u, env_.op_count());
  env_.ResetOpCount();
  EXPECT_EQ(0u, env_.op_count());
}

TEST_F(FaultInjectionEnvTest, ProbabilisticFailureIsSeededAndSticky) {
  auto trip_point = [](uint32_t seed) {
    std::unique_ptr<Env> base(NewMemEnv());
    FaultInjectionEnv env(base.get(), seed);
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env.NewWritableFile("/f", &file).ok());
    env.FailWithProbability(4, FaultInjectionEnv::kOpAppend);
    int i = 0;
    for (; i < 1000; i++) {
      if (!file->Append("x").ok()) break;
    }
    EXPECT_LT(i, 1000);  // 1/4 per op: it certainly tripped
    EXPECT_TRUE(env.FaultsTripped());
    EXPECT_TRUE(file->Append("x").IsIOError());  // Sticky
    return i;
  };
  EXPECT_EQ(trip_point(42), trip_point(42));
}

TEST_F(FaultInjectionEnvTest, RenameCarriesDurabilityState) {
  auto file = Create("/tmp_file");
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-volatile").ok());
  ASSERT_TRUE(file->Close().ok());
  // The CURRENT-installation pattern: write tmp, sync, rename into place.
  ASSERT_TRUE(env_.RenameFile("/tmp_file", "/CURRENT").ok());

  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());
  EXPECT_EQ("durable", ReadFileOrDie(&env_, "/CURRENT"));
}

TEST_F(FaultInjectionEnvTest, InjectedErrorsAreCountedInStatistics) {
  Statistics stats;
  FaultInjectionEnv env(base_.get(), 301, &stats);
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  env.FailAfter(1, FaultInjectionEnv::kOpAppend);
  EXPECT_TRUE(file->Append("a").ok());
  EXPECT_EQ(0u, stats.Get(kFaultInjectedErrors));
  EXPECT_TRUE(file->Append("b").IsIOError());
  EXPECT_TRUE(file->Append("c").IsIOError());
  EXPECT_EQ(2u, stats.Get(kFaultInjectedErrors));
}

// ---- DB-level behavior on a faulty device ----

class FaultInjectionDBTest : public testing::Test {
 protected:
  FaultInjectionDBTest() : base_(NewMemEnv()), env_(base_.get(), 301) {}

  void Open(Statistics* stats = nullptr) {
    Options options;
    options.env = &env_;
    options.write_buffer_size = 64 << 10;
    options.sync_writes = true;
    options.statistics = stats;
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/db", &raw).ok());
    db_.reset(raw);
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%04d", i);
    return buf;
  }

  // The live WAL is the log file with the largest number.
  std::string LiveWalPath() {
    std::vector<std::string> children;
    EXPECT_TRUE(env_.GetChildren("/db", &children).ok());
    uint64_t best = 0;
    std::string path;
    for (const std::string& f : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(f, &number, &type) && type == kLogFile &&
          number >= best) {
        best = number;
        path = "/db/" + f;
      }
    }
    EXPECT_FALSE(path.empty());
    return path;
  }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(FaultInjectionDBTest, SyncedPutsSurviveCrashAndCountWalRecords) {
  Open();
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v" + std::to_string(i)).ok());
  }
  db_.reset();  // Process "exits" without flushing anything further.
  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());

  Statistics stats;
  Open(&stats);
  for (int i = 0; i < 50; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ("v" + std::to_string(i), value);
  }
  // All 50 acknowledged records came back through WAL replay, and the
  // ticker is visible through the stats property.
  EXPECT_EQ(50u, stats.Get(kRecoveryWalRecords));
  EXPECT_EQ(0u, stats.Get(kRecoveryTornTailBytes));
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.stats", &prop));
  EXPECT_NE(std::string::npos, prop.find("recovery.wal.records"));
}

TEST_F(FaultInjectionDBTest, UnsyncedPutsDieWithTheCrash) {
  Open();
  // Reopen WITHOUT sync_writes: buffered writes are volatile by contract.
  db_.reset();
  Options options;
  options.env = &env_;
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/db", &raw).ok());
  db_.reset(raw);

  ASSERT_TRUE(db_->Put(WriteOptions{/*sync=*/true}, "durable", "yes").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "volatile", "no").ok());
  db_.reset();
  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());

  Open();
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "durable", &value).ok());
  EXPECT_EQ("yes", value);
  EXPECT_TRUE(db_->Get(ReadOptions(), "volatile", &value).IsNotFound());
}

TEST_F(FaultInjectionDBTest, WalWriteErrorIsStickyInTheDB) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k0", "v0").ok());

  env_.FailAfter(0, FaultInjectionEnv::kOpAppend);
  Status s = db_->Put(WriteOptions(), "k1", "v1");
  ASSERT_TRUE(s.IsIOError()) << s.ToString();

  // The fault is cleared at the ENV level, but the DB must keep rejecting:
  // its WAL tail state is unknown, so accepting writes could corrupt the
  // recovery stream. Only a reopen clears the condition.
  env_.ClearFaults();
  const uint64_t ops_before = env_.op_count();
  s = db_->Put(WriteOptions(), "k2", "v2");
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(ops_before, env_.op_count())
      << "a rejected write must not touch the device";

  // Reopen: the acknowledged write survives, the failed ones never happened,
  // and the DB accepts writes again.
  db_.reset();
  ASSERT_TRUE(
      env_.SimulateCrash(FaultInjectionEnv::CrashMode::kDropUnsynced).ok());
  Open();
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "k0", &value).ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "k1", &value).IsNotFound());
  EXPECT_TRUE(db_->Get(ReadOptions(), "k2", &value).IsNotFound());
  EXPECT_TRUE(db_->Put(WriteOptions(), "k3", "v3").ok());
}

TEST_F(FaultInjectionDBTest, SyncErrorIsStickyInTheDB) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), "k0", "v0").ok());
  env_.FailAfter(0, FaultInjectionEnv::kOpSync);
  EXPECT_TRUE(db_->Put(WriteOptions(), "k1", "v1").IsIOError());
  env_.ClearFaults();
  EXPECT_TRUE(db_->Put(WriteOptions(), "k2", "v2").IsIOError());
}

TEST_F(FaultInjectionDBTest, TornWalTailIsSkippedAndCounted) {
  Open();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), "v" + std::to_string(i)).ok());
  }
  const std::string wal = LiveWalPath();
  db_.reset();

  // Cut the last WAL record short of its declared length — the shape a
  // torn write leaves behind — by rewriting the file 3 bytes shorter.
  std::string contents = ReadFileOrDie(&env_, wal);
  ASSERT_GT(contents.size(), 3u);
  contents.resize(contents.size() - 3);
  std::unique_ptr<WritableFile> out;
  ASSERT_TRUE(base_->NewWritableFile(wal, &out).ok());
  ASSERT_TRUE(out->Append(contents).ok());
  ASSERT_TRUE(out->Close().ok());

  Statistics stats;
  Open(&stats);  // Must open cleanly: a torn tail is not corruption.
  std::string value;
  for (int i = 0; i < 19; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
  }
  EXPECT_TRUE(db_->Get(ReadOptions(), Key(19), &value).IsNotFound());
  EXPECT_EQ(19u, stats.Get(kRecoveryWalRecords));
  EXPECT_GT(stats.Get(kRecoveryTornTailBytes), 0u);
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("leveldbpp.stats", &prop));
  EXPECT_NE(std::string::npos, prop.find("recovery.torn.tail.bytes"));
}

}  // namespace
}  // namespace leveldbpp
