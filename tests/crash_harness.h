// Shared crash-recovery harness for the fault-injection test suites
// (crash_recovery_test.cc, randomized_crash_test.cc).
//
// The cycle under test, for one crash point `crash_at`:
//
//   1. Open a SecondaryDB in crash-consistency mode (sync_writes) on a
//      FaultInjectionEnv over a fresh MemEnv.
//   2. Arm FailAfter(crash_at): the env fails every write-class operation
//      after the first `crash_at`, simulating the device vanishing at an
//      exact syscall count.
//   3. Apply a workload until the first failed operation, maintaining a
//      golden model of every ACKNOWLEDGED op. Failed ops must stay failed
//      (sticky error) and leave no acknowledged state behind.
//   4. Destroy the DB object (process "exit"), SimulateCrash (discard
//      unsynced file bytes — optionally keeping a seeded-random torn
//      prefix), clear the faults, and reopen.
//   5. Verify: (a) the primary table matches the model exactly for every
//      key except the single in-flight op's, which may hold either its
//      pre- or post-op state; (b) every index variant's Lookup/RangeLookup
//      returns EXACTLY the records derivable from the recovered primary
//      table — same keys, same sequence numbers, same values, newest
//      first — with no phantom and no missing postings.
//
// Everything is deterministic given (workload, crash_at, mode, seed), so a
// failing point reproduces from its printed parameters.

#ifndef LEVELDBPP_TESTS_CRASH_HARNESS_H_
#define LEVELDBPP_TESTS_CRASH_HARNESS_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/document.h"
#include "core/secondary_db.h"
#include "env/fault_injection_env.h"

namespace leveldbpp {
namespace crash {

struct Op {
  enum Kind { kPut, kDelete };
  Kind kind;
  std::string key;
  std::string doc;   // kPut only
  std::string user;  // The doc's UserID (kPut only)
};

inline std::string UserDoc(const std::string& user, uint64_t ts,
                           size_t pad = 256) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(ts));
  return "{\"CreationTime\":\"" + std::string(buf) + "\",\"Pad\":\"" +
         std::string(pad, 'p') + "\",\"UserID\":\"" + user + "\"}";
}

inline Op PutOp(std::string key, std::string user, uint64_t ts,
                size_t pad = 256) {
  return Op{Op::kPut, std::move(key), UserDoc(user, ts, pad), std::move(user)};
}

inline Op DeleteOp(std::string key) {
  return Op{Op::kDelete, std::move(key), "", ""};
}

/// Golden model of acknowledged state: key -> document.
using Model = std::map<std::string, std::string>;

/// Optional adjustment applied to MakeCrashOptions' result before every
/// Open in a cycle (e.g. enabling the pipelined-flush configuration so
/// crash points land with several immutable memtables in flight).
using OptionsTweak = std::function<void(SecondaryDBOptions*)>;

/// Optional observer hooks threaded through a workload run. `after_op`
/// fires after every ACKNOWLEDGED op with the golden model of that prefix —
/// the place to take/verify snapshots mid-workload. `before_close` always
/// fires while the DB object is still alive (workload completed OR stopped
/// by a fault), so hook state holding DB-owned handles (snapshots,
/// iterators) can be released before the simulated process exit. Hooks must
/// only READ (env faults count write-class operations, and CountEnvOps and
/// the armed runs must count identically).
struct WorkloadHooks {
  std::function<void(SecondaryDB*, const Model&, size_t /*acked*/)> after_op;
  std::function<void(SecondaryDB*)> before_close;
};

inline SecondaryDBOptions MakeCrashOptions(Env* env, IndexType type) {
  SecondaryDBOptions options;
  options.base.env = env;
  // Small enough that the workload crosses flush (and WAL rotation)
  // boundaries, so crash points land inside them too.
  options.base.write_buffer_size = 64 << 10;
  options.base.max_file_size = 32 << 10;
  options.sync_writes = true;
  options.index_type = type;
  options.indexed_attributes = {"UserID"};
  return options;
}

/// Apply ops in order until the first failure, recording every acknowledged
/// op in *model. Returns the number of acknowledged ops; *hit_error tells
/// whether a failure stopped the run (vs. the workload completing).
inline size_t ApplyOps(SecondaryDB* db, const std::vector<Op>& ops,
                       Model* model, bool* hit_error,
                       const WorkloadHooks& hooks = {}) {
  *hit_error = false;
  size_t acked = 0;
  for (const Op& op : ops) {
    Status s = (op.kind == Op::kPut) ? db->Put(op.key, op.doc)
                                     : db->Delete(op.key);
    if (!s.ok()) {
      *hit_error = true;
      break;
    }
    if (op.kind == Op::kPut) {
      (*model)[op.key] = op.doc;
    } else {
      model->erase(op.key);
    }
    acked++;
    if (hooks.after_op) hooks.after_op(db, *model, acked);
  }
  return acked;
}

/// Probe run: apply the whole workload fault-free and return how many
/// interceptable env operations it issues. Crash points sweep [0, T).
inline uint64_t CountEnvOps(IndexType type, const std::vector<Op>& ops,
                            const OptionsTweak& tweak = {},
                            const WorkloadHooks& hooks = {}) {
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv env(base.get());
  std::unique_ptr<SecondaryDB> db;
  SecondaryDBOptions options = MakeCrashOptions(&env, type);
  if (tweak) tweak(&options);
  EXPECT_TRUE(SecondaryDB::Open(options, "/crash", &db).ok());
  env.ResetOpCount();  // Exclude Open's own writes: faults arm post-Open.
  Model model;
  bool hit_error = false;
  size_t acked = ApplyOps(db.get(), ops, &model, &hit_error, hooks);
  if (hooks.before_close) hooks.before_close(db.get());
  EXPECT_FALSE(hit_error);
  EXPECT_EQ(ops.size(), acked);
  return env.op_count();
}

/// Index queries vs. the current primary state: whatever state the primary
/// table is in, every variant's answers must be EXACTLY derivable from it —
/// the live records carrying the queried attribute value, newest-first by
/// the primary's sequence numbers, with the primary's values. Shared by the
/// crash-recovery suites (post-reopen) and the corruption/repair suite
/// (post-RepairDB + RebuildIndex).
inline void VerifyIndexesMatchPrimary(SecondaryDB* db,
                                      const std::set<std::string>& keys,
                                      const std::set<std::string>& users,
                                      const std::string& trace) {
  struct Rec {
    SequenceNumber seq;
    std::string key;
    std::string value;
    std::string user;
  };
  std::vector<Rec> live;
  for (const std::string& key : keys) {
    std::string value;
    DBImpl::RecordLocation loc;
    if (!db->primary()->GetWithMeta(ReadOptions(), key, &value, &loc).ok()) {
      continue;
    }
    std::string user;
    if (!JsonAttributeExtractor::Instance()->Extract(Slice(value), "UserID",
                                                     &user)) {
      continue;
    }
    live.push_back(Rec{loc.seq, key, std::move(value), std::move(user)});
  }
  std::sort(live.begin(), live.end(),
            [](const Rec& a, const Rec& b) { return a.seq > b.seq; });

  auto expected_in = [&](const std::string& lo, const std::string& hi) {
    std::vector<const Rec*> out;
    for (const Rec& r : live) {
      if (r.user >= lo && r.user <= hi) out.push_back(&r);
    }
    return out;
  };
  auto check = [&](const std::vector<QueryResult>& got,
                   const std::vector<const Rec*>& want, size_t k,
                   const std::string& what) {
    const size_t n = (k == 0 || want.size() < k) ? want.size() : k;
    ASSERT_EQ(n, got.size()) << trace << " " << what;
    for (size_t i = 0; i < n; i++) {
      EXPECT_EQ(want[i]->key, got[i].primary_key)
          << trace << " " << what << " [" << i << "]";
      EXPECT_EQ(want[i]->seq, got[i].seq)
          << trace << " " << what << " [" << i << "]";
      EXPECT_EQ(want[i]->value, got[i].value)
          << trace << " " << what << " [" << i << "]";
    }
  };

  std::vector<QueryResult> got;
  for (const std::string& u : users) {
    ASSERT_TRUE(db->Lookup("UserID", u, 0, &got).ok()) << trace;
    check(got, expected_in(u, u), 0, "Lookup(" + u + ", all)");
    ASSERT_TRUE(db->Lookup("UserID", u, 3, &got).ok()) << trace;
    check(got, expected_in(u, u), 3, "Lookup(" + u + ", top3)");
  }
  if (!users.empty()) {
    const std::string lo = *users.begin();
    const std::string hi = *users.rbegin();
    ASSERT_TRUE(db->RangeLookup("UserID", lo, hi, 0, &got).ok()) << trace;
    check(got, expected_in(lo, hi), 0, "RangeLookup(all)");
    ASSERT_TRUE(db->RangeLookup("UserID", lo, hi, 5, &got).ok()) << trace;
    check(got, expected_in(lo, hi), 5, "RangeLookup(top5)");
  }
}

/// Post-recovery verification against the golden model. `in_flight` is the
/// op that was executing when the crash hit (nullptr if the workload
/// completed): the one op whose outcome is legitimately two-valued.
inline void VerifyRecovered(SecondaryDB* db, const std::vector<Op>& ops,
                            const Model& model, const Op* in_flight,
                            const std::string& trace) {
  // ---- 1. Primary table vs. the acknowledged model.
  std::set<std::string> keys;
  std::set<std::string> users;
  for (const Op& op : ops) {
    keys.insert(op.key);
    if (op.kind == Op::kPut) users.insert(op.user);
  }
  for (const std::string& key : keys) {
    std::string value;
    Status s = db->Get(key, &value);
    auto it = model.find(key);
    const bool matches_model = (it == model.end())
                                   ? s.IsNotFound()
                                   : (s.ok() && value == it->second);
    if (in_flight != nullptr && key == in_flight->key) {
      // The crash hit mid-op: pre-state (op never landed) and post-state
      // (its durable prefix happened to cover the decisive write) are both
      // legal. Anything else — a third value, an error — is not.
      const bool matches_post =
          (in_flight->kind == Op::kPut)
              ? (s.ok() && value == in_flight->doc)
              : s.IsNotFound();
      ASSERT_TRUE(matches_model || matches_post)
          << trace << " in-flight key=" << key << " status=" << s.ToString();
    } else {
      ASSERT_TRUE(matches_model)
          << trace << " key=" << key << " status=" << s.ToString()
          << (it == model.end() ? " (model: absent)" : " (model: present)");
    }
  }

  // ---- 2. Index queries vs. the recovered primary state (the in-flight
  // ambiguity included): see VerifyIndexesMatchPrimary.
  VerifyIndexesMatchPrimary(db, keys, users, trace);
}

/// One full write -> crash-at-op -> recover -> verify cycle.
inline void RunCrashCycle(IndexType type, const std::vector<Op>& ops,
                          uint64_t crash_at, FaultInjectionEnv::CrashMode mode,
                          uint32_t seed, const std::string& trace,
                          const OptionsTweak& tweak = {},
                          const WorkloadHooks& hooks = {}) {
  SCOPED_TRACE(trace);
  std::unique_ptr<Env> base(NewMemEnv());
  FaultInjectionEnv env(base.get(), seed);
  Model model;
  const Op* in_flight = nullptr;
  SecondaryDBOptions options = MakeCrashOptions(&env, type);
  if (tweak) tweak(&options);
  {
    std::unique_ptr<SecondaryDB> db;
    ASSERT_TRUE(SecondaryDB::Open(options, "/crash", &db).ok()) << trace;
    env.ResetOpCount();
    env.FailAfter(crash_at, FaultInjectionEnv::kOpAllWrites);

    bool hit_error = false;
    size_t acked = ApplyOps(db.get(), ops, &model, &hit_error, hooks);
    if (hooks.before_close) hooks.before_close(db.get());
    if (hit_error) {
      in_flight = &ops[acked];
      // Acknowledged-write semantics: once an op has failed, nothing may be
      // silently accepted afterwards — the engines reject with a non-OK
      // Status (env-level sticky fault here; DB-level stickiness is covered
      // by FaultInjectionTest.WalWriteErrorIsStickyInTheDB).
      Status s = db->Put("zzz-probe", UserDoc("u0", 999999));
      ASSERT_FALSE(s.ok()) << trace << " write accepted after a failed op";
    }
    // DB object destroyed here: the "process" exits without further syncs.
  }
  ASSERT_TRUE(env.SimulateCrash(mode).ok()) << trace;
  env.ClearFaults();

  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(options, "/crash", &db).ok())
      << trace << " reopen after crash failed";
  VerifyRecovered(db.get(), ops, model, in_flight, trace);
}

inline const char* CrashModeName(FaultInjectionEnv::CrashMode mode) {
  return mode == FaultInjectionEnv::CrashMode::kDropUnsynced ? "drop" : "torn";
}

}  // namespace crash
}  // namespace leveldbpp

#endif  // LEVELDBPP_TESTS_CRASH_HARNESS_H_
