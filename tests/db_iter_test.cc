// DBIter semantics: snapshot visibility, version collapsing, tombstone
// hiding — tested directly against a hand-built internal-key sequence.

#include "db/db_iter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/comparator.h"

namespace leveldbpp {
namespace {

// An iterator over an explicit list of (internal key, value) pairs.
class InternalVectorIterator : public Iterator {
 public:
  void Add(const std::string& user_key, SequenceNumber seq, ValueType type,
           const std::string& value) {
    std::string ikey;
    AppendInternalKey(&ikey, ParsedInternalKey(user_key, seq, type));
    kv_.emplace_back(std::move(ikey), value);
  }

  void Finish() {
    InternalKeyComparator icmp(BytewiseComparator());
    std::sort(kv_.begin(), kv_.end(), [&](const auto& a, const auto& b) {
      return icmp.Compare(Slice(a.first), Slice(b.first)) < 0;
    });
    index_ = kv_.size();
  }

  bool Valid() const override { return index_ < kv_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = kv_.empty() ? 0 : kv_.size() - 1; }
  void Seek(const Slice& target) override {
    InternalKeyComparator icmp(BytewiseComparator());
    index_ = 0;
    while (index_ < kv_.size() &&
           icmp.Compare(Slice(kv_[index_].first), target) < 0) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override { index_ = (index_ == 0) ? kv_.size() : index_ - 1; }
  Slice key() const override { return kv_[index_].first; }
  Slice value() const override { return kv_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t index_ = 0;
};

std::string Dump(Iterator* it) {
  std::string out;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out += it->key().ToString() + "=" + it->value().ToString() + ";";
  }
  return out;
}

TEST(DBIterTest, CollapsesVersionsToNewestVisible) {
  auto* internal = new InternalVectorIterator;
  internal->Add("a", 5, kTypeValue, "a5");
  internal->Add("a", 3, kTypeValue, "a3");
  internal->Add("b", 4, kTypeValue, "b4");
  internal->Finish();
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), internal, 100));
  EXPECT_EQ("a=a5;b=b4;", Dump(it.get()));
}

TEST(DBIterTest, SnapshotHidesNewerVersions) {
  auto* internal = new InternalVectorIterator;
  internal->Add("a", 9, kTypeValue, "a9");
  internal->Add("a", 3, kTypeValue, "a3");
  internal->Add("b", 8, kTypeValue, "b8");
  internal->Finish();
  // As of sequence 5: a@9 and b@8 are invisible.
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), internal, 5));
  EXPECT_EQ("a=a3;", Dump(it.get()));
}

TEST(DBIterTest, TombstoneHidesOlderVersions) {
  auto* internal = new InternalVectorIterator;
  internal->Add("a", 7, kTypeDeletion, "");
  internal->Add("a", 3, kTypeValue, "a3");
  internal->Add("b", 2, kTypeValue, "b2");
  internal->Finish();
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), internal, 100));
  EXPECT_EQ("b=b2;", Dump(it.get()));
}

TEST(DBIterTest, TombstoneOlderThanSnapshotStillApplies) {
  auto* internal = new InternalVectorIterator;
  internal->Add("a", 9, kTypeValue, "a9");   // Newer than snapshot
  internal->Add("a", 6, kTypeDeletion, "");  // Visible tombstone
  internal->Add("a", 3, kTypeValue, "a3");   // Shadowed
  internal->Finish();
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), internal, 7));
  EXPECT_EQ("", Dump(it.get()));
}

TEST(DBIterTest, SeekSkipsDeletedRun) {
  auto* internal = new InternalVectorIterator;
  internal->Add("a", 1, kTypeValue, "a1");
  internal->Add("b", 5, kTypeDeletion, "");
  internal->Add("b", 2, kTypeValue, "b2");
  internal->Add("c", 3, kTypeValue, "c3");
  internal->Finish();
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), internal, 100));
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("c", it->key().ToString());
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ("a", it->key().ToString());
  it->Seek("d");
  EXPECT_FALSE(it->Valid());
}

}  // namespace
}  // namespace leveldbpp
