#include "core/topk.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace leveldbpp {

static QueryResult QR(const std::string& key, SequenceNumber seq) {
  QueryResult r;
  r.primary_key = key;
  r.seq = seq;
  return r;
}

TEST(TopK, UnlimitedCollectsEverything) {
  TopKCollector heap(0);
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(heap.WouldAdmit(i));
    heap.Add(QR("k" + std::to_string(i), i));
  }
  EXPECT_FALSE(heap.Full());
  auto results = heap.TakeSortedNewestFirst();
  ASSERT_EQ(100u, results.size());
  for (size_t i = 1; i < results.size(); i++) {
    EXPECT_GT(results[i - 1].seq, results[i].seq);
  }
}

TEST(TopK, KeepsKNewest) {
  TopKCollector heap(3);
  Random64 rnd(1);
  std::vector<SequenceNumber> seqs;
  for (int i = 0; i < 200; i++) {
    SequenceNumber s = rnd.Uniform(100000);
    seqs.push_back(s);
    heap.Add(QR("k", s));
  }
  std::sort(seqs.rbegin(), seqs.rend());
  auto results = heap.TakeSortedNewestFirst();
  ASSERT_EQ(3u, results.size());
  EXPECT_EQ(seqs[0], results[0].seq);
  EXPECT_EQ(seqs[1], results[1].seq);
  EXPECT_EQ(seqs[2], results[2].seq);
}

TEST(TopK, AdmissionCheck) {
  TopKCollector heap(2);
  heap.Add(QR("a", 100));
  heap.Add(QR("b", 200));
  EXPECT_TRUE(heap.Full());
  // Older than the heap's root: rejected without mutation.
  EXPECT_FALSE(heap.WouldAdmit(50));
  EXPECT_FALSE(heap.Add(QR("c", 50)));
  // Equal to the oldest retained: also rejected (strictly newer required).
  EXPECT_FALSE(heap.WouldAdmit(100));
  // Newer: displaces the oldest.
  EXPECT_TRUE(heap.WouldAdmit(150));
  EXPECT_TRUE(heap.Add(QR("d", 150)));
  auto results = heap.TakeSortedNewestFirst();
  ASSERT_EQ(2u, results.size());
  EXPECT_EQ("b", results[0].primary_key);
  EXPECT_EQ("d", results[1].primary_key);
}

TEST(TopK, NotFullUntilK) {
  TopKCollector heap(5);
  for (int i = 0; i < 4; i++) {
    EXPECT_FALSE(heap.Full());
    heap.Add(QR("k", i));
  }
  EXPECT_FALSE(heap.Full());
  heap.Add(QR("k", 4));
  EXPECT_TRUE(heap.Full());
}

}  // namespace leveldbpp
