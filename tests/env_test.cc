// Env tests: the in-memory filesystem used by all hermetic tests, plus the
// simulated-page-cache wrapper used by the Figure-12 cache-inflection
// experiments.

#include "env/env.h"

#include <gtest/gtest.h>

#include <memory>

#include "env/statistics.h"

namespace leveldbpp {

class MemEnvTest : public testing::Test {
 protected:
  MemEnvTest() : env_(NewMemEnv()) {}
  std::unique_ptr<Env> env_;
};

TEST_F(MemEnvTest, Basics) {
  uint64_t file_size;
  std::unique_ptr<WritableFile> writable_file;
  std::vector<std::string> children;

  ASSERT_TRUE(env_->CreateDir("/dir").ok());

  // Check that the directory is empty.
  ASSERT_TRUE(!env_->FileExists("/dir/non_existent"));
  ASSERT_TRUE(!env_->GetFileSize("/dir/non_existent", &file_size).ok());
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  ASSERT_EQ(0u, children.size());

  // Create a file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  ASSERT_EQ(0u, file_size);
  writable_file.reset();

  // Check that the file exists.
  ASSERT_TRUE(env_->FileExists("/dir/f"));
  ASSERT_TRUE(env_->GetChildren("/dir", &children).ok());
  ASSERT_EQ(1u, children.size());
  ASSERT_EQ("f", children[0]);

  // Write to the file.
  ASSERT_TRUE(env_->NewWritableFile("/dir/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("abc").ok());
  writable_file.reset();

  // Check the file size and rename.
  ASSERT_TRUE(env_->GetFileSize("/dir/f", &file_size).ok());
  ASSERT_EQ(3u, file_size);
  ASSERT_TRUE(env_->RenameFile("/dir/f", "/dir/g").ok());
  ASSERT_TRUE(!env_->FileExists("/dir/f"));
  ASSERT_TRUE(env_->FileExists("/dir/g"));

  // Check opening non-existent file.
  std::unique_ptr<SequentialFile> seq_file;
  std::unique_ptr<RandomAccessFile> rand_file;
  ASSERT_TRUE(!env_->NewSequentialFile("/dir/non_existent", &seq_file).ok());
  ASSERT_TRUE(
      !env_->NewRandomAccessFile("/dir/non_existent", &rand_file).ok());

  // Remove.
  ASSERT_TRUE(!env_->RemoveFile("/dir/non_existent").ok());
  ASSERT_TRUE(env_->RemoveFile("/dir/g").ok());
  ASSERT_TRUE(!env_->FileExists("/dir/g"));
}

TEST_F(MemEnvTest, ReadWrite) {
  std::unique_ptr<WritableFile> writable_file;
  ASSERT_TRUE(env_->NewWritableFile("/f", &writable_file).ok());
  ASSERT_TRUE(writable_file->Append("hello ").ok());
  ASSERT_TRUE(writable_file->Append("world").ok());
  writable_file.reset();

  // Sequential.
  std::unique_ptr<SequentialFile> seq_file;
  char scratch[100];
  Slice result;
  ASSERT_TRUE(env_->NewSequentialFile("/f", &seq_file).ok());
  ASSERT_TRUE(seq_file->Read(5, &result, scratch).ok());
  ASSERT_EQ("hello", result.ToString());
  ASSERT_TRUE(seq_file->Skip(1).ok());
  ASSERT_TRUE(seq_file->Read(1000, &result, scratch).ok());
  ASSERT_EQ("world", result.ToString());
  ASSERT_TRUE(seq_file->Read(1000, &result, scratch).ok());  // At EOF
  ASSERT_EQ(0u, result.size());

  // Random access.
  std::unique_ptr<RandomAccessFile> rand_file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/f", &rand_file).ok());
  ASSERT_TRUE(rand_file->Read(6, 5, &result, scratch).ok());
  ASSERT_EQ("world", result.ToString());
  ASSERT_TRUE(rand_file->Read(0, 5, &result, scratch).ok());
  ASSERT_EQ("hello", result.ToString());
  // Past EOF.
  ASSERT_TRUE(!rand_file->Read(1000, 5, &result, scratch).ok());
}

TEST_F(MemEnvTest, OverwriteTruncates) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("0123456789").ok());
  f.reset();
  ASSERT_TRUE(env_->NewWritableFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());
  f.reset();
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/f", &size).ok());
  ASSERT_EQ(3u, size);
}

TEST(PageCacheSimEnvTest, CountsHitsAndInvalidatesOnDelete) {
  std::unique_ptr<Env> base(NewMemEnv());
  Statistics stats;
  std::unique_ptr<Env> sim(
      NewPageCacheSimEnv(base.get(), /*capacity=*/1 << 20, &stats));

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(sim->NewWritableFile("/data", &f).ok());
  ASSERT_TRUE(f->Append(std::string(64 * 1024, 'd')).ok());
  f.reset();

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(sim->NewRandomAccessFile("/data", &r).ok());
  char scratch[8192];
  Slice result;

  // First read: cold, no hit.
  ASSERT_TRUE(r->Read(0, 4096, &result, scratch).ok());
  EXPECT_EQ(0u, stats.Get(kPageCacheHit));
  // Re-read the same page: hit.
  ASSERT_TRUE(r->Read(0, 4096, &result, scratch).ok());
  EXPECT_EQ(1u, stats.Get(kPageCacheHit));
  // A different offset: miss again.
  ASSERT_TRUE(r->Read(32768, 4096, &result, scratch).ok());
  EXPECT_EQ(1u, stats.Get(kPageCacheHit));
  ASSERT_TRUE(r->Read(32768, 4096, &result, scratch).ok());
  EXPECT_EQ(2u, stats.Get(kPageCacheHit));

  // Deleting the file drops its pages ("compaction invalidates the cache").
  r.reset();
  ASSERT_TRUE(sim->RemoveFile("/data").ok());
  ASSERT_TRUE(sim->NewWritableFile("/data", &f).ok());
  ASSERT_TRUE(f->Append(std::string(64 * 1024, 'e')).ok());
  f.reset();
  ASSERT_TRUE(sim->NewRandomAccessFile("/data", &r).ok());
  ASSERT_TRUE(r->Read(0, 4096, &result, scratch).ok());
  EXPECT_EQ(2u, stats.Get(kPageCacheHit));  // Cold again
}

TEST(PageCacheSimEnvTest, SmallCapacityEvicts) {
  std::unique_ptr<Env> base(NewMemEnv());
  Statistics stats;
  // Cache holds exactly 2 pages.
  std::unique_ptr<Env> sim(NewPageCacheSimEnv(base.get(), 8192, &stats));

  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(sim->NewWritableFile("/d", &f).ok());
  ASSERT_TRUE(f->Append(std::string(64 * 1024, 'x')).ok());
  f.reset();
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(sim->NewRandomAccessFile("/d", &r).ok());
  char scratch[4096];
  Slice result;
  // Touch 4 distinct pages round-robin twice: with capacity 2 and LRU,
  // nothing ever hits.
  for (int round = 0; round < 2; round++) {
    for (uint64_t page = 0; page < 4; page++) {
      ASSERT_TRUE(r->Read(page * 4096, 100, &result, scratch).ok());
    }
  }
  EXPECT_EQ(0u, stats.Get(kPageCacheHit));
}

}  // namespace leveldbpp
