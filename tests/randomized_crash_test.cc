// Seeded randomized crash stress: each round draws a random index variant,
// workload, crash point, and crash mode from a per-round seed, then runs the
// same model-checked write -> crash -> reopen cycle as the deterministic
// matrix (crash_harness.h). Every assertion message carries the round seed,
// so a failure reproduces by pinning kBaseSeed to the printed value.

#include "crash_harness.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/random.h"

namespace leveldbpp {
namespace {

using crash::Op;

constexpr uint32_t kBaseSeed = 0x5eed;
constexpr int kRounds = 6;

std::vector<Op> RandomWorkload(Random* rnd) {
  const int num_ops = 40 + rnd->Uniform(80);
  const int num_keys = 8 + rnd->Uniform(30);
  const int num_users = 2 + rnd->Uniform(5);
  std::vector<Op> ops;
  uint64_t ts = 5000;
  for (int i = 0; i < num_ops; i++) {
    const std::string key = "k" + std::to_string(rnd->Uniform(num_keys));
    if (rnd->OneIn(7)) {
      ops.push_back(crash::DeleteOp(key));
    } else {
      ops.push_back(crash::PutOp(key, "u" + std::to_string(rnd->Uniform(num_users)),
                                 ts++, /*pad=*/64 + rnd->Uniform(900)));
    }
  }
  return ops;
}

TEST(RandomizedCrashTest, SeededRounds) {
  constexpr IndexType kTypes[] = {IndexType::kNoIndex, IndexType::kEmbedded,
                                  IndexType::kLazy, IndexType::kEager,
                                  IndexType::kComposite};
  for (int round = 0; round < kRounds; round++) {
    const uint32_t seed = kBaseSeed + 977 * static_cast<uint32_t>(round);
    Random rnd(seed);
    const IndexType type = kTypes[rnd.Uniform(5)];
    const std::vector<Op> ops = RandomWorkload(&rnd);

    const uint64_t total_ops = crash::CountEnvOps(type, ops);
    ASSERT_GT(total_ops, 0u) << "seed=" << seed;
    const uint64_t crash_at =
        rnd.Uniform(static_cast<int>(std::min<uint64_t>(total_ops, 1u << 30)));
    const auto mode = rnd.OneIn(2)
                          ? FaultInjectionEnv::CrashMode::kTornTail
                          : FaultInjectionEnv::CrashMode::kDropUnsynced;

    crash::RunCrashCycle(
        type, ops, crash_at, mode, seed,
        "seed=" + std::to_string(seed) + " variant=" + IndexTypeName(type) +
            " ops=" + std::to_string(ops.size()) + " crash_at=" +
            std::to_string(crash_at) + "/" + std::to_string(total_ops) +
            " mode=" + crash::CrashModeName(mode));
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "round failed; reproduce with kBaseSeed=" << seed
             << " (round " << round << ")";
    }
  }
}

}  // namespace
}  // namespace leveldbpp
