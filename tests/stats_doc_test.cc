// docs/METRICS.md is the reference manual for every observable metric the
// engine exports. This test keeps it honest in BOTH directions:
//
//   1. Completeness — every ticker, histogram, PerfContext field and trace
//      event registered in code appears (backticked) in the manual.
//   2. No phantoms — every backticked name in the manual's metric tables
//      (rows beginning "| `") names something that actually exists in a
//      code registry (or the documented property list).
//
// The doc path is injected by CMake as METRICS_DOC_PATH.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "db/trace_writer.h"
#include "env/statistics.h"
#include "util/perf_context.h"

namespace leveldbpp {
namespace {

std::string ReadDoc() {
  std::ifstream in(METRICS_DOC_PATH);
  EXPECT_TRUE(in.good()) << "cannot open " << METRICS_DOC_PATH;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Every `backticked` span in the document.
std::set<std::string> BacktickedSpans(const std::string& doc) {
  std::set<std::string> spans;
  size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    if (end > pos + 1) spans.insert(doc.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return spans;
}

// The first backticked token of every markdown table row ("| `name` | ...").
std::vector<std::string> TableRowNames(const std::string& doc) {
  std::vector<std::string> names;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '|') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || line[i] != '`') continue;
    size_t end = line.find('`', i + 1);
    if (end == std::string::npos || end == i + 1) continue;
    names.push_back(line.substr(i + 1, end - i - 1));
  }
  return names;
}

// Everything the engine exports under a stable name.
std::set<std::string> CodeRegistry() {
  std::set<std::string> names;
  for (uint32_t i = 0; i < kTickerCount; i++) {
    names.insert(TickerName(static_cast<Ticker>(i)));
  }
  for (uint32_t i = 0; i < kHistogramCount; i++) {
    names.insert(HistogramName(static_cast<HistogramType>(i)));
  }
  for (const PerfContext::Field& f : PerfContext::CounterFields()) {
    names.insert(f.name);
  }
  for (const PerfContext::Field& f : PerfContext::TimerFields()) {
    names.insert(f.name);
  }
  for (size_t i = 0; i < kNumTraceEvents; i++) {
    names.insert(kTraceEventNames[i]);
  }
  return names;
}

// DB::GetProperty names, as documented. Kept in the manual's Properties
// table; db_property_test exercises the properties themselves.
const char* const kPropertyNames[] = {
    "leveldbpp.num-files-at-level<N>",
    "leveldbpp.sstables",
    "leveldbpp.total-bytes",
    "leveldbpp.approximate-memory-usage",
    "leveldbpp.levels",
    "leveldbpp.stats",
    "leveldbpp.stats.json",
    "leveldbpp.quarantine",
};

// Non-registry lines the stats property derives on the fly; documented in
// the manual's derived-lines table.
const char* const kDerivedLines[] = {
    "block.cache.hit.ratio",
    "block.cache.charge",
};

TEST(StatsDocTest, EveryRegisteredNameIsDocumented) {
  const std::string doc = ReadDoc();
  ASSERT_FALSE(doc.empty());
  const std::set<std::string> spans = BacktickedSpans(doc);
  for (const std::string& name : CodeRegistry()) {
    EXPECT_EQ(1u, spans.count(name))
        << "'" << name << "' is exported by the engine but missing from "
        << METRICS_DOC_PATH;
  }
  for (const char* name : kPropertyNames) {
    EXPECT_EQ(1u, spans.count(name))
        << "property '" << name << "' missing from " << METRICS_DOC_PATH;
  }
}

TEST(StatsDocTest, EveryDocumentedTableEntryExistsInCode) {
  const std::string doc = ReadDoc();
  std::set<std::string> allowed = CodeRegistry();
  for (const char* name : kPropertyNames) allowed.insert(name);
  for (const char* name : kDerivedLines) allowed.insert(name);
  const std::vector<std::string> rows = TableRowNames(doc);
  ASSERT_FALSE(rows.empty()) << "no metric tables found in the manual";
  for (const std::string& name : rows) {
    EXPECT_EQ(1u, allowed.count(name))
        << "'" << name << "' is documented in " << METRICS_DOC_PATH
        << " but not exported by any code registry";
  }
}

TEST(StatsDocTest, TableCoverageMatchesRegistrySizes) {
  // The tables must carry one row per registered name — no name may hide
  // only in prose. (Set-based checks above can't catch a missing row that
  // another table already names.)
  const std::string doc = ReadDoc();
  const std::vector<std::string> rows = TableRowNames(doc);
  std::set<std::string> row_set(rows.begin(), rows.end());
  for (const std::string& name : CodeRegistry()) {
    EXPECT_EQ(1u, row_set.count(name))
        << "'" << name << "' has no table row of its own in "
        << METRICS_DOC_PATH;
  }
  // And no name is documented twice.
  EXPECT_EQ(row_set.size(), rows.size())
      << "a metric table documents some name more than once";
}

}  // namespace
}  // namespace leveldbpp
