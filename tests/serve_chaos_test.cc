// Chaos harness for the serving stack: a LIVE server over per-shard fault
// envs, driven through real protocol clients while single shards are
// stalled, failed, delayed, or killed mid-connection.
//
// The invariants under attack (DESIGN.md "Serving robustness"):
//  * The server always answers PING and HEALTH, whatever the shards do.
//  * A sick shard never blocks traffic to healthy shards.
//  * Writes are shed with RETRY_LATER (nothing applied) — never silently
//    dropped: every ACKNOWLEDGED write must read back byte-identical after
//    recovery (golden-model check).
//  * Degraded query results are always flagged, and only ever happen when
//    the client opted in.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "env/fault_injection_env.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/sharded_db.h"

namespace leveldbpp {
namespace {

// ---------------------------------------------------------------------------
// ChaosEnv: the per-shard failure surface. Stacks on a FaultInjectionEnv
// (deterministic write-op faults) and adds what a *live* chaos schedule
// needs beyond it: injectable READ faults (sticky background errors leave
// reads working, so degrading a shard's queries needs its own lever), a
// read DELAY (deterministic deadline expiry), and a table-write GATE that
// parks the shard's flush thread exactly where real slow disks do — inside
// NewWritableFile with the DB mutex released, so reads and health checks
// stay live while the immutable-memtable queue fills behind it.
// ---------------------------------------------------------------------------

class ChaosEnv;

class ChaosRandomAccessFile : public RandomAccessFile {
 public:
  ChaosRandomAccessFile(ChaosEnv* owner,
                        std::unique_ptr<RandomAccessFile> inner)
      : owner_(owner), inner_(std::move(inner)) {}
  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override;

 private:
  ChaosEnv* const owner_;
  const std::unique_ptr<RandomAccessFile> inner_;
};

class ChaosEnv : public Env {
 public:
  explicit ChaosEnv(Env* base) : base_(base) {}

  ~ChaosEnv() override { BlockTableWrites(false); }

  // n > 0: fail the next n reads. n < 0: fail every read. 0: healthy.
  void SetReadFaults(int64_t n) { read_faults_.store(n); }

  // Every SSTable read sleeps this long first (0 = no delay).
  void SetReadDelayMicros(uint64_t micros) { read_delay_micros_.store(micros); }

  // Closed gate: creating a PRIMARY-table SSTable blocks until the gate
  // reopens. WAL and MANIFEST files pass through, so foreground writes
  // keep acknowledging until the stall ladder refuses them — and index
  // tables pass through too, because index writes deliberately keep the
  // blocking path (see SecondaryDB::WriteControl): gating them would park
  // the connection thread inside the index before the primary ladder ever
  // got the chance to shed.
  void BlockTableWrites(bool block) {
    std::lock_guard<std::mutex> l(gate_mu_);
    table_writes_blocked_ = block;
    if (!block) gate_cv_.notify_all();
  }

  Status MaybeReadChaos() {
    const uint64_t delay = read_delay_micros_.load(std::memory_order_relaxed);
    if (delay != 0) base_->SleepForMicroseconds(static_cast<int>(delay));
    int64_t cur = read_faults_.load(std::memory_order_relaxed);
    while (cur != 0) {
      if (cur < 0 || read_faults_.compare_exchange_weak(cur, cur - 1)) {
        return Status::IOError("injected read fault");
      }
    }
    return Status::OK();
  }

  // ---- Env interface ----
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> inner;
    Status s = base_->NewRandomAccessFile(fname, &inner);
    if (!s.ok()) return s;
    result->reset(new ChaosRandomAccessFile(this, std::move(inner)));
    return Status::OK();
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fname.size() > 4 &&
        fname.compare(fname.size() - 4, 4, ".ldb") == 0 &&
        fname.find("/primary/") != std::string::npos) {
      std::unique_lock<std::mutex> l(gate_mu_);
      gate_cv_.wait(l, [this]() { return !table_writes_blocked_; });
    }
    return base_->NewWritableFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  Env* const base_;
  std::atomic<int64_t> read_faults_{0};
  std::atomic<uint64_t> read_delay_micros_{0};
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool table_writes_blocked_ = false;  // guarded by gate_mu_
};

Status ChaosRandomAccessFile::Read(uint64_t offset, size_t n, Slice* result,
                                   char* scratch) const {
  Status s = owner_->MaybeReadChaos();
  if (!s.ok()) return s;
  return inner_->Read(offset, n, result, scratch);
}

// ---------------------------------------------------------------------------
// Fixture: ShardedDB with one FaultInjectionEnv + ChaosEnv per shard over a
// shared in-memory base, behind a live Server.
// ---------------------------------------------------------------------------

struct ChaosFixture {
  std::unique_ptr<Env> base_env;
  std::vector<std::unique_ptr<FaultInjectionEnv>> fault_envs;
  std::vector<std::unique_ptr<ChaosEnv>> chaos_envs;
  std::unique_ptr<ShardedDB> db;
  std::unique_ptr<Server> server;

  explicit ChaosFixture(int shards = 2,
                        ServerOptions server_options = ServerOptions()) {
    base_env.reset(NewMemEnv());
    for (int i = 0; i < shards; i++) {
      fault_envs.emplace_back(
          new FaultInjectionEnv(base_env.get(), /*seed=*/301 + i));
      chaos_envs.emplace_back(new ChaosEnv(fault_envs.back().get()));
    }
    ShardedDBOptions options;
    options.shard.base.env = base_env.get();  // SHARDS meta file only
    // Small memtables + background mode: a blocked flush engages the
    // stall ladder after a couple hundred small documents.
    options.shard.base.write_buffer_size = 4 << 10;
    options.shard.base.background_compaction = true;
    options.shard.base.max_immutable_memtables = 1;
    options.shard.index_type = IndexType::kLazy;
    options.shard.indexed_attributes = {"UserID"};
    options.num_shards = shards;
    options.env_factory = [this](int i) { return chaos_envs[i].get(); };
    EXPECT_TRUE(ShardedDB::Open(options, "/chaos", &db).ok());
    EXPECT_TRUE(Server::Start(db.get(), server_options, &server).ok());
  }

  ~ChaosFixture() {
    // Heal everything before teardown: a shard's background thread may be
    // parked inside a closed gate, and Stop()/close must not deadlock.
    for (auto& e : chaos_envs) {
      e->SetReadFaults(0);
      e->SetReadDelayMicros(0);
      e->BlockTableWrites(false);
    }
    for (auto& e : fault_envs) e->ClearFaults();
    if (server != nullptr) server->Stop();
  }

  std::unique_ptr<Client> Connect() {
    std::unique_ptr<Client> client;
    EXPECT_TRUE(Client::Connect("127.0.0.1", server->port(), &client).ok());
    return client;
  }

  // A key that routes to `shard`.
  std::string KeyFor(int shard, int i) {
    for (int salt = 0;; salt++) {
      std::string key = "s" + std::to_string(shard) + "-" +
                        std::to_string(i) + "-" + std::to_string(salt);
      if (db->ShardFor(key) == shard) return key;
    }
  }

  // Poll a predicate for up to ~5s (background threads need real time).
  template <typename Pred>
  bool WaitFor(Pred pred) {
    for (int i = 0; i < 500; i++) {
      if (pred()) return true;
      base_env->SleepForMicroseconds(10000);
    }
    return false;
  }
};

std::string Doc(const std::string& user, int i) {
  return "{\"UserID\":\"" + user + "\",\"Seq\":" + std::to_string(i) + "}";
}

RetryPolicy NoRetries() {
  RetryPolicy p;
  p.max_retries = 0;
  p.reconnect = false;
  return p;
}

// ---------------------------------------------------------------------------
// Stalled shard: flush blocked on a closed gate. Writes to that shard are
// shed with RETRY_LATER + the rung-2 hint, reads and health checks keep
// answering, the sibling shard is untouched, and once the gate reopens a
// retried write lands. Golden-model check: every acknowledged write reads
// back byte-identical.
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, StalledShardShedsWritesAndStaysObservable) {
  ChaosFixture fx(/*shards=*/2);
  std::unique_ptr<Client> client = fx.Connect();
  client->set_retry_policy(NoRetries());  // surface every shed

  std::map<std::string, std::string> golden;  // acknowledged writes only
  fx.chaos_envs[0]->BlockTableWrites(true);

  // Hammer shard 0 until the ladder refuses a write: memtable fills,
  // rotates into the (blocked) flush queue, second memtable fills, and the
  // imm-queue-full rung sheds.
  std::string refused_key, refused_doc;
  bool shed = false;
  for (int i = 0; i < 2000 && !shed; i++) {
    const std::string key = fx.KeyFor(0, i);
    const std::string doc = Doc("stall", i);
    Status s = client->Put(key, doc);
    if (s.ok()) {
      golden[key] = doc;
    } else {
      ASSERT_TRUE(s.IsBusy()) << s.ToString();
      refused_key = key;
      refused_doc = doc;
      shed = true;
    }
  }
  ASSERT_TRUE(shed) << "stall ladder never engaged";
  EXPECT_EQ(10000u, client->last_retry_after_micros());  // rung-2 hint
  EXPECT_GE(fx.db->statistics()->Get(kServeRequestsShed), 1u);
  EXPECT_GE(fx.db->statistics()->Get(kServeRetriesSuggested), 1u);

  // The server still answers probes, and health tells the truth: shard 0
  // is at the imm-queue rung, shard 1 is clean.
  ASSERT_TRUE(client->Ping().ok());
  std::string health_json;
  ASSERT_TRUE(client->Health(&health_json).ok());
  EXPECT_NE(std::string::npos, health_json.find("stall_rung"));
  std::vector<ShardedDB::ShardHealthInfo> health = fx.db->ShardHealth();
  EXPECT_EQ(2, health[0].stall_rung);
  EXPECT_EQ(10000u, health[0].suggested_retry_micros);
  EXPECT_EQ(0, health[1].stall_rung);

  // The sick shard still reads; the healthy shard still writes.
  std::string value;
  ASSERT_FALSE(golden.empty());
  ASSERT_TRUE(client->Get(golden.begin()->first, &value).ok());
  EXPECT_EQ(golden.begin()->second, value);
  const std::string healthy_key = fx.KeyFor(1, 0);
  ASSERT_TRUE(client->Put(healthy_key, Doc("healthy", 0)).ok());
  golden[healthy_key] = Doc("healthy", 0);

  // Recovery: reopen the gate; the retrying client lands the shed write.
  fx.chaos_envs[0]->BlockTableWrites(false);
  client->set_retry_policy(RetryPolicy());
  ASSERT_TRUE(client->Put(refused_key, refused_doc).ok());
  golden[refused_key] = refused_doc;

  // Golden model: every acknowledged write is present, byte-identical.
  for (const auto& kv : golden) {
    ASSERT_TRUE(client->Get(kv.first, &value).ok()) << kv.first;
    EXPECT_EQ(kv.second, value) << kv.first;
  }
}

// ---------------------------------------------------------------------------
// Degraded reads: a shard whose queries fail is dropped from the fan-out
// ONLY when the client opted in, the response is flagged with the missing
// count, and all-shards-down returns the error instead of an empty
// "success".
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, DegradedLookupsAreOptInAndFlagged) {
  ChaosFixture fx(/*shards=*/2);
  std::unique_ptr<Client> client = fx.Connect();

  // Data on both shards, compacted so queries must read SSTables (the
  // read-fault lever acts on file reads).
  int on_shard[2] = {0, 0};
  for (int i = 0; i < 40; i++) {
    const std::string key = "mix-" + std::to_string(i);
    ASSERT_TRUE(client->Put(key, Doc("deg", i)).ok());
    on_shard[fx.db->ShardFor(key)]++;
  }
  ASSERT_GT(on_shard[0], 0);
  ASSERT_GT(on_shard[1], 0);
  ASSERT_TRUE(fx.db->CompactAll().ok());

  std::vector<QueryResult> results;
  ASSERT_TRUE(client->Lookup("UserID", "deg", 0, &results).ok());
  ASSERT_EQ(40u, results.size());

  fx.chaos_envs[0]->SetReadFaults(-1);

  // Default: fail-closed. The query fails; nothing partial leaks out.
  Status s = client->Lookup("UserID", "deg", 0, &results);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(client->last_degraded());

  // Opt in: partial results, flagged, with the missing-shard count.
  client->set_allow_degraded(true);
  ASSERT_TRUE(client->Lookup("UserID", "deg", 0, &results).ok());
  EXPECT_TRUE(client->last_degraded());
  EXPECT_EQ(1u, client->last_missing_shards());
  ASSERT_EQ(static_cast<size_t>(on_shard[1]), results.size());
  for (const QueryResult& r : results) {
    EXPECT_EQ(1, fx.db->ShardFor(r.primary_key));
  }
  EXPECT_GE(fx.db->statistics()->Get(kLookupDegraded), 1u);

  // Every shard down: error, not an empty degraded "success".
  fx.chaos_envs[1]->SetReadFaults(-1);
  EXPECT_FALSE(client->Lookup("UserID", "deg", 0, &results).ok());

  // Heal: full, unflagged results again.
  fx.chaos_envs[0]->SetReadFaults(0);
  fx.chaos_envs[1]->SetReadFaults(0);
  ASSERT_TRUE(client->Lookup("UserID", "deg", 0, &results).ok());
  EXPECT_FALSE(client->last_degraded());
  EXPECT_EQ(0u, client->last_missing_shards());
  EXPECT_EQ(40u, results.size());
}

// ---------------------------------------------------------------------------
// Sticky background error: a failed flush poisons the shard's writes (the
// error surfaces, nothing is silently buffered), health reports it, and
// the degraded fan-out's one auto-Resume() attempt heals the shard without
// any operator action once the underlying fault clears.
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, AutoResumeHealsTransientBgError) {
  ChaosFixture fx(/*shards=*/2);
  std::unique_ptr<Client> client = fx.Connect();

  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(client->Put(fx.KeyFor(0, i), Doc("heal", i)).ok());
  }
  ASSERT_TRUE(fx.db->CompactAll().ok());

  // Fail every Sync on shard 0: foreground appends stay buffered (writes
  // keep acknowledging), but the next background flush dies at the table
  // Sync and records a sticky error.
  fx.fault_envs[0]->FailAfter(0, FaultInjectionEnv::kOpSync);
  for (int i = 100; i < 300; i++) {
    Status s = client->Put(fx.KeyFor(0, i), Doc("heal", i));
    if (!s.ok()) break;  // ladder/bg-error reached; enough traffic sent
  }
  ASSERT_TRUE(fx.WaitFor([&]() {
    return fx.db->ShardHealth()[0].has_bg_error;
  })) << "background flush never failed";

  // Sick-shard writes fail loudly; the server still answers probes.
  EXPECT_FALSE(client->Put(fx.KeyFor(0, 9999), Doc("x", 0)).ok());
  ASSERT_TRUE(client->Ping().ok());
  std::string health_json;
  ASSERT_TRUE(client->Health(&health_json).ok());
  EXPECT_NE(std::string::npos, health_json.find("bg_error"));

  // The disk comes back, but the sticky error remains until a Resume. A
  // single transient read fault makes shard 0's next query fail once; with
  // degradation opted in, the fan-out gives the shard its one automatic
  // Resume — which clears the sticky error, drains the stuck flush (the
  // fault is already consumed, so the rebuilt table verifies clean), and
  // re-runs the shard query inline. The client gets a FULL answer, not a
  // degraded one, and the shard is healed without any operator action.
  fx.fault_envs[0]->ClearFaults();
  fx.chaos_envs[0]->SetReadFaults(1);
  client->set_allow_degraded(true);
  std::vector<QueryResult> results;
  ASSERT_TRUE(client->Lookup("UserID", "heal", 0, &results).ok());
  EXPECT_FALSE(client->last_degraded());

  ASSERT_TRUE(fx.WaitFor([&]() {
    return !fx.db->ShardHealth()[0].has_bg_error;
  })) << "auto-Resume did not clear the sticky error";

  // Healed without any explicit Resume call: writes and full lookups work.
  ASSERT_TRUE(client->Put(fx.KeyFor(0, 10000), Doc("heal", 10000)).ok());
  std::string value;
  ASSERT_TRUE(client->Get(fx.KeyFor(0, 10000), &value).ok());
  EXPECT_EQ(Doc("heal", 10000), value);
  ASSERT_TRUE(client->Lookup("UserID", "heal", 0, &results).ok());
  EXPECT_FALSE(client->last_degraded());
}

// ---------------------------------------------------------------------------
// Deadline storm: slow reads + tight budgets. Every storm request answers
// DEADLINE_EXCEEDED (not a hang, not a wedge), probes still answer, and
// normal service resumes the moment the slowness clears.
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, DeadlineStormAnswersFastAndNeverWedges) {
  ChaosFixture fx(/*shards=*/2);
  std::unique_ptr<Client> client = fx.Connect();

  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(client->Put("storm-" + std::to_string(i), Doc("storm", i)).ok());
  }
  ASSERT_TRUE(fx.db->CompactAll().ok());

  // Every SSTable read on shard 0 now takes 5ms; a 2ms budget cannot
  // survive the fan-out's merge barrier.
  fx.chaos_envs[0]->SetReadDelayMicros(5000);
  client->set_default_deadline_micros(2000);

  std::vector<QueryResult> results;
  for (int i = 0; i < 20; i++) {
    Status s = client->Lookup("UserID", "storm", 0, &results);
    ASSERT_TRUE(s.IsDeadlineExceeded()) << "round " << i << ": "
                                        << s.ToString();
  }
  EXPECT_GE(fx.db->statistics()->Get(kServeDeadlineExceeded), 20u);

  // Probes are deadline-exempt and touch no files: always live.
  ASSERT_TRUE(client->Ping().ok());
  std::string health_json;
  ASSERT_TRUE(client->Health(&health_json).ok());

  // Storm over: same deadline now succeeds.
  fx.chaos_envs[0]->SetReadDelayMicros(0);
  client->set_default_deadline_micros(0);
  ASSERT_TRUE(client->Lookup("UserID", "storm", 0, &results).ok());
  EXPECT_EQ(30u, results.size());
}

// ---------------------------------------------------------------------------
// Connection kills: peers that send a request and vanish before reading
// the response force the server to write into dead sockets. MSG_NOSIGNAL
// hardening means no SIGPIPE can kill the process (satellite regression).
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, KilledConnectionsNeverTakeTheServerDown) {
  ChaosFixture fx(/*shards=*/2);
  {
    std::unique_ptr<Client> seed = fx.Connect();
    // A fat result set so the response write is guaranteed to still be in
    // flight when the peer disappears.
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(seed->Put("kill-" + std::to_string(i),
                            Doc("kill", i))
                      .ok());
    }
  }
  for (int round = 0; round < 20; round++) {
    std::unique_ptr<Client> victim = fx.Connect();
    ASSERT_TRUE(victim != nullptr);
    wire::Request req;
    req.op = wire::kLookup;
    req.attribute = "UserID";
    req.value = "kill";
    req.k = 0;
    std::string frame;
    wire::EncodeRequest(req, &frame);
    ASSERT_TRUE(victim->SendRaw(frame).ok());
    victim.reset();  // close without reading: server's write hits EPIPE
  }

  // The process survived (a raised SIGPIPE would have killed it) and the
  // server still does real work.
  std::unique_ptr<Client> client = fx.Connect();
  ASSERT_TRUE(client->Ping().ok());
  std::vector<QueryResult> results;
  ASSERT_TRUE(client->Lookup("UserID", "kill", 0, &results).ok());
  EXPECT_EQ(50u, results.size());
}

// ---------------------------------------------------------------------------
// Admission control: a parked request exhausts max_inflight_requests, so
// the next request is refused before touching the engine — but PING and
// HEALTH stay exempt. Excess connections get one RETRY_LATER frame.
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, AdmissionControlShedsButProbesAlwaysAnswer) {
  ServerOptions sopts;
  sopts.shed_stalled_writes = false;  // let a write PARK inside the shard
  sopts.max_inflight_requests = 1;
  ChaosFixture fx(/*shards=*/2, sopts);

  // Drive shard 0 to the parking point directly (no server involved):
  // blocked flush + both memtables full means the next write waits.
  fx.chaos_envs[0]->BlockTableWrites(true);
  SecondaryDB::WriteControl probe;
  probe.no_stall = true;
  bool saturated = false;
  for (int i = 0; i < 2000 && !saturated; i++) {
    Status s = fx.db->Put(fx.KeyFor(0, i), Doc("adm", i), probe);
    if (s.IsBusy()) saturated = true;
  }
  ASSERT_TRUE(saturated);

  // This request parks inside MakeRoomForWrite, pinning inflight at 1.
  const uint64_t requests_before = fx.db->statistics()->Get(kServeRequests);
  std::unique_ptr<Client> parked = fx.Connect();
  std::thread parked_thread([&]() {
    EXPECT_TRUE(parked->Put(fx.KeyFor(0, 9999), Doc("adm", 9999)).ok());
  });
  ASSERT_TRUE(fx.WaitFor([&]() {
    return fx.db->statistics()->Get(kServeRequests) > requests_before;
  }));
  fx.base_env->SleepForMicroseconds(50000);  // let it reach the ladder

  // Engine work is refused at the door...
  std::unique_ptr<Client> second = fx.Connect();
  second->set_retry_policy(NoRetries());
  std::string value;
  Status s = second->Get(fx.KeyFor(1, 0), &value);
  ASSERT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_EQ(20000u, second->last_retry_after_micros());
  EXPECT_GE(fx.db->statistics()->Get(kServeRequestsShed), 1u);

  // ...but probes are not.
  ASSERT_TRUE(second->Ping().ok());
  std::string health_json;
  ASSERT_TRUE(second->Health(&health_json).ok());

  // Reopen the gate: the parked write completes and was never lost.
  fx.chaos_envs[0]->BlockTableWrites(false);
  parked_thread.join();
  ASSERT_TRUE(second->Get(fx.KeyFor(0, 9999), &value).ok());
  EXPECT_EQ(Doc("adm", 9999), value);
}

TEST(ServeChaosTest, ConnectionLimitAcceptSheds) {
  ServerOptions sopts;
  sopts.max_connections = 1;
  ChaosFixture fx(/*shards=*/2, sopts);

  std::unique_ptr<Client> first = fx.Connect();
  ASSERT_TRUE(first->Ping().ok());

  // The second connection gets exactly one RETRY_LATER frame, then EOF.
  std::unique_ptr<Client> second = fx.Connect();
  wire::Response resp;
  ASSERT_TRUE(second->ReadRawResponse(&resp, /*timeout=*/2000000).ok());
  EXPECT_EQ(wire::kRetryLater, resp.code);
  EXPECT_GT(resp.retry_after_micros, 0u);
  EXPECT_FALSE(second->ReadRawResponse(&resp, 2000000).ok());

  // Capacity freed: the next attempt is admitted. The retrying client
  // handles the whole dance transparently.
  first.reset();
  ASSERT_TRUE(fx.WaitFor([&]() {
    std::unique_ptr<Client> probe;
    if (!Client::Connect("127.0.0.1", fx.server->port(), &probe).ok()) {
      return false;
    }
    return probe->Ping().ok();
  }));
}

// ---------------------------------------------------------------------------
// Full chaos schedule: concurrent writers, shedding on, a mid-run stall of
// EVERY shard, and retrying clients. The golden-model invariant: every
// acknowledged write reads back byte-identical after the chaos ends.
// ---------------------------------------------------------------------------
TEST(ServeChaosTest, OverloadRecoveryLosesNoAcknowledgedWrite) {
  ChaosFixture fx(/*shards=*/2);
  constexpr int kThreads = 4;
  constexpr int kOps = 250;

  std::vector<std::map<std::string, std::string>> golden(kThreads);
  std::vector<std::thread> writers;
  std::atomic<int> started{0};
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&fx, &golden, &started, t]() {
      std::unique_ptr<Client> client;
      ASSERT_TRUE(
          Client::Connect("127.0.0.1", fx.server->port(), &client).ok());
      RetryPolicy patient;
      patient.max_retries = 100;  // outlast the 40ms stall window
      client->set_retry_policy(patient);
      started.fetch_add(1);
      for (int i = 0; i < kOps; i++) {
        const std::string key =
            "ch-" + std::to_string(t) + "-" + std::to_string(i);
        const std::string doc = Doc("u" + std::to_string(t), i);
        ASSERT_TRUE(client->Put(key, doc).ok()) << key;
        golden[t][key] = doc;
      }
    });
  }

  // Mid-run: stall every shard's flush for 40ms. Writers ride it out on
  // RETRY_LATER + backoff.
  while (started.load() < kThreads) {
    fx.base_env->SleepForMicroseconds(1000);
  }
  fx.base_env->SleepForMicroseconds(10000);
  for (auto& e : fx.chaos_envs) e->BlockTableWrites(true);
  fx.base_env->SleepForMicroseconds(40000);
  for (auto& e : fx.chaos_envs) e->BlockTableWrites(false);

  for (std::thread& w : writers) w.join();

  // Every acknowledged write survived, byte-identical.
  std::unique_ptr<Client> reader = fx.Connect();
  std::string value;
  size_t total = 0;
  for (const auto& m : golden) {
    for (const auto& kv : m) {
      ASSERT_TRUE(reader->Get(kv.first, &value).ok()) << kv.first;
      EXPECT_EQ(kv.second, value) << kv.first;
      total++;
    }
  }
  EXPECT_EQ(static_cast<size_t>(kThreads) * kOps, total);

  // And the index agrees with the golden model per user.
  std::vector<QueryResult> results;
  for (int t = 0; t < kThreads; t++) {
    ASSERT_TRUE(
        reader->Lookup("UserID", "u" + std::to_string(t), 0, &results).ok());
    EXPECT_EQ(static_cast<size_t>(kOps), results.size()) << "user " << t;
  }
}

}  // namespace
}  // namespace leveldbpp
