#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace leveldbpp {
namespace crc32c {

// Known-answer tests from the CRC32C specification (RFC 3720 appendix).
TEST(Crc32c, StandardResults) {
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aau, Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43u, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794eu, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(0x113fdb5cu, Value(buf, sizeof(buf)));

  uint8_t data[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(0xd9963a56u, Value(reinterpret_cast<char*>(data), sizeof(data)));
}

TEST(Crc32c, Values) { EXPECT_NE(Value("a", 1), Value("foo", 3)); }

TEST(Crc32c, Extend) {
  EXPECT_EQ(Value("hello world", 11), Extend(Value("hello ", 6), "world", 5));
}

TEST(Crc32c, Mask) {
  uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; i++) {
    data.push_back(static_cast<char>(i * 37));
  }
  uint32_t one_shot = Value(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); split += 97) {
    uint32_t inc = Value(data.data(), split);
    inc = Extend(inc, data.data() + split, data.size() - split);
    EXPECT_EQ(one_shot, inc);
  }
}

}  // namespace crc32c
}  // namespace leveldbpp
