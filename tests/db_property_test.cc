// Property-style engine tests:
//  * configuration sweep (parameterized over buffer sizes / compression /
//    filters) of the randomized differential test,
//  * LSM structural invariants after heavy churn (level-1+ files sorted and
//    disjoint, file metadata consistent with contents),
//  * WAL-prefix crash recovery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "db/db_impl.h"
#include "db/filename.h"
#include "env/env.h"
#include "table/filter_policy.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

struct EngineConfig {
  size_t write_buffer_size;
  CompressionType compression;
  bool bloom;
  const char* name;
};

class DBConfigSweepTest : public testing::TestWithParam<EngineConfig> {
 protected:
  DBConfigSweepTest() : env_(NewMemEnv()) {
    filter_.reset(NewBloomFilterPolicy(10));
    Open();
  }

  void Open() {
    const EngineConfig& config = GetParam();
    Options options;
    options.env = env_.get();
    options.write_buffer_size = config.write_buffer_size;
    options.max_file_size = 32 << 10;
    options.max_bytes_for_level_base = 128 << 10;
    options.compression = config.compression;
    options.filter_policy = config.bloom ? filter_.get() : nullptr;
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/sweepdb", &raw).ok());
    db_.reset(raw);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> filter_;
  std::unique_ptr<DBImpl> db_;
};

TEST_P(DBConfigSweepTest, RandomizedModelCheck) {
  Random64 rnd(0xABCDEF);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 5000; step++) {
    std::string key = "k" + std::to_string(rnd.Uniform(800));
    int op = static_cast<int>(rnd.Uniform(10));
    if (op < 7) {
      std::string value =
          "v" + std::to_string(step) + std::string(rnd.Uniform(150), 'd');
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else if (op < 9) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else {
      std::string value;
      Status s = db_->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << "step " << step;
      } else {
        ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
        ASSERT_EQ(it->second, value);
      }
    }
  }
  // Reopen and verify everything.
  db_.reset();
  Open();
  for (const auto& [key, value] : model) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
    ASSERT_EQ(value, got);
  }
  // Iterator agrees with the model exactly.
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_TRUE(mit != model.end());
    ASSERT_EQ(mit->first, it->key().ToString());
    ASSERT_EQ(mit->second, it->value().ToString());
  }
  ASSERT_TRUE(mit == model.end());
}

TEST_P(DBConfigSweepTest, LevelInvariantsAfterChurn) {
  Random64 rnd(0x777);
  for (int step = 0; step < 6000; step++) {
    std::string key = "key" + std::to_string(rnd.Uniform(1500));
    ASSERT_TRUE(db_->Put(WriteOptions(), key,
                         std::string(rnd.Uniform(200), 'x'))
                    .ok());
    if (rnd.Uniform(20) == 0) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    }
  }

  const InternalKeyComparator& icmp = db_->versions()->icmp();
  Version* v = db_->versions()->current();
  v->Ref();
  for (int level = 1; level < v->NumLevels(); level++) {
    const auto& files = v->files(level);
    for (size_t i = 0; i < files.size(); i++) {
      // Within a file: smallest <= largest.
      ASSERT_LE(icmp.Compare(files[i]->smallest.Encode(),
                             files[i]->largest.Encode()),
                0);
      if (i > 0) {
        // Level-1+ files must be disjoint and sorted.
        ASSERT_LT(icmp.Compare(files[i - 1]->largest.Encode(),
                               files[i]->smallest.Encode()),
                  0)
            << "overlap at level " << level;
      }
    }
  }
  v->Unref();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DBConfigSweepTest,
    testing::Values(
        EngineConfig{64 << 10, kSimpleLZCompression, true, "SmallBufLZBloom"},
        EngineConfig{64 << 10, kNoCompression, true, "SmallBufRawBloom"},
        EngineConfig{64 << 10, kSimpleLZCompression, false, "SmallBufLZNoBloom"},
        EngineConfig{1 << 20, kSimpleLZCompression, true, "BigBufLZBloom"}),
    [](const testing::TestParamInfo<EngineConfig>& info) {
      return info.param.name;
    });

// ---- WAL crash recovery: a truncated log tail recovers a clean prefix ----

class CrashRecoveryTest : public testing::Test {
 protected:
  CrashRecoveryTest() : env_(NewMemEnv()) {}

  std::unique_ptr<DBImpl> Open() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 1 << 20;  // Keep everything in the WAL
    DBImpl* raw = nullptr;
    EXPECT_TRUE(DBImpl::Open(options, "/crashdb", &raw).ok());
    return std::unique_ptr<DBImpl>(raw);
  }

  // Chop the newest log file down to `keep_fraction` of its size,
  // simulating a crash mid-write.
  void TruncateNewestLog(double keep_fraction) {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren("/crashdb", &children).ok());
    uint64_t newest = 0;
    for (const std::string& f : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(f, &number, &type) && type == kLogFile) {
        newest = std::max(newest, number);
      }
    }
    ASSERT_GT(newest, 0u);
    std::string path = LogFileName("/crashdb", newest);

    std::unique_ptr<SequentialFile> in;
    ASSERT_TRUE(env_->NewSequentialFile(path, &in).ok());
    std::string contents;
    char scratch[1 << 16];
    Slice chunk;
    while (in->Read(sizeof(scratch), &chunk, scratch).ok() &&
           !chunk.empty()) {
      contents.append(chunk.data(), chunk.size());
    }
    contents.resize(static_cast<size_t>(contents.size() * keep_fraction));
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env_->NewWritableFile(path, &out).ok());
    ASSERT_TRUE(out->Append(contents).ok());
    ASSERT_TRUE(out->Close().ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(CrashRecoveryTest, TruncatedWalRecoversPrefix) {
  std::vector<std::pair<std::string, std::string>> writes;
  {
    auto db = Open();
    Random64 rnd(0x5117);
    for (int i = 0; i < 500; i++) {
      std::string key = "k" + std::to_string(i);
      std::string value = "v" + std::to_string(rnd.Next());
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      writes.emplace_back(key, value);
    }
    // "Crash": drop the DB object without any clean shutdown.
  }
  TruncateNewestLog(0.5);

  auto db = Open();
  // Recovery must yield an exact PREFIX of the write sequence: find the
  // first missing key; everything before it must be intact, everything
  // after absent (keys here are unique so prefix = set).
  size_t recovered = 0;
  for (const auto& [key, value] : writes) {
    std::string got;
    Status s = db->Get(ReadOptions(), key, &got);
    if (s.ok()) {
      ASSERT_EQ(value, got);
      recovered++;
    } else {
      break;
    }
  }
  ASSERT_GT(recovered, 0u);
  ASSERT_LT(recovered, writes.size());
  for (size_t i = recovered; i < writes.size(); i++) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), writes[i].first, &got).IsNotFound())
        << "key " << writes[i].first << " should be lost with the torn tail";
  }
  // The recovered store remains fully writable.
  ASSERT_TRUE(db->Put(WriteOptions(), "post-crash", "ok").ok());
  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), "post-crash", &got).ok());
}

TEST_F(CrashRecoveryTest, RepeatedReopenIsStable) {
  for (int round = 0; round < 5; round++) {
    auto db = Open();
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(),
                          "r" + std::to_string(round) + "k" +
                              std::to_string(i),
                          "v")
                      .ok());
    }
  }
  auto db = Open();
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 50; i++) {
      std::string got;
      ASSERT_TRUE(db->Get(ReadOptions(),
                          "r" + std::to_string(round) + "k" +
                              std::to_string(i),
                          &got)
                      .ok());
    }
  }
}

}  // namespace
}  // namespace leveldbpp
