// SecondaryDB facade tests: configuration errors, statistics plumbing,
// size accounting, and index-specific observable behaviours (zone-map
// pruning, GetLite usage, posting-list fragmentation).

#include "core/secondary_db.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/standalone_index.h"
#include "env/env.h"
#include "json/json.h"
#include "workload/tweet_generator.h"

namespace leveldbpp {
namespace {

class SecondaryDBTest : public testing::Test {
 protected:
  SecondaryDBTest() : env_(NewMemEnv()) {}

  std::unique_ptr<SecondaryDB> Open(IndexType type,
                                    std::vector<std::string> attrs = {
                                        "UserID", "CreationTime"}) {
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.write_buffer_size = 64 << 10;
    options.base.max_file_size = 32 << 10;
    options.index_type = type;
    options.indexed_attributes = std::move(attrs);
    std::unique_ptr<SecondaryDB> db;
    Status s = SecondaryDB::Open(options, "/sdb_" + std::to_string(seq_++),
                                 &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return db;
  }

  static std::string Doc(const std::string& user, uint64_t ts) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%012llu",
                  static_cast<unsigned long long>(ts));
    return "{\"CreationTime\":\"" + std::string(buf) + "\",\"UserID\":\"" +
           user + "\"}";
  }

  std::unique_ptr<Env> env_;
  int seq_ = 0;
};

TEST_F(SecondaryDBTest, UnindexedAttributeRejected) {
  auto db = Open(IndexType::kLazy, {"UserID"});
  std::vector<QueryResult> results;
  Status s = db->Lookup("Nope", "x", 0, &results);
  EXPECT_TRUE(s.IsInvalidArgument());
  s = db->RangeLookup("Nope", "a", "b", 0, &results);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(nullptr, db->index("Nope"));
  EXPECT_NE(nullptr, db->index("UserID"));
}

TEST_F(SecondaryDBTest, DocumentsWithoutAttributeAreUnindexedButStored) {
  auto db = Open(IndexType::kComposite, {"UserID"});
  ASSERT_TRUE(db->Put("k1", R"({"Other":"field"})").ok());
  ASSERT_TRUE(db->Put("k2", Doc("u1", 5)).ok());

  std::string value;
  ASSERT_TRUE(db->Get("k1", &value).ok());  // GET still works

  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "u1", 0, &results).ok());
  ASSERT_EQ(1u, results.size());
  EXPECT_EQ("k2", results[0].primary_key);
}

TEST_F(SecondaryDBTest, EmbeddedHasNoIndexTables) {
  auto embedded = Open(IndexType::kEmbedded);
  auto lazy = Open(IndexType::kLazy);
  for (int i = 0; i < 2000; i++) {
    std::string doc = Doc("user" + std::to_string(i % 50), 1000 + i);
    ASSERT_TRUE(embedded->Put("t" + std::to_string(i), doc).ok());
    ASSERT_TRUE(lazy->Put("t" + std::to_string(i), doc).ok());
  }
  EXPECT_EQ(0u, embedded->IndexSizeBytes());
  EXPECT_GT(lazy->IndexSizeBytes(), 0u);
  // The embedded variant's index objects expose no stand-alone stats.
  EXPECT_EQ(nullptr, embedded->index("UserID")->index_statistics());
  EXPECT_NE(nullptr, lazy->index("UserID")->index_statistics());
}

TEST_F(SecondaryDBTest, EmbeddedZoneMapsPruneTimeQueries) {
  auto db = Open(IndexType::kEmbedded);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        db->Put("t" + std::to_string(i),
                Doc("user" + std::to_string(i % 100), 1000 + i))
            .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  Statistics* stats = db->primary_statistics();
  uint64_t pruned_before =
      stats->Get(kZoneMapBlockPruned) + stats->Get(kZoneMapFilePruned);
  uint64_t reads_before = stats->Get(kBlockRead);

  // A narrow window on the time-correlated attribute: zone maps must prune
  // nearly everything.
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->RangeLookup("CreationTime", Doc("", 4900).substr(17, 12),
                              Doc("", 4999).substr(17, 12), 0, &results)
                  .ok());
  // (substr pulls the encoded timestamp out of the helper's document)
  uint64_t pruned =
      stats->Get(kZoneMapBlockPruned) + stats->Get(kZoneMapFilePruned) -
      pruned_before;
  uint64_t reads = stats->Get(kBlockRead) - reads_before;
  EXPECT_GT(pruned, 0u);
  EXPECT_LT(reads, 50u);  // Far fewer than a full scan
  EXPECT_FALSE(results.empty());
}

TEST_F(SecondaryDBTest, EmbeddedLookupRecordsGetLiteActivity) {
  auto db = Open(IndexType::kEmbedded);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put("t" + std::to_string(i),
                Doc("user" + std::to_string(i % 20), 1000 + i))
            .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  Statistics* stats = db->primary_statistics();
  uint64_t calls_before = stats->Get(kGetLiteCalls);
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "user7", 10, &results).ok());
  EXPECT_EQ(10u, results.size());
  EXPECT_GT(stats->Get(kGetLiteCalls), calls_before);
}

TEST_F(SecondaryDBTest, LazyFragmentsMergeDuringCompaction) {
  auto db = Open(IndexType::kLazy, {"UserID"});
  // Interleave many users so the same user's postings land in several
  // flush cycles -> fragments in several levels.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(db->Put("t" + std::to_string(round * 400 + i),
                          Doc("user" + std::to_string(i % 10),
                              1000 + round * 400 + i))
                      .ok());
    }
  }
  // Queries work on fragmented postings...
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "user3", 0, &results).ok());
  size_t before_compact = results.size();
  EXPECT_EQ(240u, before_compact);

  // ...and compaction merges the fragments without changing the answer.
  ASSERT_TRUE(db->CompactAll().ok());
  ASSERT_TRUE(db->Lookup("UserID", "user3", 0, &results).ok());
  EXPECT_EQ(before_compact, results.size());

  // After a full compaction the index table holds ONE merged list per user:
  // a point Get on the index DB returns the complete list.
  auto* lazy = dynamic_cast<StandAloneIndex*>(db->index("UserID"));
  ASSERT_NE(nullptr, lazy);
  std::string list;
  ASSERT_TRUE(lazy->index_db()->Get(ReadOptions(), "user3", &list).ok());
  // 240 entries in one JSON array.
  size_t entries = 0;
  for (char c : list) {
    if (c == '[') entries++;
  }
  EXPECT_EQ(240u + 1, entries);  // Outer array + one per entry
}

TEST_F(SecondaryDBTest, ResultsCarryFullDocuments) {
  auto db = Open(IndexType::kComposite);
  ASSERT_TRUE(db->Put("k", Doc("alice", 42)).ok());
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", "alice", 0, &results).ok());
  ASSERT_EQ(1u, results.size());
  json::Value doc;
  ASSERT_TRUE(json::Parse(Slice(results[0].value), &doc));
  EXPECT_EQ("alice", doc["UserID"].as_string());
  EXPECT_GT(results[0].seq, 0u);
}

TEST_F(SecondaryDBTest, TotalTickerAggregatesAllTables) {
  auto db = Open(IndexType::kLazy, {"UserID"});
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put("t" + std::to_string(i),
                        Doc("u" + std::to_string(i % 20), i))
                    .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  // Index-table compaction wrote bytes that the primary stats alone miss.
  uint64_t total = db->TotalTicker(kCompactionBytesWritten);
  uint64_t primary_only =
      db->primary_statistics()->Get(kCompactionBytesWritten);
  EXPECT_GT(total, primary_only);
}

TEST_F(SecondaryDBTest, TweetGeneratorEndToEnd) {
  // The full pipeline used by the benches: generator -> store -> query.
  auto db = Open(IndexType::kLazy);
  TweetGenerator gen(TweetGeneratorOptions{});
  std::string some_user;
  for (int i = 0; i < 1500; i++) {
    Tweet t = gen.Next();
    if (i == 700) some_user = t.user_id;
    ASSERT_TRUE(db->Put(t.tweet_id, t.ToJson()).ok());
  }
  std::vector<QueryResult> results;
  ASSERT_TRUE(db->Lookup("UserID", some_user, 5, &results).ok());
  ASSERT_FALSE(results.empty());
  for (size_t i = 1; i < results.size(); i++) {
    EXPECT_GT(results[i - 1].seq, results[i].seq);  // Newest first
  }
}

}  // namespace
}  // namespace leveldbpp
