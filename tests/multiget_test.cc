// DBImpl::MultiGet: batched point lookups must answer exactly like a loop
// of Get() calls — across memtable / immutable memtable / L0 / deeper
// levels, through deletes and overwrites, at every read_parallelism — and
// the TableCache open path must stay single-flight when concurrent readers
// miss on the same cold file.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/db_impl.h"
#include "db/filename.h"
#include "env/env.h"
#include "env/statistics.h"
#include "table/filter_policy.h"

namespace leveldbpp {

namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i, int version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"Attr\":\"%06d\",\"v\":\"%d\"}", i,
                version);
  return buf;
}

// Forwarding Env that counts NewRandomAccessFile calls per file name; the
// single-flight regression asserts each cold table file is opened once even
// under concurrent readers.
class CountingEnv : public Env {
 public:
  explicit CountingEnv(Env* base) : base_(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    {
      std::lock_guard<std::mutex> l(mu_);
      opens_[fname]++;
    }
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }

  int MaxTableFileOpens() {
    std::lock_guard<std::mutex> l(mu_);
    int max_opens = 0;
    for (const auto& [fname, count] : opens_) {
      if (fname.size() > 4 &&
          fname.compare(fname.size() - 4, 4, ".ldb") == 0) {
        max_opens = std::max(max_opens, count);
      }
    }
    return max_opens;
  }

  void ResetCounts() {
    std::lock_guard<std::mutex> l(mu_);
    opens_.clear();
  }

 private:
  Env* base_;
  std::mutex mu_;
  std::map<std::string, int> opens_;
};

}  // namespace

class MultiGetTest : public testing::Test {
 protected:
  MultiGetTest() : env_(NewMemEnv()), dbname_("/multiget_test") {
    filter_policy_.reset(NewBloomFilterPolicy(10));
  }

  ~MultiGetTest() override {
    db_.reset();
    Options options;
    options.env = env_.get();
    DestroyDB(dbname_, options);
  }

  Options BaseOptions() {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 << 10;  // Small: spread keys over levels
    options.max_file_size = 16 << 10;
    options.max_bytes_for_level_base = 64 << 10;
    options.filter_policy = filter_policy_.get();
    options.statistics = &stats_;
    return options;
  }

  void Open(const Options& options) {
    db_.reset();
    DBImpl* raw = nullptr;
    Status s = DBImpl::Open(options, dbname_, &raw);
    ASSERT_TRUE(s.ok()) << s.ToString();
    db_.reset(raw);
  }

  // Layered fixture: old values compacted to deeper levels, overwrites and
  // deletes in L0, the freshest writes still in the memtable.
  void BuildLayeredDB(int n) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());  // Everything at the bottom
    for (int i = 0; i < n; i += 3) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 2)).ok());
    }
    for (int i = 1; i < n; i += 7) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), Key(i)).ok());
    }
    // Force a flush so the overwrites/deletes land in L0, then write a few
    // more that stay in the memtable.
    ASSERT_TRUE(db_->Write(WriteOptions(), nullptr).ok());
    for (int i = 2; i < n; i += 11) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 3)).ok());
    }
  }

  void CheckMultiGetMatchesGet(const std::vector<std::string>& key_strs) {
    std::vector<Slice> keys(key_strs.begin(), key_strs.end());
    std::vector<std::string> values;
    std::vector<Status> statuses;
    Status s = db_->MultiGet(ReadOptions(), keys, &values, &statuses);
    ASSERT_EQ(keys.size(), values.size());
    ASSERT_EQ(keys.size(), statuses.size());
    bool any_error = false;
    for (size_t i = 0; i < keys.size(); i++) {
      std::string expected;
      Status gs = db_->Get(ReadOptions(), keys[i], &expected);
      ASSERT_EQ(gs.ok(), statuses[i].ok())
          << "key " << key_strs[i] << ": Get=" << gs.ToString()
          << " MultiGet=" << statuses[i].ToString();
      if (gs.ok()) {
        ASSERT_EQ(expected, values[i]) << "key " << key_strs[i];
      } else {
        ASSERT_TRUE(statuses[i].IsNotFound()) << statuses[i].ToString();
      }
      any_error |= (!statuses[i].ok() && !statuses[i].IsNotFound());
    }
    ASSERT_EQ(any_error, !s.ok());
  }

  Statistics stats_;
  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<const FilterPolicy> filter_policy_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(MultiGetTest, MatchesGetAcrossResidences) {
  const int n = 600;
  for (int parallelism : {0, 2, 4}) {
    Options options = BaseOptions();
    options.read_parallelism = parallelism;
    Open(options);
    BuildLayeredDB(n);

    // All present keys, plus misses, plus duplicates, in scrambled order.
    std::vector<std::string> batch;
    for (int i = n - 1; i >= 0; i--) batch.push_back(Key(i));
    batch.push_back("absent-low");
    batch.push_back("zzz-absent-high");
    batch.push_back(Key(0));   // Duplicate
    batch.push_back(Key(42));  // Duplicate
    CheckMultiGetMatchesGet(batch);

    db_.reset();
    Options destroy;
    destroy.env = env_.get();
    ASSERT_TRUE(DestroyDB(dbname_, destroy).ok());
  }
}

TEST_F(MultiGetTest, RecordsTickers) {
  Options options = BaseOptions();
  options.read_parallelism = 2;
  // The tiny JSON values compress so well that a compacted level can fit in
  // ONE table file, which would leave nothing to fan out over. Force several
  // files so the batch really spans multiple probe groups.
  options.compression = kNoCompression;
  options.max_file_size = 4 << 10;
  Open(options);
  BuildLayeredDB(600);
  ASSERT_TRUE(db_->CompactAll().ok());

  stats_.Reset();
  // Step across the whole key space so the batch spans several SSTables
  // (one probe group each).
  std::vector<std::string> key_strs;
  for (int i = 0; i < 600; i += 12) key_strs.push_back(Key(i));
  std::vector<Slice> keys(key_strs.begin(), key_strs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  EXPECT_EQ(1u, stats_.Get(kMultiGetBatches));
  EXPECT_EQ(key_strs.size(), stats_.Get(kMultiGetKeys));
  // With everything compacted below L0 and parallelism 2, at least one
  // probe group should have run on a pool worker.
  EXPECT_GT(stats_.Get(kParallelTasks), 0u);
}

TEST_F(MultiGetTest, SequentialModeRunsNoPoolTasks) {
  Options options = BaseOptions();
  options.read_parallelism = 0;
  Open(options);
  BuildLayeredDB(100);

  stats_.Reset();
  std::vector<std::string> key_strs;
  for (int i = 0; i < 50; i++) key_strs.push_back(Key(i));
  std::vector<Slice> keys(key_strs.begin(), key_strs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  EXPECT_EQ(0u, stats_.Get(kParallelTasks));
  EXPECT_EQ(0u, stats_.Get(kParallelWaitMicros));
}

TEST_F(MultiGetTest, EmptyBatch) {
  Open(BaseOptions());
  std::vector<Slice> keys;
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

TEST_F(MultiGetTest, AllMissing) {
  Options options = BaseOptions();
  options.read_parallelism = 4;
  Open(options);
  BuildLayeredDB(50);
  std::vector<std::string> key_strs = {"nope1", "nope2", "nope3"};
  std::vector<Slice> keys(key_strs.begin(), key_strs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  for (const Status& s : statuses) EXPECT_TRUE(s.IsNotFound());
}

// Every key of a batch is answered from ONE pinned version + memtable pair:
// a writer racing the batch may or may not be visible, but per key the
// answer must be one of that key's committed values, and keys written
// before the batch started must never regress.
TEST_F(MultiGetTest, ConcurrencyWithWriters) {
  Options options = BaseOptions();
  options.read_parallelism = 4;
  options.background_compaction = true;
  Open(options);

  const int n = 200;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    int version = 2;
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < n; i += 5) {
        db_->Put(WriteOptions(), Key(i), Value(i, version));
      }
      version++;
    }
  });

  std::vector<std::string> key_strs;
  for (int i = 0; i < n; i++) key_strs.push_back(Key(i));
  std::vector<Slice> keys(key_strs.begin(), key_strs.end());
  for (int round = 0; round < 50; round++) {
    std::vector<std::string> values;
    std::vector<Status> statuses;
    Status s = db_->MultiGet(ReadOptions(), keys, &values, &statuses);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
      // Value must be a committed version of THIS key.
      ASSERT_EQ(0u, values[i].find("{\"Attr\":\""))
          << "key " << i << " value " << values[i];
      char attr[16];
      std::snprintf(attr, sizeof(attr), "%06d", i);
      ASSERT_NE(std::string::npos, values[i].find(attr));
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  ASSERT_TRUE(db_->WaitForBackgroundWork().ok());
}

// Regression: concurrent readers missing on the same cold table file must
// open it exactly once (single-flight), not once per thread.
TEST_F(MultiGetTest, TableCacheSingleFlightOpens) {
  CountingEnv counting_env(env_.get());
  Options options = BaseOptions();
  options.env = &counting_env;
  options.read_parallelism = 0;
  Open(options);

  const int n = 400;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  // Reopen: fresh TableCache, every table file cold.
  Open(options);
  counting_env.ResetCounts();

  const int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < n; i++) {
        std::string value;
        Status s = db_->Get(ReadOptions(), Key(i), &value);
        if (!s.ok() || value != Value(i, 1)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(1, counting_env.MaxTableFileOpens());
  db_.reset();  // Must not outlive the stack-scoped env
}

}  // namespace leveldbpp
