// Differential iterator-model harness (randomized, in the style of
// randomized_crash_test): drive the public iterator stack against a
// std::map golden model through random interleavings of
// Next/Prev/Seek/SeekToFirst/SeekToLast with concurrent Put/Delete/
// flush/compaction, snapshots taken mid-mutation, and iterators created
// before mutations (implicit creation-time pinning).
//
// Every seed runs under FOUR configurations — read_parallelism 0/4 x
// sorted_views off/on — in lockstep against the model, and the four
// per-seed transcripts must be byte-identical: the sorted view and the
// parallel read path are pure optimizations. 140 seeds x 4 configs = 560
// randomized rounds. The repro seed is printed at start and attached to
// every assertion; override with the ITER_MODEL_SEED env var.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "db/db_impl.h"
#include "env/env.h"
#include "env/statistics.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

struct Config {
  int read_parallelism;
  bool sorted_views;
  const char* name;
};

constexpr Config kConfigs[] = {
    {0, false, "serial/heap"},
    {4, false, "parallel/heap"},
    {0, true, "serial/sortedview"},
    {4, true, "parallel/sortedview"},
};

constexpr int kSeeds = 140;  // x 4 configs = 560 rounds
constexpr int kKeySpace = 200;
constexpr int kOpsPerRound = 180;
constexpr int kProgramLength = 20;

// Golden model: a bidirectional iterator over an immutable std::map
// snapshot, with exactly the DB iterator's contract (Next/Prev require
// Valid; Prev before the first entry invalidates).
class ModelIter {
 public:
  explicit ModelIter(const std::map<std::string, std::string>* m) : m_(m) {}

  bool Valid() const { return valid_; }
  void SeekToFirst() {
    it_ = m_->begin();
    valid_ = it_ != m_->end();
  }
  void SeekToLast() {
    valid_ = !m_->empty();
    if (valid_) it_ = std::prev(m_->end());
  }
  void Seek(const std::string& target) {
    it_ = m_->lower_bound(target);
    valid_ = it_ != m_->end();
  }
  void Next() {
    ++it_;
    valid_ = it_ != m_->end();
  }
  void Prev() {
    if (it_ == m_->begin()) {
      valid_ = false;
    } else {
      --it_;
    }
  }
  const std::string& key() const { return it_->first; }
  const std::string& value() const { return it_->second; }

 private:
  const std::map<std::string, std::string>* m_;
  std::map<std::string, std::string>::const_iterator it_;
  bool valid_ = false;
};

std::string TestKey(uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05u", i);
  return buf;
}

class IteratorModelTest : public testing::Test {
 protected:
  uint32_t BaseSeed() {
    const char* override_seed = std::getenv("ITER_MODEL_SEED");
    return override_seed != nullptr
               ? static_cast<uint32_t>(std::atoi(override_seed))
               : 301u;
  }

  // One random mutation applied to DB and model in lockstep.
  void Mutate(DBImpl* db, std::map<std::string, std::string>* model,
              Random* rnd, uint32_t* value_counter) {
    const std::string key = TestKey(rnd->Uniform(kKeySpace));
    if (rnd->Uniform(100) < 70) {
      std::string value = "v" + std::to_string((*value_counter)++) + "_";
      value.append(100 + rnd->Uniform(100),
                   static_cast<char>('a' + rnd->Uniform(26)));
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      (*model)[key] = std::move(value);
    } else {
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
      model->erase(key);
    }
  }

  // Run one random program on (db iterator, model iterator) in lockstep,
  // appending each observation to *transcript and checking equality.
  void RunProgram(Iterator* it, const std::map<std::string, std::string>& map,
                  Random* rnd, uint32_t seed, std::string* transcript) {
    ModelIter mit(&map);
    std::string oplog;  // For repro messages: the program executed so far
    for (int op = 0; op < kProgramLength; op++) {
      const bool can_step = it->Valid() && mit.Valid();
      switch (rnd->Uniform(can_step ? 5 : 3)) {
        case 0:
          it->SeekToFirst();
          mit.SeekToFirst();
          oplog += "First ";
          break;
        case 1:
          it->SeekToLast();
          mit.SeekToLast();
          oplog += "Last ";
          break;
        case 2: {
          const std::string target = TestKey(rnd->Uniform(kKeySpace + 4));
          it->Seek(target);
          mit.Seek(target);
          oplog += "Seek(" + target + ") ";
          break;
        }
        case 3:
          it->Next();
          mit.Next();
          oplog += "Next ";
          break;
        case 4:
          it->Prev();
          mit.Prev();
          oplog += "Prev ";
          break;
      }
      ASSERT_TRUE(it->status().ok()) << "seed=" << seed << " op=" << op << ": "
                                     << it->status().ToString();
      ASSERT_EQ(mit.Valid(), it->Valid())
          << "seed=" << seed << " op=" << op << " prog: " << oplog;
      if (mit.Valid()) {
        ASSERT_EQ(mit.key(), it->key().ToString())
            << "seed=" << seed << " op=" << op << " prog: " << oplog;
        ASSERT_EQ(mit.value(), it->value().ToString())
            << "seed=" << seed << " op=" << op << " prog: " << oplog;
        transcript->append(mit.key());
        transcript->push_back('=');
        transcript->append(mit.value());
        transcript->push_back(';');
      } else {
        transcript->append("~;");
      }
    }
  }

  // Full forward + backward sweeps, lockstep-checked and transcribed.
  void FullSweeps(Iterator* it, const std::map<std::string, std::string>& map,
                  uint32_t seed, std::string* transcript) {
    size_t n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      transcript->append(it->key().ToString());
      transcript->push_back(',');
      n++;
      ASSERT_LE(n, map.size() + 1) << "seed=" << seed << " runaway forward";
    }
    ASSERT_TRUE(it->status().ok()) << "seed=" << seed;
    ASSERT_EQ(map.size(), n) << "seed=" << seed << " forward sweep";
    n = 0;
    for (it->SeekToLast(); it->Valid(); it->Prev()) {
      transcript->append(it->key().ToString());
      transcript->push_back('.');
      n++;
      ASSERT_LE(n, map.size() + 1) << "seed=" << seed << " runaway backward";
    }
    ASSERT_TRUE(it->status().ok()) << "seed=" << seed;
    ASSERT_EQ(map.size(), n) << "seed=" << seed << " backward sweep";
  }

  // One full randomized round: build a store while interleaving iterator
  // programs (plain, snapshot-under-mutation, iterator-under-mutation),
  // returning the round's observation transcript.
  void RunRound(uint32_t seed, const Config& cfg, Statistics* stats,
                std::string* transcript) {
    std::unique_ptr<Env> env(NewMemEnv());
    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    // Small thresholds so 200 keys develop multiple levels (the sorted
    // view only engages with >= 2 non-empty levels below L0).
    options.write_buffer_size = 4 << 10;
    options.max_file_size = 2 << 10;
    options.max_bytes_for_level_base = 1 << 10;
    options.read_parallelism = cfg.read_parallelism;
    options.sorted_views = cfg.sorted_views;
    options.statistics = stats;
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/iter_model", &raw).ok());
    std::unique_ptr<DBImpl> db(raw);

    Random rnd(seed);
    std::map<std::string, std::string> model;
    uint32_t value_counter = 0;

    for (int i = 0; i < kOpsPerRound; i++) {
      const uint32_t r = rnd.Uniform(100);
      if (r < 62) {
        Mutate(db.get(), &model, &rnd, &value_counter);
      } else if (r < 72) {
        // Forced memtable rotation + flush (internal Write(nullptr) hook).
        ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
      } else if (r < 80) {
        ASSERT_TRUE(db->MaybeCompact().ok());
      } else if (r < 84) {
        ASSERT_TRUE(db->CompactAll().ok());
      } else if (r < 90) {
        // Plain iterator over the current state.
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        RunProgram(it.get(), model, &rnd, seed, transcript);
      } else if (r < 95) {
        // Snapshot taken mid-workload, then mutated over: the snapshot
        // iterator must see exactly the prefix state.
        const Snapshot* snap = db->GetSnapshot();
        const std::map<std::string, std::string> frozen = model;
        const int extra = 3 + rnd.Uniform(10);
        for (int m = 0; m < extra; m++) {
          Mutate(db.get(), &model, &rnd, &value_counter);
        }
        if (rnd.OneIn(2)) {
          ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());  // flush
        }
        if (rnd.OneIn(3)) {
          ASSERT_TRUE(db->MaybeCompact().ok());
        }
        ReadOptions ro;
        ro.snapshot = snap;
        std::unique_ptr<Iterator> it(db->NewIterator(ro));
        RunProgram(it.get(), frozen, &rnd, seed, transcript);
        it.reset();
        db->ReleaseSnapshot(snap);
      } else {
        // Iterator created BEFORE mutations: implicit creation-time
        // pinning must hold without an explicit snapshot handle.
        std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
        const std::map<std::string, std::string> frozen = model;
        const int extra = 3 + rnd.Uniform(10);
        for (int m = 0; m < extra; m++) {
          Mutate(db.get(), &model, &rnd, &value_counter);
        }
        if (rnd.OneIn(2)) {
          ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
        }
        RunProgram(it.get(), frozen, &rnd, seed, transcript);
      }
      if (testing::Test::HasFatalFailure()) return;
    }

    // Settle the tree, then sweep the final state both ways.
    ASSERT_TRUE(db->CompactAll().ok());
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    FullSweeps(it.get(), model, seed, transcript);
  }
};

TEST_F(IteratorModelTest, DifferentialModel560Rounds) {
  const uint32_t base = BaseSeed();
  std::printf("iterator-model base seed: %u (ITER_MODEL_SEED overrides)\n",
              base);
  Statistics per_config_stats[4];
  for (int i = 0; i < kSeeds; i++) {
    const uint32_t seed = base + static_cast<uint32_t>(i) * 7919u;
    std::string reference;
    for (size_t c = 0; c < 4; c++) {
      std::string transcript;
      RunRound(seed, kConfigs[c], &per_config_stats[c], &transcript);
      ASSERT_FALSE(testing::Test::HasFatalFailure())
          << "seed=" << seed << " config=" << kConfigs[c].name;
      if (c == 0) {
        reference = std::move(transcript);
      } else {
        ASSERT_EQ(reference, transcript)
            << "seed=" << seed << ": transcript of " << kConfigs[c].name
            << " differs from " << kConfigs[0].name;
      }
    }
  }
  // The sorted-view configs must actually have exercised the view (builds
  // after compactions, iterators reading through it), and the classic
  // configs must never touch it.
  for (size_t c = 0; c < 4; c++) {
    if (kConfigs[c].sorted_views) {
      EXPECT_GT(per_config_stats[c].Get(kSortedViewBuilds), 0u)
          << kConfigs[c].name;
      EXPECT_GT(per_config_stats[c].Get(kSortedViewUsed), 0u)
          << kConfigs[c].name;
    } else {
      EXPECT_EQ(0u, per_config_stats[c].Get(kSortedViewBuilds))
          << kConfigs[c].name;
      EXPECT_EQ(0u, per_config_stats[c].Get(kSortedViewUsed))
          << kConfigs[c].name;
    }
  }
}

}  // namespace
}  // namespace leveldbpp
