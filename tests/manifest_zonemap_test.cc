// The MANIFEST persists each SSTable's file-level secondary zone map (the
// paper's "global metadata file"). These tests prove the metadata survives
// reopen and keeps pruning whole files without any table access.

#include <gtest/gtest.h>

#include <memory>

#include "core/document.h"
#include "db/db_impl.h"
#include "env/env.h"
#include "table/filter_policy.h"

namespace leveldbpp {
namespace {

class ManifestZoneMapTest : public testing::Test {
 protected:
  ManifestZoneMapTest() : env_(NewMemEnv()) {
    filter_.reset(NewBloomFilterPolicy(10));
    Open();
  }

  void Open() {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.statistics = &stats_;
    options.filter_policy = filter_.get();
    options.secondary_attributes = {"CreationTime"};
    options.attribute_extractor = JsonAttributeExtractor::Instance();
    options.secondary_filter_policy = filter_.get();
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(options, "/zmdb", &raw).ok());
    db_.reset(raw);
  }

  void Fill() {
    for (int i = 0; i < 4000; i++) {
      char ts[16];
      std::snprintf(ts, sizeof(ts), "%012d", 1000 + i);
      ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i),
                           "{\"CreationTime\":\"" + std::string(ts) +
                               "\",\"pad\":\"" + std::string(120, 'p') +
                               "\"}")
                      .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  Statistics stats_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> filter_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(ManifestZoneMapTest, FileMetaCarriesZoneRanges) {
  Fill();
  Version* v = db_->versions()->current();
  v->Ref();
  int files_with_zones = 0;
  for (int level = 0; level < v->NumLevels(); level++) {
    for (FileMetaData* f : v->files(level)) {
      ASSERT_EQ(1u, f->zone_ranges.size());
      if (f->zone_ranges[0].present) {
        files_with_zones++;
        EXPECT_LE(f->zone_ranges[0].min, f->zone_ranges[0].max);
      }
    }
  }
  v->Unref();
  EXPECT_GT(files_with_zones, 1);
}

TEST_F(ManifestZoneMapTest, ZoneRangesSurviveReopen) {
  Fill();
  db_.reset();
  Open();
  Version* v = db_->versions()->current();
  v->Ref();
  int files_with_zones = 0;
  for (int level = 0; level < v->NumLevels(); level++) {
    for (FileMetaData* f : v->files(level)) {
      ASSERT_EQ(1u, f->zone_ranges.size());
      if (f->zone_ranges[0].present) files_with_zones++;
    }
  }
  v->Unref();
  EXPECT_GT(files_with_zones, 1) << "zone ranges lost across MANIFEST replay";
}

TEST_F(ManifestZoneMapTest, FileLevelPruningNeedsNoTableOpen) {
  Fill();
  db_.reset();
  Open();  // Fresh table cache: nothing is open.

  uint64_t reads_before = stats_.Get(kBlockRead);
  uint64_t pruned_before = stats_.Get(kZoneMapFilePruned);
  // A range entirely outside the data ([ts 9000+]) must be answered from
  // MANIFEST metadata alone.
  int visited = 0;
  ASSERT_TRUE(db_->EmbeddedScan(
                    ReadOptions(), "CreationTime", "000000009000",
                    "000000009999",
                    [&](Table*, size_t, int, uint64_t) { visited++; },
                    [](SequenceNumber) { return true; })
                  .ok());
  EXPECT_EQ(0, visited);
  EXPECT_EQ(reads_before, stats_.Get(kBlockRead));
  EXPECT_GT(stats_.Get(kZoneMapFilePruned), pruned_before);
}

}  // namespace
}  // namespace leveldbpp
