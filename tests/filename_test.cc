#include "db/filename.h"

#include <gtest/gtest.h>

namespace leveldbpp {

TEST(FileNameTest, Parse) {
  Slice db;
  FileType type;
  uint64_t number;

  // Successful parses
  static const struct {
    const char* fname;
    uint64_t number;
    FileType type;
  } cases[] = {
      {"100.log", 100, kLogFile},
      {"0.log", 0, kLogFile},
      {"0.ldb", 0, kTableFile},
      {"CURRENT", 0, kCurrentFile},
      {"LOCK", 0, kDBLockFile},
      {"MANIFEST-2", 2, kDescriptorFile},
      {"MANIFEST-7", 7, kDescriptorFile},
      {"18446744073709551615.log", 18446744073709551615ull, kLogFile},
      {"100.dbtmp", 100, kTempFile},
  };
  for (const auto& c : cases) {
    std::string f = c.fname;
    ASSERT_TRUE(ParseFileName(f, &number, &type)) << f;
    ASSERT_EQ(c.type, type) << f;
    ASSERT_EQ(c.number, number) << f;
  }

  // Errors
  static const char* errors[] = {
      "",         "foo",          "foo-dx-100.log", ".log",
      "manifest", "CURREN",       "CURRENTX",       "MANIFES",
      "MANIFEST", "MANIFEST-",    "XMANIFEST-3",    "MANIFEST-3x",
      "100",      "100.",         "100.lop",        "100.ldb2",
      "x.ldb",
  };
  for (const char* error : errors) {
    std::string f = error;
    ASSERT_TRUE(!ParseFileName(f, &number, &type)) << f;
  }
  (void)db;
}

TEST(FileNameTest, Construction) {
  uint64_t number;
  FileType type;
  std::string fname;

  fname = CurrentFileName("foo");
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(0u, number);
  ASSERT_EQ(kCurrentFile, type);

  fname = LockFileName("foo");
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(0u, number);
  ASSERT_EQ(kDBLockFile, type);

  fname = LogFileName("foo", 192);
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(192u, number);
  ASSERT_EQ(kLogFile, type);

  fname = TableFileName("bar", 200);
  ASSERT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(200u, number);
  ASSERT_EQ(kTableFile, type);

  fname = DescriptorFileName("bar", 100);
  ASSERT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(100u, number);
  ASSERT_EQ(kDescriptorFile, type);

  fname = TempFileName("tmp", 999);
  ASSERT_EQ("tmp/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(999u, number);
  ASSERT_EQ(kTempFile, type);
}

}  // namespace leveldbpp
