#include "core/posting_list.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace leveldbpp {

TEST(PostingList, SerializeParseRoundTrip) {
  std::vector<PostingEntry> entries = {
      {"t4", 97, false},
      {"t1", 55, false},
      {"t9", 12, true},
  };
  std::string data;
  PostingList::Serialize(entries, &data);
  EXPECT_EQ(R"([["t4",97],["t1",55],["t9",12,1]])", data);

  std::vector<PostingEntry> parsed;
  ASSERT_TRUE(PostingList::Parse(Slice(data), &parsed));
  ASSERT_EQ(3u, parsed.size());
  EXPECT_EQ("t4", parsed[0].primary_key);
  EXPECT_EQ(97u, parsed[0].seq);
  EXPECT_FALSE(parsed[0].deleted);
  EXPECT_TRUE(parsed[2].deleted);
}

TEST(PostingList, ParseRejectsGarbage) {
  std::vector<PostingEntry> parsed;
  EXPECT_FALSE(PostingList::Parse(Slice("not json"), &parsed));
  EXPECT_FALSE(PostingList::Parse(Slice("{\"a\":1}"), &parsed));
  EXPECT_FALSE(PostingList::Parse(Slice("[[1,2]]"), &parsed));   // Key not str
  EXPECT_FALSE(PostingList::Parse(Slice("[[\"k\"]]"), &parsed)); // No seq
}

TEST(PostingList, EmptyList) {
  std::string data;
  PostingList::Serialize({}, &data);
  EXPECT_EQ("[]", data);
  std::vector<PostingEntry> parsed;
  ASSERT_TRUE(PostingList::Parse(Slice(data), &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(PostingList, MergeNewestWinsPerKey) {
  std::vector<std::vector<PostingEntry>> fragments = {
      {{"t3", 30, false}, {"t1", 25, false}},   // Newest fragment
      {{"t2", 20, false}, {"t1", 10, false}},   // Older: t1@10 shadowed
  };
  std::vector<PostingEntry> merged;
  PostingList::Merge(fragments, false, &merged);
  ASSERT_EQ(3u, merged.size());
  EXPECT_EQ("t3", merged[0].primary_key);
  EXPECT_EQ("t1", merged[1].primary_key);
  EXPECT_EQ(25u, merged[1].seq);  // The newer t1
  EXPECT_EQ("t2", merged[2].primary_key);
}

TEST(PostingList, MergeDeletionMarkers) {
  std::vector<std::vector<PostingEntry>> fragments = {
      {{"t1", 40, true}},                       // Marker for t1
      {{"t1", 10, false}, {"t2", 5, false}},    // Old entry for t1
  };
  std::vector<PostingEntry> merged;

  // Not at bottom: the marker must survive (older fragments may exist in
  // lower levels).
  PostingList::Merge(fragments, /*drop_deletions=*/false, &merged);
  ASSERT_EQ(2u, merged.size());
  EXPECT_EQ("t1", merged[0].primary_key);
  EXPECT_TRUE(merged[0].deleted);
  EXPECT_EQ("t2", merged[1].primary_key);

  // At bottom: marker (and its shadowed entry) vanish.
  PostingList::Merge(fragments, /*drop_deletions=*/true, &merged);
  ASSERT_EQ(1u, merged.size());
  EXPECT_EQ("t2", merged[0].primary_key);
}

TEST(PostingList, MergeOutputSortedBySeqDesc) {
  Random64 rnd(9);
  std::vector<std::vector<PostingEntry>> fragments(4);
  uint64_t seq = 1000;
  for (int f = 0; f < 4; f++) {
    for (int i = 0; i < 20; i++) {
      fragments[f].push_back(
          {"k" + std::to_string(rnd.Uniform(200)), seq--, false});
    }
  }
  std::vector<PostingEntry> merged;
  PostingList::Merge(fragments, false, &merged);
  for (size_t i = 1; i < merged.size(); i++) {
    EXPECT_GE(merged[i - 1].seq, merged[i].seq);
  }
  // No duplicate keys.
  std::set<std::string> keys;
  for (const PostingEntry& e : merged) {
    EXPECT_TRUE(keys.insert(e.primary_key).second) << e.primary_key;
  }
}

TEST(PostingListMerger, MergesFragmentValues) {
  std::string frag_new, frag_old;
  PostingList::Serialize({{"t5", 50, false}}, &frag_new);
  PostingList::Serialize({{"t4", 40, false}, {"t3", 30, false}}, &frag_old);
  std::vector<Slice> values = {Slice(frag_new), Slice(frag_old)};
  std::string out;
  ASSERT_TRUE(
      PostingListMerger::Instance()->Merge("u1", values, false, &out));
  std::vector<PostingEntry> merged;
  ASSERT_TRUE(PostingList::Parse(Slice(out), &merged));
  ASSERT_EQ(3u, merged.size());
  EXPECT_EQ("t5", merged[0].primary_key);
}

TEST(PostingListMerger, FullyDeletedListDroppedAtBottom) {
  std::string marker, entry;
  PostingList::Serialize({{"t1", 50, true}}, &marker);
  PostingList::Serialize({{"t1", 10, false}}, &entry);
  std::vector<Slice> values = {Slice(marker), Slice(entry)};
  std::string out;
  // At bottom: list becomes empty -> key dropped entirely.
  EXPECT_FALSE(
      PostingListMerger::Instance()->Merge("u1", values, true, &out));
  // Above bottom: marker must be preserved.
  ASSERT_TRUE(
      PostingListMerger::Instance()->Merge("u1", values, false, &out));
  std::vector<PostingEntry> merged;
  ASSERT_TRUE(PostingList::Parse(Slice(out), &merged));
  ASSERT_EQ(1u, merged.size());
  EXPECT_TRUE(merged[0].deleted);
}

TEST(PostingListMerger, UnparseableValueKeptVerbatim) {
  std::vector<Slice> values = {Slice("garbage"), Slice("[]")};
  std::string out;
  ASSERT_TRUE(
      PostingListMerger::Instance()->Merge("u1", values, true, &out));
  EXPECT_EQ("garbage", out);  // Never drop data on parse failure
}

}  // namespace leveldbpp
