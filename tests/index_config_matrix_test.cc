// Config-matrix sweep: every index variant must stay correct under every
// engine configuration (compression on/off, tiny vs normal buffers) — a
// randomized differential check across the full matrix.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "core/secondary_db.h"
#include "env/env.h"
#include "json/json.h"
#include "util/random.h"

namespace leveldbpp {
namespace {

using MatrixParam = std::tuple<IndexType, CompressionType, size_t>;

class IndexConfigMatrixTest : public testing::TestWithParam<MatrixParam> {
 protected:
  IndexConfigMatrixTest() : env_(NewMemEnv()) {
    SecondaryDBOptions options;
    options.base.env = env_.get();
    options.base.compression = std::get<1>(GetParam());
    options.base.write_buffer_size = std::get<2>(GetParam());
    options.base.max_file_size = std::get<2>(GetParam()) / 2;
    options.index_type = std::get<0>(GetParam());
    options.indexed_attributes = {"UserID"};
    Status s = SecondaryDB::Open(options, "/matrixdb", &db_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  static std::string Doc(const std::string& user, int salt) {
    return "{\"UserID\":\"" + user + "\",\"Body\":\"" +
           std::string(40 + salt % 60, 'b') + "\"}";
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<SecondaryDB> db_;
};

TEST_P(IndexConfigMatrixTest, RandomizedDifferential) {
  // Model: key -> (user, write counter); counter mirrors sequence order.
  std::map<std::string, std::pair<std::string, uint64_t>> model;
  uint64_t counter = 0;
  Random64 rnd(0xFACE ^ (static_cast<uint64_t>(std::get<0>(GetParam())) << 8)
               ^ std::get<2>(GetParam()));

  auto expected = [&](const std::string& user, size_t k) {
    std::vector<std::pair<uint64_t, std::string>> matches;
    for (const auto& [key, rec] : model) {
      if (rec.first == user) matches.emplace_back(rec.second, key);
    }
    std::sort(matches.rbegin(), matches.rend());
    if (k != 0 && matches.size() > k) matches.resize(k);
    std::vector<std::string> keys;
    for (auto& [c, key] : matches) keys.push_back(key);
    return keys;
  };

  for (int step = 0; step < 2500; step++) {
    int op = static_cast<int>(rnd.Uniform(10));
    std::string key = "t" + std::to_string(rnd.Uniform(300));
    std::string user = "u" + std::to_string(rnd.Uniform(12));
    if (op < 7) {
      counter++;
      ASSERT_TRUE(db_->Put(key, Doc(user, step)).ok());
      model[key] = {user, counter};
    } else if (op < 8) {
      counter++;
      ASSERT_TRUE(db_->Delete(key).ok());
      model.erase(key);
    } else {
      size_t k = (op == 8) ? 5 : 0;
      std::vector<QueryResult> results;
      ASSERT_TRUE(db_->Lookup("UserID", user, k, &results).ok());
      std::vector<std::string> got;
      for (const auto& r : results) got.push_back(r.primary_key);
      ASSERT_EQ(expected(user, k), got) << "step " << step;
    }
  }
}

std::string MatrixName(const testing::TestParamInfo<MatrixParam>& info) {
  std::string name = IndexTypeName(std::get<0>(info.param));
  name += std::get<1>(info.param) == kNoCompression ? "_Raw" : "_LZ";
  name += std::get<2>(info.param) <= (64u << 10) ? "_TinyBuf" : "_BigBuf";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IndexConfigMatrixTest,
    testing::Combine(testing::Values(IndexType::kNoIndex,
                                     IndexType::kEmbedded, IndexType::kLazy,
                                     IndexType::kEager,
                                     IndexType::kComposite),
                     testing::Values(kSimpleLZCompression, kNoCompression),
                     testing::Values(size_t{64} << 10, size_t{1} << 20)),
    MatrixName);

}  // namespace
}  // namespace leveldbpp
