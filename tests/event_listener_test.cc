// EventListener contract: every engine event fires exactly once per
// trigger (flush, compaction, WAL sync, index rebuild — and, via fault
// injection, background errors and block quarantines), Begin/End pairs
// stay balanced, a listener that throws can never wedge the DB, and the
// built-in TraceWriter emits one parseable JSONL record per event with a
// strictly increasing sequence number.

#include "db/event_listener.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/secondary_db.h"
#include "db/db_impl.h"
#include "db/filename.h"
#include "db/trace_writer.h"
#include "env/env.h"
#include "env/fault_injection_env.h"
#include "env/statistics.h"
#include "json/json.h"
#include "table/format.h"

namespace leveldbpp {
namespace {

// Counts every callback and keeps the payloads for inspection.
class CountingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    flush_begin++;
    // Begin precedes the matching End (per-job ordering guarantee).
    EXPECT_EQ(flush_begin, flush_end + 1) << "unbalanced flush events";
    (void)info;
  }
  void OnFlushEnd(const FlushJobInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    flush_end++;
    last_flush = info;
  }
  void OnCompactionBegin(const CompactionJobInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    compaction_begin++;
    EXPECT_EQ(compaction_begin, compaction_end + 1)
        << "unbalanced compaction events";
    (void)info;
  }
  void OnCompactionEnd(const CompactionJobInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    compaction_end++;
    last_compaction = info;
  }
  void OnWalSync(const WalSyncInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    wal_sync++;
    last_wal = info;
  }
  void OnBackgroundError(const BackgroundErrorInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    background_error++;
    last_bg = info;
  }
  void OnBlockQuarantined(const BlockQuarantinedInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    quarantined.push_back(info);
  }
  void OnIndexRebuild(const IndexRebuildInfo& info) override {
    std::lock_guard<std::mutex> l(mu);
    rebuilds.push_back(info);
  }

  mutable std::mutex mu;
  int flush_begin = 0, flush_end = 0;
  int compaction_begin = 0, compaction_end = 0;
  int wal_sync = 0, background_error = 0;
  FlushJobInfo last_flush;
  CompactionJobInfo last_compaction;
  WalSyncInfo last_wal;
  BackgroundErrorInfo last_bg;
  std::vector<BlockQuarantinedInfo> quarantined;
  std::vector<IndexRebuildInfo> rebuilds;
};

// Throws from every callback; the engine must swallow it.
class ThrowingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo&) override { Boom(); }
  void OnFlushEnd(const FlushJobInfo&) override { Boom(); }
  void OnCompactionBegin(const CompactionJobInfo&) override { Boom(); }
  void OnCompactionEnd(const CompactionJobInfo&) override { Boom(); }
  void OnWalSync(const WalSyncInfo&) override { Boom(); }
  void OnBackgroundError(const BackgroundErrorInfo&) override { Boom(); }
  void OnBlockQuarantined(const BlockQuarantinedInfo&) override { Boom(); }
  void OnIndexRebuild(const IndexRebuildInfo&) override { Boom(); }

 private:
  static void Boom() { throw std::runtime_error("broken listener"); }
};

std::string NumKey(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i, char tag) {
  return "value-" + std::string(1, tag) + "-" + std::to_string(i) +
         std::string(120, tag);
}

std::vector<std::string> FilesOfType(Env* env, const std::string& dir,
                                     FileType want) {
  std::vector<std::string> out;
  std::vector<std::string> children;
  if (!env->GetChildren(dir, &children).ok()) return out;
  for (const std::string& f : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(f, &number, &type) && type == want) {
      out.push_back(dir + "/" + f);
    }
  }
  return out;
}

// Offset of the metaindex block, read from the table's footer: everything
// before it is data (and filter) blocks, which a corruption test can flip
// while leaving the table openable.
Status DataRegionEnd(Env* env, const std::string& fname, uint64_t* end) {
  uint64_t file_size = 0;
  Status s = env->GetFileSize(fname, &file_size);
  std::unique_ptr<RandomAccessFile> file;
  if (s.ok()) s = env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption(fname, "file too short for a footer");
  }
  char scratch[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, scratch);
  if (!s.ok()) return s;
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;
  *end = footer.metaindex_handle().offset();
  return Status::OK();
}

std::string ReadWholeFile(Env* env, const std::string& fname) {
  uint64_t size = 0;
  EXPECT_TRUE(env->GetFileSize(fname, &size).ok()) << fname;
  std::unique_ptr<SequentialFile> file;
  EXPECT_TRUE(env->NewSequentialFile(fname, &file).ok()) << fname;
  std::string data(size, '\0');
  Slice result;
  EXPECT_TRUE(file->Read(size, &result, &data[0]).ok()) << fname;
  return std::string(result.data(), result.size());
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    if (nl > start) lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

class EventListenerTest : public testing::Test {
 protected:
  static constexpr const char* kName = "/evdb";

  EventListenerTest()
      : base_(NewMemEnv()),
        env_(base_.get(), 301),
        listener_(std::make_shared<CountingListener>()) {}

  Options MakeOptions() {
    Options options;
    options.env = &env_;
    options.write_buffer_size = 16 << 10;
    options.statistics = &stats_;
    options.listeners = {listener_};
    return options;
  }

  void Open() {
    DBImpl* raw = nullptr;
    ASSERT_TRUE(DBImpl::Open(MakeOptions(), kName, &raw).ok());
    db_.reset(raw);
  }
  void Close() { db_.reset(); }

  std::unique_ptr<Env> base_;
  FaultInjectionEnv env_;
  Statistics stats_;
  std::shared_ptr<CountingListener> listener_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(EventListenerTest, WalSyncFiresOncePerSyncedWrite) {
  Open();
  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db_->Put(synced, NumKey(0), Value(0, 'a')).ok());
  EXPECT_EQ(1, listener_->wal_sync);
  ASSERT_TRUE(db_->Put(synced, NumKey(1), Value(1, 'a')).ok());
  EXPECT_EQ(2, listener_->wal_sync);
  EXPECT_EQ(std::string(kName), listener_->last_wal.db_name);
  EXPECT_GT(listener_->last_wal.bytes, 0u);
  EXPECT_TRUE(listener_->last_wal.status.ok());
  // Unsynced writes fire nothing.
  ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(2), Value(2, 'a')).ok());
  EXPECT_EQ(2, listener_->wal_sync);
}

TEST_F(EventListenerTest, FlushEventsMatchFlushCountExactly) {
  Open();
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'a')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_GT(listener_->flush_end, 0);
  EXPECT_EQ(listener_->flush_begin, listener_->flush_end);
  EXPECT_EQ(stats_.Get(kFlushCount),
            static_cast<uint64_t>(listener_->flush_end));
  EXPECT_EQ(std::string(kName), listener_->last_flush.db_name);
  EXPECT_GT(listener_->last_flush.file_number, 0u);
  EXPECT_GT(listener_->last_flush.file_size, 0u);
  EXPECT_TRUE(listener_->last_flush.status.ok());
}

TEST_F(EventListenerTest, CompactionEventsCarryByteStats) {
  Open();
  // Two overlapping generations force a real merging compaction (a single
  // sorted run would just move trivially).
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'a')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'b')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  EXPECT_GT(listener_->compaction_end, 0);
  EXPECT_EQ(listener_->compaction_begin, listener_->compaction_end);
  EXPECT_EQ(stats_.Get(kCompactionCount),
            static_cast<uint64_t>(listener_->compaction_end));
  const CompactionJobInfo& job = listener_->last_compaction;
  EXPECT_EQ(std::string(kName), job.db_name);
  EXPECT_EQ(job.level + 1, job.output_level);
  EXPECT_GT(job.input_files, 0);
  EXPECT_GT(job.input_bytes[0] + job.input_bytes[1], 0u);
  EXPECT_GT(job.output_files, 0);
  EXPECT_GT(job.bytes_written, 0u);
  EXPECT_TRUE(job.status.ok());
}

TEST_F(EventListenerTest, BackgroundErrorEventFires) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'a')).ok());

  // Allow the WAL rotation, then fail the flush's table build.
  env_.FailAfter(1, FaultInjectionEnv::kOpNewWritable);
  Status s;
  for (int i = 1; i < 2000 && s.ok(); i++) {
    s = db_->Put(WriteOptions(), NumKey(i), Value(i, 'a'));
  }
  ASSERT_FALSE(s.ok()) << "the flush never failed";
  EXPECT_GE(listener_->background_error, 1);
  EXPECT_TRUE(listener_->last_bg.status.IsIOError())
      << listener_->last_bg.status.ToString();
  EXPECT_EQ(std::string(kName), listener_->last_bg.db_name);

  // After recovery no further error events arrive.
  env_.ClearFaults();
  ASSERT_TRUE(db_->Resume().ok());
  const int at_recovery = listener_->background_error;
  ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(0), Value(0, 'z')).ok());
  EXPECT_EQ(at_recovery, listener_->background_error);
}

TEST_F(EventListenerTest, BlockQuarantinedFiresOncePerDistinctBlock) {
  const int kNum = 60;
  Open();
  for (int i = 0; i < kNum; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'a')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());  // v1, compacted below L0
  Close();
  std::set<std::string> old_tables;
  for (const std::string& t : FilesOfType(&env_, kName, kTableFile)) {
    old_tables.insert(t);
  }
  ASSERT_FALSE(old_tables.empty());

  Open();
  for (int i = 0; i < kNum; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'b')).ok());
  }
  Close();  // v2 lives only in the WAL...
  Open();   // ...until replay flushes it into a fresh L0 table
  Close();

  // Corrupt the data blocks of the new tables; index block + footer stay
  // intact so the tables still open and reads quarantine block by block.
  int corrupted = 0;
  for (const std::string& path : FilesOfType(&env_, kName, kTableFile)) {
    if (old_tables.count(path)) continue;
    uint64_t data_end = 0;
    ASSERT_TRUE(DataRegionEnd(&env_, path, &data_end).ok()) << path;
    ASSERT_GT(data_end, 0u);
    ASSERT_TRUE(env_.CorruptFile(path, 0, data_end).ok());
    corrupted++;
  }
  ASSERT_GT(corrupted, 0) << "the v2 flush never produced a table";

  const uint64_t quarantined_before = stats_.Get(kCorruptionBlocksQuarantined);
  Open();
  for (int i = 0; i < kNum; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(i), &value).ok()) << NumKey(i);
    EXPECT_EQ(Value(i, 'a'), value);  // Fell through to the older version
  }
  const uint64_t newly_quarantined =
      stats_.Get(kCorruptionBlocksQuarantined) - quarantined_before;
  EXPECT_GT(newly_quarantined, 0u);
  // Exactly one event per distinct quarantined block — re-reads of an
  // already-quarantined block stay silent.
  EXPECT_EQ(newly_quarantined, listener_->quarantined.size());
  for (const BlockQuarantinedInfo& info : listener_->quarantined) {
    EXPECT_EQ(std::string(kName), info.db_name);
    EXPECT_GT(info.file_number, 0u);
  }
}

TEST_F(EventListenerTest, ThrowingListenerCannotWedgeTheDB) {
  // The throwing listener runs FIRST; the counting listener after it must
  // still receive every event, and every operation must succeed.
  Options options = MakeOptions();
  options.listeners = {std::make_shared<ThrowingListener>(), listener_};
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, kName, &raw).ok());
  db_.reset(raw);

  WriteOptions synced;
  synced.sync = true;
  ASSERT_TRUE(db_->Put(synced, NumKey(0), Value(0, 'a')).ok());
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'a')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), NumKey(i), Value(i, 'b')).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  EXPECT_EQ(1, listener_->wal_sync);
  EXPECT_GT(listener_->flush_end, 0);
  EXPECT_EQ(listener_->flush_begin, listener_->flush_end);
  EXPECT_GT(listener_->compaction_end, 0);
  EXPECT_EQ(listener_->compaction_begin, listener_->compaction_end);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), NumKey(5), &value).ok());
  EXPECT_EQ(Value(5, 'b'), value);
}

TEST(IndexRebuildEventTest, FiresOncePerRebuiltIndex) {
  std::unique_ptr<Env> env(NewMemEnv());
  auto listener = std::make_shared<CountingListener>();
  SecondaryDBOptions options;
  options.base.env = env.get();
  options.base.listeners = {listener};
  options.index_type = IndexType::kLazy;
  options.indexed_attributes = {"UserID", "CreationTime"};
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(options, "/rbdb", &db).ok());

  const int kDocs = 25;
  for (int i = 0; i < kDocs; i++) {
    json::Object obj;
    obj["UserID"] = json::Value("user" + std::to_string(i % 5));
    obj["CreationTime"] = json::Value(std::to_string(1000 + i));
    ASSERT_TRUE(
        db->Put(NumKey(i), json::Value(std::move(obj)).ToString()).ok());
  }
  ASSERT_TRUE(db->RebuildIndex().ok());

  ASSERT_EQ(2u, listener->rebuilds.size());
  std::set<std::string> attrs;
  for (const IndexRebuildInfo& info : listener->rebuilds) {
    attrs.insert(info.attribute);
    EXPECT_EQ(static_cast<uint64_t>(kDocs), info.entries);
    EXPECT_EQ("/rbdb", info.db_name);
  }
  EXPECT_EQ(1u, attrs.count("UserID"));
  EXPECT_EQ(1u, attrs.count("CreationTime"));
}

TEST(TraceWriterTest, EmitsOneParseableRecordPerEvent) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::shared_ptr<TraceWriter> trace;
  ASSERT_TRUE(TraceWriter::Open(env.get(), "/trace.jsonl", &trace).ok());

  SecondaryDBOptions options;
  options.base.env = env.get();
  options.base.write_buffer_size = 16 << 10;
  options.base.listeners = {trace};
  options.sync_writes = true;  // Every Put syncs: wal.sync records appear
  options.index_type = IndexType::kLazy;
  options.indexed_attributes = {"UserID"};
  std::unique_ptr<SecondaryDB> db;
  ASSERT_TRUE(SecondaryDB::Open(options, "/trdb", &db).ok());

  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 300; i++) {
      json::Object obj;
      obj["UserID"] = json::Value("user" + std::to_string(i % 7));
      obj["Body"] = json::Value(std::string(100, 'a' + round));
      ASSERT_TRUE(
          db->Put(NumKey(i), json::Value(std::move(obj)).ToString()).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
  }
  ASSERT_TRUE(db->RebuildIndex().ok());
  db.reset();
  ASSERT_TRUE(trace->status().ok()) << trace->status().ToString();
  trace.reset();  // Close the trace file before reading it back

  const std::set<std::string> known(kTraceEventNames,
                                    kTraceEventNames + kNumTraceEvents);
  std::set<std::string> seen;
  int64_t prev_seq = -1;
  std::vector<std::string> lines =
      SplitLines(ReadWholeFile(env.get(), "/trace.jsonl"));
  ASSERT_FALSE(lines.empty());
  for (const std::string& line : lines) {
    json::Value v;
    ASSERT_TRUE(json::Parse(Slice(line), &v)) << line;
    ASSERT_TRUE(v.is_object()) << line;
    ASSERT_TRUE(v["event"].is_string()) << line;
    const std::string& event = v["event"].as_string();
    EXPECT_EQ(1u, known.count(event)) << "unknown event " << event;
    seen.insert(event);
    // seq is a gap-free total order across all events of this writer.
    ASSERT_TRUE(v["seq"].is_number()) << line;
    EXPECT_EQ(prev_seq + 1, v["seq"].as_int()) << line;
    prev_seq = v["seq"].as_int();
    EXPECT_TRUE(v["ts_micros"].is_number()) << line;
    EXPECT_TRUE(v["db"].is_string()) << line;
    if (event == "flush.end") {
      EXPECT_TRUE(v["file_number"].is_number()) << line;
      EXPECT_TRUE(v["file_size"].is_number()) << line;
      EXPECT_TRUE(v["micros"].is_number()) << line;
      EXPECT_EQ("OK", v["status"].as_string()) << line;
    } else if (event == "compaction.end") {
      EXPECT_TRUE(v["bytes_written"].is_number()) << line;
      EXPECT_TRUE(v["output_files"].is_number()) << line;
      EXPECT_TRUE(v["input_files"].is_number()) << line;
    } else if (event == "wal.sync") {
      EXPECT_TRUE(v["bytes"].is_number()) << line;
      EXPECT_TRUE(v["micros"].is_number()) << line;
    } else if (event == "index.rebuild") {
      EXPECT_EQ("UserID", v["attribute"].as_string()) << line;
      EXPECT_TRUE(v["entries"].is_number()) << line;
    }
  }
  // The workload above triggers flushes, merging compactions, WAL syncs
  // and an index rebuild.
  EXPECT_EQ(1u, seen.count("flush.begin"));
  EXPECT_EQ(1u, seen.count("flush.end"));
  EXPECT_EQ(1u, seen.count("compaction.begin"));
  EXPECT_EQ(1u, seen.count("compaction.end"));
  EXPECT_EQ(1u, seen.count("wal.sync"));
  EXPECT_EQ(1u, seen.count("index.rebuild"));
}

}  // namespace leveldbpp
