#include "db/version_edit.h"

#include <gtest/gtest.h>

namespace leveldbpp {

static void TestEncodeDecode(const VersionEdit& edit) {
  std::string encoded, encoded2;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  parsed.EncodeTo(&encoded2);
  ASSERT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EncodeDecode) {
  static const uint64_t kBig = 1ull << 50;

  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    TestEncodeDecode(edit);
    FileMetaData meta;
    meta.number = kBig + 300 + i;
    meta.file_size = kBig + 400 + i;
    meta.smallest = InternalKey("foo", kBig + 500 + i, kTypeValue);
    meta.largest = InternalKey("zoo", kBig + 600 + i, kTypeDeletion);
    edit.AddFile(3, meta);
    edit.RemoveFile(4, kBig + 700 + i);
    edit.SetCompactPointer(i, InternalKey("x", kBig + 900 + i, kTypeValue));
  }

  edit.SetComparatorName("foo");
  edit.SetLogNumber(kBig + 100);
  edit.SetNextFile(kBig + 200);
  edit.SetLastSequence(kBig + 1000);
  TestEncodeDecode(edit);
}

TEST(VersionEditTest, EncodeDecodeZoneRanges) {
  // The LevelDB++ extension: per-file secondary zone maps travel through
  // the MANIFEST.
  VersionEdit edit;
  FileMetaData meta;
  meta.number = 7;
  meta.file_size = 1234;
  meta.smallest = InternalKey("a", 1, kTypeValue);
  meta.largest = InternalKey("z", 2, kTypeValue);
  ZoneRange user_range;
  user_range.Extend("alice");
  user_range.Extend("zed");
  ZoneRange absent;  // Attribute missing from the whole file
  meta.zone_ranges = {user_range, absent};
  edit.AddFile(1, meta);
  TestEncodeDecode(edit);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string round2;
  parsed.EncodeTo(&round2);
  ASSERT_EQ(encoded, round2);
}

TEST(VersionEditTest, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x99\x88garbage")).ok());
  // Truncated new-file record.
  VersionEdit good;
  FileMetaData meta;
  meta.number = 1;
  meta.file_size = 2;
  meta.smallest = InternalKey("a", 1, kTypeValue);
  meta.largest = InternalKey("b", 2, kTypeValue);
  good.AddFile(0, meta);
  std::string encoded;
  good.EncodeTo(&encoded);
  EXPECT_FALSE(
      edit.DecodeFrom(Slice(encoded.data(), encoded.size() - 3)).ok());
}

}  // namespace leveldbpp
