// Snapshot-under-mutation: a snapshot taken mid-workload must see EXACTLY
// the prefix state — same keys, same values, both sweep directions, and
// point Gets — no matter what the engine does to the tree afterwards:
// memtable flush, size and manual compaction, an external-file ingest
// splice, or a crash. Snapshots are process-local (they die with the DB
// object); the crash suite proves that holding them never weakens the
// durability of acknowledged writes, and that the extra key versions a
// live snapshot pins into L0 files recover to plain newest-wins state.
//
// Every scenario runs with `sorted_views` off and on: the sorted-view
// fast path must be invisible to snapshot semantics.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crash_harness.h"
#include "db/db_impl.h"
#include "env/env.h"

namespace leveldbpp {
namespace {

using crash::Op;

class SnapshotTest : public testing::TestWithParam<bool> {
 protected:
  // Small enough that a few dozen keys cross flush and level boundaries.
  Options SmallOptions(Env* env) {
    Options options;
    options.env = env;
    options.create_if_missing = true;
    options.write_buffer_size = 4 << 10;
    options.max_file_size = 2 << 10;
    options.max_bytes_for_level_base = 1 << 10;
    options.sorted_views = GetParam();
    return options;
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    return buf;
  }

  // The full read surface of one snapshot against its expected state:
  // forward sweep, backward sweep, and a point Get per expected key plus
  // one guaranteed-absent probe.
  void ExpectSnapshotExact(DBImpl* db, const Snapshot* snap,
                           const std::map<std::string, std::string>& want,
                           const std::string& trace) {
    SCOPED_TRACE(trace);
    ReadOptions ro;
    ro.snapshot = snap;
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    auto fwd = want.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++fwd) {
      ASSERT_TRUE(fwd != want.end()) << "extra key " << it->key().ToString();
      EXPECT_EQ(fwd->first, it->key().ToString());
      EXPECT_EQ(fwd->second, it->value().ToString());
    }
    EXPECT_TRUE(fwd == want.end()) << "missing keys from " << fwd->first;
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();

    auto rev = want.rbegin();
    for (it->SeekToLast(); it->Valid(); it->Prev(), ++rev) {
      ASSERT_TRUE(rev != want.rend()) << "extra key " << it->key().ToString();
      EXPECT_EQ(rev->first, it->key().ToString());
      EXPECT_EQ(rev->second, it->value().ToString());
    }
    EXPECT_TRUE(rev == want.rend());
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();

    std::string value;
    for (const auto& [key, doc] : want) {
      ASSERT_TRUE(db->Get(ro, key, &value).ok()) << key;
      EXPECT_EQ(doc, value) << key;
    }
    EXPECT_TRUE(db->Get(ro, "zzz-absent", &value).IsNotFound());
  }
};

TEST_P(SnapshotTest, ExactPrefixAcrossFlush) {
  std::unique_ptr<Env> env(NewMemEnv());
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(SmallOptions(env.get()), "/snap", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 40; i++) {
    model[Key(i)] = "v1-" + Key(i);
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  const Snapshot* snap = db->GetSnapshot();
  const std::map<std::string, std::string> frozen = model;

  // Overwrite, delete, and extend beneath the snapshot, then flush so the
  // pinned versions leave the memtable.
  for (int i = 0; i < 40; i += 2) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "v2-" + Key(i)).ok());
    model[Key(i)] = "v2-" + Key(i);
  }
  for (int i = 1; i < 40; i += 4) {
    ASSERT_TRUE(db->Delete(WriteOptions(), Key(i)).ok());
    model.erase(Key(i));
  }
  for (int i = 100; i < 110; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "new-" + Key(i)).ok());
    model[Key(i)] = "new-" + Key(i);
  }
  ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());  // Forced flush

  ExpectSnapshotExact(db.get(), snap, frozen, "pinned, post-flush");
  ExpectSnapshotExact(db.get(), nullptr, model, "current, post-flush");
  db->ReleaseSnapshot(snap);
  ExpectSnapshotExact(db.get(), nullptr, model, "current, post-release");
}

TEST_P(SnapshotTest, ExactPrefixAcrossCompaction) {
  std::unique_ptr<Env> env(NewMemEnv());
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(SmallOptions(env.get()), "/snap", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  // Two snapshots at different depths of the same overwrite history: the
  // compactions in between must retain BOTH pinned versions of every key
  // while still collapsing everything older than the earlier snapshot.
  std::map<std::string, std::string> model;
  std::string pad(120, 'p');
  for (int i = 0; i < 60; i++) {
    model[Key(i)] = "gen1-" + Key(i) + pad;
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  const Snapshot* snap1 = db->GetSnapshot();
  const std::map<std::string, std::string> frozen1 = model;

  for (int i = 0; i < 60; i += 3) {
    model[Key(i)] = "gen2-" + Key(i) + pad;
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  for (int i = 1; i < 60; i += 5) {
    ASSERT_TRUE(db->Delete(WriteOptions(), Key(i)).ok());
    model.erase(Key(i));
  }
  ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
  const Snapshot* snap2 = db->GetSnapshot();
  const std::map<std::string, std::string> frozen2 = model;

  for (int i = 0; i < 60; i += 2) {
    model[Key(i)] = "gen3-" + Key(i) + pad;
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
  ASSERT_TRUE(db->MaybeCompact().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  ExpectSnapshotExact(db.get(), snap1, frozen1, "snap1, post-compaction");
  ExpectSnapshotExact(db.get(), snap2, frozen2, "snap2, post-compaction");
  ExpectSnapshotExact(db.get(), nullptr, model, "current, post-compaction");

  // Releasing the older snapshot and compacting again must not disturb the
  // newer one (the retention bound moves from snap1 to snap2).
  db->ReleaseSnapshot(snap1);
  ASSERT_TRUE(db->CompactAll().ok());
  ExpectSnapshotExact(db.get(), snap2, frozen2, "snap2, snap1 released");
  db->ReleaseSnapshot(snap2);
  ASSERT_TRUE(db->CompactAll().ok());
  ExpectSnapshotExact(db.get(), nullptr, model, "current, all released");
}

TEST_P(SnapshotTest, ExactPrefixAcrossIngestSplice) {
  std::unique_ptr<Env> env(NewMemEnv());
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(SmallOptions(env.get()), "/snap", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 30; i++) {
    model[Key(i)] = "resident-" + Key(i);
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
  const Snapshot* snap = db->GetSnapshot();
  const std::map<std::string, std::string> frozen = model;

  // Splice a batch that both overwrites residents and adds fresh keys. The
  // ingest's sequences are allocated after the snapshot, so the snapshot
  // must see none of it — while the current view sees all of it.
  std::map<std::string, std::string> batch;
  for (int i = 20; i < 50; i++) batch[Key(i)] = "ingested-" + Key(i);
  auto it = batch.begin();
  IngestFeed feed = [&](std::string* key, std::string* value) {
    if (it == batch.end()) return false;
    *key = it->first;
    *value = it->second;
    ++it;
    return true;
  };
  ASSERT_TRUE(db->IngestExternalFiles(feed, nullptr).ok());
  for (const auto& [key, value] : batch) model[key] = value;

  ExpectSnapshotExact(db.get(), snap, frozen, "pinned, post-ingest");
  ExpectSnapshotExact(db.get(), nullptr, model, "current, post-ingest");

  // And the splice's compaction/rebuild hooks must not unpin it either.
  ASSERT_TRUE(db->CompactAll().ok());
  ExpectSnapshotExact(db.get(), snap, frozen, "pinned, ingest compacted");
  db->ReleaseSnapshot(snap);
}

TEST_P(SnapshotTest, IteratorPinsCreationStateWithoutExplicitSnapshot) {
  std::unique_ptr<Env> env(NewMemEnv());
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(SmallOptions(env.get()), "/snap", &raw).ok());
  std::unique_ptr<DBImpl> db(raw);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 25; i++) {
    model[Key(i)] = "before-" + Key(i);
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), model[Key(i)]).ok());
  }
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  const std::map<std::string, std::string> frozen = model;

  for (int i = 0; i < 25; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "after-" + Key(i)).ok());
  }
  ASSERT_TRUE(db->Write(WriteOptions(), nullptr).ok());
  ASSERT_TRUE(db->MaybeCompact().ok());

  auto want = frozen.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++want) {
    ASSERT_TRUE(want != frozen.end());
    EXPECT_EQ(want->first, it->key().ToString());
    EXPECT_EQ(want->second, it->value().ToString());
  }
  EXPECT_TRUE(want == frozen.end());
  ASSERT_TRUE(it->status().ok()) << it->status().ToString();
}

// Crash with snapshots LIVE: the harness workload runs with a hook that
// periodically takes a snapshot, lets the op stream mutate beneath it,
// verifies the snapshot still reads its exact prefix, and releases it.
// Crash points sweep the whole run, so crashes land while a snapshot is
// held (before_close releases it — a real process crash would simply lose
// the handle). Recovery must yield exactly the acknowledged model: pinned
// older versions flushed into L0 resolve newest-wins on reopen, and every
// index variant's answers stay derivable from the recovered primary.
TEST_P(SnapshotTest, CrashWithLiveSnapshotsRecoversAcknowledgedState) {
  if (GetParam()) return;  // Index-table layout is identical; run once.
  std::vector<Op> ops;
  uint64_t ts = 7000;
  for (int i = 0; i < 260; i++) {
    const std::string key = "k" + std::to_string((i * 29) % 83);
    if (i % 9 == 4) {
      ops.push_back(crash::DeleteOp(key));
    } else {
      ops.push_back(
          crash::PutOp(key, "u" + std::to_string(i % 7), ts++, /*pad=*/200));
    }
  }

  struct SnapState {
    const Snapshot* snap = nullptr;
    crash::Model frozen;
    size_t taken_at = 0;
  };
  SnapState st;
  crash::WorkloadHooks hooks;
  hooks.after_op = [&st](SecondaryDB* db, const crash::Model& model,
                         size_t acked) {
    if (st.snap == nullptr) {
      if (acked % 24 == 5) {
        st.snap = db->GetSnapshot();
        st.frozen = model;
        st.taken_at = acked;
      }
      return;
    }
    if (acked < st.taken_at + 16) return;
    ReadOptions ro;
    ro.snapshot = st.snap;
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    auto want = st.frozen.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++want) {
      ASSERT_TRUE(want != st.frozen.end())
          << "snapshot@" << st.taken_at << " extra " << it->key().ToString();
      EXPECT_EQ(want->first, it->key().ToString());
      EXPECT_EQ(want->second, it->value().ToString());
    }
    EXPECT_TRUE(want == st.frozen.end()) << "snapshot@" << st.taken_at;
    ASSERT_TRUE(it->status().ok()) << it->status().ToString();
    it.reset();
    db->ReleaseSnapshot(st.snap);
    st.snap = nullptr;
  };
  hooks.before_close = [&st](SecondaryDB* db) {
    if (st.snap != nullptr) {
      db->ReleaseSnapshot(st.snap);
      st.snap = nullptr;
    }
  };

  for (IndexType type : {IndexType::kLazy, IndexType::kComposite}) {
    const uint64_t total_ops = crash::CountEnvOps(type, ops, {}, hooks);
    ASSERT_GT(total_ops, 0u);
    // Deterministic sweep: a dozen points spread across the run, both
    // crash modes alternating.
    for (int i = 0; i < 12; i++) {
      st = SnapState();
      const uint64_t crash_at = 1 + (total_ops - 2) * i / 11;
      const auto mode = (i % 2 == 0)
                            ? FaultInjectionEnv::CrashMode::kDropUnsynced
                            : FaultInjectionEnv::CrashMode::kTornTail;
      crash::RunCrashCycle(
          type, ops, crash_at, mode, /*seed=*/4201u + i,
          std::string("snapshot-crash variant=") + IndexTypeName(type) +
              " crash_at=" + std::to_string(crash_at) + "/" +
              std::to_string(total_ops) + " mode=" +
              crash::CrashModeName(mode),
          {}, hooks);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HeapMergeAndSortedView, SnapshotTest,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "SortedViews" : "HeapMerge";
                         });

}  // namespace
}  // namespace leveldbpp
