// WAL writer/reader round-trip and crash-tolerance tests.

#include <gtest/gtest.h>

#include <memory>

#include "env/env.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace leveldbpp {
namespace log {

class LogTest : public testing::Test {
 protected:
  LogTest() : env_(NewMemEnv()) {}

  void WriteRecords(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/log", &file).ok());
    Writer writer(file.get());
    for (const std::string& r : records) {
      ASSERT_TRUE(writer.AddRecord(Slice(r)).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadAll(size_t* dropped_bytes = nullptr) {
    struct Reporter : public Reader::Reporter {
      size_t dropped = 0;
      void Corruption(size_t bytes, const Status&) override {
        dropped += bytes;
      }
    };
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/log", &file).ok());
    Reporter reporter;
    Reader reader(file.get(), &reporter, true);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    if (dropped_bytes != nullptr) *dropped_bytes = reporter.dropped;
    last_torn_tail_bytes_ = reader.TornTailBytes();
    return out;
  }

  void CorruptLog(size_t offset, char new_byte) {
    // Rewrite the file with one byte flipped.
    std::unique_ptr<SequentialFile> in;
    ASSERT_TRUE(env_->NewSequentialFile("/log", &in).ok());
    std::string contents;
    char scratch[4096];
    Slice chunk;
    while (in->Read(sizeof(scratch), &chunk, scratch).ok() &&
           !chunk.empty()) {
      contents.append(chunk.data(), chunk.size());
    }
    ASSERT_LT(offset, contents.size());
    contents[offset] = new_byte;
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env_->NewWritableFile("/log", &out).ok());
    ASSERT_TRUE(out->Append(contents).ok());
    ASSERT_TRUE(out->Close().ok());
  }

  void TruncateLog(size_t new_size) {
    std::unique_ptr<SequentialFile> in;
    ASSERT_TRUE(env_->NewSequentialFile("/log", &in).ok());
    std::string contents;
    char scratch[1 << 20];
    Slice chunk;
    while (in->Read(sizeof(scratch), &chunk, scratch).ok() &&
           !chunk.empty()) {
      contents.append(chunk.data(), chunk.size());
    }
    contents.resize(std::min(new_size, contents.size()));
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env_->NewWritableFile("/log", &out).ok());
    ASSERT_TRUE(out->Append(contents).ok());
    ASSERT_TRUE(out->Close().ok());
  }

  std::unique_ptr<Env> env_;
  uint64_t last_torn_tail_bytes_ = 0;  // From the most recent ReadAll
};

TEST_F(LogTest, Empty) {
  WriteRecords({});
  EXPECT_TRUE(ReadAll().empty());
}

TEST_F(LogTest, SmallRecords) {
  WriteRecords({"foo", "bar", "", "xxxx"});
  std::vector<std::string> got = ReadAll();
  ASSERT_EQ(4u, got.size());
  EXPECT_EQ("foo", got[0]);
  EXPECT_EQ("bar", got[1]);
  EXPECT_EQ("", got[2]);
  EXPECT_EQ("xxxx", got[3]);
}

TEST_F(LogTest, RecordsSpanningBlocks) {
  // Records larger than the 32KB block get fragmented and reassembled.
  std::vector<std::string> records = {
      std::string(10000, 'a'),
      std::string(100000, 'b'),  // Spans multiple blocks
      std::string(1000, 'c'),
  };
  WriteRecords(records);
  std::vector<std::string> got = ReadAll();
  ASSERT_EQ(records.size(), got.size());
  for (size_t i = 0; i < records.size(); i++) {
    EXPECT_EQ(records[i], got[i]) << i;
  }
}

TEST_F(LogTest, ManyRandomRecords) {
  Random64 rnd(301);
  std::vector<std::string> records;
  for (int i = 0; i < 300; i++) {
    std::string r;
    size_t len = rnd.Uniform(5000);
    for (size_t j = 0; j < len; j++) {
      r.push_back(static_cast<char>(rnd.Next() & 0xFF));
    }
    records.push_back(std::move(r));
  }
  WriteRecords(records);
  std::vector<std::string> got = ReadAll();
  ASSERT_EQ(records.size(), got.size());
  for (size_t i = 0; i < records.size(); i++) {
    EXPECT_EQ(records[i], got[i]) << i;
  }
}

TEST_F(LogTest, ChecksumMismatchDetected) {
  WriteRecords({"payload-one", "payload-two"});
  // Flip a byte inside the first record's payload.
  CorruptLog(10, 'X');
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  // First record is dropped, second one may also be lost (buffer drop);
  // the reader must report the corruption and not return garbage.
  EXPECT_GT(dropped, 0u);
  for (const std::string& r : got) {
    EXPECT_TRUE(r == "payload-two") << "unexpected record: " << r;
  }
}

TEST_F(LogTest, TruncatedTailIsNotCorruption) {
  WriteRecords({"first", std::string(50000, 'z')});
  // Chop the file mid-way through the second record, simulating a crash.
  TruncateLog(40000);
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ("first", got[0]);
  EXPECT_EQ(0u, dropped);  // Torn tail != corruption
}

// ---- Torn-tail accounting: every way a crash can cut the last record is
// silently skipped (zero Reporter drops), with the skipped bytes reported
// through Reader::TornTailBytes() instead. One test per cut shape.

TEST_F(LogTest, TornTailTruncatedHeader) {
  // "first" occupies 7+5=12 bytes; cut the second record 3 bytes into its
  // header.
  WriteRecords({"first", "second"});
  TruncateLog(12 + 3);
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ("first", got[0]);
  EXPECT_EQ(0u, dropped);
  EXPECT_EQ(3u, last_torn_tail_bytes_);
}

TEST_F(LogTest, TornTailTruncatedFullRecordPayload) {
  // Complete header, payload cut 3 bytes into "second"'s 6: the reader
  // skips header + partial payload (10 bytes) without reporting.
  WriteRecords({"first", "second"});
  TruncateLog(12 + kHeaderSize + 3);
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ("first", got[0]);
  EXPECT_EQ(0u, dropped);
  EXPECT_EQ(static_cast<uint64_t>(kHeaderSize + 3), last_torn_tail_bytes_);
}

TEST_F(LogTest, TornTailMissingLastFragment) {
  // "first" fills 12 bytes of block 0; the big record's kFirstType fragment
  // completes the block exactly, and its kLastType fragment in block 1 is
  // cut off entirely. The complete leading fragment is quietly discarded.
  const size_t first_fragment = kBlockSize - 12 - kHeaderSize;
  WriteRecords({"first", std::string(first_fragment + 1000, 'z')});
  TruncateLog(kBlockSize);
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  ASSERT_EQ(1u, got.size());
  EXPECT_EQ("first", got[0]);
  EXPECT_EQ(0u, dropped);
  EXPECT_EQ(first_fragment, last_torn_tail_bytes_);
}

TEST_F(LogTest, TornTailMidMiddleFragment) {
  // A record spanning 4 blocks (kFirst/kMiddle/kMiddle/kLast), cut 1000
  // bytes into the first kMiddleType payload: both the assembled kFirst
  // fragment and the partial block are torn-tail bytes.
  const size_t per_block = kBlockSize - kHeaderSize;
  WriteRecords({std::string(3 * per_block + 100, 'z')});
  TruncateLog(kBlockSize + kHeaderSize + 1000);
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(0u, dropped);
  EXPECT_EQ(per_block + kHeaderSize + 1000, last_torn_tail_bytes_);
}

TEST_F(LogTest, MidFileCorruptionIsNotTornTail) {
  // A checksum error in the middle of the file IS corruption: reported to
  // the Reporter and NOT attributed to the torn-tail counter.
  WriteRecords({"first", "second", "third"});
  CorruptLog(12 + 2, 'X');  // Flip a CRC byte of "second"
  size_t dropped = 0;
  std::vector<std::string> got = ReadAll(&dropped);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(0u, last_torn_tail_bytes_);
}

TEST_F(LogTest, ReopenedWriterContinuesAtBlockBoundary) {
  WriteRecords({"one"});
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize("/log", &size).ok());
  // Re-open for append is not supported by MemEnv's NewWritableFile
  // (truncates); emulate by re-writing and using the dest_length ctor.
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/log2", &file).ok());
  Writer w1(file.get());
  ASSERT_TRUE(w1.AddRecord("one").ok());
  Writer w2(file.get(), size);
  ASSERT_TRUE(w2.AddRecord("two").ok());
  ASSERT_TRUE(file->Close().ok());

  std::unique_ptr<SequentialFile> in;
  ASSERT_TRUE(env_->NewSequentialFile("/log2", &in).ok());
  Reader reader(in.get(), nullptr, true);
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ("one", record.ToString());
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ("two", record.ToString());
  ASSERT_FALSE(reader.ReadRecord(&record, &scratch));
}

}  // namespace log
}  // namespace leveldbpp
