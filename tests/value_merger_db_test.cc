// DB-level ValueMerger behaviour: fragment merging through flushes and
// compactions, deletion-marker resolution, and the no-whole-key-Delete
// contract.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/posting_list.h"
#include "db/db_impl.h"
#include "env/env.h"

namespace leveldbpp {
namespace {

class ValueMergerDBTest : public testing::Test {
 protected:
  ValueMergerDBTest() : env_(NewMemEnv()) {
    Options options;
    options.env = env_.get();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.value_merger = PostingListMerger::Instance();
    DBImpl* raw = nullptr;
    EXPECT_TRUE(DBImpl::Open(options, "/mergedb", &raw).ok());
    db_.reset(raw);
  }

  Status PutFragment(const std::string& key, const std::string& pk,
                     SequenceNumber seq, bool deleted = false) {
    std::string fragment;
    PostingList::Serialize({PostingEntry(pk, seq, deleted)}, &fragment);
    return db_->Put(WriteOptions(), key, fragment);
  }

  std::vector<PostingEntry> GetList(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    std::vector<PostingEntry> entries;
    if (s.ok()) {
      EXPECT_TRUE(PostingList::Parse(Slice(value), &entries)) << value;
    }
    return entries;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DBImpl> db_;
};

TEST_F(ValueMergerDBTest, WholeKeyDeleteRejected) {
  ASSERT_TRUE(PutFragment("u1", "t1", 1).ok());
  Status s = db_->Delete(WriteOptions(), "u1");
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
  // The entry is untouched.
  EXPECT_EQ(1u, GetList("u1").size());
}

TEST_F(ValueMergerDBTest, FragmentsMergeAcrossFlushesAndCompactions) {
  // Interleave many keys so each flush carries a fragment of each.
  SequenceNumber seq = 1;
  for (int round = 0; round < 5; round++) {
    for (int u = 0; u < 50; u++) {
      ASSERT_TRUE(PutFragment("user" + std::to_string(u),
                              "t" + std::to_string(round * 1000 + u), seq++)
                      .ok());
    }
    // Pad so the memtable flushes between rounds.
    for (int p = 0; p < 40; p++) {
      ASSERT_TRUE(db_->Put(WriteOptions(),
                           "pad" + std::to_string(round * 100 + p),
                           std::string(1000, 'p'))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  // After full compaction a Get returns ONE fully merged list per key.
  for (int u = 0; u < 50; u++) {
    std::vector<PostingEntry> entries = GetList("user" + std::to_string(u));
    ASSERT_EQ(5u, entries.size()) << "user" << u;
    for (size_t i = 1; i < entries.size(); i++) {
      EXPECT_GT(entries[i - 1].seq, entries[i].seq);
    }
    std::set<std::string> pks;
    for (const auto& e : entries) pks.insert(e.primary_key);
    EXPECT_EQ(5u, pks.size());
  }
}

TEST_F(ValueMergerDBTest, DeletionMarkersResolveAtBottom) {
  ASSERT_TRUE(PutFragment("u", "t1", 1).ok());
  ASSERT_TRUE(PutFragment("u", "t2", 2).ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  // Marker for t1 arrives later (in a newer fragment).
  ASSERT_TRUE(PutFragment("u", "t1", 3, /*deleted=*/true).ok());

  // Before compaction: Get merges memtable marker over the disk list.
  {
    std::vector<PostingEntry> entries = GetList("u");
    // The marker shadows t1; whether it is surfaced depends on residence —
    // after full compaction it must be GONE for good.
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::vector<PostingEntry> entries = GetList("u");
  ASSERT_EQ(1u, entries.size());
  EXPECT_EQ("t2", entries[0].primary_key);
  EXPECT_FALSE(entries[0].deleted);
}

TEST_F(ValueMergerDBTest, FullyDeletedListDisappearsAtBottom) {
  ASSERT_TRUE(PutFragment("gone", "t1", 1).ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(PutFragment("gone", "t1", 2, /*deleted=*/true).ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  // The merged list became empty at the bottom level: key dropped entirely.
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "gone", &value).IsNotFound());
}

TEST_F(ValueMergerDBTest, MergedStateSurvivesReopen) {
  for (SequenceNumber s = 1; s <= 20; s++) {
    ASSERT_TRUE(PutFragment("u", "t" + std::to_string(s), s).ok());
  }
  db_.reset();
  Options options;
  options.env = env_.get();
  options.value_merger = PostingListMerger::Instance();
  DBImpl* raw = nullptr;
  ASSERT_TRUE(DBImpl::Open(options, "/mergedb", &raw).ok());
  db_.reset(raw);
  std::vector<PostingEntry> entries = GetList("u");
  EXPECT_EQ(20u, entries.size());
}

}  // namespace
}  // namespace leveldbpp
