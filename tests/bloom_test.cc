#include "table/filter_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/coding.h"

namespace leveldbpp {

class BloomTest : public testing::Test {
 protected:
  BloomTest() : policy_(NewBloomFilterPolicy(10)) {}

  void Reset() {
    keys_.clear();
    filter_.clear();
  }

  void Add(const Slice& s) { keys_.push_back(s.ToString()); }

  void Build() {
    std::vector<Slice> key_slices;
    for (const auto& key : keys_) {
      key_slices.emplace_back(key);
    }
    filter_.clear();
    policy_->CreateFilter(key_slices.data(),
                          static_cast<int>(key_slices.size()), &filter_);
    keys_.clear();
  }

  size_t FilterSize() const { return filter_.size(); }

  bool Matches(const Slice& s) {
    if (!keys_.empty()) {
      Build();
    }
    return policy_->KeyMayMatch(s, Slice(filter_));
  }

  double FalsePositiveRate() {
    char buffer[sizeof(int)];
    int result = 0;
    for (int i = 0; i < 10000; i++) {
      if (Matches(Key(i + 1000000000, buffer))) {
        result++;
      }
    }
    return result / 10000.0;
  }

  static Slice Key(int i, char* buffer) {
    EncodeFixed32(buffer, static_cast<uint32_t>(i));
    return Slice(buffer, sizeof(uint32_t));
  }

  std::unique_ptr<const FilterPolicy> policy_;
  std::vector<std::string> keys_;
  std::string filter_;
};

TEST_F(BloomTest, EmptyFilter) {
  ASSERT_TRUE(!Matches("hello"));
  ASSERT_TRUE(!Matches("world"));
}

TEST_F(BloomTest, Small) {
  Add("hello");
  Add("world");
  ASSERT_TRUE(Matches("hello"));
  ASSERT_TRUE(Matches("world"));
  ASSERT_TRUE(!Matches("x"));
  ASSERT_TRUE(!Matches("foo"));
}

static int NextLength(int length) {
  if (length < 10) {
    length += 1;
  } else if (length < 100) {
    length += 10;
  } else if (length < 1000) {
    length += 100;
  } else {
    length += 1000;
  }
  return length;
}

TEST_F(BloomTest, VaryingLengths) {
  char buffer[sizeof(int)];

  int mediocre_filters = 0;
  int good_filters = 0;

  for (int length = 1; length <= 10000; length = NextLength(length)) {
    Reset();
    for (int i = 0; i < length; i++) {
      Add(Key(i, buffer));
    }
    Build();

    ASSERT_LE(FilterSize(), static_cast<size_t>((length * 10 / 8) + 40))
        << length;

    // All added keys must match
    for (int i = 0; i < length; i++) {
      ASSERT_TRUE(Matches(Key(i, buffer)))
          << "Length " << length << "; key " << i;
    }

    // Check false positive rate
    double rate = FalsePositiveRate();
    ASSERT_LE(rate, 0.02);  // Must not be over 2%
    if (rate > 0.0125) {
      mediocre_filters++;  // Allowed, but not too often
    } else {
      good_filters++;
    }
  }
  ASSERT_LE(mediocre_filters, good_filters / 5);
}

TEST(BloomBitsTest, MoreBitsFewerFalsePositives) {
  // Appendix C.1's premise: fp rate drops as bits/key grow.
  char buffer[sizeof(int)];
  double prev_rate = 1.0;
  for (int bits : {5, 10, 20}) {
    std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(bits));
    std::vector<std::string> keys;
    std::vector<Slice> slices;
    for (int i = 0; i < 2000; i++) {
      EncodeFixed32(buffer, i);
      keys.emplace_back(buffer, sizeof(uint32_t));
    }
    for (const auto& k : keys) slices.emplace_back(k);
    std::string filter;
    policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                         &filter);
    int fp = 0;
    for (int i = 0; i < 10000; i++) {
      EncodeFixed32(buffer, i + 1000000000);
      if (policy->KeyMayMatch(Slice(buffer, 4), Slice(filter))) fp++;
    }
    double rate = fp / 10000.0;
    EXPECT_LT(rate, prev_rate + 0.001) << bits << " bits";
    prev_rate = rate;
  }
  EXPECT_LT(prev_rate, 0.001);  // 20 bits/key: fp ~ 1e-4
}

}  // namespace leveldbpp
