#include "core/document.h"

#include <gtest/gtest.h>

namespace leveldbpp {

TEST(JsonAttributeExtractor, ExtractsStrings) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  ASSERT_TRUE(
      x->Extract(R"({"UserID":"u42","Body":"text"})", "UserID", &out));
  EXPECT_EQ("u42", out);
  ASSERT_TRUE(x->Extract(R"({"UserID":"u42","Body":"text"})", "Body", &out));
  EXPECT_EQ("text", out);
}

TEST(JsonAttributeExtractor, ExtractsNumbersAndBools) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  ASSERT_TRUE(x->Extract(R"({"n":12345})", "n", &out));
  EXPECT_EQ("12345", out);
  ASSERT_TRUE(x->Extract(R"({"b":true})", "b", &out));
  EXPECT_EQ("true", out);
}

TEST(JsonAttributeExtractor, MissingAttribute) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  EXPECT_FALSE(x->Extract(R"({"a":"1"})", "z", &out));
}

TEST(JsonAttributeExtractor, NonIndexableTypes) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  EXPECT_FALSE(x->Extract(R"({"a":null})", "a", &out));
  EXPECT_FALSE(x->Extract(R"({"a":[1,2]})", "a", &out));
  EXPECT_FALSE(x->Extract(R"({"a":{"b":1}})", "a", &out));
}

TEST(JsonAttributeExtractor, MalformedDocuments) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  EXPECT_FALSE(x->Extract("not json", "a", &out));
  EXPECT_FALSE(x->Extract("", "a", &out));
  EXPECT_FALSE(x->Extract("[1,2,3]", "a", &out));  // Not an object
  EXPECT_FALSE(x->Extract("42", "a", &out));
}

TEST(JsonAttributeExtractor, EscapedValuesDecoded) {
  const AttributeExtractor* x = JsonAttributeExtractor::Instance();
  std::string out;
  ASSERT_TRUE(x->Extract(R"({"u":"a\"b\nc"})", "u", &out));
  EXPECT_EQ("a\"b\nc", out);
}

}  // namespace leveldbpp
