file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_c2_compression.dir/bench_appendix_c2_compression.cc.o"
  "CMakeFiles/bench_appendix_c2_compression.dir/bench_appendix_c2_compression.cc.o.d"
  "bench_appendix_c2_compression"
  "bench_appendix_c2_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_c2_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
