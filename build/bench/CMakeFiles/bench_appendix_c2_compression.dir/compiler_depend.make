# Empty compiler generated dependencies file for bench_appendix_c2_compression.
# This may be replaced when dependencies are built.
