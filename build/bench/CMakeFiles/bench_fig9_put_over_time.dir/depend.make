# Empty dependencies file for bench_fig9_put_over_time.
# This may be replaced when dependencies are built.
