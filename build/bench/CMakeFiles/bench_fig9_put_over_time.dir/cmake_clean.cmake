file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_put_over_time.dir/bench_fig9_put_over_time.cc.o"
  "CMakeFiles/bench_fig9_put_over_time.dir/bench_fig9_put_over_time.cc.o.d"
  "bench_fig9_put_over_time"
  "bench_fig9_put_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_put_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
