file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_userid.dir/bench_fig10_userid.cc.o"
  "CMakeFiles/bench_fig10_userid.dir/bench_fig10_userid.cc.o.d"
  "bench_fig10_userid"
  "bench_fig10_userid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_userid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
