# Empty dependencies file for bench_fig10_userid.
# This may be replaced when dependencies are built.
