file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_static.dir/bench_fig8_static.cc.o"
  "CMakeFiles/bench_fig8_static.dir/bench_fig8_static.cc.o.d"
  "bench_fig8_static"
  "bench_fig8_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
