file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ctime.dir/bench_fig11_ctime.cc.o"
  "CMakeFiles/bench_fig11_ctime.dir/bench_fig11_ctime.cc.o.d"
  "bench_fig11_ctime"
  "bench_fig11_ctime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ctime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
