# Empty dependencies file for bench_fig11_ctime.
# This may be replaced when dependencies are built.
