# Empty dependencies file for bench_appendix_c1_bloom.
# This may be replaced when dependencies are built.
