# Empty dependencies file for bench_fig13_15_mixed_io.
# This may be replaced when dependencies are built.
