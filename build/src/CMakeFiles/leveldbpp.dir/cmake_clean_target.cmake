file(REMOVE_RECURSE
  "libleveldbpp.a"
)
