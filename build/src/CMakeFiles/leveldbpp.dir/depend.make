# Empty dependencies file for leveldbpp.
# This may be replaced when dependencies are built.
