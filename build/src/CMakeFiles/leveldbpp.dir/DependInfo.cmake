
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/lru_cache.cc" "src/CMakeFiles/leveldbpp.dir/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/cache/lru_cache.cc.o.d"
  "/root/repo/src/compress/simple_lz.cc" "src/CMakeFiles/leveldbpp.dir/compress/simple_lz.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/compress/simple_lz.cc.o.d"
  "/root/repo/src/core/composite_index.cc" "src/CMakeFiles/leveldbpp.dir/core/composite_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/composite_index.cc.o.d"
  "/root/repo/src/core/document.cc" "src/CMakeFiles/leveldbpp.dir/core/document.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/document.cc.o.d"
  "/root/repo/src/core/eager_index.cc" "src/CMakeFiles/leveldbpp.dir/core/eager_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/eager_index.cc.o.d"
  "/root/repo/src/core/embedded_index.cc" "src/CMakeFiles/leveldbpp.dir/core/embedded_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/embedded_index.cc.o.d"
  "/root/repo/src/core/lazy_index.cc" "src/CMakeFiles/leveldbpp.dir/core/lazy_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/lazy_index.cc.o.d"
  "/root/repo/src/core/noindex_index.cc" "src/CMakeFiles/leveldbpp.dir/core/noindex_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/noindex_index.cc.o.d"
  "/root/repo/src/core/posting_list.cc" "src/CMakeFiles/leveldbpp.dir/core/posting_list.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/posting_list.cc.o.d"
  "/root/repo/src/core/secondary_db.cc" "src/CMakeFiles/leveldbpp.dir/core/secondary_db.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/secondary_db.cc.o.d"
  "/root/repo/src/core/secondary_index.cc" "src/CMakeFiles/leveldbpp.dir/core/secondary_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/secondary_index.cc.o.d"
  "/root/repo/src/core/standalone_index.cc" "src/CMakeFiles/leveldbpp.dir/core/standalone_index.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/core/standalone_index.cc.o.d"
  "/root/repo/src/db/builder.cc" "src/CMakeFiles/leveldbpp.dir/db/builder.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/builder.cc.o.d"
  "/root/repo/src/db/db_impl.cc" "src/CMakeFiles/leveldbpp.dir/db/db_impl.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/db_impl.cc.o.d"
  "/root/repo/src/db/db_iter.cc" "src/CMakeFiles/leveldbpp.dir/db/db_iter.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/db_iter.cc.o.d"
  "/root/repo/src/db/dbformat.cc" "src/CMakeFiles/leveldbpp.dir/db/dbformat.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/dbformat.cc.o.d"
  "/root/repo/src/db/filename.cc" "src/CMakeFiles/leveldbpp.dir/db/filename.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/filename.cc.o.d"
  "/root/repo/src/db/memtable.cc" "src/CMakeFiles/leveldbpp.dir/db/memtable.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/memtable.cc.o.d"
  "/root/repo/src/db/table_cache.cc" "src/CMakeFiles/leveldbpp.dir/db/table_cache.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/table_cache.cc.o.d"
  "/root/repo/src/db/version_edit.cc" "src/CMakeFiles/leveldbpp.dir/db/version_edit.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/version_edit.cc.o.d"
  "/root/repo/src/db/version_set.cc" "src/CMakeFiles/leveldbpp.dir/db/version_set.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/version_set.cc.o.d"
  "/root/repo/src/db/write_batch.cc" "src/CMakeFiles/leveldbpp.dir/db/write_batch.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/db/write_batch.cc.o.d"
  "/root/repo/src/env/env_posix.cc" "src/CMakeFiles/leveldbpp.dir/env/env_posix.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/env/env_posix.cc.o.d"
  "/root/repo/src/env/mem_env.cc" "src/CMakeFiles/leveldbpp.dir/env/mem_env.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/env/mem_env.cc.o.d"
  "/root/repo/src/env/page_cache_env.cc" "src/CMakeFiles/leveldbpp.dir/env/page_cache_env.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/env/page_cache_env.cc.o.d"
  "/root/repo/src/env/statistics.cc" "src/CMakeFiles/leveldbpp.dir/env/statistics.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/env/statistics.cc.o.d"
  "/root/repo/src/json/json.cc" "src/CMakeFiles/leveldbpp.dir/json/json.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/json/json.cc.o.d"
  "/root/repo/src/table/block.cc" "src/CMakeFiles/leveldbpp.dir/table/block.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/block.cc.o.d"
  "/root/repo/src/table/block_builder.cc" "src/CMakeFiles/leveldbpp.dir/table/block_builder.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/block_builder.cc.o.d"
  "/root/repo/src/table/bloom.cc" "src/CMakeFiles/leveldbpp.dir/table/bloom.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/bloom.cc.o.d"
  "/root/repo/src/table/filter_block.cc" "src/CMakeFiles/leveldbpp.dir/table/filter_block.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/filter_block.cc.o.d"
  "/root/repo/src/table/format.cc" "src/CMakeFiles/leveldbpp.dir/table/format.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/format.cc.o.d"
  "/root/repo/src/table/iterator.cc" "src/CMakeFiles/leveldbpp.dir/table/iterator.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/iterator.cc.o.d"
  "/root/repo/src/table/merger.cc" "src/CMakeFiles/leveldbpp.dir/table/merger.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/merger.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/leveldbpp.dir/table/table.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/CMakeFiles/leveldbpp.dir/table/table_builder.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/table_builder.cc.o.d"
  "/root/repo/src/table/two_level_iterator.cc" "src/CMakeFiles/leveldbpp.dir/table/two_level_iterator.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/two_level_iterator.cc.o.d"
  "/root/repo/src/table/zonemap_block.cc" "src/CMakeFiles/leveldbpp.dir/table/zonemap_block.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/table/zonemap_block.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/leveldbpp.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/arena.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/leveldbpp.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/CMakeFiles/leveldbpp.dir/util/comparator.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/leveldbpp.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/leveldbpp.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/leveldbpp.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/util/histogram.cc.o.d"
  "/root/repo/src/wal/log_reader.cc" "src/CMakeFiles/leveldbpp.dir/wal/log_reader.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/wal/log_reader.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/leveldbpp.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/wal/log_writer.cc.o.d"
  "/root/repo/src/workload/tweet_generator.cc" "src/CMakeFiles/leveldbpp.dir/workload/tweet_generator.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/workload/tweet_generator.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/leveldbpp.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/leveldbpp.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
