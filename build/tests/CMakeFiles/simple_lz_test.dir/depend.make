# Empty dependencies file for simple_lz_test.
# This may be replaced when dependencies are built.
