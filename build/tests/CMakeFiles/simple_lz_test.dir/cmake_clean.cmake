file(REMOVE_RECURSE
  "CMakeFiles/simple_lz_test.dir/simple_lz_test.cc.o"
  "CMakeFiles/simple_lz_test.dir/simple_lz_test.cc.o.d"
  "simple_lz_test"
  "simple_lz_test.pdb"
  "simple_lz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_lz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
