# Empty compiler generated dependencies file for index_variants_test.
# This may be replaced when dependencies are built.
