file(REMOVE_RECURSE
  "CMakeFiles/index_variants_test.dir/index_variants_test.cc.o"
  "CMakeFiles/index_variants_test.dir/index_variants_test.cc.o.d"
  "index_variants_test"
  "index_variants_test.pdb"
  "index_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
