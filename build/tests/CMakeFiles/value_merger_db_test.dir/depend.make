# Empty dependencies file for value_merger_db_test.
# This may be replaced when dependencies are built.
