file(REMOVE_RECURSE
  "CMakeFiles/value_merger_db_test.dir/value_merger_db_test.cc.o"
  "CMakeFiles/value_merger_db_test.dir/value_merger_db_test.cc.o.d"
  "value_merger_db_test"
  "value_merger_db_test.pdb"
  "value_merger_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_merger_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
