file(REMOVE_RECURSE
  "CMakeFiles/secondary_db_test.dir/secondary_db_test.cc.o"
  "CMakeFiles/secondary_db_test.dir/secondary_db_test.cc.o.d"
  "secondary_db_test"
  "secondary_db_test.pdb"
  "secondary_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secondary_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
