file(REMOVE_RECURSE
  "CMakeFiles/index_equivalence_test.dir/index_equivalence_test.cc.o"
  "CMakeFiles/index_equivalence_test.dir/index_equivalence_test.cc.o.d"
  "index_equivalence_test"
  "index_equivalence_test.pdb"
  "index_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
