# Empty compiler generated dependencies file for posting_list_test.
# This may be replaced when dependencies are built.
