file(REMOVE_RECURSE
  "CMakeFiles/index_config_matrix_test.dir/index_config_matrix_test.cc.o"
  "CMakeFiles/index_config_matrix_test.dir/index_config_matrix_test.cc.o.d"
  "index_config_matrix_test"
  "index_config_matrix_test.pdb"
  "index_config_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
