file(REMOVE_RECURSE
  "CMakeFiles/two_level_iterator_test.dir/two_level_iterator_test.cc.o"
  "CMakeFiles/two_level_iterator_test.dir/two_level_iterator_test.cc.o.d"
  "two_level_iterator_test"
  "two_level_iterator_test.pdb"
  "two_level_iterator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_level_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
