file(REMOVE_RECURSE
  "CMakeFiles/level_iterators_test.dir/level_iterators_test.cc.o"
  "CMakeFiles/level_iterators_test.dir/level_iterators_test.cc.o.d"
  "level_iterators_test"
  "level_iterators_test.pdb"
  "level_iterators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/level_iterators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
