# Empty dependencies file for level_iterators_test.
# This may be replaced when dependencies are built.
