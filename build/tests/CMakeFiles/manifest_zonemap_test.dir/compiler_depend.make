# Empty compiler generated dependencies file for manifest_zonemap_test.
# This may be replaced when dependencies are built.
