file(REMOVE_RECURSE
  "CMakeFiles/manifest_zonemap_test.dir/manifest_zonemap_test.cc.o"
  "CMakeFiles/manifest_zonemap_test.dir/manifest_zonemap_test.cc.o.d"
  "manifest_zonemap_test"
  "manifest_zonemap_test.pdb"
  "manifest_zonemap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_zonemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
