// ShardedDB: shard-per-core serving layer over SecondaryDB.
//
// N fully independent SecondaryDB instances (each with its own WAL,
// memtable, compaction pipeline, and stand-alone index tables) live under
// one directory:
//
//   <path>/SHARDS          shard count, checked on reopen
//   <path>/shard_<i>       one complete SecondaryDB store per shard
//
// PUT / GET / DELETE route by a stable hash of the primary key, so each
// shard's writer queue, stall ladder, and background compaction run
// independently — the whole point: on a multi-core host, PUT throughput
// scales with shards because the per-DB writer mutex and WAL append stop
// being the global bottleneck.
//
// LOOKUP / RANGELOOKUP fan out to every shard through the engine's shared
// ParallelRun pool and merge through the same TopKCollector the paper's
// Algorithm 1 uses. Results are byte-identical (values, sequence numbers,
// AND order) to an unsharded SecondaryDB given the same operation stream,
// because all shards draw sequence numbers from one shared atomic counter
// (Options::shared_sequence): seqs are globally unique and comparable, each
// logical op consumes exactly one, and the merge admits candidates in
// per-shard newest-first order with WouldAdmit cutting each shard's tail.

#ifndef LEVELDBPP_SERVE_SHARDED_DB_H_
#define LEVELDBPP_SERVE_SHARDED_DB_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/secondary_db.h"

namespace leveldbpp {
class DedicatedSchedulerEnv;
}

namespace leveldbpp {

struct ShardedDBOptions {
  /// Per-shard store configuration. Applied identically to every shard,
  /// except base.shared_sequence (managed by ShardedDB — supplying one is
  /// rejected) and base.statistics (must be null: each shard owns its
  /// Statistics so the serving layer can report per-shard breakdowns).
  SecondaryDBOptions shard;

  /// Number of shards. Fixed at creation and recorded in <path>/SHARDS;
  /// reopening with a different count is rejected (resharding would need
  /// to rehash every record).
  int num_shards = 4;

  /// Max concurrent executors for the query fan-out (callers + pool
  /// workers). 0 means num_shards. 1 runs the fan-out inline.
  int fanout_parallelism = 0;

  /// Per-shard Env override: when set, shard i opens with env_factory(i)
  /// instead of shard.base.env. The returned Envs must outlive the store.
  /// This exists for the chaos harness — one FaultInjectionEnv per shard
  /// lets a test stall or fail a SINGLE shard behind a live server while
  /// its siblings stay healthy. Default null: every shard shares
  /// shard.base.env.
  std::function<Env*(int)> env_factory;
};

class ShardedDB {
 public:
  /// Open (creating if missing) a sharded store at `path`.
  static Status Open(const ShardedDBOptions& options, const std::string& path,
                     std::unique_ptr<ShardedDB>* dbptr);

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;
  ~ShardedDB();

  // ---- Table 1 operations, same contracts as SecondaryDB ----

  /// WriteControl::no_stall sheds instead of parking when the target
  /// shard's ladder is engaged (see SecondaryDB::WriteControl); pair a
  /// Busy return with ShardHealthFor(key).suggested_retry_micros.
  Status Put(const Slice& key, const Slice& json_value,
             const SecondaryDB::WriteControl& ctl = {});
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key,
                const SecondaryDB::WriteControl& ctl = {});

  /// Per-query controls for the cross-shard fan-out.
  struct QueryOptions {
    /// Absolute deadline on the serving Env's NowMicros clock (0 = none),
    /// checked before dispatching the fan-out and again at the merge
    /// barrier — a shard query already in flight is not interrupted.
    uint64_t deadline_micros = 0;
    /// Accept partial results when some shards fail: failed shards get one
    /// auto-Resume() attempt (transient sticky errors clear) and one
    /// retry; shards still failing are dropped from the merge and counted
    /// in QueryMeta. Default false: any shard failure fails the query
    /// (fail-closed, exactly the pre-existing behavior).
    bool allow_degraded = false;
  };

  /// What actually happened to a fan-out query.
  struct QueryMeta {
    bool degraded = false;   // results lack >= 1 shard's contribution
    int missing_shards = 0;  // how many shards are missing from the merge
  };

  /// Cross-shard LOOKUP: K most recent matches over all shards, newest
  /// first, byte-identical to an unsharded store (see file comment).
  Status Lookup(const std::string& attribute, const Slice& value, size_t k,
                std::vector<QueryResult>* results);
  Status Lookup(const std::string& attribute, const Slice& value, size_t k,
                const QueryOptions& qopts, std::vector<QueryResult>* results,
                QueryMeta* meta);
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, size_t k,
                     std::vector<QueryResult>* results);
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, size_t k, const QueryOptions& qopts,
                     std::vector<QueryResult>* results, QueryMeta* meta);

  /// Flush + fully compact every shard (primary and index tables).
  Status CompactAll();

  /// Clear transient sticky background errors on every shard.
  Status Resume();

  // ---- Introspection ----

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Which shard a primary key routes to (stable across restarts).
  int ShardFor(const Slice& key) const;

  /// One shard's backpressure/health snapshot: the stall-ladder rung a
  /// write arriving now would hit (0 healthy .. 3 L0-stop), the raw ladder
  /// inputs, the sticky background error if any, and the backoff a shed
  /// writer should apply. Derived from DBImpl::GetWriteStallState on the
  /// shard's primary table.
  struct ShardHealthInfo {
    int shard = 0;
    int stall_rung = 0;
    int l0_files = 0;
    size_t imm_queue_depth = 0;
    size_t imm_queue_capacity = 1;
    bool has_bg_error = false;
    std::string bg_error;
    uint64_t suggested_retry_micros = 0;
  };

  /// Health of every shard (the HEALTH wire op; counted as
  /// shard.health.checks).
  std::vector<ShardHealthInfo> ShardHealth();

  /// Health of the one shard `key` routes to — how the server derives the
  /// retry-after hint for a shed write. Not counted as a health check.
  ShardHealthInfo ShardHealthFor(const Slice& key);

  /// ShardHealth() as a JSON array (the HEALTH op's payload; also embedded
  /// in "leveldbpp.stats.json" under "health").
  std::string HealthJson();

  /// Direct access to one shard's store (tests, stats).
  SecondaryDB* shard(int i) { return shards_[i]->db.get(); }

  /// Serving-layer counters (shard.* routing/merge tickers, serve.*
  /// protocol tickers recorded by Server, ParallelRun fan-out tickers).
  Statistics* statistics() { return frontend_stats_.get(); }

  /// The Env whose NowMicros clock QueryOptions::deadline_micros is read
  /// against (the Env the store was opened with).
  Env* env() const { return env_; }

  /// Sum of a ticker over every shard (primary + index tables) plus the
  /// serving layer's own counters.
  uint64_t TotalTicker(Ticker t);

  /// "leveldbpp.stats.json": one JSON object aggregating every shard —
  ///   {"num_shards":N,
  ///    "shards":[{"shard":i,"tickers":{...},"histograms":{...}},...],
  ///    "aggregate":{"tickers":{...},"histograms":{...}}}
  /// Per-shard tickers sum the shard's primary and index tables; per-shard
  /// histograms come from the shard's primary Statistics and include p99.
  /// Aggregate tickers add the serving layer's own counters; aggregate
  /// histograms are the Histogram::Merge of all shards.
  bool GetProperty(const Slice& property, std::string* value);

 private:
  struct Shard {
    // Private background-work lane (declared before `db` so the shard's
    // tables close — waiting out their in-flight background work — before
    // the workers join). One stalled flush parks a thread only this shard
    // owns, instead of the process-wide compactor thread every other shard
    // depends on.
    std::unique_ptr<DedicatedSchedulerEnv> scheduler_env;
    std::unique_ptr<SecondaryDB> db;
    // SecondaryDB's index maintenance requires one writer at a time;
    // serializing writers per shard (instead of per store) IS the
    // shard-per-core scaling model.
    std::mutex write_mu;
  };

  explicit ShardedDB(const ShardedDBOptions& options);

  /// Merge per-shard newest-first result lists into the global top-K.
  void MergeTopK(std::vector<std::vector<QueryResult>>* per_shard, size_t k,
                 std::vector<QueryResult>* out);

  /// Shared fan-out driver for Lookup/RangeLookup: runs `shard_query(i,
  /// &per_shard[i])` on every shard via ParallelRun, applies the deadline
  /// and degradation policy, and merges survivors. See QueryOptions.
  Status FanOutQuery(
      size_t k, const QueryOptions& qopts,
      const std::function<Status(int, std::vector<QueryResult>*)>&
          shard_query,
      std::vector<QueryResult>* results, QueryMeta* meta);

  ShardHealthInfo HealthOf(int i);

  ShardedDBOptions options_;
  std::string path_;
  Env* env_ = nullptr;  // Clock for fan-out deadlines
  std::unique_ptr<Statistics> frontend_stats_;
  // Shared sequence counter: holds the LAST claimed sequence number. Every
  // shard's primary table claims from it (see Options::shared_sequence), so
  // sequence numbers are globally unique and recency-comparable across
  // shards. DBImpl::Open CAS-maxes recovered LastSequence into it, so after
  // reopen it again dominates every shard.
  std::atomic<uint64_t> global_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_SHARDED_DB_H_
