// ShardedDB: shard-per-core serving layer over SecondaryDB.
//
// N fully independent SecondaryDB instances (each with its own WAL,
// memtable, compaction pipeline, and stand-alone index tables) live under
// one directory:
//
//   <path>/SHARDS          shard count, checked on reopen
//   <path>/shard_<i>       one complete SecondaryDB store per shard
//
// PUT / GET / DELETE route by a stable hash of the primary key, so each
// shard's writer queue, stall ladder, and background compaction run
// independently — the whole point: on a multi-core host, PUT throughput
// scales with shards because the per-DB writer mutex and WAL append stop
// being the global bottleneck.
//
// LOOKUP / RANGELOOKUP fan out to every shard through the engine's shared
// ParallelRun pool and merge through the same TopKCollector the paper's
// Algorithm 1 uses. Results are byte-identical (values, sequence numbers,
// AND order) to an unsharded SecondaryDB given the same operation stream,
// because all shards draw sequence numbers from one shared atomic counter
// (Options::shared_sequence): seqs are globally unique and comparable, each
// logical op consumes exactly one, and the merge admits candidates in
// per-shard newest-first order with WouldAdmit cutting each shard's tail.

#ifndef LEVELDBPP_SERVE_SHARDED_DB_H_
#define LEVELDBPP_SERVE_SHARDED_DB_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/secondary_db.h"

namespace leveldbpp {

struct ShardedDBOptions {
  /// Per-shard store configuration. Applied identically to every shard,
  /// except base.shared_sequence (managed by ShardedDB — supplying one is
  /// rejected) and base.statistics (must be null: each shard owns its
  /// Statistics so the serving layer can report per-shard breakdowns).
  SecondaryDBOptions shard;

  /// Number of shards. Fixed at creation and recorded in <path>/SHARDS;
  /// reopening with a different count is rejected (resharding would need
  /// to rehash every record).
  int num_shards = 4;

  /// Max concurrent executors for the query fan-out (callers + pool
  /// workers). 0 means num_shards. 1 runs the fan-out inline.
  int fanout_parallelism = 0;
};

class ShardedDB {
 public:
  /// Open (creating if missing) a sharded store at `path`.
  static Status Open(const ShardedDBOptions& options, const std::string& path,
                     std::unique_ptr<ShardedDB>* dbptr);

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;
  ~ShardedDB();

  // ---- Table 1 operations, same contracts as SecondaryDB ----

  Status Put(const Slice& key, const Slice& json_value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);

  /// Cross-shard LOOKUP: K most recent matches over all shards, newest
  /// first, byte-identical to an unsharded store (see file comment).
  Status Lookup(const std::string& attribute, const Slice& value, size_t k,
                std::vector<QueryResult>* results);
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, size_t k,
                     std::vector<QueryResult>* results);

  /// Flush + fully compact every shard (primary and index tables).
  Status CompactAll();

  /// Clear transient sticky background errors on every shard.
  Status Resume();

  // ---- Introspection ----

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Which shard a primary key routes to (stable across restarts).
  int ShardFor(const Slice& key) const;

  /// Direct access to one shard's store (tests, stats).
  SecondaryDB* shard(int i) { return shards_[i]->db.get(); }

  /// Serving-layer counters (shard.* routing/merge tickers, serve.*
  /// protocol tickers recorded by Server, ParallelRun fan-out tickers).
  Statistics* statistics() { return frontend_stats_.get(); }

  /// Sum of a ticker over every shard (primary + index tables) plus the
  /// serving layer's own counters.
  uint64_t TotalTicker(Ticker t);

  /// "leveldbpp.stats.json": one JSON object aggregating every shard —
  ///   {"num_shards":N,
  ///    "shards":[{"shard":i,"tickers":{...},"histograms":{...}},...],
  ///    "aggregate":{"tickers":{...},"histograms":{...}}}
  /// Per-shard tickers sum the shard's primary and index tables; per-shard
  /// histograms come from the shard's primary Statistics and include p99.
  /// Aggregate tickers add the serving layer's own counters; aggregate
  /// histograms are the Histogram::Merge of all shards.
  bool GetProperty(const Slice& property, std::string* value);

 private:
  struct Shard {
    std::unique_ptr<SecondaryDB> db;
    // SecondaryDB's index maintenance requires one writer at a time;
    // serializing writers per shard (instead of per store) IS the
    // shard-per-core scaling model.
    std::mutex write_mu;
  };

  explicit ShardedDB(const ShardedDBOptions& options);

  /// Merge per-shard newest-first result lists into the global top-K.
  void MergeTopK(std::vector<std::vector<QueryResult>>* per_shard, size_t k,
                 std::vector<QueryResult>* out);

  ShardedDBOptions options_;
  std::string path_;
  std::unique_ptr<Statistics> frontend_stats_;
  // Shared sequence counter: holds the LAST claimed sequence number. Every
  // shard's primary table claims from it (see Options::shared_sequence), so
  // sequence numbers are globally unique and recency-comparable across
  // shards. DBImpl::Open CAS-maxes recovered LastSequence into it, so after
  // reopen it again dominates every shard.
  std::atomic<uint64_t> global_seq_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_SHARDED_DB_H_
