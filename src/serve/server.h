// Server: thread-per-connection TCP front end over a ShardedDB.
//
// Threading model: one accept thread plus one std::thread per connection,
// all joinable so Stop() can shut the listener, wake every handler with
// shutdown(2), and join — no detached threads, no leaks under TSan.
// Connection handlers deliberately do NOT run on the engine's ParallelRun
// pool (that pool is for bounded query fan-out only; a blocking socket
// read parked on it would starve every query in the process). The pool IS
// used underneath each request when the handler calls ShardedDB::Lookup.
//
// Robustness: frames over ServerOptions::max_frame_bytes are refused from
// the 4-byte header alone; payloads that fail strict decoding get an error
// frame and the connection is dropped (counted as serve.frames.malformed).
// A peer that disappears mid-frame just closes the handler. Malformed
// input can never crash or wedge the server — see serve_protocol_test.

#ifndef LEVELDBPP_SERVE_SERVER_H_
#define LEVELDBPP_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/sharded_db.h"
#include "serve/wire.h"

namespace leveldbpp {

struct ServerOptions {
  /// Address to bind. Loopback by default; the bench driver and tools all
  /// talk over loopback.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via Server::port()).
  int port = 0;

  /// Per-frame payload ceiling (see wire.h).
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;

  /// Where serve.* tickers are recorded. Defaults to the ShardedDB's
  /// serving-layer statistics.
  Statistics* statistics = nullptr;
};

class Server {
 public:
  /// Bind, listen, and start the accept thread. `db` must outlive the
  /// server.
  static Status Start(ShardedDB* db, const ServerOptions& options,
                      std::unique_ptr<Server>* out);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops the server if still running.
  ~Server();

  /// The bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Close the listener, force every open connection's pending read to
  /// fail, and join all threads. Idempotent.
  void Stop();

 private:
  Server(ShardedDB* db, const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  wire::Response Execute(const wire::Request& req);

  ShardedDB* const db_;
  ServerOptions options_;
  Statistics* stats_;  // never null after Start
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;              // guarded by mu_
  std::vector<int> conn_fds_;          // guarded by mu_
  std::vector<std::thread> handlers_;  // guarded by mu_
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_SERVER_H_
