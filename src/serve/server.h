// Server: thread-per-connection TCP front end over a ShardedDB.
//
// Threading model: one accept thread plus one std::thread per connection,
// all joinable so Stop() can shut the listener, wake every handler with
// shutdown(2), and join — no detached threads, no leaks under TSan.
// Connection handlers deliberately do NOT run on the engine's ParallelRun
// pool (that pool is for bounded query fan-out only; a blocking socket
// read parked on it would starve every query in the process). The pool IS
// used underneath each request when the handler calls ShardedDB::Lookup.
//
// Robustness: frames over ServerOptions::max_frame_bytes are refused from
// the 4-byte header alone; payloads that fail strict decoding get an error
// frame and the connection is dropped (counted as serve.frames.malformed).
// A peer that disappears mid-frame just closes the handler. Malformed
// input can never crash or wedge the server — see serve_protocol_test.
//
// Overload protection (see DESIGN.md "Serving robustness"):
//  * Requests carry a relative deadline; it is checked before executing
//    and at shard-fan-out boundaries, answering DEADLINE_EXCEEDED instead
//    of doing work whose answer nobody is waiting for.
//  * Writes are issued with no_stall: a stalled shard's ladder sheds the
//    write as RETRY_LATER with a retry-after hint from the shard's health
//    instead of parking this connection's thread inside the shard.
//  * Admission control: at most max_inflight_requests execute at once and
//    at most max_connections stay open; excess requests get RETRY_LATER,
//    excess connections get one RETRY_LATER frame and a close. PING and
//    HEALTH bypass admission control so the server always answers probes.
//  * Idle connections are closed after idle_timeout_micros of silence.

#ifndef LEVELDBPP_SERVE_SERVER_H_
#define LEVELDBPP_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/sharded_db.h"
#include "serve/wire.h"

namespace leveldbpp {

struct ServerOptions {
  /// Address to bind. Loopback by default; the bench driver and tools all
  /// talk over loopback.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via Server::port()).
  int port = 0;

  /// Per-frame payload ceiling (see wire.h).
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;

  /// Where serve.* tickers are recorded. Defaults to the ShardedDB's
  /// serving-layer statistics.
  Statistics* statistics = nullptr;

  /// Issue writes with WriteControl::no_stall, answering RETRY_LATER (with
  /// a health-derived retry-after hint) when the target shard's stall
  /// ladder is engaged, instead of blocking the connection thread inside
  /// the shard. Clients are expected to retry (the Client's RetryPolicy
  /// honors the hint transparently). Off = writes park like an embedded
  /// caller's would.
  bool shed_stalled_writes = true;

  /// Max requests executing at once across all connections; excess answer
  /// RETRY_LATER without touching the engine. PING / HEALTH are exempt.
  /// 0 = unlimited.
  int max_inflight_requests = 0;

  /// Max simultaneously open connections; excess accepts are answered with
  /// one RETRY_LATER frame and closed (accept-shedding). 0 = unlimited.
  int max_connections = 0;

  /// Close a connection after this much silence (no bytes of a next
  /// request arriving). Applies per recv(2), so any progress resets it.
  /// 0 = never.
  uint64_t idle_timeout_micros = 0;
};

class Server {
 public:
  /// Bind, listen, and start the accept thread. `db` must outlive the
  /// server.
  static Status Start(ShardedDB* db, const ServerOptions& options,
                      std::unique_ptr<Server>* out);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops the server if still running.
  ~Server();

  /// The bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Close the listener, force every open connection's pending read to
  /// fail, and join all threads. Idempotent.
  void Stop();

 private:
  Server(ShardedDB* db, const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// `deadline_micros` is the request's ABSOLUTE deadline on the store
  /// Env's clock (0 = none), anchored when the frame finished arriving.
  wire::Response Execute(const wire::Request& req, uint64_t deadline_micros);

  ShardedDB* const db_;
  ServerOptions options_;
  Statistics* stats_;  // never null after Start
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::atomic<int> inflight_{0};  // requests inside Execute

  std::mutex mu_;
  bool stopping_ = false;              // guarded by mu_
  std::vector<int> conn_fds_;          // guarded by mu_
  std::vector<std::thread> handlers_;  // guarded by mu_
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_SERVER_H_
