// Wire protocol for the LevelDB++ server: length-prefixed binary frames.
//
// Every message on the socket is one frame:
//
//   [4-byte LE payload length][payload]
//
// Request payload:   [op:1] fixed64(deadline_micros) [flags:1]
//                    [per-op fields, length-prefixed varint strings]
//   kPut          lp(key) lp(value)
//   kGet          lp(key)
//   kDelete       lp(key)
//   kLookup       lp(attribute) lp(value) fixed32(k)
//   kRangeLookup  lp(attribute) lp(lo) lp(hi) fixed32(k)
//   kStats        (no fields)
//   kPing         (no fields)
//   kHealth       (no fields)
//   `deadline_micros` is the caller's REMAINING time budget when the frame
//   was sent (relative, so no cross-host clock agreement is needed; 0 = no
//   deadline). The server anchors it to its own clock on arrival and checks
//   it before executing and at shard-fan-out boundaries. `flags` bit 0 =
//   allow degraded (partial) results on LOOKUP / RANGELOOKUP; unknown bits
//   are malformed.
//
// Response payload:  [code:1] fixed64(retry_after_micros) [flags:1]
//                    fixed32(missing_shards) lp(payload) fixed32(nresults)
//                    nresults * [lp(primary_key) fixed64(seq) lp(value)]
//   The result list is non-empty only for LOOKUP / RANGELOOKUP; `payload`
//   carries GET values, STATS / HEALTH JSON, PING's "pong", or the error
//   message. `retry_after_micros` is the server's suggested backoff (only
//   with kRetryLater). Response `flags` bit 0 = degraded: the result list
//   is missing `missing_shards` shards' contributions (only ever set when
//   the request opted in); unknown bits are malformed.
//
// Decoding is strict: a frame whose payload cannot be parsed EXACTLY —
// unknown op, truncated field, or trailing bytes — is malformed, and the
// server answers with an error frame and drops the connection rather than
// resynchronize (a torn frame means the stream framing itself is suspect).
// Frames over kMaxFrameBytes are rejected from the header alone, before any
// payload is read.

#ifndef LEVELDBPP_SERVE_WIRE_H_
#define LEVELDBPP_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/topk.h"
#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {
namespace wire {

/// Hard upper bound on a frame's payload; larger length prefixes are
/// rejected without allocating. 16MB comfortably fits any document plus
/// framing while bounding per-connection memory.
constexpr uint32_t kMaxFrameBytes = 16u << 20;

constexpr size_t kHeaderBytes = 4;

enum Op : uint8_t {
  kPut = 1,
  kGet = 2,
  kDelete = 3,
  kLookup = 4,
  kRangeLookup = 5,
  kStats = 6,
  kPing = 7,
  kHealth = 8,
};

enum StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
  /// The request's deadline expired before the operation completed.
  /// Retrying under the same deadline cannot help.
  kDeadlineExceeded = 3,
  /// The server refused the request to protect itself (admission control,
  /// or a write shed at a stalled shard's ladder). Nothing was applied;
  /// retry after Response::retry_after_micros.
  kRetryLater = 4,
};

/// Request flag bits. Unknown bits are malformed (strict decode).
constexpr uint8_t kReqFlagAllowDegraded = 0x1;

/// Response flag bits. Unknown bits are malformed (strict decode).
constexpr uint8_t kRespFlagDegraded = 0x1;

struct Request {
  Op op = kPing;
  /// Remaining time budget in microseconds at send time; 0 = none.
  uint64_t deadline_micros = 0;
  /// LOOKUP / RANGELOOKUP: accept partial results if some shards are down.
  bool allow_degraded = false;
  std::string key;        // kPut / kGet / kDelete
  std::string value;      // kPut: document. kLookup: attribute value.
  std::string attribute;  // kLookup / kRangeLookup
  std::string lo;         // kRangeLookup
  std::string hi;         // kRangeLookup
  uint32_t k = 0;         // kLookup / kRangeLookup
};

struct Response {
  StatusCode code = kOk;
  /// Suggested backoff before retrying (kRetryLater only; 0 = none).
  uint64_t retry_after_micros = 0;
  /// True when `results` is missing contributions from `missing_shards`
  /// shards (only ever set when the request allowed degraded results).
  bool degraded = false;
  uint32_t missing_shards = 0;
  std::string payload;
  std::vector<QueryResult> results;
};

/// Append a complete frame (header + payload) encoding `req` to *out.
void EncodeRequest(const Request& req, std::string* out);

/// Parse a request frame's payload (header already stripped). Corruption on
/// any malformed input, including trailing bytes.
Status DecodeRequest(const Slice& payload, Request* req);

/// Append a complete frame (header + payload) encoding `resp` to *out.
void EncodeResponse(const Response& resp, std::string* out);

/// Parse a response frame's payload (header already stripped).
Status DecodeResponse(const Slice& payload, Response* resp);

/// Map an engine Status onto a response: OK / NotFound pass through,
/// anything else becomes kError with the status text as payload.
Response FromStatus(const Status& s);

}  // namespace wire
}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_WIRE_H_
