#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/coding.h"

namespace leveldbpp {

namespace {

bool ReadFully(int fd, char* buf, size_t n, bool* timed_out) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      if (timed_out != nullptr &&
          (errno == EAGAIN || errno == EWOULDBLOCK)) {
        *timed_out = true;
      }
      return false;
    }
  }
  return true;
}

bool WriteFully(int fd, const Slice& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void SetRecvTimeout(int fd, int micros) {
  timeval tv;
  tv.tv_sec = micros / 1000000;
  tv.tv_usec = micros % 1000000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Arms SO_RCVTIMEO for one scope and guarantees it is cleared on every
/// exit path (ReadRawResponse has four early returns; before this guard
/// each needed a hand-written reset and missing one would leave the socket
/// permanently timing out).
class RecvTimeoutGuard {
 public:
  RecvTimeoutGuard(int fd, int micros) : fd_(fd), armed_(micros > 0) {
    if (armed_) SetRecvTimeout(fd_, micros);
  }
  ~RecvTimeoutGuard() {
    if (armed_) SetRecvTimeout(fd_, 0);
  }
  RecvTimeoutGuard(const RecvTimeoutGuard&) = delete;
  RecvTimeoutGuard& operator=(const RecvTimeoutGuard&) = delete;

 private:
  const int fd_;
  const bool armed_;
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Dial host:port; on success hands back a connected, TCP_NODELAY socket.
Status OpenSocket(const std::string& host, int port, int* out_fd) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket", std::strerror(errno));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address", host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect", std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Request/response round-trips: don't let Nagle batch tiny frames.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::OK();
}

/// Fold a response's status code back into an engine Status.
Status ToStatus(const wire::Response& resp) {
  switch (resp.code) {
    case wire::kOk:
      return Status::OK();
    case wire::kNotFound:
      return Status::NotFound("remote", resp.payload);
    case wire::kError:
      return Status::IOError("remote error", resp.payload);
    case wire::kDeadlineExceeded:
      return Status::DeadlineExceeded("remote", resp.payload);
    case wire::kRetryLater:
      return Status::Busy("remote overloaded", resp.payload);
  }
  return Status::Corruption("unknown response code");
}

}  // namespace

Status Client::Connect(const std::string& host, int port,
                       std::unique_ptr<Client>* out) {
  out->reset();
  int fd = -1;
  Status s = OpenSocket(host, port, &fd);
  if (!s.ok()) return s;
  out->reset(new Client(fd, host, port));
  return Status::OK();
}

Client::~Client() { ::close(fd_); }

Status Client::Reconnect() {
  ::close(fd_);
  fd_ = -1;
  int fd = -1;
  Status s = OpenSocket(host_, port_, &fd);
  if (!s.ok()) return s;
  fd_ = fd;
  return Status::OK();
}

Status Client::SendRaw(const Slice& bytes) {
  if (fd_ < 0) return Status::IOError("not connected");
  if (!WriteFully(fd_, bytes)) {
    return Status::IOError("send", std::strerror(errno));
  }
  return Status::OK();
}

Status Client::ReadRawResponse(wire::Response* resp, int recv_timeout_micros) {
  if (fd_ < 0) return Status::IOError("not connected");
  RecvTimeoutGuard guard(fd_, recv_timeout_micros);
  bool timed_out = false;
  char header[wire::kHeaderBytes];
  if (!ReadFully(fd_, header, sizeof(header), &timed_out)) {
    return timed_out ? Status::IOError("recv timeout")
                     : Status::IOError("connection closed");
  }
  const uint32_t frame_len = DecodeFixed32(header);
  if (frame_len > wire::kMaxFrameBytes) {
    return Status::Corruption("oversized response frame");
  }
  std::string payload(frame_len, '\0');
  if (frame_len > 0 &&
      !ReadFully(fd_, &payload[0], frame_len, &timed_out)) {
    return timed_out ? Status::IOError("recv timeout")
                     : Status::IOError("connection closed");
  }
  return wire::DecodeResponse(Slice(payload), resp);
}

Status Client::RoundTripOnce(const wire::Request& req, wire::Response* resp) {
  std::string frame;
  wire::EncodeRequest(req, &frame);
  Status s = SendRaw(frame);
  if (!s.ok()) return s;
  return ReadRawResponse(resp);
}

Status Client::RoundTrip(const wire::Request& req_in, wire::Response* resp) {
  wire::Request req = req_in;
  req.allow_degraded = allow_degraded_;
  if (req.deadline_micros == 0) req.deadline_micros = default_deadline_micros_;
  // The wire deadline is relative, so the overall budget is anchored here
  // and every (re)send carries only what remains of it.
  const uint64_t deadline_abs =
      req.deadline_micros != 0 ? NowMicros() + req.deadline_micros : 0;

  uint64_t backoff = policy_.initial_backoff_micros;
  int retries_left = policy_.max_retries;
  for (;;) {
    if (deadline_abs != 0) {
      const uint64_t now = NowMicros();
      if (now >= deadline_abs) {
        return Status::DeadlineExceeded("client deadline exhausted",
                                        "before attempt");
      }
      req.deadline_micros = deadline_abs - now;
    }

    Status s = RoundTripOnce(req, resp);
    if (!s.ok()) {
      // Transport failure: nothing decodable came back. Reconnect and
      // retry — safe because every operation is idempotent (a lost ACK
      // re-applies the same write).
      if (!s.IsIOError() || !policy_.reconnect || retries_left <= 0) return s;
      --retries_left;
      ++retries_performed_;
      Status rc = Reconnect();
      if (!rc.ok()) return rc;
      continue;
    }

    last_degraded_ = resp->degraded;
    last_missing_shards_ = resp->missing_shards;
    last_retry_after_micros_ = resp->retry_after_micros;

    if (resp->code != wire::kRetryLater || retries_left <= 0) {
      // Done: success, a terminal error, or retries exhausted (the caller
      // then sees RETRY_LATER as Status::Busy via ToStatus).
      return Status::OK();
    }

    --retries_left;
    ++retries_performed_;
    uint64_t sleep_us;
    if (policy_.honor_retry_after && resp->retry_after_micros != 0) {
      sleep_us = resp->retry_after_micros;
    } else {
      // Exponential backoff with jitter in [backoff/2, backoff].
      jitter_state_ ^= jitter_state_ << 13;
      jitter_state_ ^= jitter_state_ >> 7;
      jitter_state_ ^= jitter_state_ << 17;
      sleep_us = backoff / 2 + jitter_state_ % (backoff / 2 + 1);
      backoff = std::min<uint64_t>(backoff * 2, policy_.max_backoff_micros);
    }
    if (deadline_abs != 0) {
      const uint64_t now = NowMicros();
      if (now >= deadline_abs) {
        return Status::DeadlineExceeded("client deadline exhausted",
                                        "during backoff");
      }
      sleep_us = std::min<uint64_t>(sleep_us, deadline_abs - now);
    }
    if (sleep_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
  }
}

Status Client::Put(const Slice& key, const Slice& json_value) {
  wire::Request req;
  req.op = wire::kPut;
  req.key = key.ToString();
  req.value = json_value.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  return s.ok() ? ToStatus(resp) : s;
}

Status Client::Get(const Slice& key, std::string* value) {
  wire::Request req;
  req.op = wire::kGet;
  req.key = key.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *value = std::move(resp.payload);
  return s;
}

Status Client::Delete(const Slice& key) {
  wire::Request req;
  req.op = wire::kDelete;
  req.key = key.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  return s.ok() ? ToStatus(resp) : s;
}

Status Client::Lookup(const std::string& attribute, const Slice& value,
                      uint32_t k, std::vector<QueryResult>* results) {
  wire::Request req;
  req.op = wire::kLookup;
  req.attribute = attribute;
  req.value = value.ToString();
  req.k = k;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *results = std::move(resp.results);
  return s;
}

Status Client::RangeLookup(const std::string& attribute, const Slice& lo,
                           const Slice& hi, uint32_t k,
                           std::vector<QueryResult>* results) {
  wire::Request req;
  req.op = wire::kRangeLookup;
  req.attribute = attribute;
  req.lo = lo.ToString();
  req.hi = hi.ToString();
  req.k = k;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *results = std::move(resp.results);
  return s;
}

Status Client::Stats(std::string* json) {
  wire::Request req;
  req.op = wire::kStats;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *json = std::move(resp.payload);
  return s;
}

Status Client::Health(std::string* json) {
  wire::Request req;
  req.op = wire::kHealth;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *json = std::move(resp.payload);
  return s;
}

Status Client::Ping() {
  wire::Request req;
  req.op = wire::kPing;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok() && resp.payload != "pong") {
    return Status::Corruption("unexpected ping payload");
  }
  return s;
}

}  // namespace leveldbpp
