#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace leveldbpp {

namespace {

bool ReadFully(int fd, char* buf, size_t n, bool* timed_out) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      if (timed_out != nullptr &&
          (errno == EAGAIN || errno == EWOULDBLOCK)) {
        *timed_out = true;
      }
      return false;
    }
  }
  return true;
}

bool WriteFully(int fd, const Slice& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void SetRecvTimeout(int fd, int micros) {
  timeval tv;
  tv.tv_sec = micros / 1000000;
  tv.tv_usec = micros % 1000000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Status Client::Connect(const std::string& host, int port,
                       std::unique_ptr<Client>* out) {
  out->reset();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket", std::strerror(errno));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address", host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect", std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Request/response round-trips: don't let Nagle batch tiny frames.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  out->reset(new Client(fd));
  return Status::OK();
}

Client::~Client() { ::close(fd_); }

Status Client::SendRaw(const Slice& bytes) {
  if (!WriteFully(fd_, bytes)) {
    return Status::IOError("send", std::strerror(errno));
  }
  return Status::OK();
}

Status Client::ReadRawResponse(wire::Response* resp, int recv_timeout_micros) {
  if (recv_timeout_micros > 0) SetRecvTimeout(fd_, recv_timeout_micros);
  bool timed_out = false;
  char header[wire::kHeaderBytes];
  if (!ReadFully(fd_, header, sizeof(header), &timed_out)) {
    if (recv_timeout_micros > 0) SetRecvTimeout(fd_, 0);
    return timed_out ? Status::IOError("recv timeout")
                     : Status::IOError("connection closed");
  }
  const uint32_t frame_len = DecodeFixed32(header);
  if (frame_len > wire::kMaxFrameBytes) {
    if (recv_timeout_micros > 0) SetRecvTimeout(fd_, 0);
    return Status::Corruption("oversized response frame");
  }
  std::string payload(frame_len, '\0');
  if (frame_len > 0 &&
      !ReadFully(fd_, &payload[0], frame_len, &timed_out)) {
    if (recv_timeout_micros > 0) SetRecvTimeout(fd_, 0);
    return timed_out ? Status::IOError("recv timeout")
                     : Status::IOError("connection closed");
  }
  if (recv_timeout_micros > 0) SetRecvTimeout(fd_, 0);
  return wire::DecodeResponse(Slice(payload), resp);
}

Status Client::RoundTrip(const wire::Request& req, wire::Response* resp) {
  std::string frame;
  wire::EncodeRequest(req, &frame);
  Status s = SendRaw(frame);
  if (!s.ok()) return s;
  return ReadRawResponse(resp);
}

namespace {

/// Fold a response's status code back into an engine Status.
Status ToStatus(const wire::Response& resp) {
  switch (resp.code) {
    case wire::kOk:
      return Status::OK();
    case wire::kNotFound:
      return Status::NotFound("remote", resp.payload);
    case wire::kError:
      return Status::IOError("remote error", resp.payload);
  }
  return Status::Corruption("unknown response code");
}

}  // namespace

Status Client::Put(const Slice& key, const Slice& json_value) {
  wire::Request req;
  req.op = wire::kPut;
  req.key = key.ToString();
  req.value = json_value.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  return s.ok() ? ToStatus(resp) : s;
}

Status Client::Get(const Slice& key, std::string* value) {
  wire::Request req;
  req.op = wire::kGet;
  req.key = key.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *value = std::move(resp.payload);
  return s;
}

Status Client::Delete(const Slice& key) {
  wire::Request req;
  req.op = wire::kDelete;
  req.key = key.ToString();
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  return s.ok() ? ToStatus(resp) : s;
}

Status Client::Lookup(const std::string& attribute, const Slice& value,
                      uint32_t k, std::vector<QueryResult>* results) {
  wire::Request req;
  req.op = wire::kLookup;
  req.attribute = attribute;
  req.value = value.ToString();
  req.k = k;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *results = std::move(resp.results);
  return s;
}

Status Client::RangeLookup(const std::string& attribute, const Slice& lo,
                           const Slice& hi, uint32_t k,
                           std::vector<QueryResult>* results) {
  wire::Request req;
  req.op = wire::kRangeLookup;
  req.attribute = attribute;
  req.lo = lo.ToString();
  req.hi = hi.ToString();
  req.k = k;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *results = std::move(resp.results);
  return s;
}

Status Client::Stats(std::string* json) {
  wire::Request req;
  req.op = wire::kStats;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok()) *json = std::move(resp.payload);
  return s;
}

Status Client::Ping() {
  wire::Request req;
  req.op = wire::kPing;
  wire::Response resp;
  Status s = RoundTrip(req, &resp);
  if (!s.ok()) return s;
  s = ToStatus(resp);
  if (s.ok() && resp.payload != "pong") {
    return Status::Corruption("unexpected ping payload");
  }
  return s;
}

}  // namespace leveldbpp
