#include "serve/sharded_db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "env/scheduler_env.h"
#include "env/thread_pool.h"
#include "json/json.h"
#include "util/hash.h"

namespace leveldbpp {

namespace {

// Routing seed: fixed forever — changing it would silently re-route every
// key of every existing sharded store.
constexpr uint32_t kShardHashSeed = 0x8b4de1c7;

std::string ShardsFileName(const std::string& path) {
  return path + "/SHARDS";
}

std::string ShardDirName(const std::string& path, int i) {
  return path + "/shard_" + std::to_string(i);
}

Status ReadShardCount(Env* env, const std::string& fname, int* count) {
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  char scratch[64];
  Slice data;
  s = file->Read(sizeof(scratch), &data, scratch);
  if (!s.ok()) return s;
  int parsed = 0;
  size_t i = 0;
  for (; i < data.size() && data[i] >= '0' && data[i] <= '9'; i++) {
    parsed = parsed * 10 + (data[i] - '0');
    if (parsed > 1 << 20) break;  // Absurd; fall through to the check below
  }
  if (i == 0 || parsed <= 0 ||
      (i < data.size() && data[i] != '\n')) {
    return Status::Corruption("malformed SHARDS file", fname);
  }
  *count = parsed;
  return Status::OK();
}

Status WriteShardCount(Env* env, const std::string& fname, int count) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(std::to_string(count) + "\n");
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  return s;
}

json::Value HistogramJson(const Histogram& h) {
  json::Object hj;
  hj["count"] = json::Value(static_cast<int64_t>(h.Count()));
  hj["avg"] = json::Value(h.Average());
  hj["min"] = json::Value(h.Min());
  hj["max"] = json::Value(h.Max());
  hj["p50"] = json::Value(h.Median());
  hj["p99"] = json::Value(h.Percentile(99));
  return json::Value(std::move(hj));
}

}  // namespace

ShardedDB::ShardedDB(const ShardedDBOptions& options)
    : options_(options), frontend_stats_(new Statistics) {}

Status ShardedDB::Open(const ShardedDBOptions& options,
                       const std::string& path,
                       std::unique_ptr<ShardedDB>* dbptr) {
  dbptr->reset();
  if (options.num_shards < 1 || options.num_shards > 256) {
    return Status::InvalidArgument("num_shards must be in [1, 256]");
  }
  if (options.shard.base.statistics != nullptr) {
    return Status::InvalidArgument(
        "ShardedDB manages per-shard statistics; leave base.statistics null");
  }
  if (options.shard.base.shared_sequence != nullptr) {
    return Status::InvalidArgument(
        "ShardedDB manages the shared sequence counter itself");
  }

  Env* env =
      options.shard.base.env != nullptr ? options.shard.base.env : Env::Posix();
  env->CreateDir(path);  // Ignore "already exists"

  // Pin the shard count on first creation; reject mismatched reopens
  // (records would route to the wrong shard).
  const std::string shards_file = ShardsFileName(path);
  if (env->FileExists(shards_file)) {
    int on_disk = 0;
    Status s = ReadShardCount(env, shards_file, &on_disk);
    if (!s.ok()) return s;
    if (on_disk != options.num_shards) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "store has %d shards, options ask for %d", on_disk,
                    options.num_shards);
      return Status::InvalidArgument(msg);
    }
  } else {
    Status s = WriteShardCount(env, shards_file, options.num_shards);
    if (!s.ok()) return s;
    env->SyncDir(path);
  }

  std::unique_ptr<ShardedDB> db(new ShardedDB(options));
  db->path_ = path;
  db->env_ = env;
  for (int i = 0; i < options.num_shards; i++) {
    SecondaryDBOptions shard_opts = options.shard;
    shard_opts.base.shared_sequence = &db->global_seq_;
    Env* shard_env = env;
    if (options.env_factory) {
      shard_env = options.env_factory(i);
    }
    auto shard = std::make_unique<Shard>();
    // Per-shard background isolation (see DedicatedSchedulerEnv): one
    // worker per table sharing the lane, so a parked primary flush can
    // never queue ahead of an index-table flush that writers block on.
    const int lane_threads =
        1 + static_cast<int>(options.shard.indexed_attributes.size());
    shard->scheduler_env.reset(new DedicatedSchedulerEnv(shard_env, lane_threads));
    shard_opts.base.env = shard->scheduler_env.get();
    Status s =
        SecondaryDB::Open(shard_opts, ShardDirName(path, i), &shard->db);
    if (!s.ok()) return s;
    db->shards_.push_back(std::move(shard));
  }
  *dbptr = std::move(db);
  return Status::OK();
}

ShardedDB::~ShardedDB() = default;

int ShardedDB::ShardFor(const Slice& key) const {
  return static_cast<int>(Hash(key.data(), key.size(), kShardHashSeed) %
                          static_cast<uint32_t>(shards_.size()));
}

Status ShardedDB::Put(const Slice& key, const Slice& json_value,
                      const SecondaryDB::WriteControl& ctl) {
  Shard* shard = shards_[ShardFor(key)].get();
  frontend_stats_->Record(kShardWritesRouted);
  std::lock_guard<std::mutex> lock(shard->write_mu);
  return shard->db->Put(key, json_value, ctl);
}

Status ShardedDB::Get(const Slice& key, std::string* value) {
  return shards_[ShardFor(key)]->db->Get(key, value);
}

Status ShardedDB::Delete(const Slice& key,
                         const SecondaryDB::WriteControl& ctl) {
  Shard* shard = shards_[ShardFor(key)].get();
  frontend_stats_->Record(kShardWritesRouted);
  std::lock_guard<std::mutex> lock(shard->write_mu);
  return shard->db->Delete(key, ctl);
}

void ShardedDB::MergeTopK(std::vector<std::vector<QueryResult>>* per_shard,
                          size_t k, std::vector<QueryResult>* out) {
  // Each shard's list is sorted newest-first and sequence numbers are
  // globally unique (one shared counter), so once WouldAdmit rejects a
  // candidate the rest of that shard's list is older still — cut it. The
  // global top-K is a subset of the union of per-shard top-Ks, so no match
  // is lost to the per-shard truncation.
  TopKCollector collector(k);
  for (auto& list : *per_shard) {
    for (auto& r : list) {
      frontend_stats_->Record(kShardMergeCandidates);
      if (!collector.WouldAdmit(r.seq)) {
        frontend_stats_->Record(kShardMergeEarlyStops);
        break;
      }
      collector.Add(std::move(r));
    }
  }
  *out = collector.TakeSortedNewestFirst();
}

Status ShardedDB::FanOutQuery(
    size_t k, const QueryOptions& qopts,
    const std::function<Status(int, std::vector<QueryResult>*)>& shard_query,
    std::vector<QueryResult>* results, QueryMeta* meta) {
  results->clear();
  if (meta != nullptr) *meta = QueryMeta();
  frontend_stats_->Record(kShardLookupFanouts);
  const auto deadline_hit = [&]() {
    return qopts.deadline_micros != 0 &&
           env_->NowMicros() >= qopts.deadline_micros;
  };
  if (deadline_hit()) {
    return Status::DeadlineExceeded("before shard fan-out");
  }
  const int n = num_shards();
  std::vector<std::vector<QueryResult>> per_shard(n);
  std::vector<Status> statuses(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (int i = 0; i < n; i++) {
    tasks.push_back([i, &shard_query, &per_shard, &statuses]() {
      statuses[i] = shard_query(i, &per_shard[i]);
    });
  }
  const int parallelism = options_.fanout_parallelism > 0
                              ? options_.fanout_parallelism
                              : n;
  ParallelRun(&tasks, parallelism, frontend_stats_.get());
  if (deadline_hit()) {
    return Status::DeadlineExceeded("after shard fan-out");
  }

  int missing = 0;
  for (int i = 0; i < n; i++) {
    if (statuses[i].ok()) continue;
    if (!qopts.allow_degraded) {
      return statuses[i];  // Fail-closed: the pre-existing default.
    }
    // Give a transiently-failed shard one chance to heal: Resume() clears
    // a transient sticky background error (it refuses permanent ones like
    // corruption), then the shard's query runs once more inline. Writers
    // may be racing on this shard, so take its write lock like any other
    // recovery path would.
    bool recovered = false;
    if (!deadline_hit()) {
      Status rs;
      {
        std::lock_guard<std::mutex> lock(shards_[i]->write_mu);
        rs = shards_[i]->db->Resume();
      }
      if (rs.ok()) {
        per_shard[i].clear();
        recovered = shard_query(i, &per_shard[i]).ok();
      }
    }
    if (!recovered) {
      per_shard[i].clear();
      missing++;
    }
  }
  if (missing == n) {
    // Nothing answered; an empty "degraded" result would be
    // indistinguishable from a true empty match set.
    for (int i = 0; i < n; i++) {
      if (!statuses[i].ok()) return statuses[i];
    }
  }
  if (missing > 0) {
    frontend_stats_->Record(kLookupDegraded);
    if (meta != nullptr) {
      meta->degraded = true;
      meta->missing_shards = missing;
    }
  }
  MergeTopK(&per_shard, k, results);
  return Status::OK();
}

Status ShardedDB::Lookup(const std::string& attribute, const Slice& value,
                         size_t k, std::vector<QueryResult>* results) {
  return Lookup(attribute, value, k, QueryOptions(), results, nullptr);
}

Status ShardedDB::Lookup(const std::string& attribute, const Slice& value,
                         size_t k, const QueryOptions& qopts,
                         std::vector<QueryResult>* results, QueryMeta* meta) {
  const std::string val = value.ToString();
  return FanOutQuery(
      k, qopts,
      [this, &attribute, &val, k](int i, std::vector<QueryResult>* out) {
        return shards_[i]->db->Lookup(attribute, val, k, out);
      },
      results, meta);
}

Status ShardedDB::RangeLookup(const std::string& attribute, const Slice& lo,
                              const Slice& hi, size_t k,
                              std::vector<QueryResult>* results) {
  return RangeLookup(attribute, lo, hi, k, QueryOptions(), results, nullptr);
}

Status ShardedDB::RangeLookup(const std::string& attribute, const Slice& lo,
                              const Slice& hi, size_t k,
                              const QueryOptions& qopts,
                              std::vector<QueryResult>* results,
                              QueryMeta* meta) {
  const std::string lo_s = lo.ToString();
  const std::string hi_s = hi.ToString();
  return FanOutQuery(
      k, qopts,
      [this, &attribute, &lo_s, &hi_s, k](int i,
                                          std::vector<QueryResult>* out) {
        return shards_[i]->db->RangeLookup(attribute, lo_s, hi_s, k, out);
      },
      results, meta);
}

Status ShardedDB::CompactAll() {
  for (auto& shard : shards_) {
    Status s = shard->db->CompactAll();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedDB::Resume() {
  for (auto& shard : shards_) {
    Status s = shard->db->Resume();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

ShardedDB::ShardHealthInfo ShardedDB::HealthOf(int i) {
  DBImpl::WriteStallState st = shards_[i]->db->GetWriteStallState();
  ShardHealthInfo h;
  h.shard = i;
  h.stall_rung = st.rung;
  h.l0_files = st.l0_files;
  h.imm_queue_depth = st.imm_queue_depth;
  h.imm_queue_capacity = st.imm_queue_capacity;
  h.has_bg_error = !st.bg_error.ok();
  if (h.has_bg_error) h.bg_error = st.bg_error.ToString();
  h.suggested_retry_micros = st.suggested_retry_micros;
  return h;
}

std::vector<ShardedDB::ShardHealthInfo> ShardedDB::ShardHealth() {
  frontend_stats_->Record(kShardHealthChecks);
  std::vector<ShardHealthInfo> out;
  out.reserve(shards_.size());
  for (int i = 0; i < num_shards(); i++) {
    out.push_back(HealthOf(i));
  }
  return out;
}

ShardedDB::ShardHealthInfo ShardedDB::ShardHealthFor(const Slice& key) {
  return HealthOf(ShardFor(key));
}

namespace {

json::Value HealthArray(
    const std::vector<ShardedDB::ShardHealthInfo>& health) {
  json::Array arr;
  for (const ShardedDB::ShardHealthInfo& h : health) {
    json::Object hj;
    hj["shard"] = json::Value(static_cast<int64_t>(h.shard));
    hj["stall_rung"] = json::Value(static_cast<int64_t>(h.stall_rung));
    hj["l0_files"] = json::Value(static_cast<int64_t>(h.l0_files));
    hj["imm_queue_depth"] =
        json::Value(static_cast<int64_t>(h.imm_queue_depth));
    hj["imm_queue_capacity"] =
        json::Value(static_cast<int64_t>(h.imm_queue_capacity));
    hj["bg_error"] = json::Value(h.bg_error);
    hj["suggested_retry_micros"] =
        json::Value(static_cast<int64_t>(h.suggested_retry_micros));
    arr.push_back(json::Value(std::move(hj)));
  }
  return json::Value(std::move(arr));
}

}  // namespace

std::string ShardedDB::HealthJson() {
  return HealthArray(ShardHealth()).ToString();
}

uint64_t ShardedDB::TotalTicker(Ticker t) {
  uint64_t total = frontend_stats_->Get(t);
  for (auto& shard : shards_) {
    total += shard->db->TotalTicker(t);
  }
  return total;
}

bool ShardedDB::GetProperty(const Slice& property, std::string* value) {
  if (property != Slice("leveldbpp.stats.json")) return false;

  json::Array shards_json;
  std::vector<uint64_t> agg_tickers(kTickerCount, 0);
  std::vector<Histogram> agg_hists(kHistogramCount);

  for (int i = 0; i < num_shards(); i++) {
    SecondaryDB* db = shards_[i]->db.get();
    json::Object tickers;
    for (uint32_t t = 0; t < kTickerCount; t++) {
      const uint64_t v = db->TotalTicker(static_cast<Ticker>(t));
      agg_tickers[t] += v;
      tickers[TickerName(static_cast<Ticker>(t))] =
          json::Value(static_cast<int64_t>(v));
    }
    json::Object hists;
    for (uint32_t h = 0; h < kHistogramCount; h++) {
      const Histogram hist =
          db->primary_statistics()->GetHistogram(static_cast<HistogramType>(h));
      agg_hists[h].Merge(hist);
      if (hist.Count() == 0) continue;
      hists[HistogramName(static_cast<HistogramType>(h))] =
          HistogramJson(hist);
    }
    json::Object sj;
    sj["shard"] = json::Value(static_cast<int64_t>(i));
    sj["tickers"] = json::Value(std::move(tickers));
    sj["histograms"] = json::Value(std::move(hists));
    shards_json.push_back(json::Value(std::move(sj)));
  }

  json::Object agg_tj;
  for (uint32_t t = 0; t < kTickerCount; t++) {
    agg_tj[TickerName(static_cast<Ticker>(t))] = json::Value(
        static_cast<int64_t>(agg_tickers[t] +
                             frontend_stats_->Get(static_cast<Ticker>(t))));
  }
  json::Object agg_hj;
  for (uint32_t h = 0; h < kHistogramCount; h++) {
    if (agg_hists[h].Count() == 0) continue;
    agg_hj[HistogramName(static_cast<HistogramType>(h))] =
        HistogramJson(agg_hists[h]);
  }
  json::Object aggregate;
  aggregate["tickers"] = json::Value(std::move(agg_tj));
  aggregate["histograms"] = json::Value(std::move(agg_hj));

  json::Object root;
  root["num_shards"] = json::Value(static_cast<int64_t>(num_shards()));
  root["shards"] = json::Value(std::move(shards_json));
  root["aggregate"] = json::Value(std::move(aggregate));
  root["health"] = HealthArray(ShardHealth());
  *value = json::Value(std::move(root)).ToString();
  return true;
}

}  // namespace leveldbpp
