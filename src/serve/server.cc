#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace leveldbpp {

namespace {

/// Read exactly n bytes. Returns false on EOF / error / shutdown.
bool ReadFully(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Write exactly data.size() bytes. MSG_NOSIGNAL: a peer that closed mid-
/// response must surface as EPIPE, not kill the process with SIGPIPE.
bool WriteFully(int fd, const Slice& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

Server::Server(ShardedDB* db, const ServerOptions& options)
    : db_(db),
      options_(options),
      stats_(options.statistics != nullptr ? options.statistics
                                           : db->statistics()) {}

Status Server::Start(ShardedDB* db, const ServerOptions& options,
                     std::unique_ptr<Server>* out) {
  out->reset();
  std::unique_ptr<Server> server(new Server(db, options));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket", std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address", options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind", std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::IOError("listen", std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = Status::IOError("getsockname", std::strerror(errno));
    ::close(fd);
    return s;
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([srv = server.get()]() {
    srv->AcceptLoop();
  });
  *out = std::move(server);
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake every handler parked in recv(); the fds are closed by their
    // handlers on exit.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (or fatally broken) — exit the loop
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    stats_->Record(kServeConnections);
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd]() { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string in;
  std::string out;
  for (;;) {
    char header[wire::kHeaderBytes];
    if (!ReadFully(fd, header, sizeof(header))) break;
    const uint32_t frame_len = DecodeFixed32(header);
    stats_->Record(kServeBytesRead, sizeof(header));
    if (frame_len > options_.max_frame_bytes) {
      // Refuse from the header alone — never allocate for an absurd
      // length. The stream is now unsynchronized, so drop it.
      stats_->Record(kServeMalformedFrames);
      wire::Response err;
      err.code = wire::kError;
      err.payload = "frame exceeds max_frame_bytes";
      out.clear();
      wire::EncodeResponse(err, &out);
      WriteFully(fd, out);
      break;
    }
    in.resize(frame_len);
    if (frame_len > 0 && !ReadFully(fd, &in[0], frame_len)) break;
    stats_->Record(kServeBytesRead, frame_len);

    wire::Request req;
    Status ds = wire::DecodeRequest(Slice(in), &req);
    if (!ds.ok()) {
      stats_->Record(kServeMalformedFrames);
      wire::Response err;
      err.code = wire::kError;
      err.payload = ds.ToString();
      out.clear();
      wire::EncodeResponse(err, &out);
      WriteFully(fd, out);
      break;
    }

    stats_->Record(kServeRequests);
    const wire::Response resp = Execute(req);
    out.clear();
    wire::EncodeResponse(resp, &out);
    if (!WriteFully(fd, out)) break;
    stats_->Record(kServeBytesWritten, out.size());
  }
  {
    // Deregister BEFORE closing: Stop() shutdowns every fd still listed, and
    // must never touch a closed (possibly reused) descriptor.
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
}

wire::Response Server::Execute(const wire::Request& req) {
  wire::Response resp;
  switch (req.op) {
    case wire::kPut:
      resp = wire::FromStatus(db_->Put(req.key, req.value));
      break;
    case wire::kGet: {
      std::string value;
      Status s = db_->Get(req.key, &value);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.payload = std::move(value);
      break;
    }
    case wire::kDelete:
      resp = wire::FromStatus(db_->Delete(req.key));
      break;
    case wire::kLookup: {
      std::vector<QueryResult> results;
      Status s = db_->Lookup(req.attribute, req.value, req.k, &results);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.results = std::move(results);
      break;
    }
    case wire::kRangeLookup: {
      std::vector<QueryResult> results;
      Status s = db_->RangeLookup(req.attribute, req.lo, req.hi, req.k,
                                  &results);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.results = std::move(results);
      break;
    }
    case wire::kStats: {
      std::string json;
      if (db_->GetProperty("leveldbpp.stats.json", &json)) {
        resp.payload = std::move(json);
      } else {
        resp.code = wire::kError;
        resp.payload = "stats property unavailable";
      }
      break;
    }
    case wire::kPing:
      resp.payload = "pong";
      break;
  }
  return resp;
}

}  // namespace leveldbpp
