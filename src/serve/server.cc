#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace leveldbpp {

namespace {

/// Read exactly n bytes. Returns false on EOF / error / shutdown.
bool ReadFully(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Write exactly data.size() bytes. MSG_NOSIGNAL: a peer that closed mid-
/// response must surface as EPIPE, not kill the process with SIGPIPE.
/// (On platforms without MSG_NOSIGNAL — macOS — SO_NOSIGPIPE on the socket
/// provides the same guarantee; see DisableSigpipe.)
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif
bool WriteFully(int fd, const Slice& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Belt-and-braces against SIGPIPE on write-to-closed-socket: every send
/// already passes MSG_NOSIGNAL where the platform has it; where it does
/// not, mark the socket itself.
void DisableSigpipe(int fd) {
#ifdef SO_NOSIGPIPE
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

/// How long a shed connection/request should wait before trying again when
/// no shard-health signal applies (connection limit, in-flight limit).
constexpr uint64_t kAdmissionRetryMicros = 20000;

}  // namespace

Server::Server(ShardedDB* db, const ServerOptions& options)
    : db_(db),
      options_(options),
      stats_(options.statistics != nullptr ? options.statistics
                                           : db->statistics()) {}

Status Server::Start(ShardedDB* db, const ServerOptions& options,
                     std::unique_ptr<Server>* out) {
  out->reset();
  std::unique_ptr<Server> server(new Server(db, options));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket", std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address", options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind", std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::IOError("listen", std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status s = Status::IOError("getsockname", std::strerror(errno));
    ::close(fd);
    return s;
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->accept_thread_ = std::thread([srv = server.get()]() {
    srv->AcceptLoop();
  });
  *out = std::move(server);
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake every handler parked in recv(); the fds are closed by their
    // handlers on exit.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (or fatally broken) — exit the loop
    }
    DisableSigpipe(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    if (options_.max_connections > 0 &&
        conn_fds_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Accept-shedding: answer with one RETRY_LATER frame and close,
      // instead of letting an unbounded connection population grow a
      // thread each. The write is best-effort (the peer may already be
      // gone) and never blocks long: the frame fits any socket buffer.
      stats_->Record(kServeRequestsShed);
      stats_->Record(kServeRetriesSuggested);
      wire::Response shed;
      shed.code = wire::kRetryLater;
      shed.retry_after_micros = kAdmissionRetryMicros;
      shed.payload = "server at connection limit";
      std::string out;
      wire::EncodeResponse(shed, &out);
      WriteFully(fd, out);
      ::close(fd);
      continue;
    }
    if (options_.idle_timeout_micros > 0) {
      timeval tv;
      tv.tv_sec = static_cast<time_t>(options_.idle_timeout_micros / 1000000);
      tv.tv_usec =
          static_cast<suseconds_t>(options_.idle_timeout_micros % 1000000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    stats_->Record(kServeConnections);
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd]() { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string in;
  std::string out;
  for (;;) {
    char header[wire::kHeaderBytes];
    if (!ReadFully(fd, header, sizeof(header))) break;
    const uint32_t frame_len = DecodeFixed32(header);
    stats_->Record(kServeBytesRead, sizeof(header));
    if (frame_len > options_.max_frame_bytes) {
      // Refuse from the header alone — never allocate for an absurd
      // length. The stream is now unsynchronized, so drop it.
      stats_->Record(kServeMalformedFrames);
      wire::Response err;
      err.code = wire::kError;
      err.payload = "frame exceeds max_frame_bytes";
      out.clear();
      wire::EncodeResponse(err, &out);
      WriteFully(fd, out);
      break;
    }
    in.resize(frame_len);
    if (frame_len > 0 && !ReadFully(fd, &in[0], frame_len)) break;
    stats_->Record(kServeBytesRead, frame_len);

    wire::Request req;
    Status ds = wire::DecodeRequest(Slice(in), &req);
    if (!ds.ok()) {
      stats_->Record(kServeMalformedFrames);
      wire::Response err;
      err.code = wire::kError;
      err.payload = ds.ToString();
      out.clear();
      wire::EncodeResponse(err, &out);
      WriteFully(fd, out);
      break;
    }

    stats_->Record(kServeRequests);
    // Anchor the relative deadline to the store's clock the moment the
    // frame finished arriving; everything downstream compares absolutes.
    const uint64_t deadline_abs =
        req.deadline_micros != 0
            ? db_->env()->NowMicros() + req.deadline_micros
            : 0;
    wire::Response resp;
    const bool probe = req.op == wire::kPing || req.op == wire::kHealth;
    if (!probe && options_.max_inflight_requests > 0 &&
        inflight_.load(std::memory_order_relaxed) >=
            options_.max_inflight_requests) {
      // Admission control: refuse before touching the engine. Probes are
      // exempt — an operator must be able to ask "are you alive / which
      // shard is sick" precisely when the server is saturated.
      stats_->Record(kServeRequestsShed);
      stats_->Record(kServeRetriesSuggested);
      resp.code = wire::kRetryLater;
      resp.retry_after_micros = kAdmissionRetryMicros;
      resp.payload = "server at in-flight request limit";
    } else {
      inflight_.fetch_add(1, std::memory_order_relaxed);
      resp = Execute(req, deadline_abs);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    out.clear();
    wire::EncodeResponse(resp, &out);
    if (!WriteFully(fd, out)) break;
    stats_->Record(kServeBytesWritten, out.size());
  }
  {
    // Deregister BEFORE closing: Stop() shutdowns every fd still listed, and
    // must never touch a closed (possibly reused) descriptor.
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
  }
  ::close(fd);
}

wire::Response Server::Execute(const wire::Request& req,
                               uint64_t deadline_micros) {
  wire::Response resp;
  // Check the deadline before doing any work: under a deadline storm the
  // cheapest request is the one never executed. Fan-out queries re-check
  // at shard boundaries via QueryOptions; single-shard ops are short
  // enough that this entry check is the only one.
  if (deadline_micros != 0 && req.op != wire::kPing &&
      req.op != wire::kHealth &&
      db_->env()->NowMicros() >= deadline_micros) {
    stats_->Record(kServeDeadlineExceeded);
    return wire::FromStatus(
        Status::DeadlineExceeded("expired before execution"));
  }

  SecondaryDB::WriteControl wctl;
  wctl.no_stall = options_.shed_stalled_writes;

  ShardedDB::QueryOptions qopts;
  qopts.deadline_micros = deadline_micros;
  qopts.allow_degraded = req.allow_degraded;
  ShardedDB::QueryMeta meta;

  switch (req.op) {
    case wire::kPut:
      resp = wire::FromStatus(db_->Put(req.key, req.value, wctl));
      break;
    case wire::kGet: {
      std::string value;
      Status s = db_->Get(req.key, &value);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.payload = std::move(value);
      break;
    }
    case wire::kDelete:
      resp = wire::FromStatus(db_->Delete(req.key, wctl));
      break;
    case wire::kLookup: {
      std::vector<QueryResult> results;
      Status s = db_->Lookup(req.attribute, req.value, req.k, qopts,
                             &results, &meta);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.results = std::move(results);
      break;
    }
    case wire::kRangeLookup: {
      std::vector<QueryResult> results;
      Status s = db_->RangeLookup(req.attribute, req.lo, req.hi, req.k, qopts,
                                  &results, &meta);
      resp = wire::FromStatus(s);
      if (s.ok()) resp.results = std::move(results);
      break;
    }
    case wire::kStats: {
      std::string json;
      if (db_->GetProperty("leveldbpp.stats.json", &json)) {
        resp.payload = std::move(json);
      } else {
        resp.code = wire::kError;
        resp.payload = "stats property unavailable";
      }
      break;
    }
    case wire::kHealth:
      resp.payload = db_->HealthJson();
      break;
    case wire::kPing:
      resp.payload = "pong";
      break;
  }

  if (meta.degraded) {
    resp.degraded = true;
    resp.missing_shards = static_cast<uint32_t>(meta.missing_shards);
  }
  if (resp.code == wire::kRetryLater) {
    // A shed write: derive the retry-after hint from the target shard's
    // ladder state so clients back off proportionally to how sick it is.
    stats_->Record(kServeRequestsShed);
    if (req.op == wire::kPut || req.op == wire::kDelete) {
      const ShardedDB::ShardHealthInfo h = db_->ShardHealthFor(req.key);
      resp.retry_after_micros = h.suggested_retry_micros != 0
                                    ? h.suggested_retry_micros
                                    : kAdmissionRetryMicros;
    } else if (resp.retry_after_micros == 0) {
      resp.retry_after_micros = kAdmissionRetryMicros;
    }
    stats_->Record(kServeRetriesSuggested);
  } else if (resp.code == wire::kDeadlineExceeded) {
    stats_->Record(kServeDeadlineExceeded);
  }
  return resp;
}

}  // namespace leveldbpp
