// Client: blocking single-connection client for the LevelDB++ server.
//
// One TCP connection, one outstanding request at a time (the protocol is
// strict request/response). Not thread-safe: the bench driver opens one
// Client per worker thread. SendRaw/ReadRawResponse expose the framing for
// protocol-robustness tests (torn frames, fuzzed payloads).

#ifndef LEVELDBPP_SERVE_CLIENT_H_
#define LEVELDBPP_SERVE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace leveldbpp {

class Client {
 public:
  static Status Connect(const std::string& host, int port,
                        std::unique_ptr<Client>* out);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // ---- Table 1 operations over the wire ----

  Status Put(const Slice& key, const Slice& json_value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Lookup(const std::string& attribute, const Slice& value, uint32_t k,
                std::vector<QueryResult>* results);
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, uint32_t k,
                     std::vector<QueryResult>* results);

  /// Server-side aggregated stats JSON (ShardedDB::GetProperty).
  Status Stats(std::string* json);

  Status Ping();

  // ---- Raw access for protocol tests ----

  /// Write arbitrary bytes to the socket as-is (no framing added).
  Status SendRaw(const Slice& bytes);

  /// Read one response frame. With `recv_timeout_micros` > 0 the read gives
  /// up after that long (IOError "timeout") instead of blocking forever —
  /// fuzz tests use this so a dropped reply can't wedge the test.
  Status ReadRawResponse(wire::Response* resp, int recv_timeout_micros = 0);

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status RoundTrip(const wire::Request& req, wire::Response* resp);

  int fd_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_CLIENT_H_
