// Client: blocking single-connection client for the LevelDB++ server.
//
// One TCP connection, one outstanding request at a time (the protocol is
// strict request/response). Not thread-safe: the bench driver opens one
// Client per worker thread. SendRaw/ReadRawResponse expose the framing for
// protocol-robustness tests (torn frames, fuzzed payloads).
//
// Resilience: every operation runs under a RetryPolicy (on by default).
// RETRY_LATER responses back off — honoring the server's retry-after hint
// when present — and retry; transport errors transparently reconnect and
// retry. All Table 1 operations are idempotent (PUT/DELETE are last-writer
// -wins, reads are reads), so retrying after a lost ACK is safe. Retries
// never exceed the operation deadline: the remaining budget shrinks on
// every attempt and DEADLINE_EXCEEDED is never retried.

#ifndef LEVELDBPP_SERVE_CLIENT_H_
#define LEVELDBPP_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace leveldbpp {

/// How a Client copes with RETRY_LATER answers and broken connections.
struct RetryPolicy {
  /// Retries after the initial attempt; 0 disables retrying entirely.
  int max_retries = 5;

  /// First backoff before retrying; doubles per retry (with jitter in
  /// [backoff/2, backoff]) up to max_backoff_micros.
  uint64_t initial_backoff_micros = 2000;
  uint64_t max_backoff_micros = 100000;

  /// Sleep the server's Response::retry_after_micros hint (when nonzero)
  /// instead of the exponential schedule — the server derives it from the
  /// target shard's actual stall-ladder state.
  bool honor_retry_after = true;

  /// On a transport error (peer died, connection reset), re-dial the
  /// server and retry instead of failing the operation.
  bool reconnect = true;
};

class Client {
 public:
  static Status Connect(const std::string& host, int port,
                        std::unique_ptr<Client>* out);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Replace the retry policy (e.g. {.max_retries = 0} for tests that
  /// want to see RETRY_LATER surface as Status::Busy).
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }

  /// Deadline budget attached to every request (0 = none, the default).
  /// Relative — the server anchors it to its own clock on arrival — and
  /// also caps the client-side retry loop.
  void set_default_deadline_micros(uint64_t micros) {
    default_deadline_micros_ = micros;
  }

  /// Ask the server for partial LOOKUP/RANGELOOKUP results when some
  /// shards have failed (default off = fail-closed). Check last_degraded()
  /// after a lookup to see whether the answer is partial.
  void set_allow_degraded(bool allow) { allow_degraded_ = allow; }

  // ---- What the last completed round-trip reported ----

  bool last_degraded() const { return last_degraded_; }
  uint32_t last_missing_shards() const { return last_missing_shards_; }
  uint64_t last_retry_after_micros() const { return last_retry_after_micros_; }
  /// Retries this client has performed over its lifetime (both
  /// RETRY_LATER backoffs and reconnects).
  uint64_t retries_performed() const { return retries_performed_; }

  // ---- Table 1 operations over the wire ----

  Status Put(const Slice& key, const Slice& json_value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Lookup(const std::string& attribute, const Slice& value, uint32_t k,
                std::vector<QueryResult>* results);
  Status RangeLookup(const std::string& attribute, const Slice& lo,
                     const Slice& hi, uint32_t k,
                     std::vector<QueryResult>* results);

  /// Server-side aggregated stats JSON (ShardedDB::GetProperty).
  Status Stats(std::string* json);

  /// Per-shard health snapshot as a JSON array (ShardedDB::HealthJson).
  /// Exempt from server admission control: works while the server sheds.
  Status Health(std::string* json);

  Status Ping();

  // ---- Raw access for protocol tests ----

  /// Write arbitrary bytes to the socket as-is (no framing added).
  Status SendRaw(const Slice& bytes);

  /// Read one response frame. With `recv_timeout_micros` > 0 the read gives
  /// up after that long (IOError "timeout") instead of blocking forever —
  /// fuzz tests use this so a dropped reply can't wedge the test.
  Status ReadRawResponse(wire::Response* resp, int recv_timeout_micros = 0);

 private:
  Client(int fd, std::string host, int port)
      : fd_(fd), host_(std::move(host)), port_(port) {}

  /// Close the current socket and dial host_:port_ again.
  Status Reconnect();

  /// One attempt: frame, send, read one response. No retries.
  Status RoundTripOnce(const wire::Request& req, wire::Response* resp);

  /// Full retry loop per the policy; fills last_*() from the final
  /// response. Returns non-OK only for transport/decode failures or an
  /// exhausted deadline — protocol-level failures come back as resp->code.
  Status RoundTrip(const wire::Request& req, wire::Response* resp);

  int fd_;
  std::string host_;
  int port_;
  RetryPolicy policy_;
  uint64_t default_deadline_micros_ = 0;
  bool allow_degraded_ = false;
  bool last_degraded_ = false;
  uint32_t last_missing_shards_ = 0;
  uint64_t last_retry_after_micros_ = 0;
  uint64_t retries_performed_ = 0;
  uint64_t jitter_state_ = 0x9e3779b97f4a7c15ull;  // xorshift state
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_SERVE_CLIENT_H_
