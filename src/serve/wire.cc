#include "serve/wire.h"

#include "util/coding.h"

namespace leveldbpp {
namespace wire {

namespace {

Status Malformed(const char* what) {
  return Status::Corruption("malformed frame", what);
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetString(Slice* input, std::string* out) {
  Slice s;
  if (!GetLengthPrefixedSlice(input, &s)) return false;
  out->assign(s.data(), s.size());
  return true;
}

/// Prepend the frame header once the payload length is known: `start` is
/// out->size() before the payload was appended.
void FinishFrame(std::string* out, size_t start) {
  const size_t payload = out->size() - start;
  char header[kHeaderBytes];
  EncodeFixed32(header, static_cast<uint32_t>(payload));
  out->insert(start, header, kHeaderBytes);
}

}  // namespace

void EncodeRequest(const Request& req, std::string* out) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(req.op));
  PutFixed64(out, req.deadline_micros);
  out->push_back(
      static_cast<char>(req.allow_degraded ? kReqFlagAllowDegraded : 0));
  switch (req.op) {
    case kPut:
      PutLengthPrefixedSlice(out, req.key);
      PutLengthPrefixedSlice(out, req.value);
      break;
    case kGet:
    case kDelete:
      PutLengthPrefixedSlice(out, req.key);
      break;
    case kLookup:
      PutLengthPrefixedSlice(out, req.attribute);
      PutLengthPrefixedSlice(out, req.value);
      PutFixed32(out, req.k);
      break;
    case kRangeLookup:
      PutLengthPrefixedSlice(out, req.attribute);
      PutLengthPrefixedSlice(out, req.lo);
      PutLengthPrefixedSlice(out, req.hi);
      PutFixed32(out, req.k);
      break;
    case kStats:
    case kPing:
    case kHealth:
      break;
  }
  FinishFrame(out, start);
}

Status DecodeRequest(const Slice& payload, Request* req) {
  Slice in = payload;
  if (in.empty()) return Malformed("empty request");
  const uint8_t op = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  *req = Request();
  uint64_t deadline = 0;
  if (!GetFixed64(&in, &deadline)) return Malformed("truncated deadline");
  req->deadline_micros = deadline;
  if (in.empty()) return Malformed("truncated flags");
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  if ((flags & ~kReqFlagAllowDegraded) != 0) {
    return Malformed("unknown request flags");
  }
  req->allow_degraded = (flags & kReqFlagAllowDegraded) != 0;
  switch (op) {
    case kPut:
      req->op = kPut;
      if (!GetString(&in, &req->key) || !GetString(&in, &req->value)) {
        return Malformed("truncated PUT");
      }
      break;
    case kGet:
    case kDelete:
      req->op = static_cast<Op>(op);
      if (!GetString(&in, &req->key)) return Malformed("truncated key op");
      break;
    case kLookup:
      req->op = kLookup;
      if (!GetString(&in, &req->attribute) || !GetString(&in, &req->value) ||
          !GetFixed32(&in, &req->k)) {
        return Malformed("truncated LOOKUP");
      }
      break;
    case kRangeLookup:
      req->op = kRangeLookup;
      if (!GetString(&in, &req->attribute) || !GetString(&in, &req->lo) ||
          !GetString(&in, &req->hi) || !GetFixed32(&in, &req->k)) {
        return Malformed("truncated RANGELOOKUP");
      }
      break;
    case kStats:
    case kPing:
    case kHealth:
      req->op = static_cast<Op>(op);
      break;
    default:
      return Malformed("unknown op");
  }
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

void EncodeResponse(const Response& resp, std::string* out) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(resp.code));
  PutFixed64(out, resp.retry_after_micros);
  out->push_back(static_cast<char>(resp.degraded ? kRespFlagDegraded : 0));
  PutFixed32(out, resp.missing_shards);
  PutLengthPrefixedSlice(out, resp.payload);
  PutFixed32(out, static_cast<uint32_t>(resp.results.size()));
  for (const QueryResult& r : resp.results) {
    PutLengthPrefixedSlice(out, r.primary_key);
    PutFixed64(out, r.seq);
    PutLengthPrefixedSlice(out, r.value);
  }
  FinishFrame(out, start);
}

Status DecodeResponse(const Slice& payload, Response* resp) {
  Slice in = payload;
  if (in.empty()) return Malformed("empty response");
  const uint8_t code = static_cast<uint8_t>(in[0]);
  if (code > kRetryLater) return Malformed("unknown status code");
  in.remove_prefix(1);
  *resp = Response();
  resp->code = static_cast<StatusCode>(code);
  if (!GetFixed64(&in, &resp->retry_after_micros)) {
    return Malformed("truncated retry-after");
  }
  if (in.empty()) return Malformed("truncated flags");
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.remove_prefix(1);
  if ((flags & ~kRespFlagDegraded) != 0) {
    return Malformed("unknown response flags");
  }
  resp->degraded = (flags & kRespFlagDegraded) != 0;
  uint32_t n = 0;
  if (!GetFixed32(&in, &resp->missing_shards) ||
      !GetString(&in, &resp->payload) || !GetFixed32(&in, &n)) {
    return Malformed("truncated response");
  }
  // Each result costs at least 1 + 8 + 1 bytes on the wire; a count beyond
  // that bound cannot be satisfied by the remaining payload.
  if (n > in.size() / 10 + 1) return Malformed("absurd result count");
  resp->results.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    QueryResult r;
    if (!GetString(&in, &r.primary_key) || !GetFixed64(&in, &r.seq) ||
        !GetString(&in, &r.value)) {
      return Malformed("truncated result");
    }
    resp->results.push_back(std::move(r));
  }
  if (!in.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

Response FromStatus(const Status& s) {
  Response resp;
  if (s.ok()) {
    resp.code = kOk;
  } else if (s.IsNotFound()) {
    resp.code = kNotFound;
    resp.payload = s.ToString();
  } else if (s.IsBusy()) {
    resp.code = kRetryLater;
    resp.payload = s.ToString();
  } else if (s.IsDeadlineExceeded()) {
    resp.code = kDeadlineExceeded;
    resp.payload = s.ToString();
  } else {
    resp.code = kError;
    resp.payload = s.ToString();
  }
  return resp;
}

}  // namespace wire
}  // namespace leveldbpp
