// Log format shared by writer and reader (LevelDB WAL format):
// 32KB blocks, each record = checksum(4) + length(2) + type(1) + payload.
// Records spanning blocks are split into FIRST/MIDDLE/LAST fragments.

#ifndef LEVELDBPP_WAL_LOG_FORMAT_H_
#define LEVELDBPP_WAL_LOG_FORMAT_H_

namespace leveldbpp {
namespace log {

enum RecordType {
  // Zero is reserved for preallocated files.
  kZeroType = 0,
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static const int kMaxRecordType = kLastType;

static const int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
static const int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace leveldbpp

#endif  // LEVELDBPP_WAL_LOG_FORMAT_H_
