// Reads back records written by log::Writer, verifying CRCs and reassembling
// fragmented records. Tolerates a truncated tail (crash mid-write).

#ifndef LEVELDBPP_WAL_LOG_READER_H_
#define LEVELDBPP_WAL_LOG_READER_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace leveldbpp {
namespace log {

class Reader {
 public:
  /// Interface for reporting corruption.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    /// Some corruption was detected; `bytes` is the approximate number of
    /// bytes dropped.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// Create a reader consuming from *file (not owned). If reporter is
  /// non-null, corruption is reported to it. If checksum is true, verify
  /// CRCs when available.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  ~Reader();

  /// Read the next record into *record. Returns true if read successfully,
  /// false on EOF. *record remains valid only until the next mutation of
  /// *scratch or the next ReadRecord call.
  bool ReadRecord(Slice* record, std::string* scratch);

  /// Bytes silently skipped at the end of the file as a torn tail: a
  /// truncated header, a physical record cut short of its length field, or
  /// complete leading fragments of a logical record whose last fragment
  /// never made it out. These are crash artifacts, not corruption, so they
  /// are not reported to the Reporter — this counter is how recovery
  /// observes them (ticker recovery.torn.tail.bytes).
  uint64_t TornTailBytes() const { return torn_tail_bytes_; }

 private:
  // Extend record types with the following special values.
  enum {
    kEof = kMaxRecordType + 1,
    kBadRecord = kMaxRecordType + 2,
  };

  // Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize
  uint64_t torn_tail_bytes_ = 0;
};

}  // namespace log
}  // namespace leveldbpp

#endif  // LEVELDBPP_WAL_LOG_READER_H_
