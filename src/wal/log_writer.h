// Appends length-prefixed, CRC-protected records to a WritableFile.
// Used for both the write-ahead log and the MANIFEST.

#ifndef LEVELDBPP_WAL_LOG_WRITER_H_
#define LEVELDBPP_WAL_LOG_WRITER_H_

#include <cstdint>

#include "env/env.h"
#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace leveldbpp {
namespace log {

class Writer {
 public:
  /// Create a writer that appends to *dest (must remain live while this
  /// Writer is in use; not owned).
  explicit Writer(WritableFile* dest);

  /// Create a writer appending to *dest which already has `dest_length`
  /// bytes (used when reopening a log).
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block

  // crc32c values for all supported record types, pre-computed to reduce
  // the cost of computing the crc of the type stored in the header.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace leveldbpp

#endif  // LEVELDBPP_WAL_LOG_WRITER_H_
