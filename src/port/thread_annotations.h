// Clang thread-safety-analysis annotations. With -Wthread-safety (enabled on
// clang builds) the compiler statically checks that GUARDED_BY members are
// only touched with their mutex held. On other compilers the macros expand
// to nothing.

#ifndef LEVELDBPP_PORT_THREAD_ANNOTATIONS_H_
#define LEVELDBPP_PORT_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define GUARDED_BY(x) THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_AFTER(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define ACQUIRED_BEFORE(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define EXCLUSIVE_LOCKS_REQUIRED(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(exclusive_locks_required(__VA_ARGS__))

#define SHARED_LOCKS_REQUIRED(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(shared_locks_required(__VA_ARGS__))

#define LOCKS_EXCLUDED(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define LOCK_RETURNED(x) THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define LOCKABLE THREAD_ANNOTATION_ATTRIBUTE__(lockable)

#define SCOPED_LOCKABLE THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define EXCLUSIVE_LOCK_FUNCTION(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(exclusive_lock_function(__VA_ARGS__))

#define SHARED_LOCK_FUNCTION(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(shared_lock_function(__VA_ARGS__))

#define EXCLUSIVE_TRYLOCK_FUNCTION(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(exclusive_trylock_function(__VA_ARGS__))

#define SHARED_TRYLOCK_FUNCTION(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(shared_trylock_function(__VA_ARGS__))

#define UNLOCK_FUNCTION(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(unlock_function(__VA_ARGS__))

#define NO_THREAD_SAFETY_ANALYSIS \
  THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#define ASSERT_EXCLUSIVE_LOCK(...) \
  THREAD_ANNOTATION_ATTRIBUTE__(assert_exclusive_lock(__VA_ARGS__))

#endif  // LEVELDBPP_PORT_THREAD_ANNOTATIONS_H_
