// port: the engine's synchronization layer (LevelDB-style thin wrappers over
// <mutex> / <condition_variable> carrying clang thread-safety annotations).
//
// DBImpl's concurrency protocol is expressed entirely in these two types:
// one port::Mutex protects all mutable DB state, and port::CondVar is used
// for the group-commit writer queue and the background-work stall ladder.

#ifndef LEVELDBPP_PORT_PORT_H_
#define LEVELDBPP_PORT_PORT_H_

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "port/thread_annotations.h"

namespace leveldbpp {
namespace port {

class CondVar;

/// Wraps std::mutex; annotated so -Wthread-safety can check GUARDED_BY
/// members statically.
class LOCKABLE Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EXCLUSIVE_LOCK_FUNCTION() { mu_.lock(); }
  void Unlock() UNLOCK_FUNCTION() { mu_.unlock(); }
  void AssertHeld() ASSERT_EXCLUSIVE_LOCK() {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Condition variable bound to a Mutex at construction (LevelDB idiom: the
/// writer queue parks each waiter on its own CondVar over the DB mutex).
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) { assert(mu != nullptr); }
  ~CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// REQUIRES: the bound mutex is held by the caller.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }
  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

}  // namespace port
}  // namespace leveldbpp

#endif  // LEVELDBPP_PORT_PORT_H_
