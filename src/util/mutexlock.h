// MutexLock: RAII helper holding a port::Mutex for a scope.

#ifndef LEVELDBPP_UTIL_MUTEXLOCK_H_
#define LEVELDBPP_UTIL_MUTEXLOCK_H_

#include "port/port.h"
#include "port/thread_annotations.h"

namespace leveldbpp {

class SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(port::Mutex* mu) EXCLUSIVE_LOCK_FUNCTION(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() UNLOCK_FUNCTION() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  port::Mutex* const mu_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_MUTEXLOCK_H_
