// Status: error propagation without exceptions (LevelDB idiom).
//
// All fallible engine operations return a Status. The zero-cost common case
// (OK) is represented by an empty state pointer.

#ifndef LEVELDBPP_UTIL_STATUS_H_
#define LEVELDBPP_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "util/slice.h"

namespace leveldbpp {

class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  /// Transient refusal: the resource exists and is healthy enough to answer,
  /// but cannot absorb this operation right now (write-stall ladder with
  /// `WriteOptions::no_stall`, server admission control). Retrying after a
  /// backoff is expected to succeed; nothing was applied.
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }
  /// The caller's deadline expired before the operation completed. Unlike
  /// Busy there is no point retrying under the same deadline.
  static Status DeadlineExceeded(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kDeadlineExceeded, msg, msg2);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsNotFound() const { return code() == kNotFound; }
  bool IsCorruption() const { return code() == kCorruption; }
  bool IsNotSupported() const { return code() == kNotSupported; }
  bool IsInvalidArgument() const { return code() == kInvalidArgument; }
  bool IsIOError() const { return code() == kIOError; }
  bool IsBusy() const { return code() == kBusy; }
  bool IsDeadlineExceeded() const { return code() == kDeadlineExceeded; }

  /// Human-readable representation, e.g. "NotFound: key missing".
  std::string ToString() const {
    if (state_ == nullptr) return "OK";
    const char* type = "";
    switch (code()) {
      case kOk:
        type = "OK";
        break;
      case kNotFound:
        type = "NotFound: ";
        break;
      case kCorruption:
        type = "Corruption: ";
        break;
      case kNotSupported:
        type = "Not implemented: ";
        break;
      case kInvalidArgument:
        type = "Invalid argument: ";
        break;
      case kIOError:
        type = "IO error: ";
        break;
      case kBusy:
        type = "Busy: ";
        break;
      case kDeadlineExceeded:
        type = "Deadline exceeded: ";
        break;
    }
    return std::string(type) + state_->msg;
  }

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kDeadlineExceeded = 7,
  };

  struct State {
    Code code;
    std::string msg;
  };

  Status(Code code, const Slice& msg, const Slice& msg2)
      : state_(std::make_shared<State>()) {
    state_->code = code;
    state_->msg = msg.ToString();
    if (!msg2.empty()) {
      state_->msg += ": ";
      state_->msg += msg2.ToString();
    }
  }

  Code code() const { return state_ == nullptr ? kOk : state_->code; }

  // shared_ptr keeps Status copyable and cheap to move; error paths are cold.
  std::shared_ptr<State> state_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_STATUS_H_
