// PerfContext: thread-local per-operation cost accumulator.
//
// The global Statistics tickers attribute I/O by *differencing snapshots*
// around an operation window, which only works when nothing else runs
// concurrently. A PerfContext instead mirrors, on the calling thread, every
// ticker the thread records into ANY Statistics object (primary DB and each
// standalone index own separate ones), plus a handful of named counters and
// stage timers the flat registry has no slot for. Reset it before an
// operation, read it after, and the paper's Figure 13-15 I/O attribution
// falls out of a single query.
//
// Lifecycle: recording is off by default (one predictable null-check per
// Record). EnablePerfContext() routes this thread's recording into the
// thread's own PerfContext instance (GetPerfContext()). ParallelRun
// redirects each pool task into a task-local context via
// SwapThreadPerfContext and merges the results back into the calling
// thread's context, so fan-out queries still produce one per-query total.

#ifndef LEVELDBPP_UTIL_PERF_CONTEXT_H_
#define LEVELDBPP_UTIL_PERF_CONTEXT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "env/statistics.h"

namespace leveldbpp {

struct PerfContext {
  /// Mirror of every Ticker recorded by this thread while the context was
  /// active, index-aligned with the Ticker enum.
  std::array<uint64_t, kTickerCount> tickers{};

  // Named counters with no ticker equivalent. All are placed so that their
  // value is independent of read_parallelism (counted where work is
  // *discovered*, not where it is pruned).
  uint64_t posting_entries_scanned = 0;   // posting-list entries parsed
  uint64_t candidate_records_scanned = 0; // records visited in scans
  uint64_t candidates_validated = 0;      // primary-DB validation attempts
  uint64_t candidates_valid = 0;          // ... that confirmed the attribute
  uint64_t sortedview_seeks = 0;          // sorted-view segment binary searches
  uint64_t sortedview_steps = 0;          // selector bytes replayed/advanced

  // Stage timers (microseconds, steady clock). Stages overlap: a secondary
  // lookup's validate_micros is a slice of its lookup_micros.
  uint64_t get_micros = 0;       // DBImpl::Get (public entry only)
  uint64_t multiget_micros = 0;  // DBImpl::MultiGetWithMeta
  uint64_t lookup_micros = 0;    // SecondaryDB::Lookup/RangeLookup
  uint64_t validate_micros = 0;  // FetchAndValidate[Batch]

  void Reset();
  void MergeFrom(const PerfContext& other);

  uint64_t TickerValue(Ticker t) const { return tickers[t]; }

  /// Multi-line dump; zero-valued entries skipped unless include_zeros.
  std::string ToString(bool include_zeros = false) const;
  /// JSON object: {"tickers": {...}, "counters": {...}, "timers": {...}}.
  std::string ToJson() const;

  struct Field {
    const char* name;
    uint64_t PerfContext::*member;
  };
  /// Canonical registry of the named counters, in declaration order.
  /// docs/METRICS.md is checked against this list by stats_doc_test.
  static const std::vector<Field>& CounterFields();
  /// Canonical registry of the stage timers, in declaration order.
  static const std::vector<Field>& TimerFields();
};

namespace perf_internal {
/// This thread's active context, or null when perf tracking is off.
/// tls_tickers (env/statistics.h) always points at its tickers array.
extern thread_local PerfContext* tls_context;
}  // namespace perf_internal

/// The calling thread's own PerfContext instance. Valid whether or not
/// recording is enabled; Enable/DisablePerfContext toggle recording into it.
PerfContext* GetPerfContext();

/// Route this thread's Statistics recording into GetPerfContext().
void EnablePerfContext();
/// Stop per-thread recording (the default state).
void DisablePerfContext();

inline PerfContext* CurrentThreadPerfContext() {
  return perf_internal::tls_context;
}

/// Redirect this thread's recording to ctx (null = off); returns the
/// previous target. ParallelRun uses this to capture pool-task costs.
PerfContext* SwapThreadPerfContext(PerfContext* ctx);

/// Add to a named PerfContext counter iff recording is enabled.
inline void PerfCounterAdd(uint64_t PerfContext::*member, uint64_t amount) {
  PerfContext* pc = perf_internal::tls_context;
  if (pc != nullptr) pc->*member += amount;
}

/// RAII stage timer: adds elapsed steady-clock microseconds to a PerfContext
/// timer field at scope exit. Captures the context at construction, so the
/// sample lands in the context that was active when the stage BEGAN even if
/// ParallelRun swaps the thread's context mid-stage. No clock calls are made
/// when recording is disabled.
class ScopedPerfTimer {
 public:
  explicit ScopedPerfTimer(uint64_t PerfContext::*member)
      : ctx_(perf_internal::tls_context), member_(member) {
    if (ctx_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPerfTimer() {
    if (ctx_ != nullptr) {
      ctx_->*member_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }
  ScopedPerfTimer(const ScopedPerfTimer&) = delete;
  ScopedPerfTimer& operator=(const ScopedPerfTimer&) = delete;

 private:
  PerfContext* ctx_;
  uint64_t PerfContext::*member_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_PERF_CONTEXT_H_
