#include "util/crc32c.h"

#include <array>

namespace leveldbpp {
namespace crc32c {

namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
// The table is generated at static-init time; slicing-by-4 keeps throughput
// reasonable without platform-specific intrinsics.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    const uint32_t poly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Tables& tab = GetTables();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;

  // Process 4 bytes at a time (slicing-by-4).
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[3][crc & 0xFF] ^ tab.t[2][(crc >> 8) & 0xFF] ^
          tab.t[1][(crc >> 16) & 0xFF] ^ tab.t[0][(crc >> 24) & 0xFF];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p) & 0xFF];
    p++;
    n--;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace leveldbpp
