// Arena: bump-pointer allocator backing the memtable skiplist.
//
// Allocation is append-only; all memory is released when the Arena dies.
// This makes skiplist nodes cheap and gives an exact accounting of memtable
// memory usage (which drives flush triggers).

#ifndef LEVELDBPP_UTIL_ARENA_H_
#define LEVELDBPP_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace leveldbpp {

class Arena {
 public:
  Arena() : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), memory_usage_(0) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Return a pointer to a newly allocated memory block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// Allocate with normal pointer alignment (suitable for node structs).
  char* AllocateAligned(size_t bytes);

  /// Total memory footprint of data allocated by the arena (approximate,
  /// includes slack in partially used blocks).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_ARENA_H_
