// Binary encoding primitives: little-endian fixed ints and varints.
//
// These match the LevelDB on-disk formats so SSTable/WAL layouts in this
// engine are structurally equivalent to the originals.

#ifndef LEVELDBPP_UTIL_CODING_H_
#define LEVELDBPP_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace leveldbpp {

// ---- Fixed-width little-endian encoding ----

inline void EncodeFixed32(char* dst, uint32_t value) {
  uint8_t* buf = reinterpret_cast<uint8_t*>(dst);
  buf[0] = static_cast<uint8_t>(value);
  buf[1] = static_cast<uint8_t>(value >> 8);
  buf[2] = static_cast<uint8_t>(value >> 16);
  buf[3] = static_cast<uint8_t>(value >> 24);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  uint8_t* buf = reinterpret_cast<uint8_t*>(dst);
  for (int i = 0; i < 8; i++) {
    buf[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline uint32_t DecodeFixed32(const char* ptr) {
  const uint8_t* buf = reinterpret_cast<const uint8_t*>(ptr);
  return (static_cast<uint32_t>(buf[0])) |
         (static_cast<uint32_t>(buf[1]) << 8) |
         (static_cast<uint32_t>(buf[2]) << 16) |
         (static_cast<uint32_t>(buf[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* ptr) {
  const uint8_t* buf = reinterpret_cast<const uint8_t*>(ptr);
  uint64_t result = 0;
  for (int i = 7; i >= 0; i--) {
    result = (result << 8) | buf[i];
  }
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// ---- Varint encoding (LEB128, max 5/10 bytes) ----

char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Append varint32(len) followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parse a varint32 from [p, limit). Returns pointer past the varint, or
/// nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Consume a varint from the front of `input`. Returns false on failure.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Consume a length-prefixed slice from the front of `input`.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes EncodeVarint64 would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_CODING_H_
