// Comparator abstraction over user keys, plus the default bytewise
// implementation. The separator/short-successor hooks let the table builder
// shrink index-block keys exactly as LevelDB does.

#ifndef LEVELDBPP_UTIL_COMPARATOR_H_
#define LEVELDBPP_UTIL_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace leveldbpp {

class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Three-way comparison: <0 iff a < b, 0 iff a == b, >0 iff a > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// Name used to sanity-check that a DB is reopened with the comparator it
  /// was created with.
  virtual const char* Name() const = 0;

  /// If *start < limit, change *start to a short string in [start, limit).
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// Change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Singleton lexicographic bytewise comparator.
const Comparator* BytewiseComparator();

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_COMPARATOR_H_
