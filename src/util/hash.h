// Murmur-style byte hashing used by bloom filters and the block cache.

#ifndef LEVELDBPP_UTIL_HASH_H_
#define LEVELDBPP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace leveldbpp {

/// Hash `data[0,n)` with the given seed (LevelDB's Murmur-like hash).
uint32_t Hash(const char* data, size_t n, uint32_t seed);

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_HASH_H_
