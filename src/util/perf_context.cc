#include "util/perf_context.h"

#include <cstdio>

#include "json/json.h"

namespace leveldbpp {

namespace perf_internal {
thread_local PerfContext* tls_context = nullptr;
thread_local uint64_t* tls_tickers = nullptr;
}  // namespace perf_internal

PerfContext* GetPerfContext() {
  static thread_local PerfContext ctx;
  return &ctx;
}

PerfContext* SwapThreadPerfContext(PerfContext* ctx) {
  PerfContext* prev = perf_internal::tls_context;
  perf_internal::tls_context = ctx;
  perf_internal::tls_tickers = ctx != nullptr ? ctx->tickers.data() : nullptr;
  return prev;
}

void EnablePerfContext() { SwapThreadPerfContext(GetPerfContext()); }

void DisablePerfContext() { SwapThreadPerfContext(nullptr); }

const std::vector<PerfContext::Field>& PerfContext::CounterFields() {
  static const std::vector<Field> kFields = {
      {"perf.posting.entries.scanned", &PerfContext::posting_entries_scanned},
      {"perf.candidate.records.scanned",
       &PerfContext::candidate_records_scanned},
      {"perf.candidates.validated", &PerfContext::candidates_validated},
      {"perf.candidates.valid", &PerfContext::candidates_valid},
      {"perf.sortedview.seeks", &PerfContext::sortedview_seeks},
      {"perf.sortedview.steps", &PerfContext::sortedview_steps},
  };
  return kFields;
}

const std::vector<PerfContext::Field>& PerfContext::TimerFields() {
  static const std::vector<Field> kFields = {
      {"perf.get.micros", &PerfContext::get_micros},
      {"perf.multiget.micros", &PerfContext::multiget_micros},
      {"perf.lookup.micros", &PerfContext::lookup_micros},
      {"perf.validate.micros", &PerfContext::validate_micros},
  };
  return kFields;
}

void PerfContext::Reset() { *this = PerfContext(); }

void PerfContext::MergeFrom(const PerfContext& other) {
  for (uint32_t i = 0; i < kTickerCount; i++) tickers[i] += other.tickers[i];
  for (const Field& f : CounterFields()) this->*f.member += other.*f.member;
  for (const Field& f : TimerFields()) this->*f.member += other.*f.member;
}

std::string PerfContext::ToString(bool include_zeros) const {
  std::string out;
  char buf[128];
  auto append = [&](const char* name, uint64_t v) {
    if (v == 0 && !include_zeros) return;
    std::snprintf(buf, sizeof(buf), "%-32s %12llu\n", name,
                  static_cast<unsigned long long>(v));
    out.append(buf);
  };
  for (uint32_t i = 0; i < kTickerCount; i++) {
    append(TickerName(static_cast<Ticker>(i)), tickers[i]);
  }
  for (const Field& f : CounterFields()) append(f.name, this->*f.member);
  for (const Field& f : TimerFields()) append(f.name, this->*f.member);
  return out;
}

std::string PerfContext::ToJson() const {
  json::Object tickers_obj;
  for (uint32_t i = 0; i < kTickerCount; i++) {
    tickers_obj[TickerName(static_cast<Ticker>(i))] =
        json::Value(static_cast<int64_t>(tickers[i]));
  }
  json::Object counters_obj;
  for (const Field& f : CounterFields()) {
    counters_obj[f.name] = json::Value(static_cast<int64_t>(this->*f.member));
  }
  json::Object timers_obj;
  for (const Field& f : TimerFields()) {
    timers_obj[f.name] = json::Value(static_cast<int64_t>(this->*f.member));
  }
  json::Object root;
  root["tickers"] = json::Value(std::move(tickers_obj));
  root["counters"] = json::Value(std::move(counters_obj));
  root["timers"] = json::Value(std::move(timers_obj));
  return json::Value(std::move(root)).ToString();
}

}  // namespace leveldbpp
