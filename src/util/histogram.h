// Latency histogram with the quantile machinery the paper's box-and-whisker
// plots need (p25 / p50 / p75 and 1.5-IQR whiskers).
//
// Values are recorded into geometric buckets (LevelDB-style) so memory stays
// constant regardless of sample count; quantiles are interpolated within
// buckets.

#ifndef LEVELDBPP_UTIL_HISTOGRAM_H_
#define LEVELDBPP_UTIL_HISTOGRAM_H_

#include <string>
#include <vector>

namespace leveldbpp {

class Histogram {
 public:
  Histogram() { Clear(); }

  void Clear();
  /// Record one sample (units are caller-defined; benches use microseconds).
  void Add(double value);
  /// Merge another histogram into this one.
  void Merge(const Histogram& other);

  double Median() const;
  /// Interpolated quantile, p in [0, 100].
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return num_ == 0.0 ? 0 : min_; }
  double Max() const { return max_; }
  double Sum() const { return sum_; }
  uint64_t Count() const { return static_cast<uint64_t>(num_); }

  /// Box-plot summary: {lower whisker, p25, median, p75, upper whisker},
  /// whiskers clamped to the most extreme sample within 1.5 IQR of the box
  /// (matching the paper's figure definition).
  struct BoxPlot {
    double lo_whisker, q1, median, q3, hi_whisker;
  };
  BoxPlot GetBoxPlot() const;

  std::string ToString() const;

 private:
  static const int kNumBuckets = 156;
  static const double kBucketLimit[kNumBuckets];

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  double buckets_[kNumBuckets];
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_HISTOGRAM_H_
