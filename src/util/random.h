// Deterministic PRNGs used by tests, the skiplist, and the workload
// generator. Two generators are provided:
//  * Random   — LevelDB's fast 32-bit Lehmer generator (skiplist heights).
//  * Random64 — xorshift* 64-bit generator for workload sampling.

#ifndef LEVELDBPP_UTIL_RANDOM_H_
#define LEVELDBPP_UTIL_RANDOM_H_

#include <cstdint>

namespace leveldbpp {

class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    // Avoid bad seeds.
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    // seed_ = (seed_ * A) % M, computed without overflow.
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) {
      seed_ -= M;
    }
    return seed_;
  }

  /// Uniform in [0, n-1]. Requires n > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  /// True with probability 1/n.
  bool OneIn(int n) { return (Next() % n) == 0; }

  /// Skewed: pick base uniformly in [0, max_log], then uniform in
  /// [0, 2^base - 1]. Favors small numbers with an occasional large one.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

class Random64 {
 public:
  explicit Random64(uint64_t s) : state_(s ? s : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, n-1]. Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;  // 2^53
  }

 private:
  uint64_t state_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_UTIL_RANDOM_H_
