// Iterator: bidirectional iteration over a sorted key/value sequence.
//
// The stack was forward-only through PR 7 (none of the paper's five
// operations needs reverse scans); the public snapshot-iterator API added
// with the range-query engine exposes Prev()/SeekToLast(), so every layer
// (block, two-level, merging, memtable, sorted-view) implements the full
// bidirectional contract and the differential iterator-model harness
// exercises both directions.

#ifndef LEVELDBPP_TABLE_ITERATOR_H_
#define LEVELDBPP_TABLE_ITERATOR_H_

#include <functional>

#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

class Iterator {
 public:
  Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;
  virtual ~Iterator();

  /// True iff the iterator is positioned at a valid entry.
  virtual bool Valid() const = 0;

  /// Position at the first key in the source.
  virtual void SeekToFirst() = 0;

  /// Position at the last key in the source.
  virtual void SeekToLast() = 0;

  /// Position at the first key that is at or past `target`.
  virtual void Seek(const Slice& target) = 0;

  /// Advance to the next entry. REQUIRES: Valid().
  virtual void Next() = 0;

  /// Move back to the previous entry; becomes invalid before the first
  /// entry. REQUIRES: Valid().
  virtual void Prev() = 0;

  /// Key at the current entry. REQUIRES: Valid().
  virtual Slice key() const = 0;

  /// Value at the current entry. REQUIRES: Valid().
  virtual Slice value() const = 0;

  /// Non-OK iff an error was encountered.
  virtual Status status() const = 0;

  /// Register a cleanup to run when the iterator is destroyed (used to pin
  /// blocks/cache handles for the iterator's lifetime).
  void RegisterCleanup(std::function<void()> fn);

 private:
  struct CleanupNode {
    std::function<void()> fn;
    CleanupNode* next;
  };
  CleanupNode* cleanup_head_ = nullptr;
};

/// An iterator over an empty collection, optionally carrying an error.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_ITERATOR_H_
