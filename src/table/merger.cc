#include "table/merger.h"

#include <memory>
#include <vector>

#include "table/iterator.h"
#include "util/comparator.h"

namespace leveldbpp {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), current_(nullptr) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  ~MergingIterator() override = default;

  bool Valid() const override { return (current_ != nullptr); }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
  }

  void Next() override {
    assert(Valid());
    current_->Next();
    FindSmallest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    Status status;
    for (const auto& child : children_) {
      status = child->status();
      if (!status.ok()) {
        break;
      }
    }
    return status;
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    // Scan in order so earlier children win ties (newer sources first).
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  // A heap would be asymptotically better for large n; level counts here
  // are small (<= ~12 children) and linear scan is simpler and cache
  // friendly.
  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  } else if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace leveldbpp
