#include "table/merger.h"

#include <memory>
#include <vector>

#include "table/iterator.h"
#include "util/comparator.h"

namespace leveldbpp {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), current_(nullptr), direction_(kForward) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  ~MergingIterator() override = default;

  bool Valid() const override { return (current_ != nullptr); }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    direction_ = kForward;
    FindSmallest();
  }

  void SeekToLast() override {
    for (auto& child : children_) {
      child->SeekToLast();
    }
    direction_ = kReverse;
    FindLargest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    direction_ = kForward;
    FindSmallest();
  }

  void Next() override {
    assert(Valid());

    // Ensure that all children are positioned after key(). If we are moving
    // in the forward direction, this is already true for all non-current_
    // children since current_ is the smallest child and key() == current_
    // ->key(). Otherwise, we explicitly position the others.
    if (direction_ != kForward) {
      for (auto& ptr : children_) {
        Iterator* child = ptr.get();
        if (child != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }

    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());

    // Ensure that all children are positioned before key(); mirror of Next.
    if (direction_ != kReverse) {
      for (auto& ptr : children_) {
        Iterator* child = ptr.get();
        if (child != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Child is at first entry >= key(). Step back one.
            child->Prev();
          } else {
            // Child has no entries >= key(). Position at last entry.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }

    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    Status status;
    for (const auto& child : children_) {
      status = child->status();
      if (!status.ok()) {
        break;
      }
    }
    return status;
  }

 private:
  // Which direction is the iterator moving? Children are positioned just
  // after key() when kForward and just before it when kReverse; a direction
  // change re-seeks the non-current children (see Next/Prev).
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    // Scan in order so earlier children win ties (newer sources first).
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    // Reverse scan so earlier children win ties (newer sources first).
    for (size_t i = children_.size(); i-- > 0;) {
      Iterator* child = children_[i].get();
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare(child->key(), largest->key()) >= 0) {
          largest = child;
        }
      }
    }
    current_ = largest;
  }

  // A heap would be asymptotically better for large n; level counts here
  // are small (<= ~12 children) and linear scan is simpler and cache
  // friendly.
  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  } else if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace leveldbpp
