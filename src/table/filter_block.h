// Filter meta blocks: one filter per data block.
//
// The paper embeds, for every data block of an SSTable, one bloom filter per
// indexed secondary attribute (plus the standard primary-key filter). Unlike
// stock LevelDB (which builds a filter per 2KB of file offset), filters here
// are aligned 1:1 with data blocks, which is both what the paper describes
// and what the embedded LOOKUP scan needs ("check each data block's filter").
//
// Block layout:
//   [filter 0] [filter 1] ... [filter n-1]
//   [offset of filter 0 : fixed32] ... [offset of filter n-1] [end offset]
//   [n : fixed32]

#ifndef LEVELDBPP_TABLE_FILTER_BLOCK_H_
#define LEVELDBPP_TABLE_FILTER_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/filter_policy.h"
#include "util/slice.h"

namespace leveldbpp {

class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  /// Add a key belonging to the data block currently being built.
  void AddKey(const Slice& key);

  /// Called when the current data block is flushed: seals the pending keys
  /// into the filter for that block (possibly an empty filter).
  void FinishBlock();

  /// Seal and return the filter block contents (valid until the builder is
  /// destroyed).
  Slice Finish();

 private:
  const FilterPolicy* policy_;
  std::string keys_;             // Flattened key contents
  std::vector<size_t> start_;    // Starting index in keys_ of each key
  std::string result_;           // Filter data computed so far
  std::vector<Slice> tmp_keys_;  // policy_->CreateFilter() argument
  std::vector<uint32_t> filter_offsets_;
};

class FilterBlockReader {
 public:
  /// REQUIRES: `contents` and *policy stay live while *this is in use.
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);

  /// Number of per-block filters in this meta block.
  size_t NumFilters() const { return num_; }

  /// May data block `block_index` contain `key`? True on any parse problem
  /// (fail open).
  bool KeyMayMatch(size_t block_index, const Slice& key) const;

 private:
  const FilterPolicy* policy_;
  const char* data_;    // Pointer to filter data (at block-start)
  const char* offset_;  // Pointer to beginning of offset array
  size_t num_;          // Number of filters
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_FILTER_BLOCK_H_
