// BlockBuilder: builds one data/index block with restart-point prefix
// compression (shared key prefixes, restart array trailer).

#ifndef LEVELDBPP_TABLE_BLOCK_BUILDER_H_
#define LEVELDBPP_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace leveldbpp {

class Comparator;

class BlockBuilder {
 public:
  /// `restart_interval`: number of keys between restart points (16 for data
  /// blocks, 1 for index blocks so binary search lands exactly).
  explicit BlockBuilder(int restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Reset the contents as if the BlockBuilder was just constructed.
  void Reset();

  /// REQUIRES: key is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  /// Finish building the block and return a slice that refers to the block
  /// contents. Valid until Reset().
  Slice Finish();

  /// Estimate of the current (uncompressed) size of the block.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;               // Destination buffer
  std::vector<uint32_t> restarts_;   // Restart points
  int counter_;                      // Number of entries since restart
  bool finished_;                    // Has Finish() been called?
  std::string last_key_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_BLOCK_BUILDER_H_
