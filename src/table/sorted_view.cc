#include "table/sorted_view.h"

#include <cassert>

#include "db/dbformat.h"
#include "env/env.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/perf_context.h"

namespace leveldbpp {

namespace {

constexpr uint64_t kSortedViewMagic = 0x78b1ed52a5764f10ull;

}  // namespace

Status BuildSortedView(const InternalKeyComparator* icmp,
                       const std::vector<Iterator*>& runs, SortedView* view) {
  const size_t run_count = runs.size();
  if (run_count == 0 || run_count > kSortedViewMaxRuns) {
    return Status::InvalidArgument("sorted view: bad run count");
  }
  if (view->segment_size == 0) {
    return Status::InvalidArgument("sorted view: zero segment size");
  }
  for (Iterator* run : runs) run->SeekToFirst();

  std::vector<uint64_t> consumed(run_count, 0);
  uint64_t n = 0;
  while (true) {
    // Runs are few (one per level), so a linear min scan beats maintaining
    // a heap for this one-shot sweep. Ties cannot happen: internal keys
    // are globally unique across the tree.
    int best = -1;
    for (size_t i = 0; i < run_count; i++) {
      if (!runs[i]->Valid()) continue;
      if (best < 0 ||
          icmp->Compare(runs[i]->key(), runs[best]->key()) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    if (n % view->segment_size == 0) {
      view->anchors.push_back(runs[best]->key().ToString());
      view->cursors.push_back(consumed);
    }
    view->selectors.push_back(static_cast<char>(best));
    consumed[best]++;
    n++;
    runs[best]->Next();
  }
  for (Iterator* run : runs) {
    if (!run->status().ok()) return run->status();
  }
  view->entry_count = n;
  return Status::OK();
}

Status WriteSortedViewFile(Env* env, const std::string& fname,
                           const SortedView& view) {
  assert(view.levels.size() == view.level_files.size());
  assert(view.anchors.size() == view.cursors.size());
  assert(view.selectors.size() == view.entry_count);

  std::string buf;
  PutFixed64(&buf, kSortedViewMagic);
  PutVarint64(&buf, view.number);
  PutVarint32(&buf, view.segment_size);
  PutVarint32(&buf, static_cast<uint32_t>(view.levels.size()));
  for (size_t i = 0; i < view.levels.size(); i++) {
    PutVarint32(&buf, static_cast<uint32_t>(view.levels[i]));
    PutVarint32(&buf, static_cast<uint32_t>(view.level_files[i].size()));
    for (uint64_t number : view.level_files[i]) {
      PutVarint64(&buf, number);
    }
  }
  PutVarint64(&buf, view.entry_count);
  PutVarint32(&buf, static_cast<uint32_t>(view.anchors.size()));
  for (size_t k = 0; k < view.anchors.size(); k++) {
    PutLengthPrefixedSlice(&buf, Slice(view.anchors[k]));
    for (uint64_t cursor : view.cursors[k]) {
      PutVarint64(&buf, cursor);
    }
  }
  buf.append(view.selectors);
  PutFixed32(&buf, crc32c::Mask(crc32c::Value(buf.data(), buf.size())));

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(Slice(buf));
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) env->RemoveFile(fname);
  return s;
}

Status ReadSortedViewFile(Env* env, const std::string& fname, uint64_t number,
                          SortedView* view) {
  uint64_t size = 0;
  Status s = env->GetFileSize(fname, &size);
  if (!s.ok()) return s;
  if (size < 12) {  // magic + crc at minimum
    return Status::Corruption("sorted view: file too small", fname);
  }
  std::unique_ptr<SequentialFile> file;
  s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  std::string buf;
  buf.resize(size);
  size_t off = 0;
  while (off < size) {
    Slice chunk;
    s = file->Read(size - off, &chunk, &buf[off]);
    if (!s.ok()) return s;
    if (chunk.empty()) {
      return Status::Corruption("sorted view: truncated read", fname);
    }
    if (chunk.data() != &buf[off]) {
      memcpy(&buf[off], chunk.data(), chunk.size());
    }
    off += chunk.size();
  }

  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(buf.data() + size - 4));
  if (crc32c::Value(buf.data(), size - 4) != expected) {
    return Status::Corruption("sorted view: checksum mismatch", fname);
  }
  if (DecodeFixed64(buf.data()) != kSortedViewMagic) {
    return Status::Corruption("sorted view: bad magic", fname);
  }

  Slice input(buf.data() + 8, size - 12);
  uint64_t stored_number = 0;
  uint32_t segment_size = 0, run_count = 0;
  if (!GetVarint64(&input, &stored_number) ||
      !GetVarint32(&input, &segment_size) ||
      !GetVarint32(&input, &run_count)) {
    return Status::Corruption("sorted view: bad header", fname);
  }
  if (stored_number != number || segment_size == 0 || run_count == 0 ||
      run_count > kSortedViewMaxRuns) {
    return Status::Corruption("sorted view: header mismatch", fname);
  }
  view->number = stored_number;
  view->segment_size = segment_size;
  view->levels.clear();
  view->level_files.clear();
  for (uint32_t i = 0; i < run_count; i++) {
    uint32_t level = 0, file_count = 0;
    if (!GetVarint32(&input, &level) || !GetVarint32(&input, &file_count)) {
      return Status::Corruption("sorted view: bad run header", fname);
    }
    std::vector<uint64_t> numbers(file_count);
    for (uint32_t f = 0; f < file_count; f++) {
      if (!GetVarint64(&input, &numbers[f])) {
        return Status::Corruption("sorted view: bad file list", fname);
      }
    }
    view->levels.push_back(static_cast<int>(level));
    view->level_files.push_back(std::move(numbers));
  }
  uint32_t segment_count = 0;
  if (!GetVarint64(&input, &view->entry_count) ||
      !GetVarint32(&input, &segment_count)) {
    return Status::Corruption("sorted view: bad entry count", fname);
  }
  const uint64_t want_segments =
      (view->entry_count + segment_size - 1) / segment_size;
  if (segment_count != want_segments) {
    return Status::Corruption("sorted view: segment count mismatch", fname);
  }
  view->anchors.clear();
  view->cursors.clear();
  view->anchors.reserve(segment_count);
  view->cursors.reserve(segment_count);
  for (uint32_t k = 0; k < segment_count; k++) {
    Slice anchor;
    if (!GetLengthPrefixedSlice(&input, &anchor)) {
      return Status::Corruption("sorted view: bad anchor", fname);
    }
    std::vector<uint64_t> cursor(run_count);
    for (uint32_t r = 0; r < run_count; r++) {
      if (!GetVarint64(&input, &cursor[r])) {
        return Status::Corruption("sorted view: bad cursor", fname);
      }
    }
    view->anchors.push_back(anchor.ToString());
    view->cursors.push_back(std::move(cursor));
  }
  if (input.size() != view->entry_count) {
    return Status::Corruption("sorted view: selector size mismatch", fname);
  }
  view->selectors.assign(input.data(), input.size());
  for (char c : view->selectors) {
    if (static_cast<uint8_t>(c) >= run_count) {
      return Status::Corruption("sorted view: selector out of range", fname);
    }
  }
  return Status::OK();
}

namespace {

// Replays the persisted merge order. State is one number: the global
// merged position pos_. Invariant while valid: every run is positioned on
// the next entry it will supply (exhausted runs are past-the-end), so the
// current entry is just runs_[selector[pos_]]'s current entry.
class SortedViewIterator : public Iterator {
 public:
  SortedViewIterator(const InternalKeyComparator* icmp,
                     std::shared_ptr<const SortedView> view,
                     std::vector<Iterator*> runs)
      : icmp_(icmp), view_(std::move(view)) {
    runs_.reserve(runs.size());
    for (Iterator* run : runs) runs_.emplace_back(run);
    assert(runs_.size() == view_->levels.size());
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    if (view_->entry_count == 0) {
      valid_ = false;
      return;
    }
    for (auto& run : runs_) run->SeekToFirst();
    pos_ = 0;
    SyncValid();
  }

  void SeekToLast() override {
    const uint64_t n = view_->entry_count;
    if (n == 0) {
      valid_ = false;
      return;
    }
    ReanchorAt(SegmentOf(n - 1));
    ReplayTo(n - 1);
  }

  void Seek(const Slice& target) override {
    const uint64_t n = view_->entry_count;
    if (n == 0) {
      valid_ = false;
      return;
    }
    // Largest segment whose anchor is <= target (segment 0 when target
    // precedes every anchor): the first entry >= target lies within it or
    // just past its end, so the replay below is bounded by segment_size.
    size_t left = 0, right = view_->anchors.size();
    while (left < right) {
      const size_t mid = left + (right - left) / 2;
      if (icmp_->Compare(Slice(view_->anchors[mid]), target) <= 0) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    ReanchorAt(left == 0 ? 0 : left - 1);
    uint64_t steps = 0;
    while (valid_ && icmp_->Compare(CurrentRun()->key(), target) < 0) {
      Step();
      steps++;
    }
    PerfCounterAdd(&PerfContext::sortedview_steps, steps);
  }

  void Next() override {
    assert(valid_);
    Step();
    PerfCounterAdd(&PerfContext::sortedview_steps, 1);
  }

  void Prev() override {
    assert(valid_);
    if (pos_ == 0) {
      valid_ = false;
      return;
    }
    const uint64_t target = pos_ - 1;
    ReanchorAt(SegmentOf(target));
    ReplayTo(target);
  }

  Slice key() const override {
    assert(valid_);
    return CurrentRun()->key();
  }

  Slice value() const override {
    assert(valid_);
    return CurrentRun()->value();
  }

  Status status() const override {
    for (const auto& run : runs_) {
      if (!run->status().ok()) return run->status();
    }
    return Status::OK();
  }

 private:
  size_t SegmentOf(uint64_t pos) const {
    return static_cast<size_t>(pos / view_->segment_size);
  }

  Iterator* CurrentRun() const {
    return runs_[static_cast<uint8_t>(view_->selectors[pos_])].get();
  }

  // Position every run at its recorded cursor for segment k by seeking it
  // to the anchor key (unique keys + monotone cursors make this exact;
  // see the header comment), leaving pos_ at the segment's first entry.
  void ReanchorAt(size_t k) {
    const Slice anchor(view_->anchors[k]);
    for (auto& run : runs_) run->Seek(anchor);
    pos_ = static_cast<uint64_t>(k) * view_->segment_size;
    SyncValid();
    PerfCounterAdd(&PerfContext::sortedview_seeks, 1);
  }

  // Advance one merged position: bump the run that supplied the current
  // entry. No key comparison — the selector already encodes the order.
  void Step() {
    CurrentRun()->Next();
    pos_++;
    SyncValid();
  }

  // Walk forward to `target` (>= pos_), counting replay steps.
  void ReplayTo(uint64_t target) {
    uint64_t steps = 0;
    while (valid_ && pos_ < target) {
      Step();
      steps++;
    }
    PerfCounterAdd(&PerfContext::sortedview_steps, steps);
  }

  // Valid iff pos_ is in range AND the supplying run is actually
  // positioned (a run hitting an I/O error goes invalid early; surface
  // that through status() instead of crashing on key()).
  void SyncValid() {
    valid_ = pos_ < view_->entry_count && CurrentRun()->Valid();
  }

  const InternalKeyComparator* const icmp_;
  const std::shared_ptr<const SortedView> view_;
  std::vector<std::unique_ptr<Iterator>> runs_;
  uint64_t pos_ = 0;
  bool valid_ = false;
};

}  // namespace

Iterator* NewSortedViewIterator(const InternalKeyComparator* icmp,
                                std::shared_ptr<const SortedView> view,
                                std::vector<Iterator*> runs) {
  return new SortedViewIterator(icmp, std::move(view), std::move(runs));
}

}  // namespace leveldbpp
