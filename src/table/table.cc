#include "table/table.h"

#include "cache/cache.h"
#include "env/statistics.h"
#include "table/block.h"
#include "table/filter_block.h"
#include "table/filter_policy.h"
#include "table/quarantine.h"
#include "table/two_level_iterator.h"
#include "table/zonemap_block.h"
#include "util/coding.h"
#include "util/comparator.h"

namespace leveldbpp {

struct Table::Rep {
  ~Rep() {
    delete filter;
    delete[] filter_data;
    for (size_t i = 0; i < sec_filters.size(); i++) {
      delete sec_filters[i];
      delete[] sec_filter_data[i];
    }
    delete[] zonemap_data;
    delete index_block;
  }

  Options options;
  Status status;
  RandomAccessFile* file = nullptr;
  uint64_t cache_id = 0;
  FilterBlockReader* filter = nullptr;
  const char* filter_data = nullptr;

  // Secondary filters, index-aligned with options.secondary_attributes.
  std::vector<FilterBlockReader*> sec_filters;
  std::vector<const char*> sec_filter_data;
  ZoneMapReader zonemaps;
  bool has_zonemaps = false;
  const char* zonemap_data = nullptr;

  BlockHandle metaindex_handle;
  Block* index_block = nullptr;

  // Identity + DB-wide quarantine registry (set via SetProvenance; the
  // registry stays null for tables opened outside a DB, e.g. by tools).
  uint64_t file_number = 0;
  BlockQuarantine* quarantine = nullptr;

  // Decoded data-block handles in file order (block ordinal -> handle),
  // giving the embedded scan O(1) access to any block.
  std::vector<BlockHandle> data_block_handles;
};

Status Table::Open(const Options& options, RandomAccessFile* file,
                   uint64_t size, Table** table) {
  *table = nullptr;
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  // Read the index block. Always verified: a garbled index block would
  // misdirect every lookup in the table, and open-time is the only chance
  // to reject the file as a whole.
  BlockContents index_block_contents;
  s = ReadBlock(file, /*verify_checksums=*/true, footer.index_handle(),
                &index_block_contents, options.statistics);
  if (!s.ok()) return s;

  Rep* rep = new Table::Rep;
  rep->options = options;
  if (rep->options.comparator == nullptr) {
    rep->options.comparator = BytewiseComparator();
  }
  rep->file = file;
  rep->metaindex_handle = footer.metaindex_handle();
  rep->index_block = new Block(index_block_contents);
  rep->cache_id =
      (options.block_cache != nullptr ? options.block_cache->NewId() : 0);

  Table* t = new Table(rep);
  t->ReadMeta(footer);
  t->DecodeDataBlockHandles();
  *table = t;
  return Status::OK();
}

void Table::ReadMeta(const Footer& footer) {
  // Read the metaindex block regardless of filter configuration: zone maps
  // have no policy dependency. Meta blocks are always verified — a corrupt
  // filter parsed as garbage could answer "definitely absent" for keys the
  // table holds; failing the read instead degrades to fail-open (no
  // filter / no zone maps), which is merely slower, never wrong.
  BlockContents contents;
  if (!ReadBlock(rep_->file, /*verify_checksums=*/true,
                 footer.metaindex_handle(), &contents,
                 rep_->options.statistics)
           .ok()) {
    return;  // Do not propagate errors since meta info is not needed
  }
  Block* meta = new Block(contents);

  Iterator* iter = meta->NewIterator(BytewiseComparator());

  if (rep_->options.filter_policy != nullptr) {
    std::string key = "filter.";
    key.append(rep_->options.filter_policy->Name());
    iter->Seek(Slice(key));
    if (iter->Valid() && iter->key() == Slice(key)) {
      ReadFilter(iter->value(), &rep_->filter, &rep_->filter_data,
                 rep_->options.filter_policy);
    }
  }

  const FilterPolicy* sec_policy = rep_->options.secondary_filter_policy;
  rep_->sec_filters.assign(rep_->options.secondary_attributes.size(), nullptr);
  rep_->sec_filter_data.assign(rep_->options.secondary_attributes.size(),
                               nullptr);
  if (sec_policy != nullptr) {
    for (size_t i = 0; i < rep_->options.secondary_attributes.size(); i++) {
      std::string key =
          "secfilter." + rep_->options.secondary_attributes[i];
      iter->Seek(Slice(key));
      if (iter->Valid() && iter->key() == Slice(key)) {
        ReadFilter(iter->value(), &rep_->sec_filters[i],
                   &rep_->sec_filter_data[i], sec_policy);
      }
    }
  }

  iter->Seek(Slice("zonemaps"));
  if (iter->Valid() && iter->key() == Slice("zonemaps")) {
    Slice v = iter->value();
    BlockHandle handle;
    if (handle.DecodeFrom(&v).ok()) {
      BlockContents zcontents;
      if (ReadBlock(rep_->file, /*verify_checksums=*/true, handle, &zcontents,
                    rep_->options.statistics)
              .ok()) {
        if (ZoneMapReader::Decode(zcontents.data, &rep_->zonemaps).ok()) {
          rep_->has_zonemaps = true;
        }
        if (zcontents.heap_allocated) {
          rep_->zonemap_data = zcontents.data.data();
        }
      }
    }
  }

  delete iter;
  delete meta;
}

void Table::ReadFilter(const Slice& filter_handle_value,
                       FilterBlockReader** reader, const char** data_out,
                       const FilterPolicy* policy) {
  Slice v = filter_handle_value;
  BlockHandle filter_handle;
  if (!filter_handle.DecodeFrom(&v).ok()) {
    return;
  }

  BlockContents block;
  if (!ReadBlock(rep_->file, /*verify_checksums=*/true, filter_handle, &block,
                 rep_->options.statistics)
           .ok()) {
    return;
  }
  if (block.heap_allocated) {
    *data_out = block.data.data();  // Will need to delete later
  }
  *reader = new FilterBlockReader(policy, block.data);
}

void Table::DecodeDataBlockHandles() {
  Iterator* it = rep_->index_block->NewIterator(rep_->options.comparator);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice v = it->value();
    BlockHandle h;
    if (h.DecodeFrom(&v).ok()) {
      rep_->data_block_handles.push_back(h);
    }
  }
  delete it;
}

Table::~Table() { delete rep_; }

static void DeleteBlock(void* arg, void*) {
  delete reinterpret_cast<Block*>(arg);
}

static void DeleteCachedBlock(const Slice&, void* value) {
  Block* block = reinterpret_cast<Block*>(value);
  delete block;
}

static void ReleaseBlock(void* arg, void* h) {
  Cache* cache = reinterpret_cast<Cache*>(arg);
  Cache::Handle* handle = reinterpret_cast<Cache::Handle*>(h);
  cache->Release(handle);
}

// Convert an index-entry value (an encoded BlockHandle) into an iterator
// over the contents of the corresponding block, going through the block
// cache if one is configured.
Iterator* Table::BlockReader(void* arg, const ReadOptions& options,
                             const Slice& index_value) {
  Table* table = reinterpret_cast<Table*>(arg);
  Cache* block_cache = table->rep_->options.block_cache;
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;

  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);

  if (s.ok()) {
    BlockContents contents;
    if (block_cache != nullptr) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, table->rep_->cache_id);
      EncodeFixed64(cache_key_buffer + 8, handle.offset());
      Slice key(cache_key_buffer, sizeof(cache_key_buffer));
      cache_handle = block_cache->Lookup(key);
      Statistics* stats = table->rep_->options.statistics;
      if (cache_handle != nullptr) {
        block = reinterpret_cast<Block*>(block_cache->Value(cache_handle));
        if (stats != nullptr) stats->Record(kBlockCacheHit);
      } else {
        if (stats != nullptr) stats->Record(kBlockCacheMiss);
        s = ReadBlock(table->rep_->file, options.verify_checksums, handle,
                      &contents, stats);
        if (s.ok()) {
          block = new Block(contents);
          if (contents.cachable && options.fill_cache) {
            cache_handle = block_cache->Insert(key, block, block->size(),
                                               &DeleteCachedBlock);
          }
        }
      }
    } else {
      s = ReadBlock(table->rep_->file, options.verify_checksums, handle,
                    &contents, table->rep_->options.statistics);
      if (s.ok()) {
        block = new Block(contents);
      }
    }
  }

  Iterator* iter;
  if (block != nullptr) {
    iter = block->NewIterator(table->rep_->options.comparator);
    if (cache_handle == nullptr) {
      iter->RegisterCleanup([block]() { DeleteBlock(block, nullptr); });
    } else {
      iter->RegisterCleanup([block_cache, cache_handle]() {
        ReleaseBlock(block_cache, cache_handle);
      });
    }
  } else {
    if (s.IsCorruption() && table->rep_->quarantine != nullptr) {
      if (table->rep_->quarantine->Add(table->rep_->file_number,
                                       handle.offset())) {
        Statistics* stats = table->rep_->options.statistics;
        if (stats != nullptr) stats->Record(kCorruptionBlocksQuarantined);
      }
    }
    iter = NewErrorIterator(s);
  }
  return iter;
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(
      rep_->index_block->NewIterator(rep_->options.comparator),
      &Table::BlockReader, const_cast<Table*>(this), options);
}

Status Table::InternalGet(const ReadOptions& options, const Slice& k,
                          void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) {
  Status s;
  Iterator* iiter = rep_->index_block->NewIterator(rep_->options.comparator);
  iiter->Seek(k);
  if (iiter->Valid()) {
    // Which data-block ordinal is this? The index iterator doesn't say, so
    // recover it by handle offset (binary search over the decoded handles).
    Slice handle_value = iiter->value();
    BlockHandle handle;
    Slice hv = handle_value;
    bool may_match = true;
    FilterBlockReader* filter = rep_->filter;
    if (filter != nullptr && handle.DecodeFrom(&hv).ok()) {
      size_t block_idx = BlockIndexForOffset(handle.offset());
      Statistics* stats = rep_->options.statistics;
      if (stats != nullptr) stats->Record(kBloomPrimaryChecked);
      if (!filter->KeyMayMatch(block_idx, k)) {
        may_match = false;
        if (stats != nullptr) stats->Record(kBloomPrimaryUseful);
      }
    }
    if (may_match) {
      Iterator* block_iter = BlockReader(const_cast<Table*>(this), options,
                                         handle_value);
      block_iter->Seek(k);
      if (block_iter->Valid()) {
        (*handle_result)(arg, block_iter->key(), block_iter->value());
      }
      s = block_iter->status();
      delete block_iter;
      // Quarantine semantics (non-paranoid, registry attached): a
      // checksum-failed block holds no trustworthy data, so treat it as
      // holding none at all — the caller falls through to older levels.
      // BlockReader already recorded the block; paranoid mode keeps the
      // fail-fast error.
      if (s.IsCorruption() && !rep_->options.paranoid_checks &&
          rep_->quarantine != nullptr) {
        s = Status::OK();
      }
    }
  }
  if (s.ok()) {
    s = iiter->status();
  }
  delete iiter;
  return s;
}

size_t Table::BlockIndexForOffset(uint64_t offset) const {
  // data_block_handles is sorted by offset (file order).
  size_t lo = 0, hi = rep_->data_block_handles.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (rep_->data_block_handles[mid].offset() < offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool Table::KeyMayExistNoIO(const Slice& key) const {
  Iterator* iiter = rep_->index_block->NewIterator(rep_->options.comparator);
  iiter->Seek(key);
  bool may_exist = false;
  if (iiter->Valid()) {
    may_exist = true;
    if (rep_->filter != nullptr) {
      Slice hv = iiter->value();
      BlockHandle handle;
      if (handle.DecodeFrom(&hv).ok()) {
        size_t block_idx = BlockIndexForOffset(handle.offset());
        Statistics* stats = rep_->options.statistics;
        if (stats != nullptr) stats->Record(kBloomPrimaryChecked);
        if (!rep_->filter->KeyMayMatch(block_idx, key)) {
          may_exist = false;
          if (stats != nullptr) stats->Record(kBloomPrimaryUseful);
        }
      }
    }
  }
  delete iiter;
  return may_exist;
}

size_t Table::NumDataBlocks() const {
  return rep_->data_block_handles.size();
}

bool Table::SecondaryBlockMayContain(const std::string& attr,
                                     const Slice& value,
                                     size_t block_idx) const {
  Statistics* stats = rep_->options.statistics;
  // Zone map first: a miss there is cheaper than a bloom probe and the paper
  // uses zone maps "to further accelerate point lookup queries".
  if (rep_->has_zonemaps) {
    if (!rep_->zonemaps.BlockMayOverlap(attr, block_idx, value, value)) {
      if (stats != nullptr) stats->Record(kZoneMapBlockPruned);
      return false;
    }
  }
  // Find the attribute's filter reader.
  for (size_t i = 0; i < rep_->options.secondary_attributes.size(); i++) {
    if (rep_->options.secondary_attributes[i] == attr) {
      FilterBlockReader* f = rep_->sec_filters[i];
      if (f == nullptr) return true;  // No filter: fail open
      if (stats != nullptr) stats->Record(kBloomSecondaryChecked);
      bool may = f->KeyMayMatch(block_idx, value);
      if (!may && stats != nullptr) stats->Record(kBloomSecondaryUseful);
      return may;
    }
  }
  return true;  // Unknown attribute: fail open
}

bool Table::SecondaryBlockMayOverlap(const std::string& attr, const Slice& lo,
                                     const Slice& hi,
                                     size_t block_idx) const {
  if (!rep_->has_zonemaps) return true;
  bool may = rep_->zonemaps.BlockMayOverlap(attr, block_idx, lo, hi);
  if (!may && rep_->options.statistics != nullptr) {
    rep_->options.statistics->Record(kZoneMapBlockPruned);
  }
  return may;
}

bool Table::SecondaryFileMayOverlap(const std::string& attr, const Slice& lo,
                                    const Slice& hi) const {
  if (!rep_->has_zonemaps) return true;
  bool may = rep_->zonemaps.FileMayOverlap(attr, lo, hi);
  if (!may && rep_->options.statistics != nullptr) {
    rep_->options.statistics->Record(kZoneMapFilePruned);
  }
  return may;
}

void Table::SetProvenance(uint64_t file_number, BlockQuarantine* quarantine) {
  rep_->file_number = file_number;
  rep_->quarantine = quarantine;
}

Iterator* Table::NewDataBlockIterator(const ReadOptions& options,
                                      size_t block_idx) const {
  if (block_idx >= rep_->data_block_handles.size()) {
    return NewErrorIterator(Status::InvalidArgument("block index OOB"));
  }
  std::string handle_encoding;
  rep_->data_block_handles[block_idx].EncodeTo(&handle_encoding);
  return BlockReader(const_cast<Table*>(this), options,
                     Slice(handle_encoding));
}

}  // namespace leveldbpp
