// BlockQuarantine: a DB-wide registry of SSTable blocks that failed their
// checksum. In non-paranoid mode the read path records the damaged block
// here and treats it as containing nothing, so point lookups fall through
// to older levels instead of erroring the whole query; the registry is what
// RepairDB and operators inspect to decide whether a salvage pass is due.
//
// Keyed by (table file number, block offset) — stable across Table cache
// evictions and reopen. Thread-safe.

#ifndef LEVELDBPP_TABLE_QUARANTINE_H_
#define LEVELDBPP_TABLE_QUARANTINE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <utility>

namespace leveldbpp {

class BlockQuarantine {
 public:
  BlockQuarantine() = default;
  BlockQuarantine(const BlockQuarantine&) = delete;
  BlockQuarantine& operator=(const BlockQuarantine&) = delete;

  /// Record a damaged block. Returns true iff it was not already known
  /// (callers use this to count distinct quarantined blocks).
  bool Add(uint64_t file_number, uint64_t block_offset);

  bool Contains(uint64_t file_number, uint64_t block_offset) const;

  /// Number of distinct quarantined blocks.
  size_t Count() const;

  /// Number of distinct files with at least one quarantined block.
  size_t FileCount() const;

  /// "file 7: 2 block(s); file 12: 1 block(s)" — for logs and stats dumps.
  std::string Summary() const;

  /// Callback invoked — outside the registry lock — each time a NEW block
  /// enters quarantine, with (file_number, block_offset). DBImpl installs
  /// one at open (before any read can fail) to fan the event out to
  /// Options::listeners; not synchronized against concurrent Add calls, so
  /// set it once, up front.
  void SetNotifyFn(std::function<void(uint64_t, uint64_t)> fn);

 private:
  mutable std::mutex mu_;
  std::set<std::pair<uint64_t, uint64_t>> blocks_;  // Guarded by mu_
  std::function<void(uint64_t, uint64_t)> notify_;  // set before first read
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_QUARANTINE_H_
