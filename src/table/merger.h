// Merging iterator: k-way merge of sorted child iterators.

#ifndef LEVELDBPP_TABLE_MERGER_H_
#define LEVELDBPP_TABLE_MERGER_H_

namespace leveldbpp {

class Comparator;
class Iterator;

/// Return an iterator that provides the union of the data in
/// children[0, n-1]. Takes ownership of the child iterators. When entries
/// compare equal, the child appearing EARLIER in the list wins ties on
/// ordering (emitted first) — callers list newer sources first so newer
/// versions of a key surface before older ones.
Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_MERGER_H_
