// FilterPolicy: pluggable per-block key filters (bloom filters).
//
// Used twice in this engine, matching the paper:
//  * primary-key filters per data block (standard LevelDB behaviour), and
//  * one additional filter per data block PER INDEXED SECONDARY ATTRIBUTE
//    (the paper's Embedded Index, Section 3 / Figure 3a).

#ifndef LEVELDBPP_TABLE_FILTER_POLICY_H_
#define LEVELDBPP_TABLE_FILTER_POLICY_H_

#include <string>

#include "util/slice.h"

namespace leveldbpp {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Name stored in filter meta blocks; a mismatch on reopen disables
  /// filtering rather than misinterpreting bits.
  virtual const char* Name() const = 0;

  /// Append to *dst a filter summarizing keys[0..n-1].
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;

  /// Must return true if `key` was in the key list the filter was built
  /// from; may return true (false positive) otherwise.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

/// Bloom filter with approximately `bits_per_key` bits per key. The paper's
/// experiments default to 20 bits/key (Appendix C.1 sweeps 5..30).
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_FILTER_POLICY_H_
