#include "table/iterator.h"

namespace leveldbpp {

Iterator::~Iterator() {
  CleanupNode* node = cleanup_head_;
  while (node != nullptr) {
    node->fn();
    CleanupNode* next = node->next;
    delete node;
    node = next;
  }
}

void Iterator::RegisterCleanup(std::function<void()> fn) {
  cleanup_head_ = new CleanupNode{std::move(fn), cleanup_head_};
}

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}
  ~EmptyIterator() override = default;

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override { assert(false); }
  void Prev() override { assert(false); }
  Slice key() const override {
    assert(false);
    return Slice();
  }
  Slice value() const override {
    assert(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace leveldbpp
