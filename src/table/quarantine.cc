#include "table/quarantine.h"

#include <cstdio>

namespace leveldbpp {

bool BlockQuarantine::Add(uint64_t file_number, uint64_t block_offset) {
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inserted = blocks_.emplace(file_number, block_offset).second;
  }
  // Fire outside mu_ so a listener may call Contains/Count/Summary.
  if (inserted && notify_) notify_(file_number, block_offset);
  return inserted;
}

void BlockQuarantine::SetNotifyFn(std::function<void(uint64_t, uint64_t)> fn) {
  notify_ = std::move(fn);
}

bool BlockQuarantine::Contains(uint64_t file_number,
                               uint64_t block_offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.count(std::make_pair(file_number, block_offset)) != 0;
}

size_t BlockQuarantine::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

size_t BlockQuarantine::FileCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t files = 0;
  uint64_t prev = 0;
  bool has_prev = false;
  for (const auto& [file, offset] : blocks_) {
    (void)offset;
    if (!has_prev || file != prev) {
      files++;
      prev = file;
      has_prev = true;
    }
  }
  return files;
}

std::string BlockQuarantine::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[64];
  uint64_t prev = 0;
  size_t count = 0;
  bool has_prev = false;
  auto emit = [&]() {
    std::snprintf(buf, sizeof(buf), "file %llu: %zu block(s)",
                  static_cast<unsigned long long>(prev), count);
    if (!out.empty()) out.append("; ");
    out.append(buf);
  };
  for (const auto& [file, offset] : blocks_) {
    (void)offset;
    if (has_prev && file != prev) {
      emit();
      count = 0;
    }
    prev = file;
    has_prev = true;
    count++;
  }
  if (has_prev) emit();
  return out;
}

}  // namespace leveldbpp
