// AttributeExtractor: pulls secondary-attribute values out of stored record
// values so the table builder can construct the Embedded Index meta blocks
// (per-block secondary bloom filters and zone maps) without knowing the
// record encoding. The default extractor (src/core) parses JSON documents of
// the form {"UserID": "u1", "CreationTime": "...", ...}.

#ifndef LEVELDBPP_TABLE_ATTRIBUTE_EXTRACTOR_H_
#define LEVELDBPP_TABLE_ATTRIBUTE_EXTRACTOR_H_

#include <string>

#include "util/slice.h"

namespace leveldbpp {

class AttributeExtractor {
 public:
  virtual ~AttributeExtractor() = default;

  /// Extract the value of `attr` from a stored record value into *out.
  /// Returns false if the record does not carry the attribute (the record
  /// is then invisible to that attribute's index).
  virtual bool Extract(const Slice& record_value, const std::string& attr,
                       std::string* out) const = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_ATTRIBUTE_EXTRACTOR_H_
