#include "table/filter_block.h"

#include "util/coding.h"

namespace leveldbpp {

FilterBlockBuilder::FilterBlockBuilder(const FilterPolicy* policy)
    : policy_(policy) {}

void FilterBlockBuilder::AddKey(const Slice& key) {
  Slice k = key;
  start_.push_back(keys_.size());
  keys_.append(k.data(), k.size());
}

void FilterBlockBuilder::FinishBlock() {
  filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
  const size_t num_keys = start_.size();
  if (num_keys == 0) {
    // Empty filter for a block with no (extractable) keys; the reader treats
    // a zero-length filter as "cannot match".
    keys_.clear();
    start_.clear();
    return;
  }

  // Make list of keys from flattened key structure.
  start_.push_back(keys_.size());  // Simplify length computation
  tmp_keys_.resize(num_keys);
  for (size_t i = 0; i < num_keys; i++) {
    const char* base = keys_.data() + start_[i];
    size_t length = start_[i + 1] - start_[i];
    tmp_keys_[i] = Slice(base, length);
  }

  // Generate filter for current set of keys and append to result_.
  policy_->CreateFilter(tmp_keys_.data(), static_cast<int>(num_keys),
                        &result_);

  tmp_keys_.clear();
  keys_.clear();
  start_.clear();
}

Slice FilterBlockBuilder::Finish() {
  // NOTE: the table builder calls FinishBlock() after each data block, so
  // there are no pending keys here; a trailing FinishBlock() call would add
  // a spurious empty filter.
  const uint32_t num = static_cast<uint32_t>(filter_offsets_.size());
  filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
  for (uint32_t off : filter_offsets_) {
    PutFixed32(&result_, off);
  }
  PutFixed32(&result_, num);
  return Slice(result_);
}

FilterBlockReader::FilterBlockReader(const FilterPolicy* policy,
                                     const Slice& contents)
    : policy_(policy), data_(nullptr), offset_(nullptr), num_(0) {
  size_t n = contents.size();
  if (n < 4) return;
  uint32_t num = DecodeFixed32(contents.data() + n - 4);
  // Layout sanity: num+1 offsets + count word must fit.
  if (4 + (num + 1) * 4ull > n) return;
  num_ = num;
  data_ = contents.data();
  offset_ = contents.data() + n - 4 - (num + 1) * 4;
}

bool FilterBlockReader::KeyMayMatch(size_t block_index,
                                    const Slice& key) const {
  if (block_index >= num_) return true;  // Fail open on out-of-range
  uint32_t start = DecodeFixed32(offset_ + block_index * 4);
  uint32_t limit = DecodeFixed32(offset_ + (block_index + 1) * 4);
  if (start > limit ||
      limit > static_cast<uint32_t>(offset_ - data_)) {
    return true;  // Errors are treated as potential matches
  }
  if (start == limit) {
    // Empty filter: the block had no keys for this attribute.
    return false;
  }
  return policy_->KeyMayMatch(key, Slice(data_ + start, limit - start));
}

}  // namespace leveldbpp
