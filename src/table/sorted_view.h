// REMIX-style sorted view over the sorted runs of levels >= 1.
//
// The classic read path merges one iterator per level through a binary
// heap: every Next() re-heapifies across all runs and every Seek() does a
// binary search in EACH run. A sorted view removes both costs by
// persisting the MERGE ORDER itself, computed once with a single sweep
// after a compaction or ingest splice:
//
//   * one selector byte per merged entry saying which run supplies it, so
//     Next() is "advance that one run" with zero key comparisons, and
//   * one anchor (internal key + per-run cursors) per
//     kSortedViewSegmentSize entries, so Seek() is one binary search over
//     the anchors plus a replay bounded by the segment size.
//
// The trick that makes re-anchoring cheap is that internal keys are
// globally unique and each run only ever advances during the merge:
// seeking every run to an anchor key lands each run EXACTLY at its
// recorded cursor (everything the run already contributed sorts below the
// anchor; everything still pending sorts at or above it). So an anchor
// needs no per-run keys, just the one merged key.
//
// A view describes one exact file layout (the per-level file-number lists
// are stored in the artifact); any structural change to levels >= 1
// invalidates it and readers fall back to the heap merge until the next
// rebuild. Memtables and L0 are never covered — they merge on the fly, so
// flushes do not stale the view. Results are byte-identical either way.
//
// Artifact format (<number>.svw, referenced from the MANIFEST via the
// VersionEdit kSortedView tag):
//
//   fixed64   magic
//   varint64  artifact file number (must match the file name)
//   varint32  segment size S
//   varint32  run count R (ascending level order)
//   R x [ varint32 level; varint32 file_count; file_count x varint64 ]
//   varint64  entry count N
//   varint32  segment count ceil(N / S)
//   per segment: length-prefixed anchor internal key; R x varint64 cursor
//   N bytes   selectors (selector[g] = run supplying merged entry g)
//   fixed32   masked crc32c of everything above

#ifndef LEVELDBPP_TABLE_SORTED_VIEW_H_
#define LEVELDBPP_TABLE_SORTED_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/iterator.h"
#include "util/status.h"

namespace leveldbpp {

class Env;
class InternalKeyComparator;

/// Merged entries per segment: one anchor is recorded every this many
/// entries, bounding a Seek()/Prev() replay to at most this many steps.
constexpr uint32_t kSortedViewSegmentSize = 16;

/// Selectors are single bytes, so a view can cover at most 255 runs (one
/// run per level; far above any real num_levels).
constexpr size_t kSortedViewMaxRuns = 255;

struct SortedView {
  uint64_t number = 0;  // <number>.svw artifact file number
  uint32_t segment_size = kSortedViewSegmentSize;

  // Covered levels in ascending order (one sorted run each) and the exact
  // file numbers the view was built from, for validation against a
  // Version's layout.
  std::vector<int> levels;
  std::vector<std::vector<uint64_t>> level_files;

  uint64_t entry_count = 0;  // N: total merged entries across all runs

  // Segment k describes merged position k * segment_size: the internal
  // key at that position, and how many entries each run had contributed
  // strictly before it.
  std::vector<std::string> anchors;
  std::vector<std::vector<uint64_t>> cursors;

  // One byte per merged entry: index into the runs (== index into
  // `levels`) supplying that entry.
  std::string selectors;
};

/// Sweep `runs` (one internal-key iterator per covered level, ascending,
/// NOT owned) once, filling `view`'s entry_count / anchors / cursors /
/// selectors. `view->levels` etc. are the caller's to set.
Status BuildSortedView(const InternalKeyComparator* icmp,
                       const std::vector<Iterator*>& runs, SortedView* view);

/// Serialize `view` to `fname` (written, synced, closed).
Status WriteSortedViewFile(Env* env, const std::string& fname,
                           const SortedView& view);

/// Load and checksum-verify the artifact at `fname`; `number` must match
/// the stored artifact number. On any mismatch returns Corruption and the
/// caller falls back to the heap merge.
Status ReadSortedViewFile(Env* env, const std::string& fname, uint64_t number,
                          SortedView* view);

/// Bidirectional internal-key iterator replaying `view` over `runs` (one
/// iterator per covered level, same order as view->levels; ownership is
/// taken). REQUIRES: the runs' file layout is exactly view->level_files.
Iterator* NewSortedViewIterator(const InternalKeyComparator* icmp,
                                std::shared_ptr<const SortedView> view,
                                std::vector<Iterator*> runs);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_SORTED_VIEW_H_
