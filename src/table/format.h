// On-disk SSTable framing: block handles, the footer, and the block
// read/write helpers (checksum + optional compression trailer).
//
// Layout (LevelDB-compatible structure, Figure 7 / Figure 3 of the paper):
//   [data block 1..n]
//   [primary filter meta block]
//   [secondary filter meta block per indexed attribute]   <- Embedded Index
//   [zone map meta block]                                 <- Embedded Index
//   [metaindex block]    (filter/zonemap name -> handle)
//   [index block]        (last-key -> data block handle)
//   [footer]             (metaindex handle, index handle, magic)

#ifndef LEVELDBPP_TABLE_FORMAT_H_
#define LEVELDBPP_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "compress/codec.h"
#include "env/env.h"
#include "env/statistics.h"
#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

/// Pointer to a block within a file: offset + size (excluding the 5-byte
/// checksum/compression trailer).
class BlockHandle {
 public:
  // Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle() : offset_(~uint64_t{0}), size_(~uint64_t{0}) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

/// Fixed-size footer at the tail of every SSTable.
class Footer {
 public:
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  Footer() = default;

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

// "ldb+" "idx!" — distinct from LevelDB's magic to avoid confusion with real
// LevelDB files.
static const uint64_t kTableMagicNumber = 0x6c64622b69647821ull;

// 1-byte compression type + 4-byte CRC of (block data + type).
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;           // Actual contents of data
  bool cachable;        // True iff data can be cached
  bool heap_allocated;  // True iff caller should delete[] data.data()
};

/// Read the block identified by `handle` from `file`, verify its CRC,
/// decompress if needed. Records kBlockRead / kBlockReadBytes on `stats`.
Status ReadBlock(RandomAccessFile* file, bool verify_checksums,
                 const BlockHandle& handle, BlockContents* result,
                 Statistics* stats);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_FORMAT_H_
