// Two-level iterator: walks an index iterator whose values are opaque block
// handles, materializing a data-block iterator per index entry via a
// caller-supplied block function.

#ifndef LEVELDBPP_TABLE_TWO_LEVEL_ITERATOR_H_
#define LEVELDBPP_TABLE_TWO_LEVEL_ITERATOR_H_

#include "db/options.h"
#include "table/iterator.h"

namespace leveldbpp {

/// Returns a new two-level iterator. Takes ownership of index_iter.
/// `block_function(arg, options, index_value)` converts an index entry value
/// into an iterator over the corresponding block's contents.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    Iterator* (*block_function)(void* arg, const ReadOptions& options,
                                const Slice& index_value),
    void* arg, const ReadOptions& options);

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_TWO_LEVEL_ITERATOR_H_
