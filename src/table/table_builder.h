// TableBuilder: streams sorted key/value pairs into an SSTable file,
// building the data blocks, the primary-key filter block, and — when the
// options name secondary attributes — the Embedded Index meta blocks
// (per-block secondary bloom filters and zone maps).

#ifndef LEVELDBPP_TABLE_TABLE_BUILDER_H_
#define LEVELDBPP_TABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>

#include "db/options.h"
#include "env/env.h"
#include "table/zonemap_block.h"
#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

class TableBuilder {
 public:
  /// Create a builder that stores the contents of the table it is building
  /// in *file. Does not take ownership of *file.
  TableBuilder(const Options& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// REQUIRES: Either Finish() or Abandon() has been called.
  ~TableBuilder();

  /// Add key,value to the table. REQUIRES: key is after any previously
  /// added key according to the comparator.
  void Add(const Slice& key, const Slice& value);

  /// Advanced: flush any buffered key/value pairs to file.
  void Flush();

  /// Non-OK iff some error has been detected.
  Status status() const;

  /// Finish building the table; writes meta blocks, index, footer.
  Status Finish();

  /// Abandon the table under construction (e.g. on error).
  void Abandon();

  uint64_t NumEntries() const;

  /// Size of the file generated so far.
  uint64_t FileSize() const;

  /// Whole-file zone range for secondary attribute `attr_idx`, available
  /// after Finish(); the DB persists it into the file's metadata (the
  /// paper's "global metadata file" of per-SSTable zone maps).
  const ZoneRange& FileZoneRange(size_t attr_idx) const;

 private:
  bool ok() const { return status().ok(); }
  void WriteBlock(class BlockBuilder* block, class BlockHandle* handle);
  void WriteRawBlock(const Slice& data, CompressionType type,
                     class BlockHandle* handle);

  struct Rep;
  Rep* rep_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_TABLE_BUILDER_H_
