// Table: immutable SSTable reader.
//
// Beyond the standard LevelDB surface (iterator + point get with bloom
// pruning), the reader exposes the Embedded-Index scan primitives the core
// layer uses for secondary LOOKUP / RANGELOOKUP:
//   * per-block secondary bloom probe,
//   * per-block / per-file zone-map overlap checks,
//   * direct iteration of one data block by ordinal,
//   * a no-I/O primary-key presence probe (backing GetLite).

#ifndef LEVELDBPP_TABLE_TABLE_H_
#define LEVELDBPP_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/options.h"
#include "env/env.h"
#include "table/format.h"
#include "table/iterator.h"
#include "util/status.h"

namespace leveldbpp {

class BlockQuarantine;

class Table {
 public:
  /// Open a table over [0, file_size) of `file`. On success stores a
  /// heap-allocated table in *table; the client must delete it. Does not
  /// take ownership of *file, which must outlive the table.
  static Status Open(const Options& options, RandomAccessFile* file,
                     uint64_t file_size, Table** table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table();

  /// Iterator over the whole table (two-level; blocks loaded lazily).
  Iterator* NewIterator(const ReadOptions&) const;

  /// Point lookup: if the table may contain an entry >= `k` in the block
  /// that could hold `k`, invoke handle_result(arg, key, value) on the first
  /// such entry. Applies the primary bloom filter first.
  Status InternalGet(const ReadOptions&, const Slice& key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v));

  /// No-I/O presence probe (GetLite): consult only the in-memory index
  /// block and primary bloom filter. Returns false iff the key is
  /// definitely absent from this table.
  bool KeyMayExistNoIO(const Slice& key) const;

  // ---- Embedded-Index scan surface ----

  /// Number of data blocks in the table.
  size_t NumDataBlocks() const;

  /// May data block `block_idx` contain a record whose attribute `attr`
  /// equals `value`? Uses the secondary bloom AND the block zone map.
  /// Records filter/zone-map effectiveness tickers on the configured stats.
  bool SecondaryBlockMayContain(const std::string& attr, const Slice& value,
                                size_t block_idx) const;

  /// May data block `block_idx` contain a value of `attr` in [lo, hi]?
  /// (Zone maps only — blooms cannot answer ranges.)
  bool SecondaryBlockMayOverlap(const std::string& attr, const Slice& lo,
                                const Slice& hi, size_t block_idx) const;

  /// File-level zone-map probe: may any block contain `attr` in [lo, hi]?
  bool SecondaryFileMayOverlap(const std::string& attr, const Slice& lo,
                               const Slice& hi) const;

  /// Iterator over data block `block_idx`. Caller deletes.
  Iterator* NewDataBlockIterator(const ReadOptions&, size_t block_idx) const;

  /// Attach the table's identity and the DB-wide quarantine registry
  /// (called by TableCache right after Open). With a registry attached,
  /// non-paranoid reads record checksum-failed blocks in it — and
  /// InternalGet treats such a block as empty so the lookup can fall
  /// through to older levels — instead of failing the query.
  void SetProvenance(uint64_t file_number, BlockQuarantine* quarantine);

 private:
  struct Rep;

  static Iterator* BlockReader(void*, const ReadOptions&, const Slice&);

  explicit Table(Rep* rep) : rep_(rep) {}

  void ReadMeta(const class Footer& footer);
  void ReadFilter(const Slice& filter_handle_value,
                  class FilterBlockReader** reader, const char** data_out,
                  const class FilterPolicy* policy);
  void DecodeDataBlockHandles();
  size_t BlockIndexForOffset(uint64_t offset) const;

  Rep* const rep_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_TABLE_H_
