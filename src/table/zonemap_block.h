// Zone-map meta block: per-block and file-level [min, max] ranges for each
// indexed secondary attribute (paper Section 3 / Figure 3b).
//
// Unlike AsterixDB's file-level-only zone maps (which the paper calls
// "limited"), this block stores a zone map for every data block inside the
// SSTable as well as the whole-file range, enabling both file pruning and
// block pruning. Attribute values are compared as raw bytes, so range
// queries require an order-preserving attribute encoding (e.g. fixed-width
// decimal timestamps).
//
// Block layout (single zone-map block covers all attributes):
//   num_attrs : varint32
//   for each attribute:
//     attr name      : length-prefixed
//     file_present   : uint8 (0 => attribute absent from whole file)
//     file_min, file_max : length-prefixed (if present)
//     num_blocks     : varint32
//     for each data block:
//       present : uint8
//       min, max : length-prefixed (if present)

#ifndef LEVELDBPP_TABLE_ZONEMAP_BLOCK_H_
#define LEVELDBPP_TABLE_ZONEMAP_BLOCK_H_

#include <map>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

/// Min/max range of one attribute over one extent (block or file).
struct ZoneRange {
  bool present = false;
  std::string min;
  std::string max;

  /// Extend the range to cover `v`.
  void Extend(const Slice& v) {
    if (!present) {
      present = true;
      min = v.ToString();
      max = v.ToString();
    } else {
      if (v.compare(Slice(min)) < 0) min = v.ToString();
      if (v.compare(Slice(max)) > 0) max = v.ToString();
    }
  }

  /// Does [min,max] intersect [lo,hi]?
  bool Overlaps(const Slice& lo, const Slice& hi) const {
    if (!present) return false;
    return !(hi.compare(Slice(min)) < 0 || lo.compare(Slice(max)) > 0);
  }
};

class ZoneMapBuilder {
 public:
  explicit ZoneMapBuilder(const std::vector<std::string>& attributes);

  /// Record that the data block currently being built contains `value` for
  /// attribute index `attr_idx`.
  void Add(size_t attr_idx, const Slice& value);

  /// Seal the zone maps for the data block currently being built.
  void FinishBlock();

  /// Serialize all zone maps; valid until the builder is destroyed.
  Slice Finish();

  /// Whole-file range for attribute `attr_idx` (valid after all Adds).
  const ZoneRange& FileRange(size_t attr_idx) const {
    return file_ranges_[attr_idx];
  }

 private:
  std::vector<std::string> attributes_;
  std::vector<ZoneRange> current_;               // Per-attr, current block
  std::vector<std::vector<ZoneRange>> per_block_;  // [attr][block]
  std::vector<ZoneRange> file_ranges_;
  std::string result_;
};

class ZoneMapReader {
 public:
  /// Decode a zone-map block. On corruption, the reader is empty and all
  /// queries fail open (return "may overlap").
  static Status Decode(const Slice& contents, ZoneMapReader* out);

  /// True iff the attribute is tracked in this file's zone maps.
  bool HasAttribute(const std::string& attr) const {
    return maps_.count(attr) != 0;
  }

  /// May the whole file contain a value of `attr` in [lo, hi]? Fails open
  /// for unknown attributes.
  bool FileMayOverlap(const std::string& attr, const Slice& lo,
                      const Slice& hi) const;

  /// May data block `block_index` contain a value of `attr` in [lo, hi]?
  bool BlockMayOverlap(const std::string& attr, size_t block_index,
                       const Slice& lo, const Slice& hi) const;

  size_t NumBlocks(const std::string& attr) const;

 private:
  struct AttrMaps {
    ZoneRange file;
    std::vector<ZoneRange> blocks;
  };
  std::map<std::string, AttrMaps> maps_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_TABLE_ZONEMAP_BLOCK_H_
