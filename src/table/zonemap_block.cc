#include "table/zonemap_block.h"

#include "util/coding.h"

namespace leveldbpp {

ZoneMapBuilder::ZoneMapBuilder(const std::vector<std::string>& attributes)
    : attributes_(attributes),
      current_(attributes.size()),
      per_block_(attributes.size()),
      file_ranges_(attributes.size()) {}

void ZoneMapBuilder::Add(size_t attr_idx, const Slice& value) {
  current_[attr_idx].Extend(value);
  file_ranges_[attr_idx].Extend(value);
}

void ZoneMapBuilder::FinishBlock() {
  for (size_t i = 0; i < attributes_.size(); i++) {
    per_block_[i].push_back(current_[i]);
    current_[i] = ZoneRange();
  }
}

namespace {
void PutRange(std::string* dst, const ZoneRange& r) {
  dst->push_back(r.present ? 1 : 0);
  if (r.present) {
    PutLengthPrefixedSlice(dst, Slice(r.min));
    PutLengthPrefixedSlice(dst, Slice(r.max));
  }
}

bool GetRange(Slice* input, ZoneRange* r) {
  if (input->empty()) return false;
  uint8_t present = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  r->present = (present != 0);
  if (r->present) {
    Slice min, max;
    if (!GetLengthPrefixedSlice(input, &min) ||
        !GetLengthPrefixedSlice(input, &max)) {
      return false;
    }
    r->min = min.ToString();
    r->max = max.ToString();
  }
  return true;
}
}  // namespace

Slice ZoneMapBuilder::Finish() {
  result_.clear();
  PutVarint32(&result_, static_cast<uint32_t>(attributes_.size()));
  for (size_t i = 0; i < attributes_.size(); i++) {
    PutLengthPrefixedSlice(&result_, Slice(attributes_[i]));
    PutRange(&result_, file_ranges_[i]);
    PutVarint32(&result_, static_cast<uint32_t>(per_block_[i].size()));
    for (const ZoneRange& r : per_block_[i]) {
      PutRange(&result_, r);
    }
  }
  return Slice(result_);
}

Status ZoneMapReader::Decode(const Slice& contents, ZoneMapReader* out) {
  out->maps_.clear();
  Slice input = contents;
  uint32_t num_attrs;
  if (!GetVarint32(&input, &num_attrs)) {
    return Status::Corruption("zonemap: bad attr count");
  }
  for (uint32_t i = 0; i < num_attrs; i++) {
    Slice name;
    if (!GetLengthPrefixedSlice(&input, &name)) {
      return Status::Corruption("zonemap: bad attr name");
    }
    AttrMaps maps;
    if (!GetRange(&input, &maps.file)) {
      return Status::Corruption("zonemap: bad file range");
    }
    uint32_t num_blocks;
    if (!GetVarint32(&input, &num_blocks)) {
      return Status::Corruption("zonemap: bad block count");
    }
    maps.blocks.resize(num_blocks);
    for (uint32_t b = 0; b < num_blocks; b++) {
      if (!GetRange(&input, &maps.blocks[b])) {
        return Status::Corruption("zonemap: bad block range");
      }
    }
    out->maps_[name.ToString()] = std::move(maps);
  }
  return Status::OK();
}

bool ZoneMapReader::FileMayOverlap(const std::string& attr, const Slice& lo,
                                   const Slice& hi) const {
  auto it = maps_.find(attr);
  if (it == maps_.end()) return true;  // Fail open
  return it->second.file.Overlaps(lo, hi);
}

bool ZoneMapReader::BlockMayOverlap(const std::string& attr,
                                    size_t block_index, const Slice& lo,
                                    const Slice& hi) const {
  auto it = maps_.find(attr);
  if (it == maps_.end()) return true;  // Fail open
  if (block_index >= it->second.blocks.size()) return true;
  return it->second.blocks[block_index].Overlaps(lo, hi);
}

size_t ZoneMapReader::NumBlocks(const std::string& attr) const {
  auto it = maps_.find(attr);
  if (it == maps_.end()) return 0;
  return it->second.blocks.size();
}

}  // namespace leveldbpp
