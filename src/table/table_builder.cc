#include "table/table_builder.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "table/attribute_extractor.h"
#include "table/block_builder.h"
#include "table/filter_block.h"
#include "table/filter_policy.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"

namespace leveldbpp {

struct TableBuilder::Rep {
  Rep(const Options& opt, WritableFile* f)
      : options(opt),
        file(f),
        offset(0),
        data_block(opt.block_restart_interval),
        index_block(1),
        num_entries(0),
        closed(false),
        filter_block(opt.filter_policy == nullptr
                         ? nullptr
                         : new FilterBlockBuilder(opt.filter_policy)),
        zone_builder(opt.secondary_attributes),
        pending_index_entry(false) {
    if (options.comparator == nullptr) {
      options.comparator = BytewiseComparator();
    }
    const FilterPolicy* sec_policy = opt.secondary_filter_policy != nullptr
                                         ? opt.secondary_filter_policy
                                         : nullptr;
    if (!opt.secondary_attributes.empty() && sec_policy != nullptr) {
      for (size_t i = 0; i < opt.secondary_attributes.size(); i++) {
        sec_filter_blocks.emplace_back(new FilterBlockBuilder(sec_policy));
      }
    }
  }

  Options options;
  WritableFile* file;
  uint64_t offset;
  Status status;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::string last_key;
  int64_t num_entries;
  bool closed;  // Either Finish() or Abandon() has been called.
  std::unique_ptr<FilterBlockBuilder> filter_block;
  // One secondary filter builder per indexed attribute (may be empty if no
  // secondary filter policy is configured; zone maps still get built).
  std::vector<std::unique_ptr<FilterBlockBuilder>> sec_filter_blocks;
  ZoneMapBuilder zone_builder;

  // Invariant: only true when the data block is empty: we postpone the
  // index entry for the just-finished block until the first key of the next
  // block is seen, to compute a shortest separator.
  bool pending_index_entry;
  BlockHandle pending_handle;  // Handle of the block we're adding index for

  std::string compressed_output;
  std::string attr_scratch;
};

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : rep_(new Rep(options, file)) {}

TableBuilder::~TableBuilder() {
  assert(rep_->closed);  // Catch errors where caller forgot to call Finish()
  delete rep_;
}

void TableBuilder::Add(const Slice& key, const Slice& value) {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  if (r->num_entries > 0) {
    assert(r->options.comparator->Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    r->options.comparator->FindShortestSeparator(&r->last_key, key);
    std::string handle_encoding;
    r->pending_handle.EncodeTo(&handle_encoding);
    r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
    r->pending_index_entry = false;
  }

  if (r->filter_block != nullptr) {
    r->filter_block->AddKey(key);
  }

  // Embedded-index meta: extract each indexed attribute from the value and
  // feed the per-block secondary bloom + zone map.
  if (!r->options.secondary_attributes.empty() &&
      r->options.attribute_extractor != nullptr && !value.empty()) {
    for (size_t i = 0; i < r->options.secondary_attributes.size(); i++) {
      if (r->options.attribute_extractor->Extract(
              value, r->options.secondary_attributes[i], &r->attr_scratch)) {
        if (i < r->sec_filter_blocks.size()) {
          r->sec_filter_blocks[i]->AddKey(Slice(r->attr_scratch));
        }
        r->zone_builder.Add(i, Slice(r->attr_scratch));
      }
    }
  }

  r->last_key.assign(key.data(), key.size());
  r->num_entries++;
  r->data_block.Add(key, value);

  const size_t estimated_block_size = r->data_block.CurrentSizeEstimate();
  if (estimated_block_size >= r->options.block_size) {
    Flush();
  }
}

void TableBuilder::Flush() {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  if (r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (ok()) {
    r->pending_index_entry = true;
    r->status = r->file->Flush();
  }
  if (r->filter_block != nullptr) {
    r->filter_block->FinishBlock();
  }
  for (auto& sfb : r->sec_filter_blocks) {
    sfb->FinishBlock();
  }
  if (!r->options.secondary_attributes.empty()) {
    r->zone_builder.FinishBlock();
  }
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  // File format contains a sequence of blocks where each block has:
  //    block_data: uint8[n]
  //    type: uint8
  //    crc: uint32
  assert(ok());
  Rep* r = rep_;
  Slice raw = block->Finish();

  Slice block_contents;
  CompressionType type = r->options.compression;
  switch (type) {
    case kNoCompression:
      block_contents = raw;
      break;

    case kSimpleLZCompression: {
      std::string* compressed = &r->compressed_output;
      compressed->clear();
      simplelz::Compress(raw, compressed);
      if (compressed->size() < raw.size() - (raw.size() / 8u)) {
        block_contents = *compressed;
      } else {
        // Compression gained less than 12.5%; store uncompressed.
        block_contents = raw;
        type = kNoCompression;
      }
      break;
    }
  }
  WriteRawBlock(block_contents, type, handle);
  r->compressed_output.clear();
  block->Reset();
}

void TableBuilder::WriteRawBlock(const Slice& block_contents,
                                 CompressionType type, BlockHandle* handle) {
  Rep* r = rep_;
  handle->set_offset(r->offset);
  handle->set_size(block_contents.size());
  r->status = r->file->Append(block_contents);
  if (r->status.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = type;
    uint32_t crc = crc32c::Value(block_contents.data(), block_contents.size());
    crc = crc32c::Extend(crc, trailer, 1);  // Extend crc to cover block type
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    r->status = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (r->status.ok()) {
      r->offset += block_contents.size() + kBlockTrailerSize;
    }
  }
}

Status TableBuilder::status() const { return rep_->status; }

Status TableBuilder::Finish() {
  Rep* r = rep_;
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle, metaindex_block_handle, index_block_handle;

  // Meta-block name -> handle entries, added to the metaindex in key order.
  std::vector<std::pair<std::string, BlockHandle>> meta_entries;

  // Write primary filter block.
  if (ok() && r->filter_block != nullptr) {
    WriteRawBlock(r->filter_block->Finish(), kNoCompression,
                  &filter_block_handle);
    meta_entries.emplace_back(
        std::string("filter.") + r->options.filter_policy->Name(),
        filter_block_handle);
  }

  // Write secondary filter blocks (one per indexed attribute).
  if (ok()) {
    for (size_t i = 0; i < r->sec_filter_blocks.size(); i++) {
      BlockHandle h;
      WriteRawBlock(r->sec_filter_blocks[i]->Finish(), kNoCompression, &h);
      if (!ok()) break;
      meta_entries.emplace_back(
          std::string("secfilter.") + r->options.secondary_attributes[i], h);
    }
  }

  // Write zone-map block.
  if (ok() && !r->options.secondary_attributes.empty()) {
    BlockHandle h;
    WriteRawBlock(r->zone_builder.Finish(), kNoCompression, &h);
    meta_entries.emplace_back("zonemaps", h);
  }

  // Write metaindex block.
  if (ok()) {
    BlockBuilder meta_index_block(r->options.block_restart_interval);
    std::sort(meta_entries.begin(), meta_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [name, handle] : meta_entries) {
      std::string handle_encoding;
      handle.EncodeTo(&handle_encoding);
      meta_index_block.Add(Slice(name), Slice(handle_encoding));
    }
    WriteBlock(&meta_index_block, &metaindex_block_handle);
  }

  // Write index block.
  if (ok()) {
    if (r->pending_index_entry) {
      r->options.comparator->FindShortSuccessor(&r->last_key);
      std::string handle_encoding;
      r->pending_handle.EncodeTo(&handle_encoding);
      r->index_block.Add(Slice(r->last_key), Slice(handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Write footer.
  if (ok()) {
    Footer footer;
    footer.set_metaindex_handle(metaindex_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    r->status = r->file->Append(Slice(footer_encoding));
    if (r->status.ok()) {
      r->offset += footer_encoding.size();
    }
  }
  return r->status;
}

void TableBuilder::Abandon() {
  Rep* r = rep_;
  assert(!r->closed);
  r->closed = true;
}

uint64_t TableBuilder::NumEntries() const {
  return static_cast<uint64_t>(rep_->num_entries);
}

uint64_t TableBuilder::FileSize() const { return rep_->offset; }

const ZoneRange& TableBuilder::FileZoneRange(size_t attr_idx) const {
  return rep_->zone_builder.FileRange(attr_idx);
}

}  // namespace leveldbpp
