#include "db/trace_writer.h"

#include "env/env.h"

namespace leveldbpp {

// Index-aligned with the EventListener callback that produces each record.
const char* const kTraceEventNames[] = {
    "flush.begin",    "flush.end",         "compaction.begin",
    "compaction.end", "wal.sync",          "background.error",
    "block.quarantined", "index.rebuild",
};
const size_t kNumTraceEvents =
    sizeof(kTraceEventNames) / sizeof(kTraceEventNames[0]);

Status TraceWriter::Open(Env* env, const std::string& path,
                         std::shared_ptr<TraceWriter>* out) {
  out->reset();
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(path, &file);
  if (!s.ok()) return s;
  out->reset(new TraceWriter(env, std::move(file)));
  return Status::OK();
}

TraceWriter::TraceWriter(Env* env, std::unique_ptr<WritableFile> file)
    : env_(env), file_(std::move(file)) {}

TraceWriter::~TraceWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) file_->Close();
}

Status TraceWriter::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void TraceWriter::Emit(const char* event, json::Object fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  fields["event"] = json::Value(std::string(event));
  fields["seq"] = json::Value(static_cast<int64_t>(next_seq_++));
  fields["ts_micros"] = json::Value(static_cast<int64_t>(env_->NowMicros()));
  std::string line = json::Value(std::move(fields)).ToString();
  line.push_back('\n');
  Status s = file_->Append(Slice(line));
  if (s.ok()) s = file_->Flush();
  if (!s.ok() && status_.ok()) status_ = s;  // Sticky first error
}

void TraceWriter::OnFlushBegin(const FlushJobInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  Emit("flush.begin", std::move(f));
}

void TraceWriter::OnFlushEnd(const FlushJobInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["file_number"] = json::Value(static_cast<int64_t>(info.file_number));
  f["file_size"] = json::Value(static_cast<int64_t>(info.file_size));
  f["micros"] = json::Value(static_cast<int64_t>(info.micros));
  f["status"] = json::Value(info.status.ToString());
  Emit("flush.end", std::move(f));
}

void TraceWriter::OnCompactionBegin(const CompactionJobInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["level"] = json::Value(static_cast<int64_t>(info.level));
  f["output_level"] = json::Value(static_cast<int64_t>(info.output_level));
  f["input_files"] = json::Value(static_cast<int64_t>(info.input_files));
  f["input_bytes_level"] =
      json::Value(static_cast<int64_t>(info.input_bytes[0]));
  f["input_bytes_output_level"] =
      json::Value(static_cast<int64_t>(info.input_bytes[1]));
  Emit("compaction.begin", std::move(f));
}

void TraceWriter::OnCompactionEnd(const CompactionJobInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["level"] = json::Value(static_cast<int64_t>(info.level));
  f["output_level"] = json::Value(static_cast<int64_t>(info.output_level));
  f["input_files"] = json::Value(static_cast<int64_t>(info.input_files));
  f["input_bytes_level"] =
      json::Value(static_cast<int64_t>(info.input_bytes[0]));
  f["input_bytes_output_level"] =
      json::Value(static_cast<int64_t>(info.input_bytes[1]));
  f["output_files"] = json::Value(static_cast<int64_t>(info.output_files));
  f["bytes_written"] = json::Value(static_cast<int64_t>(info.bytes_written));
  f["micros"] = json::Value(static_cast<int64_t>(info.micros));
  f["status"] = json::Value(info.status.ToString());
  Emit("compaction.end", std::move(f));
}

void TraceWriter::OnWalSync(const WalSyncInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["bytes"] = json::Value(static_cast<int64_t>(info.bytes));
  f["micros"] = json::Value(static_cast<int64_t>(info.micros));
  f["status"] = json::Value(info.status.ToString());
  Emit("wal.sync", std::move(f));
}

void TraceWriter::OnBackgroundError(const BackgroundErrorInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["status"] = json::Value(info.status.ToString());
  Emit("background.error", std::move(f));
}

void TraceWriter::OnBlockQuarantined(const BlockQuarantinedInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["file_number"] = json::Value(static_cast<int64_t>(info.file_number));
  f["block_offset"] = json::Value(static_cast<int64_t>(info.block_offset));
  Emit("block.quarantined", std::move(f));
}

void TraceWriter::OnIndexRebuild(const IndexRebuildInfo& info) {
  json::Object f;
  f["db"] = json::Value(info.db_name);
  f["attribute"] = json::Value(info.attribute);
  f["entries"] = json::Value(static_cast<int64_t>(info.entries));
  Emit("index.rebuild", std::move(f));
}

}  // namespace leveldbpp
