#include "db/version_edit.h"

#include "util/coding.h"

namespace leveldbpp {

// Tag numbers for serialized VersionEdit. These numbers are written to disk
// and should not be changed.
enum Tag {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kCompactPointer = 5,
  kDeletedFile = 6,
  kNewFile = 7,
  kSortedView = 8,
};

void VersionEdit::Clear() {
  comparator_.clear();
  log_number_ = 0;
  next_file_number_ = 0;
  last_sequence_ = 0;
  sorted_view_number_ = 0;
  has_comparator_ = false;
  has_log_number_ = false;
  has_next_file_number_ = false;
  has_last_sequence_ = false;
  has_sorted_view_ = false;
  compact_pointers_.clear();
  deleted_files_.clear();
  new_files_.clear();
}

static void PutZoneRange(std::string* dst, const ZoneRange& r) {
  dst->push_back(r.present ? 1 : 0);
  if (r.present) {
    PutLengthPrefixedSlice(dst, Slice(r.min));
    PutLengthPrefixedSlice(dst, Slice(r.max));
  }
}

static bool GetZoneRange(Slice* input, ZoneRange* r) {
  if (input->empty()) return false;
  r->present = ((*input)[0] != 0);
  input->remove_prefix(1);
  if (r->present) {
    Slice min, max;
    if (!GetLengthPrefixedSlice(input, &min) ||
        !GetLengthPrefixedSlice(input, &max)) {
      return false;
    }
    r->min = min.ToString();
    r->max = max.ToString();
  } else {
    r->min.clear();
    r->max.clear();
  }
  return true;
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, Slice(comparator_));
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  if (has_sorted_view_) {
    PutVarint32(dst, kSortedView);
    PutVarint64(dst, sorted_view_number_);
  }

  for (const auto& [level, key] : compact_pointers_) {
    PutVarint32(dst, kCompactPointer);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutLengthPrefixedSlice(dst, key.Encode());
  }

  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }

  for (const auto& [level, f] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, f.number);
    PutVarint64(dst, f.file_size);
    PutLengthPrefixedSlice(dst, f.smallest.Encode());
    PutLengthPrefixedSlice(dst, f.largest.Encode());
    PutVarint64(dst, f.max_seq);
    PutVarint32(dst, static_cast<uint32_t>(f.zone_ranges.size()));
    for (const ZoneRange& zr : f.zone_ranges) {
      PutZoneRange(dst, zr);
    }
  }
}

static bool GetInternalKey(Slice* input, InternalKey* dst) {
  Slice str;
  if (GetLengthPrefixedSlice(input, &str)) {
    return dst->DecodeFrom(str);
  }
  return false;
}

static bool GetLevel(Slice* input, int* level) {
  uint32_t v;
  if (GetVarint32(input, &v) && v < 100) {
    *level = static_cast<int>(v);
    return true;
  }
  return false;
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  const char* msg = nullptr;
  uint32_t tag;

  // Temporary storage for parsing
  int level;
  uint64_t number;
  FileMetaData f;
  Slice str;
  InternalKey key;

  while (msg == nullptr && GetVarint32(&input, &tag)) {
    switch (tag) {
      case kComparator:
        if (GetLengthPrefixedSlice(&input, &str)) {
          comparator_ = str.ToString();
          has_comparator_ = true;
        } else {
          msg = "comparator name";
        }
        break;

      case kLogNumber:
        if (GetVarint64(&input, &log_number_)) {
          has_log_number_ = true;
        } else {
          msg = "log number";
        }
        break;

      case kNextFileNumber:
        if (GetVarint64(&input, &next_file_number_)) {
          has_next_file_number_ = true;
        } else {
          msg = "next file number";
        }
        break;

      case kLastSequence:
        if (GetVarint64(&input, &last_sequence_)) {
          has_last_sequence_ = true;
        } else {
          msg = "last sequence number";
        }
        break;

      case kSortedView:
        if (GetVarint64(&input, &sorted_view_number_)) {
          has_sorted_view_ = true;
        } else {
          msg = "sorted view number";
        }
        break;

      case kCompactPointer:
        if (GetLevel(&input, &level) && GetInternalKey(&input, &key)) {
          compact_pointers_.push_back(std::make_pair(level, key));
        } else {
          msg = "compaction pointer";
        }
        break;

      case kDeletedFile:
        if (GetLevel(&input, &level) && GetVarint64(&input, &number)) {
          deleted_files_.insert(std::make_pair(level, number));
        } else {
          msg = "deleted file";
        }
        break;

      case kNewFile: {
        uint32_t num_zones = 0;
        f = FileMetaData();
        if (GetLevel(&input, &level) && GetVarint64(&input, &f.number) &&
            GetVarint64(&input, &f.file_size) &&
            GetInternalKey(&input, &f.smallest) &&
            GetInternalKey(&input, &f.largest) &&
            GetVarint64(&input, &f.max_seq) &&
            GetVarint32(&input, &num_zones)) {
          bool ok = true;
          f.zone_ranges.resize(num_zones);
          for (uint32_t i = 0; ok && i < num_zones; i++) {
            ok = GetZoneRange(&input, &f.zone_ranges[i]);
          }
          if (ok) {
            new_files_.push_back(std::make_pair(level, f));
          } else {
            msg = "new-file zone ranges";
          }
        } else {
          msg = "new-file entry";
        }
        break;
      }

      default:
        msg = "unknown tag";
        break;
    }
  }

  if (msg == nullptr && !input.empty()) {
    msg = "invalid tag";
  }

  Status result;
  if (msg != nullptr) {
    result = Status::Corruption("VersionEdit", msg);
  }
  return result;
}

std::string VersionEdit::DebugString() const {
  std::string r("VersionEdit {");
  if (has_comparator_) {
    r += "\n  Comparator: " + comparator_;
  }
  if (has_log_number_) {
    r += "\n  LogNumber: " + std::to_string(log_number_);
  }
  if (has_next_file_number_) {
    r += "\n  NextFile: " + std::to_string(next_file_number_);
  }
  if (has_last_sequence_) {
    r += "\n  LastSeq: " + std::to_string(last_sequence_);
  }
  if (has_sorted_view_) {
    r += "\n  SortedView: " + std::to_string(sorted_view_number_);
  }
  for (const auto& [level, number] : deleted_files_) {
    r += "\n  RemoveFile: " + std::to_string(level) + " " +
         std::to_string(number);
  }
  for (const auto& [level, f] : new_files_) {
    r += "\n  AddFile: " + std::to_string(level) + " " +
         std::to_string(f.number) + " " + std::to_string(f.file_size);
  }
  r += "\n}\n";
  return r;
}

}  // namespace leveldbpp
