// Version / VersionSet: the in-memory representation of the LSM file layout
// (which SSTables live at which level), its MANIFEST persistence, and
// compaction picking.
//
// A Version is an immutable snapshot of the file layout; readers ref() the
// version they use so compactions can't delete files under them. The
// VersionSet owns the current version, hands out file numbers, tracks the
// last sequence number, and picks compactions using LevelDB's rules:
// level-0 compacts by file count, level-i by total bytes, with a per-level
// round-robin compaction pointer (which is exactly why the paper's Composite
// index cannot rely on cross-level time ordering).

#ifndef LEVELDBPP_DB_VERSION_SET_H_
#define LEVELDBPP_DB_VERSION_SET_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "db/dbformat.h"
#include "db/options.h"
#include "db/table_cache.h"
#include "db/version_edit.h"
#include "wal/log_writer.h"

namespace leveldbpp {

class Compaction;
class Version;
class VersionSet;

/// Return the smallest index i such that files[i]->largest >= key.
/// Return files.size() if there is no such file.
/// REQUIRES: files is a sorted, disjoint list of files (level > 0).
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key);

/// Returns true iff some file in `files` overlaps the user key range
/// [*smallest_user_key, *largest_user_key] (nullptr = unbounded).
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  /// Append to *iters a sequence of iterators that will together yield the
  /// contents of this Version when merged (newer sources first).
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  /// The level-0 part of AddIterators: one iterator per L0 file, newest
  /// (highest file number) first. The sorted-view read path uses this and
  /// replaces the per-level iterators with one pre-merged view.
  void AddL0Iterators(const ReadOptions&, std::vector<Iterator*>* iters);

  /// Point lookup: search L0 newest-to-oldest, then each deeper level.
  /// If found, stores the value; if the newest entry is a deletion, returns
  /// NotFound. `seq_out`/`level_out` optionally receive the sequence number
  /// and level of the winning entry.
  Status Get(const ReadOptions&, const LookupKey& key, std::string* val,
             SequenceNumber* seq_out = nullptr, int* level_out = nullptr);

  /// Collect EVERY version of `user_key` visible in the files, scanning
  /// level by level newest-first (L0 files by descending file number). Used
  /// by the Lazy index to gather posting-list fragments.
  /// fn(level, sequence, is_deletion, value); return false from fn to stop.
  Status GetFragments(
      const ReadOptions&, const Slice& user_key,
      const std::function<bool(int, SequenceNumber, bool, const Slice&)>& fn);

  /// Append to *out every L0 file whose key range covers `user_key`,
  /// newest first (descending file number). Batched lookups (MultiGet)
  /// use this to build per-file probe groups.
  void OverlappingL0Files(const Slice& user_key,
                          std::vector<FileMetaData*>* out) const;

  /// The single file at `level` (>= 1) that may contain `user_key`, or
  /// nullptr. `ikey` must be an internal-key encoding of `user_key`.
  FileMetaData* FileForKey(int level, const Slice& user_key,
                           const Slice& ikey) const;

  void Ref();
  void Unref();

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }

  const std::vector<FileMetaData*>& files(int level) const {
    return files_[level];
  }

  int NumLevels() const { return static_cast<int>(files_.size()); }

  /// Concatenating iterator over the (disjoint, sorted) files of `level`
  /// (level >= 1), opening files lazily. Caller owns the result.
  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  /// Store in *inputs all files in `level` that overlap [begin, end]
  /// (nullptr = unbounded). For level 0, expands the range to cover
  /// transitively overlapping files.
  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  /// Returns true iff some file in the specified level overlaps some part
  /// of [*smallest_user_key, *largest_user_key].
  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  std::string DebugString() const;

 private:
  friend class Compaction;
  friend class VersionSet;

  explicit Version(VersionSet* vset);
  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  VersionSet* vset_;  // VersionSet to which this Version belongs
  Version* next_;     // Next version in linked list
  Version* prev_;     // Previous version in linked list
  int refs_;          // Number of live refs to this version

  // List of files per level
  std::vector<std::vector<FileMetaData*>> files_;

  // Level that should be compacted next and its score (>= 1 means
  // compaction needed). Computed by VersionSet::Finalize().
  double compaction_score_;
  int compaction_level_;
};

class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator*);
  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  /// Apply *edit to the current version to form a new descriptor that is
  /// both saved to the MANIFEST and installed as the new current version.
  Status LogAndApply(VersionEdit* edit);

  /// Recover the last saved descriptor from persistent storage.
  Status Recover();

  Version* current() const { return current_; }

  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  /// Allocate and return a new file number.
  uint64_t NewFileNumber() { return next_file_number_++; }

  /// Arrange to reuse `file_number` unless a newer number has already been
  /// allocated. REQUIRES: it was obtained from NewFileNumber().
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) {
      next_file_number_ = file_number;
    }
  }

  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;

  // last_sequence_ is atomic so readers (snapshot selection, the index
  // layer's LastSequence()) can load it without the DB mutex; all stores
  // still happen under the DB mutex, preserving monotonicity.
  SequenceNumber LastSequence() const {
    return last_sequence_.load(std::memory_order_acquire);
  }
  void SetLastSequence(SequenceNumber s) {
    assert(s >= last_sequence_.load(std::memory_order_relaxed));
    last_sequence_.store(s, std::memory_order_release);
  }

  uint64_t LogNumber() const { return log_number_; }

  /// Number of the sorted-view artifact (<number>.svw) that matches the
  /// CURRENT version's levels >= 1 layout, or 0 when none does. Maintained
  /// by LogAndApply: an edit carrying SetSortedView installs that number;
  /// an edit that adds or deletes files in levels >= 1 without one clears
  /// it (the view's run selectors no longer describe the tree).
  uint64_t SortedViewNumber() const { return sorted_view_number_; }

  /// Pick a level and inputs for a new compaction, or nullptr if none is
  /// needed. Caller owns the result.
  Compaction* PickCompaction();

  /// Return a compaction covering [begin,end] in the specified level, or
  /// nullptr if that level has nothing overlapping. Caller owns the result.
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  /// True iff some level is over its target and needs compaction.
  bool NeedsCompaction() const {
    return current_->compaction_score_ >= 1;
  }

  /// Add all files listed in any live version to *live.
  void AddLiveFiles(std::set<uint64_t>* live);

  /// Create an iterator reading the merged contents of a compaction's
  /// inputs. Caller owns the result.
  Iterator* MakeInputIterator(Compaction* c);

  const InternalKeyComparator& icmp() const { return icmp_; }
  TableCache* table_cache() const { return table_cache_; }
  const Options* options() const { return options_; }

  /// One-line summary of files per level, e.g. "files[ 2 4 0 0 0 0 0 ]".
  std::string LevelSummary() const;

  /// Max bytes allowed at `level` before compaction triggers.
  static double MaxBytesForLevel(const Options& options, int level);

 private:
  class Builder;

  friend class Compaction;
  friend class Version;

  void Finalize(Version* v);
  void AppendVersion(Version* v);
  Status WriteSnapshot(log::Writer* log);
  void GetRange(const std::vector<FileMetaData*>& inputs,
                InternalKey* smallest, InternalKey* largest);
  void GetRange2(const std::vector<FileMetaData*>& inputs1,
                 const std::vector<FileMetaData*>& inputs2,
                 InternalKey* smallest, InternalKey* largest);
  void SetupOtherInputs(Compaction* c);

  const std::string dbname_;
  const Options* const options_;
  Env* const env_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  uint64_t next_file_number_;
  uint64_t manifest_file_number_;
  std::atomic<SequenceNumber> last_sequence_;
  uint64_t log_number_;
  uint64_t sorted_view_number_ = 0;

  // Opened lazily
  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  Version dummy_versions_;  // Head of circular doubly-linked list of versions
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next compaction at that level should start.
  // Either an empty string, or a valid InternalKey. This is LevelDB's
  // round-robin compaction pointer.
  std::vector<std::string> compact_pointer_;
};

/// A Compaction encapsulates information about one compaction.
class Compaction {
 public:
  ~Compaction();

  /// Inputs are taken from "level" and "level+1".
  int level() const { return level_; }

  /// Edit to apply to describe the compaction's output.
  VersionEdit* edit() { return &edit_; }

  /// "which" must be 0 or 1.
  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }

  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  /// True iff the compaction can be implemented by just moving a single
  /// input file to the next level (no merging or splitting).
  bool IsTrivialMove() const;

  /// Add all inputs to this compaction as delete operations to *edit.
  void AddInputDeletions(VersionEdit* edit);

  /// True iff we are positively sure that no data at levels greater than
  /// level+1 contains `user_key` (so tombstones / lazy deletion markers can
  /// be dropped).
  bool IsBaseLevelForKey(const Slice& user_key);

  /// Release the input version (once the compaction is applied).
  void ReleaseInputs();

 private:
  friend class VersionSet;
  friend class Version;

  Compaction(const Options* options, int level);

  int level_;
  uint64_t max_output_file_size_;
  Version* input_version_;
  VersionEdit edit_;

  // Each compaction reads inputs from level_ and level_+1.
  std::vector<FileMetaData*> inputs_[2];

  // State for implementing IsBaseLevelForKey: level_ptrs_ holds indices
  // into input_version_->files_, advanced monotonically since compaction
  // keys are emitted in order.
  std::vector<size_t> level_ptrs_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_VERSION_SET_H_
