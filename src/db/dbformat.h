// Internal key format: user_key · (sequence << 8 | type), exactly as in
// LevelDB. Sequence numbers give the paper's "insertion time" total order
// used by top-K; the type distinguishes values from deletion tombstones.

#ifndef LEVELDBPP_DB_DBFORMAT_H_
#define LEVELDBPP_DB_DBFORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "table/filter_policy.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/slice.h"

namespace leveldbpp {

typedef uint64_t SequenceNumber;

// Leave eight bits empty at the bottom so a type and sequence# can be packed
// together into 64-bits.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// kValueTypeForSeek defines the ValueType that should be passed when
// constructing a ParsedInternalKey object for seeking to a particular
// sequence number (since we sort sequence numbers in decreasing order and
// the value type is embedded as the low 8 bits in the sequence number in
// internal keys, we need to use the highest-numbered ValueType).
static const ValueType kValueTypeForSeek = kTypeValue;

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

/// Append the serialization of `key` to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

/// Decode an internal key; returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return static_cast<ValueType>(
      DecodeFixed64(internal_key.data() + internal_key.size() - 8) & 0xff);
}

/// Orders internal keys by (user key asc, sequence desc, type desc): newer
/// versions of a user key sort FIRST.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}
  const char* Name() const override;
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// Filter policy wrapper that converts internal keys into user keys before
/// delegating to a user-key policy.
class InternalFilterPolicy : public FilterPolicy {
 public:
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}
  const char* Name() const override;
  void CreateFilter(const Slice* keys, int n, std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

 private:
  const FilterPolicy* const user_policy_;
};

/// InternalKey: owning wrapper to avoid mixing internal/user key Slices.
class InternalKey {
 public:
  InternalKey() {}  // Leave rep_ as empty to indicate it is invalid
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

inline int InternalKeyComparator::Compare(const Slice& akey,
                                          const Slice& bkey) const {
  // Order by:
  //    increasing user key (according to user-supplied comparator)
  //    decreasing sequence number
  //    decreasing type (though sequence# should be enough to disambiguate)
  int r = user_comparator_->Compare(ExtractUserKey(akey), ExtractUserKey(bkey));
  if (r == 0) {
    const uint64_t anum = DecodeFixed64(akey.data() + akey.size() - 8);
    const uint64_t bnum = DecodeFixed64(bkey.data() + bkey.size() - 8);
    if (anum > bnum) {
      r = -1;
    } else if (anum < bnum) {
      r = +1;
    }
  }
  return r;
}

/// LookupKey: bundles the memtable key / internal key encodings for a point
/// lookup at a given snapshot sequence.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;
  ~LookupKey();

  /// Key for a MemTable lookup (length-prefixed internal key).
  Slice memtable_key() const { return Slice(start_, end_ - start_); }

  /// Internal key (user key + packed seq/type).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }

  /// The user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  // We construct a char array of the form:
  //    klength  varint32               <-- start_
  //    userkey  char[klength]          <-- kstart_
  //    tag      uint64
  //                                    <-- end_
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoid allocation for short keys
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_DBFORMAT_H_
