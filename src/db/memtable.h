// MemTable: in-memory write buffer backed by a skiplist over internal keys.
//
// When the DB indexes secondary attributes (Embedded Index), the memtable
// additionally maintains an in-memory ordered index (std::multimap — a
// red-black tree, standing in for the paper's "in-memory B-tree on the
// secondary attribute(s)") from attribute value to record, so secondary
// LOOKUP / RANGELOOKUP can query unflushed data.

#ifndef LEVELDBPP_DB_MEMTABLE_H_
#define LEVELDBPP_DB_MEMTABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "db/dbformat.h"
#include "db/skiplist.h"
#include "table/attribute_extractor.h"
#include "table/iterator.h"
#include "util/arena.h"

namespace leveldbpp {

class MemTable {
 public:
  /// MemTables are reference counted. The initial reference count is zero
  /// and the caller must call Ref() at least once.
  /// `attributes`/`extractor` may be empty/null for tables with no embedded
  /// secondary index (index tables, plain stores).
  explicit MemTable(const InternalKeyComparator& comparator,
                    std::vector<std::string> attributes = {},
                    const AttributeExtractor* extractor = nullptr);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Ref counting is atomic: readers pin a memtable under the DB mutex but
  // may drop their pin from any thread (e.g. iterator cleanups) without it.
  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    int previous = refs_.fetch_sub(1, std::memory_order_acq_rel);
    assert(previous >= 1);
    if (previous == 1) {
      delete this;
    }
  }

  /// Approximation of the bytes of data in use by this structure (drives
  /// the flush trigger).
  size_t ApproximateMemoryUsage();

  /// Iterator over internal keys, sorted per InternalKeyComparator.
  Iterator* NewIterator();

  /// Add an entry that maps key to value at the specified sequence number
  /// and with the specified type (value or deletion tombstone).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If memtable contains a value for key, store it in *value and return
  /// true. If it contains a deletion for key, store NotFound() in *status
  /// and return true. Else return false.
  bool Get(const LookupKey& key, std::string* value, Status* s);

  /// Newest version of `user_key` with sequence <= max_seq, regardless of
  /// type. Returns false if the memtable has no such entry. Used by the
  /// Lazy index's memtable-local posting merge, by GetLite, and (with a
  /// snapshot's sequence as the ceiling) by snapshot point reads.
  bool GetNewest(const Slice& user_key, std::string* value,
                 SequenceNumber* seq, bool* is_deletion,
                 SequenceNumber max_seq = kMaxSequenceNumber);

  /// Match callback: (user key, sequence, record value).
  using SecondaryMatchFn =
      std::function<void(const Slice&, SequenceNumber, const Slice&)>;

  /// Invoke `fn` for every kTypeValue entry whose `attr` value lies in
  /// [lo, hi] (inclusive). Entries superseded by a newer version are still
  /// reported; callers perform the validity check, as all index variants in
  /// the paper do.
  void SecondaryLookup(const std::string& attr, const Slice& lo,
                       const Slice& hi, const SecondaryMatchFn& fn) const;

  /// Number of entries added.
  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  ~MemTable();  // Private since only Unref() should be used to delete it

  KeyComparator comparator_;
  std::atomic<int> refs_;
  Arena arena_;
  Table table_;  // Skiplist: single writer, lock-free concurrent readers.
  std::atomic<uint64_t> num_entries_;

  std::vector<std::string> attributes_;
  const AttributeExtractor* extractor_;
  // Per attribute: attr value -> pointer to the skiplist entry buffer.
  // Lookup decodes key/seq/value from the entry. Unlike the skiplist, the
  // multimap is not safe for concurrent read/insert, so it has its own
  // reader-writer lock (writers are already serialized by the writer queue).
  mutable std::shared_mutex secondary_mutex_;
  std::vector<std::multimap<std::string, const char*>> secondary_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_MEMTABLE_H_
