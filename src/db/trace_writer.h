// TraceWriter: the built-in EventListener that appends every engine event
// as one JSON object per line (JSONL) through Env, e.g.:
//
//   {"event":"flush.end","seq":3,"ts_micros":1723047013042,"db":"/db/p",
//    "file_number":7,"file_size":53211,"micros":1840,"status":"OK"}
//
// Records are flushed after every event so a trace survives a crash up to
// the last completed line. Write failures are sticky and reported via
// status(); they never propagate into the engine (the listener contract).
// Thread-safe: events arriving from different threads are serialized by an
// internal mutex, and `seq` gives a total order.

#ifndef LEVELDBPP_DB_TRACE_WRITER_H_
#define LEVELDBPP_DB_TRACE_WRITER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "db/event_listener.h"
#include "json/json.h"

namespace leveldbpp {

class Env;
class WritableFile;

/// Canonical trace event names, one per EventListener callback, in
/// callback-declaration order. docs/METRICS.md is checked against this
/// list by stats_doc_test.
extern const char* const kTraceEventNames[];
extern const size_t kNumTraceEvents;

class TraceWriter : public EventListener {
 public:
  /// Create (truncating) `path` and return a listener writing to it.
  static Status Open(Env* env, const std::string& path,
                     std::shared_ptr<TraceWriter>* out);
  ~TraceWriter() override;

  /// First write/flush error, if any (sticky).
  Status status() const;

  void OnFlushBegin(const FlushJobInfo& info) override;
  void OnFlushEnd(const FlushJobInfo& info) override;
  void OnCompactionBegin(const CompactionJobInfo& info) override;
  void OnCompactionEnd(const CompactionJobInfo& info) override;
  void OnWalSync(const WalSyncInfo& info) override;
  void OnBackgroundError(const BackgroundErrorInfo& info) override;
  void OnBlockQuarantined(const BlockQuarantinedInfo& info) override;
  void OnIndexRebuild(const IndexRebuildInfo& info) override;

 private:
  TraceWriter(Env* env, std::unique_ptr<WritableFile> file);

  /// Serialize {base fields + `fields`} as one line and append it.
  void Emit(const char* event, json::Object fields);

  Env* const env_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;  // guarded by mu_
  uint64_t next_seq_ = 0;               // guarded by mu_
  Status status_;                       // guarded by mu_
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_TRACE_WRITER_H_
