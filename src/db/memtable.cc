#include "db/memtable.h"

#include <mutex>

#include "util/coding.h"

namespace leveldbpp {

static Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: we assume "p" is not corrupted
  return Slice(p, len);
}

MemTable::MemTable(const InternalKeyComparator& comparator,
                   std::vector<std::string> attributes,
                   const AttributeExtractor* extractor)
    : comparator_(comparator),
      refs_(0),
      table_(comparator_, &arena_),
      num_entries_(0),
      attributes_(std::move(attributes)),
      extractor_(extractor),
      secondary_(attributes_.size()) {}

MemTable::~MemTable() { assert(refs_ == 0); }

size_t MemTable::ApproximateMemoryUsage() { return arena_.MemoryUsage(); }

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  // Internal keys are encoded as length-prefixed strings.
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

// Encode a suitable internal key target for the skiplist from a target
// internal key: length-prefix it.
static const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  MemTableIterator(const MemTableIterator&) = delete;
  MemTableIterator& operator=(const MemTableIterator&) = delete;

  ~MemTableIterator() override = default;

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;  // For passing to EncodeKey
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

void MemTable::Add(SequenceNumber s, ValueType type, const Slice& key,
                   const Slice& value) {
  // Format of an entry is concatenation of:
  //  key_size     : varint32 of internal_key.size()
  //  key bytes    : char[internal_key.size()]
  //  tag          : uint64((sequence << 8) | type)
  //  value_size   : varint32 of value.size()
  //  value bytes  : char[value.size()]
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, (s << 8) | type);
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_++;

  // Maintain the in-memory secondary index over unflushed records.
  if (type == kTypeValue && extractor_ != nullptr) {
    std::string attr_value;
    std::unique_lock<std::shared_mutex> lock(secondary_mutex_);
    for (size_t i = 0; i < attributes_.size(); i++) {
      if (extractor_->Extract(value, attributes_[i], &attr_value)) {
        secondary_[i].emplace(attr_value, buf);
      }
    }
  }
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // entry format is:
    //    klength  varint32
    //    userkey  char[klength-8]
    //    tag      uint64
    //    vlength  varint32
    //    value    char[vlength]
    // Check that it belongs to same user key. We do not check the sequence
    // number since the Seek() call above should have skipped all entries
    // with overly large sequence numbers.
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.user_comparator()->Compare(
            Slice(key_ptr, key_length - 8), key.user_key()) == 0) {
      // Correct user key
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

bool MemTable::GetNewest(const Slice& user_key, std::string* value,
                         SequenceNumber* seq, bool* is_deletion,
                         SequenceNumber max_seq) {
  LookupKey lkey(user_key, max_seq);
  Table::Iterator iter(&table_);
  iter.Seek(lkey.memtable_key().data());
  if (!iter.Valid()) return false;
  const char* entry = iter.key();
  uint32_t key_length;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
  if (comparator_.comparator.user_comparator()->Compare(
          Slice(key_ptr, key_length - 8), user_key) != 0) {
    return false;
  }
  const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
  *seq = tag >> 8;
  *is_deletion = (static_cast<ValueType>(tag & 0xff) == kTypeDeletion);
  if (!*is_deletion) {
    Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
    value->assign(v.data(), v.size());
  } else {
    value->clear();
  }
  return true;
}

void MemTable::SecondaryLookup(const std::string& attr, const Slice& lo,
                               const Slice& hi,
                               const SecondaryMatchFn& fn) const {
  std::shared_lock<std::shared_mutex> lock(secondary_mutex_);
  for (size_t i = 0; i < attributes_.size(); i++) {
    if (attributes_[i] != attr) continue;
    const auto& index = secondary_[i];
    auto it = index.lower_bound(lo.ToString());
    const std::string hi_str = hi.ToString();
    for (; it != index.end() && it->first <= hi_str; ++it) {
      const char* entry = it->second;
      uint32_t key_length;
      const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      Slice user_key(key_ptr, key_length - 8);
      Slice value = GetLengthPrefixedSliceAt(key_ptr + key_length);
      fn(user_key, tag >> 8, value);
    }
    return;
  }
}

}  // namespace leveldbpp
