// Snapshot bookkeeping: a doubly-linked list of sequence numbers pinned by
// live Snapshot handles, guarded by the DB mutex.
//
// A snapshot is nothing but a sequence number S: reads done through it see
// exactly the writes with sequence <= S. The list exists so compaction can
// compute the smallest pinned sequence and retain any record version that
// some live snapshot might still need (DoCompactionWork's drop rule).

#ifndef LEVELDBPP_DB_SNAPSHOT_H_
#define LEVELDBPP_DB_SNAPSHOT_H_

#include <cassert>

#include "db/db.h"
#include "db/dbformat.h"

namespace leveldbpp {

class SnapshotList;

// Each SnapshotImpl is a node in a circular doubly-linked list anchored at
// SnapshotList::head_, kept in ascending sequence order (new snapshots are
// appended at the tail and sequences only grow).
class SnapshotImpl : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence) : sequence_(sequence) {}

  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class SnapshotList;

  SnapshotImpl* prev_;
  SnapshotImpl* next_;

  const SequenceNumber sequence_;

#if !defined(NDEBUG)
  SnapshotList* list_ = nullptr;
#endif
};

class SnapshotList {
 public:
  SnapshotList() : head_(0) {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool empty() const { return head_.next_ == &head_; }
  SnapshotImpl* oldest() const {
    assert(!empty());
    return head_.next_;
  }
  SnapshotImpl* newest() const {
    assert(!empty());
    return head_.prev_;
  }

  // Creates a SnapshotImpl and appends it to the end of the list.
  SnapshotImpl* New(SequenceNumber sequence) {
    assert(empty() || newest()->sequence_ <= sequence);

    SnapshotImpl* snapshot = new SnapshotImpl(sequence);

#if !defined(NDEBUG)
    snapshot->list_ = this;
#endif
    snapshot->next_ = &head_;
    snapshot->prev_ = head_.prev_;
    snapshot->prev_->next_ = snapshot;
    snapshot->next_->prev_ = snapshot;
    return snapshot;
  }

  // Removes a SnapshotImpl from this list and deletes it.
  void Delete(const SnapshotImpl* snapshot) {
#if !defined(NDEBUG)
    assert(snapshot->list_ == this);
#endif
    snapshot->prev_->next_ = snapshot->next_;
    snapshot->next_->prev_ = snapshot->prev_;
    delete snapshot;
  }

 private:
  // Dummy head of the circular doubly-linked list of snapshots.
  SnapshotImpl head_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_SNAPSHOT_H_
