#include "db/table_cache.h"

#include "db/filename.h"
#include "env/env.h"
#include "util/coding.h"

namespace leveldbpp {

struct TableAndFile {
  std::unique_ptr<RandomAccessFile> file;
  std::unique_ptr<Table> table;
};

static void DeleteEntry(const Slice&, void* value) {
  delete reinterpret_cast<TableAndFile*>(value);
}

TableCache::TableCache(const std::string& dbname, const Options& options,
                       int entries)
    : dbname_(dbname), options_(options), cache_(NewLRUCache(entries)) {}

TableCache::~TableCache() = default;

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             Cache::Handle** handle) {
  Status s;
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) return s;

  // Miss. Win the right to open the file, or wait for the winner: without
  // this, concurrent readers hitting a cold file would each open + parse it
  // and insert duplicate entries (the losers' work thrown away at eviction).
  {
    std::unique_lock<std::mutex> lock(open_mu_);
    while (opening_.count(file_number) != 0) {
      opened_cv_.wait(lock);
    }
    // The winner may have inserted while we waited (or between our Lookup
    // and the lock); re-check before claiming the open.
    *handle = cache_->Lookup(key);
    if (*handle != nullptr) return s;
    opening_.insert(file_number);
  }

  std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  Table* table = nullptr;
  s = options_.env->NewRandomAccessFile(fname, &file);
  if (s.ok()) {
    s = Table::Open(options_, file.get(), file_size, &table);
  }
  if (s.ok()) {
    table->SetProvenance(file_number, quarantine_);
  }

  if (!s.ok()) {
    assert(table == nullptr);
    // We do not cache error results so that if the error is transient,
    // or somebody repairs the file, we recover automatically.
  } else {
    TableAndFile* tf = new TableAndFile;
    tf->file = std::move(file);
    tf->table.reset(table);
    *handle = cache_->Insert(key, tf, 1, &DeleteEntry);
  }

  {
    std::lock_guard<std::mutex> lock(open_mu_);
    opening_.erase(file_number);
  }
  opened_cv_.notify_all();
  return s;
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table =
      reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table.get();
  Iterator* result = table->NewIterator(options);
  Cache* cache = cache_.get();
  result->RegisterCleanup([cache, handle]() { cache->Release(handle); });
  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return result;
}

Status TableCache::Get(const ReadOptions& options, uint64_t file_number,
                       uint64_t file_size, const Slice& k, void* arg,
                       void (*handle_result)(void*, const Slice&,
                                             const Slice&)) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (s.ok()) {
    Table* t =
        reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table.get();
    s = t->InternalGet(options, k, arg, handle_result);
    cache_->Release(handle);
  }
  return s;
}

Status TableCache::WithTable(uint64_t file_number, uint64_t file_size,
                             const std::function<void(Table*)>& fn) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (s.ok()) {
    Table* t =
        reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table.get();
    fn(t);
    cache_->Release(handle);
  }
  return s;
}

Status TableCache::Pin(uint64_t file_number, uint64_t file_size,
                       Table** table, Cache::Handle** handle) {
  *table = nullptr;
  *handle = nullptr;
  Status s = FindTable(file_number, file_size, handle);
  if (s.ok()) {
    *table =
        reinterpret_cast<TableAndFile*>(cache_->Value(*handle))->table.get();
  }
  return s;
}

void TableCache::Unpin(Cache::Handle* handle) { cache_->Release(handle); }

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace leveldbpp
