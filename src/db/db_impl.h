// DBImpl: the LSM engine. Thread-safe, with two write-path modes:
//
//  * Synchronous (default, Options::background_compaction == false): the
//    paper's deterministic design (single-threaded LevelDB "so we can easily
//    isolate and explain the performance differences of the various indexing
//    methods") — memtable flushes and multi-level compactions run inline on
//    the writing thread when a trigger is hit, making runs deterministic and
//    I/O attribution exact.
//  * Background (Options::background_compaction == true): flushes and
//    size-triggered compactions run on Env's background thread; Write
//    stalls through the classic slowdown/stop ladder instead of compacting
//    inline.
//
// Both modes share one concurrency protocol: a single mutex_ guards all
// mutable state, concurrent writers park on a LevelDB-style group-commit
// queue (the front writer builds one combined batch, appends it to the WAL
// once, and applies it to the memtable), and readers pin memtables /
// versions by reference count so they never block on compaction I/O. See
// DESIGN.md "Concurrency model".
//
// Beyond the public DB surface, DBImpl exposes the internal hooks the
// secondary-index layer needs:
//   * GetWithMeta   — Get that also reports sequence number & level,
//   * IsNewestVersion — the paper's GetLite: metadata-only check whether a
//     (key, seq) record has been superseded,
//   * NewLevelIterators — one internal-key iterator per recency bucket
//     (memtable, each L0 file, each level), for level-by-level scans,
//   * SecondaryScan hooks over the embedded per-block filters/zone maps,
//   * memtable secondary lookup.

#ifndef LEVELDBPP_DB_DB_IMPL_H_
#define LEVELDBPP_DB_DB_IMPL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>

#include "db/db.h"
#include "db/dbformat.h"
#include "db/memtable.h"
#include "db/snapshot.h"
#include "db/version_set.h"
#include "db/write_batch.h"
#include "env/statistics.h"
#include "port/port.h"
#include "port/thread_annotations.h"
#include "table/quarantine.h"
#include "table/sorted_view.h"
#include "wal/log_writer.h"

namespace leveldbpp {

class DBImpl : public DB {
 public:
  DBImpl(const Options& raw_options, const std::string& dbname);
  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;
  ~DBImpl() override;

  /// Typed variant of DB::Open for internal clients (the index layer).
  static Status Open(const Options& options, const std::string& name,
                     DBImpl** dbptr);

  // ---- DB interface ----
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  /// Apply `updates` atomically. `updates == nullptr` forces a memtable
  /// rotation + flush through the writer queue (internal use: CompactAll).
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  /// Batched Get: one version/memtable pin for the whole batch, keys
  /// grouped by SSTable within each level (each table resolved and pinned
  /// once per group), groups dispatched onto the shared read pool when
  /// Options::read_parallelism > 1. Level boundaries are barriers, so the
  /// newest-residence-wins rule is exactly Get's.
  Status MultiGet(const ReadOptions& options, const std::vector<Slice>& keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  /// Clear a transient sticky background error (rotating the WAL — the old
  /// one may end in a torn append — and restarting pending flush/compaction
  /// work). Permanent errors (corruption) are returned unchanged.
  Status Resume() override;
  /// Bulk load: build SSTables from `feed` and splice them into the version
  /// at the deepest non-overlapping level (contract in db.h). Any memtable
  /// contents are flushed first so the fresh sequence numbers cannot be
  /// shadowed by older in-memory records.
  Status IngestExternalFiles(const IngestFeed& feed,
                             IngestStats* stats) override {
    return IngestExternalFiles(feed, stats, /*force_level0=*/false);
  }
  /// Internal variant: with `force_level0` every built file splices at
  /// level 0 regardless of overlap, making the batch the NEWEST residence.
  /// The Lazy index's bulk load into a non-empty table needs this: its
  /// merged posting fragments contain re-serialized OLD entries, and the
  /// level-by-level scan's early stop is only sound when such a fragment
  /// shadows (sits above) every fragment it merged.
  Status IngestExternalFiles(const IngestFeed& feed, IngestStats* stats,
                             bool force_level0);

  // ---- Extended surface for the secondary-index layer ----

  /// Where a record was found.
  struct RecordLocation {
    SequenceNumber seq = 0;
    int level = -1;  // -1 = memtable, -2 = immutable memtable, >= 0 = level
  };

  /// Get that also reports the winning record's sequence number and level.
  Status GetWithMeta(const ReadOptions& options, const Slice& key,
                     std::string* value, RecordLocation* loc);

  /// Batched GetWithMeta (same grouping/parallelism as MultiGet). The
  /// stand-alone indexes' batched candidate resolution is built on this.
  Status MultiGetWithMeta(const ReadOptions& options,
                          const std::vector<Slice>& keys,
                          std::vector<std::string>* values,
                          std::vector<RecordLocation>* locs,
                          std::vector<Status>* statuses);

  /// The paper's GetLite: determine whether the record (key, seq) is still
  /// the newest version of `key`, preferring in-memory metadata (file
  /// ranges, primary-key blooms). Falls back to a bounded confirming block
  /// read only when a bloom filter reports a possible newer version
  /// (counted as kGetLiteConfirmReads).
  ///
  /// When the caller knows where the record lives, passing `record_level`
  /// (-1 = memtable/imm) and, for level-0 records, `record_file` restricts
  /// the probe to strictly NEWER residences — the paper's "check levels 0
  /// to currentlevel-1" optimization; the record's own file is never
  /// probed, so the common case costs zero I/O. With the defaults the
  /// whole store is checked.
  bool IsNewestVersion(const Slice& key, SequenceNumber seq,
                       int record_level = INT32_MAX,
                       uint64_t record_file = 0);

  /// Collect every visible fragment (version) of `key` from memtable,
  /// immutable memtable, each L0 file and each level, newest first.
  /// fn(recency_rank, seq, is_deletion, value); return false to stop early.
  /// recency_rank increases with age (0 = memtable).
  Status GetFragments(
      const ReadOptions& options, const Slice& key,
      const std::function<bool(int, SequenceNumber, bool, const Slice&)>& fn);

  /// Internal-key iterators in recency order: memtable, immutable memtable,
  /// every L0 file (newest first), then one concatenated iterator per level
  /// >= 1. Caller owns the iterators. The returned holder pins the current
  /// version and memtables until destroyed.
  struct LevelIterators {
    std::vector<Iterator*> iters;  // Owned
    // First index in `iters` that is a disk level (memtable iterators come
    // before it); used by callers that only care about disk residency.
    size_t first_disk = 0;
    ~LevelIterators();
    LevelIterators() = default;
    LevelIterators(LevelIterators&&) = default;

   private:
    friend class DBImpl;
    std::vector<std::function<void()>> cleanups_;
  };
  Status NewLevelIterators(const ReadOptions& options, LevelIterators* out);

  /// Embedded-index scan over disk data, level by level: invokes
  /// `block_visitor` for every (table, block ordinal) whose secondary
  /// filters/zone maps may contain attr in [lo, hi]; `level_boundary` is
  /// called after finishing each recency bucket (L0 file or level) with the
  /// largest FileMetaData::max_seq among the files not yet scanned (0 when
  /// none remain) and may return false to stop the scan (top-K satisfied
  /// and no unscanned file can hold a newer match — the bound makes the
  /// early exit sound even when ingested or compacted files break the
  /// newest-level-first ordering).
  /// Matches in the (immutable) memtables must be handled separately via
  /// MemTableSecondaryLookup.
  Status EmbeddedScan(
      const ReadOptions& options, const std::string& attr, const Slice& lo,
      const Slice& hi,
      const std::function<void(Table*, size_t /*block*/, int /*level*/,
                               uint64_t /*file*/)>& block_visitor,
      const std::function<bool(SequenceNumber /*remaining_max_seq*/)>&
          level_boundary);

  /// One candidate data block surfaced by the embedded per-block filters.
  struct BlockCandidate {
    Table* table;  // Pinned for the duration of the bucket visitor
    size_t block;
    int level;
    uint64_t file;
  };

  /// Batched variant of EmbeddedScan for the parallel read path: per
  /// recency bucket (one L0 file, or one whole level >= 1), collects every
  /// candidate block — probing the bucket's files' bloom/zone-map meta
  /// concurrently when Options::read_parallelism > 1 — and hands the
  /// bucket's candidates to `bucket_visitor` in (file, block) order with
  /// all tables pinned. `level_boundary` runs after each bucket exactly as
  /// in EmbeddedScan (same remaining-max-seq bound), keeping Algorithm 5's
  /// level-boundary termination as the only early-exit point.
  Status EmbeddedScanBuckets(
      const ReadOptions& options, const std::string& attr, const Slice& lo,
      const Slice& hi,
      const std::function<void(const std::vector<BlockCandidate>&)>&
          bucket_visitor,
      const std::function<bool(SequenceNumber /*remaining_max_seq*/)>&
          level_boundary);

  /// Full scan of the newest visible version of every key, exposing each
  /// record's sequence number: fn(user_key, seq, value); return false to
  /// stop. Used by the NoIndex baseline (top-K needs sequence numbers the
  /// public iterator hides).
  Status ScanAll(const ReadOptions& options,
                 const std::function<bool(const Slice&, SequenceNumber,
                                          const Slice&)>& fn);

  /// Lookup [lo,hi] of `attr` in the live + immutable memtables' in-memory
  /// secondary index.
  void MemTableSecondaryLookup(const std::string& attr, const Slice& lo,
                               const Slice& hi,
                               const MemTable::SecondaryMatchFn& fn);

  /// Flush the memtable and compact every level fully (used by "Static"
  /// workloads that build the index before querying).
  Status CompactAll();

  /// Drive pending size-triggered compactions to quiescence.
  Status MaybeCompact();

  /// Block until the background thread has flushed the immutable memtable
  /// and drained pending size-triggered compactions (no-op in synchronous
  /// mode, where triggers never outlive the write that tripped them).
  Status WaitForBackgroundWork();

  /// Total bytes across all SSTables plus the live memtable (Figure 8a).
  uint64_t TotalSizeBytes();

  /// Point-in-time view of the write-stall ladder, for backpressure
  /// surfacing (ShardedDB::ShardHealth / the HEALTH wire op). `rung` is the
  /// ladder step a write arriving NOW would hit: 0 = admitted immediately,
  /// 1 = L0 slowdown delay, 2 = immutable-memtable queue full, 3 = L0 stop.
  /// Higher rungs are sicker; `suggested_retry_micros` is the backoff a
  /// shed writer should apply before retrying (0 when healthy). A sticky
  /// background error is reported alongside — it gates writes regardless of
  /// the rung and clears only via Resume()/reopen.
  struct WriteStallState {
    int rung = 0;
    int l0_files = 0;
    size_t imm_queue_depth = 0;
    size_t imm_queue_capacity = 1;
    Status bg_error;
    uint64_t suggested_retry_micros = 0;
  };
  WriteStallState GetWriteStallState();

  const Options& options() const { return options_; }
  Statistics* statistics() const { return options_.statistics; }
  SequenceNumber LastSequence() const { return versions_->LastSequence(); }
  /// The sequence number the next single-record write will carry, for
  /// callers that must know it BEFORE issuing the write (SecondaryDB's
  /// index-first crash ordering). With Options::shared_sequence the value
  /// is CONSUMED from the shared counter and the caller must pass it back
  /// via WriteOptions::assigned_seq; without, it is a prediction that holds
  /// under the documented single-writer requirement (passing it back as
  /// assigned_seq then changes nothing and keeps the two modes uniform).
  SequenceNumber ClaimNextSequence() {
    if (options_.shared_sequence != nullptr) {
      return options_.shared_sequence->fetch_add(1,
                                                 std::memory_order_relaxed) +
             1;
    }
    return LastSequence() + 1;
  }
  VersionSet* versions() { return versions_.get(); }

 private:
  friend class DB;

  // One parked Write() call; the queue head performs the combined write.
  struct Writer;

  Status Recover(VersionEdit* edit) EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status RecoverLogFile(uint64_t log_number, VersionEdit* edit,
                        SequenceNumber* max_sequence)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  /// `meta_out`, when non-null, receives the produced L0 table's metadata
  /// (listeners report its number/size in OnFlushEnd).
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit,
                          FileMetaData* meta_out = nullptr)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Invoke `fn` on every Options::listeners entry, swallowing listener
  /// exceptions. Must be called with mutex_ NOT held.
  void NotifyListeners(const std::function<void(EventListener*)>& fn);

  /// Blocks until mem_ has room (rotating / flushing / stalling as the mode
  /// dictates). `force` rotates even a non-full memtable. With `no_stall`
  /// (background mode only) the ladder never parks: any rung that would
  /// delay or wait returns Status::Busy instead, leaving all state
  /// untouched so the caller can retry later.
  Status MakeRoomForWrite(bool force, bool no_stall = false)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Total bytes held by queued immutable memtables (the stall ladder's
  /// backpressure signal with pipelined flushes).
  uint64_t QueuedImmBytes() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Retire mem_ into the immutable queue and start a fresh memtable +
  /// WAL. On success mem_ is empty and the queue gained one entry tagged
  /// with the old WAL's number. Shared by MakeRoomForWrite and Resume.
  Status RotateMemTable() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Collapse queued writers into one batch; see db_impl.cc.
  WriteBatch* BuildBatchGroup(Writer** last_writer, int* group_size)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Make `s` the sticky background error (first error wins) and wake every
  /// stalled waiter. Once set, Put/Delete/Write reject immediately with it;
  /// only Resume() (transient errors) or reopening the DB clears the state.
  void RecordBackgroundError(const Status& s) EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Absorb one background-work failure: if `s` is transient (an I/O error,
  /// not corruption) and the Options::bg_error_retries budget is not
  /// exhausted, sleeps with exponential backoff (mutex released) and returns
  /// true — the caller should retry the work. Otherwise records `s` as the
  /// sticky background error and returns false.
  bool MaybeRetryBackgroundError(const Status& s)
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// A successful unit of background work after >= 1 absorbed failures:
  /// reset the retry budget and count the auto-recovery.
  void NoteBackgroundWorkSucceeded() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// Schedule background work if any is pending (background mode only).
  void MaybeScheduleCompaction() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  static void BGWork(void* db);
  void BackgroundCall();

  /// Serialize flush/compaction work: at most one thread (front writer,
  /// background worker, or manual-compaction caller) may run
  /// CompactMemTable / DoCompactionWork at a time.
  void AcquireCompactionToken() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void ReleaseCompactionToken() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  Status CompactMemTable() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status BackgroundCompaction() EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Status DoCompactionWork(Compaction* c) EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  void RemoveObsoleteFiles() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// With Options::sorted_views, sweep levels >= 1 once, persist the
  /// <number>.svw artifact, and record it in the MANIFEST. No-op (beyond
  /// clearing the in-memory cache) when fewer than two levels are
  /// non-empty. A failed build is absorbed — the view is an optimization,
  /// readers just keep heap-merging. Callers must hold the compaction
  /// token so the layout cannot shift under the sweep (the one writer
  /// that bypasses the token, IngestExternalFiles, is detected by
  /// re-validating the layout before install).
  void MaybeRebuildSortedView() EXCLUSIVE_LOCKS_REQUIRED(mutex_);

  /// The SortedView matching the MANIFEST's current sorted-view number,
  /// loading <number>.svw on first use after reopen. nullptr when no view
  /// is current (readers fall back to the heap merge).
  std::shared_ptr<const SortedView> GetOrLoadSortedView()
      EXCLUSIVE_LOCKS_REQUIRED(mutex_);
  Iterator* NewInternalIterator(const ReadOptions&, SequenceNumber* seq,
                                std::vector<std::function<void()>>* cleanups);
  /// Apply the Lazy-index memtable-local merge to a Put value. Returns the
  /// value to insert (merged with the memtable's current newest fragment).
  std::string MaybeMergeWithMemTable(const Slice& key, const Slice& value);

  // Constant after construction
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const InternalFilterPolicy internal_filter_policy_;
  const Options options_;  // options_.comparator == &internal_comparator_
  const std::string dbname_;

  // Checksum-failed (file, block) pairs seen by this DB's tables; reads
  // fall through past quarantined blocks in non-paranoid mode. Declared
  // before table_cache_ so it outlives the cached Tables that point at it
  // (via Table::SetProvenance). Exposed in the "leveldbpp.stats" property.
  BlockQuarantine quarantine_;

  std::unique_ptr<TableCache> table_cache_;

  // Guards all mutable state below. Flush/compaction I/O and the WAL append
  // + memtable insert of the front writer run with the mutex RELEASED;
  // in-flight state is protected by memtable/version refs, the writer
  // queue, pending_outputs_, and the compaction token.
  port::Mutex mutex_;
  std::atomic<bool> shutting_down_{false};
  // Signalled when background work finishes, the compaction token is
  // released, or an imm_ flush completes (the stall ladder waits here).
  port::CondVar background_work_finished_signal_;

  MemTable* mem_;
  // Immutable memtables awaiting flush, oldest at the front. Each entry
  // remembers the WAL that holds its data so CompactMemTable can advance
  // the MANIFEST's log number only past fully-flushed logs (a crash must
  // be able to replay every queued memtable still in the queue). Depth is
  // bounded by Options::max_immutable_memtables; the classic single-slot
  // behavior is a queue of capacity 1. CompactMemTable drains the FRONT
  // entry only, so L0 files keep recency order.
  struct ImmEntry {
    MemTable* mem;
    uint64_t log_number;  // WAL that contains this memtable's data
  };
  std::deque<ImmEntry> imm_queue_ GUARDED_BY(mutex_);
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ GUARDED_BY(mutex_);
  std::unique_ptr<log::Writer> log_;

  // Group-commit writer queue (protocol in DBImpl::Write).
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  WriteBatch tmp_batch_ GUARDED_BY(mutex_);

  std::unique_ptr<VersionSet> versions_ GUARDED_BY(mutex_);

  // Sequence numbers pinned by live GetSnapshot() handles; compaction's
  // drop rule retains any record version the oldest entry can still see.
  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Cache of the current sorted view (number ==
  // versions_->SortedViewNumber()); iterators share it by shared_ptr so a
  // rebuild never invalidates a live iterator's copy.
  std::shared_ptr<const SortedView> sorted_view_cache_ GUARDED_BY(mutex_);

  // Table files being written by an in-progress flush/compaction; these are
  // in no Version yet, so RemoveObsoleteFiles must not delete them.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  bool background_compaction_scheduled_ GUARDED_BY(mutex_) = false;
  bool compaction_token_held_ GUARDED_BY(mutex_) = false;
  // Set while CompactMemTable is flushing imm_. A flush only appends an L0
  // file, so it may run concurrently with a compaction merge (the mutex
  // serializes the MANIFEST updates); this flag just prevents two threads
  // from flushing the same imm_. See MakeRoomForWrite's inline-flush rung.
  bool flush_in_progress_ GUARDED_BY(mutex_) = false;
  // Set while an IngestExternalFiles call is splicing files; a second
  // concurrent ingest is rejected (sequence allocation would interleave).
  bool ingest_in_progress_ GUARDED_BY(mutex_) = false;

  Status bg_error_ GUARDED_BY(mutex_);  // Sticky error from flush/compaction
  // Failed background attempts absorbed so far (Options::bg_error_retries).
  int bg_retry_attempts_ GUARDED_BY(mutex_) = 0;

  std::string merge_scratch_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_DB_IMPL_H_
