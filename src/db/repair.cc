// RepairDB: rebuild a usable database from whatever survives on disk.
//
// The repairer ignores the MANIFEST/CURRENT entirely (they may be missing or
// corrupt — that is usually why it is being run) and re-derives the state
// from the data files themselves:
//
//   1. Every WAL is converted to an L0 SSTable (replaying its readable
//      prefix; torn tails are dropped exactly as recovery would drop them).
//   2. Every SSTable is copy-rewritten block by block: blocks that fail
//      their checksum are dropped, everything else is carried into a fresh
//      table (which also regenerates filters and zone maps). A table that
//      cannot be opened at all is dropped.
//   3. A fresh MANIFEST + CURRENT is written describing the salvaged tables,
//      all placed at level 0 (L0 files may overlap arbitrarily; the first
//      Open drains the resulting compaction debt).
//
// Nothing readable is destroyed: originals that lost any data are archived
// under <dbname>/lost/ instead of deleted, and every salvage/drop decision
// is counted (repair.tables.salvaged / repair.tables.dropped).
//
// Some data may still be lost — a dropped block loses its records, and if a
// newer version of a key was in that block an older version from another
// file becomes visible again. Repair trades bounded, counted loss for a
// database that opens.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "db/builder.h"
#include "db/db.h"
#include "db/dbformat.h"
#include "db/filename.h"
#include "db/memtable.h"
#include "db/table_cache.h"
#include "db/version_edit.h"
#include "db/write_batch.h"
#include "env/env.h"
#include "env/statistics.h"
#include "table/table.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace leveldbpp {

namespace {

// Iterator over a materialized (internal_key, value) vector, already sorted.
// Feeds the surviving entries of a damaged table into BuildTable.
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(
      const std::vector<std::pair<std::string, std::string>>* entries)
      : entries_(entries) {}

  bool Valid() const override {
    return index_ < entries_->size();
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = entries_->empty() ? 0 : entries_->size() - 1;
  }
  void Seek(const Slice&) override { index_ = 0; }  // Unused by BuildTable
  void Next() override { index_++; }
  void Prev() override { index_ = (index_ == 0) ? entries_->size() : index_ - 1; }
  Slice key() const override { return (*entries_)[index_].first; }
  Slice value() const override { return (*entries_)[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  const std::vector<std::pair<std::string, std::string>>* const entries_;
  size_t index_ = 0;
};

class Repairer {
 public:
  Repairer(const std::string& dbname, const Options& options)
      : dbname_(dbname),
        env_(options.env != nullptr ? options.env : Env::Posix()),
        icmp_(options.comparator != nullptr ? options.comparator
                                            : BytewiseComparator()),
        ipolicy_(options.filter_policy),
        options_(SanitizeOptions(options)),
        table_cache_(new TableCache(dbname, options_, 100)) {}

  ~Repairer() { delete table_cache_; }

  Status Run() {
    Status s = FindFiles();
    if (!s.ok()) return s;
    // Every rebuilt table lands at level 0, where readers assume a higher
    // file number means newer data (Version::Get probe order, the embedded
    // index's recency buckets and GetLite). Rewrite the old tables first in
    // ascending original-number order, then the WALs — whose records are
    // newer than anything flushed — so the fresh numbering preserves that
    // invariant.
    SalvageTables();
    ConvertLogFilesToTables();
    return WriteDescriptor();
  }

 private:
  Options SanitizeOptions(const Options& src) {
    Options result = src;
    result.comparator = &icmp_;
    result.filter_policy = (src.filter_policy != nullptr) ? &ipolicy_ : nullptr;
    if (result.env == nullptr) result.env = Env::Posix();
    if (!result.secondary_attributes.empty() &&
        result.attribute_extractor == nullptr) {
      result.secondary_attributes.clear();
    }
    return result;
  }

  void Record(Ticker t) {
    if (options_.statistics != nullptr) options_.statistics->Record(t);
  }

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status s = env_->GetChildren(dbname_, &filenames);
    if (!s.ok()) return s;
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }
    uint64_t number;
    FileType type;
    for (const std::string& f : filenames) {
      if (!ParseFileName(f, &number, &type)) continue;
      if (type == kDescriptorFile) {
        manifests_.push_back(f);
      } else {
        if (number + 1 > next_file_number_) next_file_number_ = number + 1;
        if (type == kLogFile) {
          logs_.push_back(number);
        } else if (type == kTableFile) {
          table_numbers_.push_back(number);
        }
        // kTempFile / kCurrentFile / kDBLockFile: superseded below or kept.
      }
    }
    // Deterministic salvage order (GetChildren order is unspecified).
    std::sort(logs_.begin(), logs_.end());
    std::sort(table_numbers_.begin(), table_numbers_.end());
    return Status::OK();
  }

  // Move a file aside under <dbname>/lost/ rather than deleting it: repair
  // must never destroy bytes it could not fully read.
  void ArchiveFile(const std::string& fname) {
    const std::string lost_dir = dbname_ + "/lost";
    env_->CreateDir(lost_dir);  // Ignore error: may exist already
    size_t slash = fname.rfind('/');
    std::string base =
        (slash == std::string::npos) ? fname : fname.substr(slash + 1);
    env_->RenameFile(fname, lost_dir + "/" + base);
  }

  void ConvertLogFilesToTables() {
    for (uint64_t log_number : logs_) {
      std::string fname = LogFileName(dbname_, log_number);
      bool clean_empty = false;
      bool fully_captured = false;
      Status s = ConvertLogToTable(log_number, &clean_empty, &fully_captured);
      if (s.ok()) {
        Record(kRepairTablesSalvaged);
        if (fully_captured) {
          env_->RemoveFile(fname);  // Every byte lives on in the new table
        } else {
          // The salvaged table covers only a prefix (bad records were
          // dropped); keep the original around for forensics.
          ArchiveFile(fname);
        }
      } else if (clean_empty) {
        // A rotated-but-unused WAL: zero records and zero damaged bytes.
        // Nothing was lost, so it is neither a salvage nor a drop.
        env_->RemoveFile(fname);
      } else {
        // The WAL produced no table (unreadable, or empty after dropping
        // bad records). Its bytes still go to lost/, not the bin.
        Record(kRepairTablesDropped);
        ArchiveFile(fname);
      }
    }
  }

  Status ConvertLogToTable(uint64_t log_number, bool* clean_empty,
                           bool* fully_captured) {
    struct LogReporter : public log::Reader::Reporter {
      size_t dropped_bytes = 0;
      void Corruption(size_t bytes, const Status&) override {
        dropped_bytes += bytes;
      }
    };
    std::string fname = LogFileName(dbname_, log_number);
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(fname, &file);
    if (!s.ok()) return s;

    LogReporter reporter;
    log::Reader reader(file.get(), &reporter, /*checksum=*/true);
    MemTable* mem = new MemTable(icmp_, options_.secondary_attributes,
                                 options_.attribute_extractor);
    mem->Ref();
    std::string scratch;
    Slice record;
    WriteBatch batch;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) {
        reporter.Corruption(record.size(),
                            Status::Corruption("log record too small"));
        continue;
      }
      WriteBatchInternal::SetContents(&batch, record);
      Status insert = WriteBatchInternal::InsertInto(&batch, mem,
                                                     options_.value_merger);
      if (insert.ok()) {
        const SequenceNumber last =
            WriteBatchInternal::Sequence(&batch) +
            WriteBatchInternal::Count(&batch) - 1;
        if (last > max_sequence_) max_sequence_ = last;
      }
      // A bad batch is skipped; keep salvaging the rest of the log.
    }
    file.reset();
    *clean_empty = (mem->NumEntries() == 0 && reporter.dropped_bytes == 0);
    *fully_captured = (reporter.dropped_bytes == 0);

    Status build;
    if (mem->NumEntries() > 0) {
      TableInfo info;
      info.meta.number = next_file_number_++;
      std::unique_ptr<Iterator> iter(mem->NewIterator());
      // No snapshot can be live across a repair, so collapse to newest.
      build = BuildTable(dbname_, env_, options_, icmp_, table_cache_,
                         iter.get(), kMaxSequenceNumber, &info.meta);
      if (build.ok() && info.meta.file_size > 0) {
        tables_.push_back(std::move(info));
      } else if (build.ok()) {
        build = Status::IOError("log produced an empty table");
      }
    } else {
      build = Status::IOError("log had no salvageable records");
    }
    mem->Unref();
    return build;
  }

  void SalvageTables() {
    for (uint64_t number : table_numbers_) {
      SalvageTable(number);
    }
  }

  // Copy-rewrite one table, dropping blocks that fail their checksums. The
  // rewrite regenerates index/filter/zone-map metadata from the options in
  // force, so a repaired store is fully queryable again.
  void SalvageTable(uint64_t number) {
    std::string fname = TableFileName(dbname_, number);
    uint64_t file_size = 0;
    std::unique_ptr<RandomAccessFile> file;
    Table* table = nullptr;
    Status s = env_->GetFileSize(fname, &file_size);
    if (s.ok()) s = env_->NewRandomAccessFile(fname, &file);
    if (s.ok()) s = Table::Open(options_, file.get(), file_size, &table);
    if (!s.ok()) {
      // Footer/index unreadable: nothing inside can be located.
      Record(kRepairTablesDropped);
      ArchiveFile(fname);
      return;
    }

    std::vector<std::pair<std::string, std::string>> entries;
    size_t dropped_blocks = 0;
    ReadOptions read_options;  // verify_checksums defaults on
    const size_t nblocks = table->NumDataBlocks();
    for (size_t b = 0; b < nblocks; b++) {
      std::unique_ptr<Iterator> it(
          table->NewDataBlockIterator(read_options, b));
      std::vector<std::pair<std::string, std::string>> block_entries;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        ParsedInternalKey ikey;
        if (!ParseInternalKey(it->key(), &ikey)) continue;
        if (ikey.sequence > max_sequence_) max_sequence_ = ikey.sequence;
        block_entries.emplace_back(it->key().ToString(),
                                   it->value().ToString());
      }
      if (!it->status().ok()) {
        // Checksum/decode failure is all-or-nothing per block, so nothing
        // partial leaked into block_entries; drop the block.
        dropped_blocks++;
        continue;
      }
      for (auto& e : block_entries) entries.push_back(std::move(e));
    }
    delete table;
    file.reset();

    if (entries.empty()) {
      Record(kRepairTablesDropped);
      ArchiveFile(fname);
      return;
    }

    TableInfo info;
    info.meta.number = next_file_number_++;
    VectorIterator iter(&entries);
    s = BuildTable(dbname_, env_, options_, icmp_, table_cache_, &iter,
                   kMaxSequenceNumber, &info.meta);
    if (!s.ok() || info.meta.file_size == 0) {
      Record(kRepairTablesDropped);
      ArchiveFile(fname);
      return;
    }
    tables_.push_back(std::move(info));
    Record(kRepairTablesSalvaged);
    if (dropped_blocks > 0) {
      // Data was lost from the original; keep its bytes recoverable.
      ArchiveFile(fname);
    } else {
      env_->RemoveFile(fname);  // Fully captured in the rewrite
    }
  }

  Status WriteDescriptor() {
    // Allocate the manifest number before stamping next_file so the new
    // MANIFEST's own number is covered by it.
    const uint64_t manifest_number = next_file_number_++;

    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    edit.SetLogNumber(0);  // Every WAL was converted or archived above
    edit.SetNextFile(next_file_number_);
    edit.SetLastSequence(max_sequence_);
    // Overlapping tables (several versions of one key, e.g. a flushed table
    // plus the WAL-derived one) must go to level 0, where readers resolve
    // recency by file number — which SalvageTables/ConvertLogFilesToTables
    // made track data age. A table disjoint from EVERY other salvaged table
    // holds the only copy of its keys, so it can sit at level 1: that keeps
    // recency-ordered scans (the embedded index's Algorithm-5 termination
    // treats each L0 file as its own newest-first bucket, but a whole level
    // as one) from ranking disjoint same-age tables as newer/older.
    const Comparator* ucmp = icmp_.user_comparator();
    for (size_t i = 0; i < tables_.size(); i++) {
      const FileMetaData& a = tables_[i].meta;
      bool overlaps = false;
      for (size_t j = 0; j < tables_.size() && !overlaps; j++) {
        if (j == i) continue;
        const FileMetaData& b = tables_[j].meta;
        overlaps =
            ucmp->Compare(a.smallest.user_key(), b.largest.user_key()) <= 0 &&
            ucmp->Compare(b.smallest.user_key(), a.largest.user_key()) <= 0;
      }
      edit.AddFile(overlaps ? 0 : 1, a);
    }

    std::string manifest_name = DescriptorFileName(dbname_, manifest_number);
    std::unique_ptr<WritableFile> manifest_file;
    Status s = env_->NewWritableFile(manifest_name, &manifest_file);
    if (!s.ok()) return s;
    {
      log::Writer manifest_log(manifest_file.get());
      std::string record;
      edit.EncodeTo(&record);
      s = manifest_log.AddRecord(record);
    }
    if (s.ok()) s = manifest_file->Sync();
    if (s.ok()) s = manifest_file->Close();
    manifest_file.reset();
    if (!s.ok()) {
      env_->RemoveFile(manifest_name);
      return s;
    }

    // The old manifests describe files that may no longer exist; archive
    // them before pointing CURRENT at the new one.
    for (const std::string& m : manifests_) {
      ArchiveFile(dbname_ + "/" + m);
    }
    return SetCurrentFile(env_, dbname_, manifest_number);
  }

  struct TableInfo {
    FileMetaData meta;
  };

  const std::string dbname_;
  Env* const env_;
  const InternalKeyComparator icmp_;
  const InternalFilterPolicy ipolicy_;
  const Options options_;  // comparator/filter_policy point at the members
  TableCache* const table_cache_;

  std::vector<std::string> manifests_;
  std::vector<uint64_t> logs_;
  std::vector<uint64_t> table_numbers_;
  std::vector<TableInfo> tables_;
  uint64_t next_file_number_ = 1;
  SequenceNumber max_sequence_ = 0;
};

}  // namespace

Status RepairDB(const std::string& dbname, const Options& options) {
  Repairer repairer(dbname, options);
  return repairer.Run();
}

}  // namespace leveldbpp
