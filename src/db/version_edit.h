// VersionEdit: a delta to the LSM file layout, logged to the MANIFEST.
//
// Extension over stock LevelDB: each new-file record carries the file-level
// zone map (per-attribute min/max) computed when the SSTable was built.
// This is the paper's "global metadata file" of per-SSTable zone maps: the
// embedded RANGELOOKUP can discard whole files from the in-memory file list
// without touching the table at all.

#ifndef LEVELDBPP_DB_VERSION_EDIT_H_
#define LEVELDBPP_DB_VERSION_EDIT_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "db/dbformat.h"
#include "table/zonemap_block.h"

namespace leveldbpp {

class VersionSet;

struct FileMetaData {
  int refs = 0;
  uint64_t number = 0;
  uint64_t file_size = 0;    // File size in bytes
  InternalKey smallest;      // Smallest internal key served by table
  InternalKey largest;       // Largest internal key served by table
  // Newest sequence number stored in the table. The embedded scan's
  // level-boundary termination (Algorithm 5) uses it as an exact recency
  // bound: levels are USUALLY time-ordered, but compaction can push a
  // record below a level still holding older records of other keys, and
  // IngestExternalFiles splices brand-new records at the deepest
  // non-overlapping level. Bounding by the real per-file maximum keeps the
  // early exit sound in both cases.
  SequenceNumber max_seq = 0;
  // File-level zone map, parallel to Options::secondary_attributes.
  std::vector<ZoneRange> zone_ranges;
};

class VersionEdit {
 public:
  VersionEdit() { Clear(); }
  ~VersionEdit() = default;

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  /// Record that sorted-view artifact `num` (0 = none) describes the file
  /// layout this edit produces. An edit that touches levels >= 1 WITHOUT
  /// setting this implicitly invalidates any current view (VersionSet
  /// clears its number when applying such an edit).
  void SetSortedView(uint64_t num) {
    has_sorted_view_ = true;
    sorted_view_number_ = num;
  }
  void SetCompactPointer(int level, const InternalKey& key) {
    compact_pointers_.push_back(std::make_pair(level, key));
  }

  /// Add the specified file at the specified level.
  void AddFile(int level, const FileMetaData& meta) {
    new_files_.push_back(std::make_pair(level, meta));
  }

  /// Delete the specified file from the specified level.
  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  typedef std::set<std::pair<int, uint64_t>> DeletedFileSet;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  uint64_t sorted_view_number_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;
  bool has_sorted_view_;

  std::vector<std::pair<int, InternalKey>> compact_pointers_;
  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_VERSION_EDIT_H_
