// DB: the public key-value store interface (LevelDB surface).
//
// Secondary-index operations (LOOKUP / RANGELOOKUP with the five index
// variants) live one layer up, in core/secondary_db.h, which composes one or
// more DB instances.

#ifndef LEVELDBPP_DB_DB_H_
#define LEVELDBPP_DB_DB_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "db/options.h"
#include "table/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

class WriteBatch;

/// Handle to a consistent, read-only view of the store as of the moment it
/// was acquired. Obtain via DB::GetSnapshot(), hand it to reads through
/// ReadOptions::snapshot, and return it with DB::ReleaseSnapshot() — a live
/// handle pins old record versions through compaction, so holding one
/// forever retards space reclamation.
class Snapshot {
 protected:
  virtual ~Snapshot();
};

/// Streaming source for IngestExternalFiles: each call fills *key/*value
/// with the next record and returns true, or returns false when exhausted.
/// Keys must arrive in strictly increasing user-key order.
using IngestFeed = std::function<bool(std::string* key, std::string* value)>;

/// What one IngestExternalFiles call did.
struct IngestStats {
  uint64_t files = 0;      // SSTables built and spliced into the version
  uint64_t keys = 0;       // records written
  uint64_t bytes = 0;      // total bytes of the new SSTables
  uint64_t first_seq = 0;  // sequence number assigned to the first record
  uint64_t last_seq = 0;   // ... and the last (first_seq + keys - 1)
};

class DB {
 public:
  /// Open the database named `name`. Stores a heap-allocated database in
  /// *dbptr on success; the caller owns it.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  virtual ~DB();

  /// Set the database entry for key to value.
  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;

  /// Remove the database entry (if any) for key. It is not an error if the
  /// key did not exist.
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;

  /// Apply the specified updates to the database atomically.
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  /// If the database contains an entry for key, store the corresponding
  /// value in *value. Returns NotFound if there is no entry.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: for each keys[i], (*values)[i] and
  /// (*statuses)[i] receive what Get(options, keys[i], &value) would have
  /// produced, against one consistent snapshot of the store. Returns the
  /// first per-key error that is not NotFound (OK otherwise). The base
  /// implementation is a plain Get loop; DBImpl batches table probes and,
  /// with Options::read_parallelism > 1, fans them out in parallel.
  virtual Status MultiGet(const ReadOptions& options,
                          const std::vector<Slice>& keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses);

  /// Heap-allocated bidirectional iterator over the DB's user keys (newest
  /// visible version of each key; deletions hidden). Caller owns it and
  /// must delete it before the DB. The iterator observes a consistent view:
  /// writes issued after creation are invisible to it. Pass
  /// ReadOptions::snapshot to pin the view to an earlier GetSnapshot().
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  /// A handle to the current state of the DB: reads through it (via
  /// ReadOptions::snapshot) observe exactly the writes acknowledged before
  /// this call. The caller must eventually ReleaseSnapshot() it.
  virtual const Snapshot* GetSnapshot() = 0;

  /// Release a snapshot acquired from this DB, unpinning the record
  /// versions it held through compaction. The handle is invalid afterwards.
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// DB implementations export properties about their state via this
  /// method; returns true iff `property` is understood.
  ///   "leveldbpp.num-files-at-level<N>"
  ///   "leveldbpp.sstables"  (multi-line dump)
  ///   "leveldbpp.total-bytes"
  ///   "leveldbpp.approximate-memory-usage"
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  /// Compact the underlying storage for the key range [*begin, *end]
  /// (nullptr = unbounded). Drives compaction until the range is fully
  /// merged downward.
  virtual void CompactRange(const Slice* begin, const Slice* end) = 0;

  /// Attempt to clear a sticky background error and resume writes.
  /// Transient errors (I/O failures that may have gone away, e.g. a full
  /// disk after space was freed) are cleared: the WAL is rotated to a fresh
  /// file and pending flush/compaction work is restarted. Permanent errors
  /// (corruption) stay sticky and are returned unchanged — run RepairDB.
  /// Returns OK if the database is writable afterwards.
  virtual Status Resume() { return Status::OK(); }

  /// Bulk load: build SSTables directly from `feed`'s sorted stream via the
  /// table builder and splice them into the version at the deepest level
  /// they don't overlap, bypassing the memtable and the WAL entirely. Each
  /// record receives a fresh sequence number (newer than every existing
  /// write), and the MANIFEST commit makes the whole ingest atomic and
  /// durable — after a crash either all spliced files are visible or none.
  /// Requirements: keys strictly increasing; no concurrent writers for the
  /// duration of the call (concurrent reads are fine). InvalidArgument on
  /// unsorted input or an overlapping concurrent ingest. `stats` (optional)
  /// reports what was built. See DESIGN.md "Ingestion".
  virtual Status IngestExternalFiles(const IngestFeed& feed,
                                     IngestStats* stats) {
    (void)feed;
    (void)stats;
    return Status::NotSupported("IngestExternalFiles");
  }
};

/// Destroy the contents of the specified database (files and directory).
Status DestroyDB(const std::string& name, const Options& options);

/// Best-effort salvage of a database that fails to open (lost or corrupt
/// MANIFEST/CURRENT, damaged tables). Scans the directory for SSTables and
/// WALs, converts salvageable WALs to tables, drops tables (or individual
/// blocks) that fail their checksums, archives unreadable files under
/// `<name>/lost/`, and writes a fresh MANIFEST + CURRENT describing what
/// survived. Some data may be lost, but never silently: drops are counted in
/// options.statistics (repair.tables.salvaged / repair.tables.dropped).
/// The database must not be open while RepairDB runs.
Status RepairDB(const std::string& name, const Options& options);

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_DB_H_
