// BuildTable: materialize a memtable's contents as an L0 SSTable.

#ifndef LEVELDBPP_DB_BUILDER_H_
#define LEVELDBPP_DB_BUILDER_H_

#include <string>

#include "db/options.h"
#include "util/status.h"

namespace leveldbpp {

struct FileMetaData;
class Env;
class Iterator;
class TableCache;

/// Build a table file from the contents of *iter (internal keys, sorted).
/// The generated file will be named according to meta->number. On success,
/// the rest of *meta is filled with metadata about the generated table
/// (including the file-level secondary zone ranges). If no data is present
/// in *iter, meta->file_size is set to zero and no file is produced.
///
/// Only the NEWEST version of each user key is written: the engine does not
/// support snapshot reads, so superseded memtable versions are dead weight.
/// (For value_merger DBs the memtable already merged fragments on write, so
/// the newest version is the fully merged fragment.)
class InternalKeyComparator;

/// `options` must be the DB's internalized options (comparator/filter policy
/// already wrapped for internal keys); `icmp` is used to recover user keys
/// for version de-duplication.
Status BuildTable(const std::string& dbname, Env* env, const Options& options,
                  const InternalKeyComparator& icmp, TableCache* table_cache,
                  Iterator* iter, FileMetaData* meta);

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_BUILDER_H_
