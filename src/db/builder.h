// BuildTable: materialize a memtable's contents as an L0 SSTable.

#ifndef LEVELDBPP_DB_BUILDER_H_
#define LEVELDBPP_DB_BUILDER_H_

#include <string>

#include "db/dbformat.h"
#include "db/options.h"
#include "util/status.h"

namespace leveldbpp {

struct FileMetaData;
class Env;
class Iterator;
class TableCache;

/// Build a table file from the contents of *iter (internal keys, sorted).
/// The generated file will be named according to meta->number. On success,
/// the rest of *meta is filled with metadata about the generated table
/// (including the file-level secondary zone ranges). If no data is present
/// in *iter, meta->file_size is set to zero and no file is produced.
///
/// Superseded versions of a user key are dropped only when the newer entry
/// shadowing them is visible to every live snapshot — the same rule the
/// compaction merge applies. `smallest_snapshot` is the oldest live snapshot
/// sequence (or the DB's last sequence when none are live, which reproduces
/// plain newest-wins collapsing); pass kMaxSequenceNumber to collapse
/// unconditionally (repair and ingest, where no snapshot can reference the
/// input). (For value_merger DBs the memtable already merged fragments on
/// write, so the newest version is the fully merged fragment.)
class InternalKeyComparator;

/// `options` must be the DB's internalized options (comparator/filter policy
/// already wrapped for internal keys); `icmp` is used to recover user keys
/// for version de-duplication.
Status BuildTable(const std::string& dbname, Env* env, const Options& options,
                  const InternalKeyComparator& icmp, TableCache* table_cache,
                  Iterator* iter, SequenceNumber smallest_snapshot,
                  FileMetaData* meta);

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_BUILDER_H_
