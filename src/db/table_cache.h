// TableCache: cache of open SSTable readers, keyed by file number.
//
// Thread-safe, and the open path is SINGLE-FLIGHT: when several readers miss
// on the same file number simultaneously (common once queries fan out onto
// the read pool), exactly one thread opens the file and the others wait for
// its cache insert instead of each opening + parsing the table redundantly.

#ifndef LEVELDBPP_DB_TABLE_CACHE_H_
#define LEVELDBPP_DB_TABLE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "cache/cache.h"
#include "db/options.h"
#include "table/iterator.h"
#include "table/table.h"
#include "util/status.h"

namespace leveldbpp {

class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  /// Return an iterator for the specified file number (of the specified
  /// file_size bytes). If tableptr is non-null, also sets *tableptr to the
  /// Table object underlying the returned iterator (owned by the cache; do
  /// not delete; valid while the iterator is live).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  /// If a seek to internal key `k` in the specified file finds an entry,
  /// call (*handle_result)(arg, found_key, found_value).
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& k, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  /// Access the opened Table for a file via `fn`; the table stays pinned
  /// for the duration of the call. Used by the embedded-index block scans.
  Status WithTable(uint64_t file_number, uint64_t file_size,
                   const std::function<void(Table*)>& fn);

  /// Explicitly pin the opened Table for a file: *table stays valid until
  /// the returned handle is passed to Unpin. Used where one pin must span a
  /// multi-table batch (MultiGet probe groups, embedded bucket scans).
  Status Pin(uint64_t file_number, uint64_t file_size, Table** table,
             Cache::Handle** handle);
  void Unpin(Cache::Handle* handle);

  /// Evict any entry for the specified file number (file being deleted).
  void Evict(uint64_t file_number);

  /// Attach the DB-wide quarantine registry: every table opened from now on
  /// records checksum-failed blocks there (see Table::SetProvenance).
  void SetQuarantine(BlockQuarantine* quarantine) { quarantine_ = quarantine; }

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle**);

  const std::string dbname_;
  const Options& options_;
  BlockQuarantine* quarantine_ = nullptr;
  std::unique_ptr<Cache> cache_;

  // Single-flight state for FindTable: file numbers currently being opened.
  // A thread that misses while its file is in `opening_` waits on
  // `opened_cv_` and re-checks the cache instead of opening a duplicate.
  std::mutex open_mu_;
  std::condition_variable opened_cv_;
  std::set<uint64_t> opening_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_TABLE_CACHE_H_
