// TableCache: cache of open SSTable readers, keyed by file number.

#ifndef LEVELDBPP_DB_TABLE_CACHE_H_
#define LEVELDBPP_DB_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache.h"
#include "db/options.h"
#include "table/iterator.h"
#include "table/table.h"
#include "util/status.h"

namespace leveldbpp {

class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  /// Return an iterator for the specified file number (of the specified
  /// file_size bytes). If tableptr is non-null, also sets *tableptr to the
  /// Table object underlying the returned iterator (owned by the cache; do
  /// not delete; valid while the iterator is live).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  /// If a seek to internal key `k` in the specified file finds an entry,
  /// call (*handle_result)(arg, found_key, found_value).
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& k, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  /// Access the opened Table for a file via `fn`; the table stays pinned
  /// for the duration of the call. Used by the embedded-index block scans.
  Status WithTable(uint64_t file_number, uint64_t file_size,
                   const std::function<void(Table*)>& fn);

  /// Evict any entry for the specified file number (file being deleted).
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size, Cache::Handle**);

  const std::string dbname_;
  const Options& options_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_TABLE_CACHE_H_
