// File naming scheme within a DB directory (LevelDB conventions):
//   <number>.ldb      SSTable
//   <number>.log      write-ahead log
//   <number>.svw      sorted-view artifact (REMIX run selectors)
//   MANIFEST-<number> version-edit log
//   CURRENT           name of the live MANIFEST
//   LOCK              advisory lock marker

#ifndef LEVELDBPP_DB_FILENAME_H_
#define LEVELDBPP_DB_FILENAME_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

class Env;

enum FileType {
  kLogFile,
  kDBLockFile,
  kTableFile,
  kDescriptorFile,
  kCurrentFile,
  kTempFile,
  kSortedViewFile,
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string SortedViewFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

/// If `filename` is a leveldbpp file, store its type in *type, the number
/// encoded in it in *number, and return true.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

/// Make CURRENT point to the descriptor file with the given number.
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_FILENAME_H_
