#include "db/db_impl.h"

#include <algorithm>
#include <vector>

#include "db/builder.h"
#include "db/db_iter.h"
#include "db/filename.h"
#include "db/value_merger.h"
#include "table/merger.h"
#include "table/table_builder.h"
#include "util/coding.h"
#include "wal/log_reader.h"

namespace leveldbpp {

namespace {

template <class T, class V>
static void ClipToRange(T* ptr, V minvalue, V maxvalue) {
  if (static_cast<V>(*ptr) > maxvalue) *ptr = maxvalue;
  if (static_cast<V>(*ptr) < minvalue) *ptr = minvalue;
}

Options SanitizeOptions(const InternalKeyComparator* icmp,
                        const InternalFilterPolicy* ipolicy,
                        const Options& src) {
  Options result = src;
  result.comparator = icmp;
  result.filter_policy = (src.filter_policy != nullptr) ? ipolicy : nullptr;
  if (result.env == nullptr) {
    result.env = Env::Posix();
  }
  ClipToRange(&result.write_buffer_size, 64 << 10, 1 << 30);
  ClipToRange(&result.max_file_size, 16 << 10, 1 << 30);
  ClipToRange(&result.block_size, 1 << 10, 4 << 20);
  if (!result.secondary_attributes.empty() &&
      result.attribute_extractor == nullptr) {
    // Secondary meta cannot be built without an extractor; drop the attrs
    // rather than building empty filters.
    result.secondary_attributes.clear();
  }
  return result;
}

}  // namespace

DB::~DB() = default;

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env != nullptr ? raw_options.env : Env::Posix()),
      internal_comparator_(raw_options.comparator != nullptr
                               ? raw_options.comparator
                               : BytewiseComparator()),
      internal_filter_policy_(raw_options.filter_policy),
      options_(SanitizeOptions(&internal_comparator_, &internal_filter_policy_,
                               raw_options)),
      dbname_(dbname),
      table_cache_(new TableCache(dbname_, options_, 10000)),
      mem_(nullptr),
      imm_(nullptr),
      logfile_number_(0),
      versions_(new VersionSet(dbname_, &options_, table_cache_.get(),
                               &internal_comparator_)) {}

DBImpl::~DBImpl() {
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
}

Status DB::Open(const Options& options, const std::string& name, DB** dbptr) {
  DBImpl* impl = nullptr;
  Status s = DBImpl::Open(options, name, &impl);
  *dbptr = impl;
  return s;
}

Status DBImpl::Open(const Options& options, const std::string& dbname,
                    DBImpl** dbptr) {
  *dbptr = nullptr;
  DBImpl* impl = new DBImpl(options, dbname);
  VersionEdit edit;
  Status s = impl->Recover(&edit);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = impl->env_->NewWritableFile(LogFileName(dbname, new_log_number),
                                    &lfile);
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_ = std::move(lfile);
      impl->logfile_number_ = new_log_number;
      impl->log_ = std::make_unique<log::Writer>(impl->logfile_.get());
      impl->mem_ = new MemTable(impl->internal_comparator_,
                                impl->options_.secondary_attributes,
                                impl->options_.attribute_extractor);
      impl->mem_->Ref();
    }
  }
  if (s.ok()) {
    s = impl->versions_->LogAndApply(&edit);
  }
  if (s.ok()) {
    impl->RemoveObsoleteFiles();
    s = impl->MaybeCompact();
  }
  if (s.ok()) {
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DBImpl::Recover(VersionEdit* edit) {
  env_->CreateDir(dbname_);

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      // Write an initial MANIFEST so Recover() below has something to read.
      VersionEdit new_db;
      new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
      new_db.SetLogNumber(0);
      new_db.SetNextFile(2);
      new_db.SetLastSequence(0);

      const std::string manifest = DescriptorFileName(dbname_, 1);
      std::unique_ptr<WritableFile> file;
      Status s = env_->NewWritableFile(manifest, &file);
      if (!s.ok()) return s;
      {
        log::Writer log(file.get());
        std::string record;
        new_db.EncodeTo(&record);
        s = log.AddRecord(Slice(record));
        if (s.ok()) s = file->Sync();
        if (s.ok()) s = file->Close();
      }
      if (s.ok()) {
        s = SetCurrentFile(env_, dbname_, 1);
      } else {
        env_->RemoveFile(manifest);
      }
      if (!s.ok()) return s;
    } else {
      return Status::InvalidArgument(dbname_,
                                     "does not exist (create_if_missing=false)");
    }
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists=true)");
  }

  Status s = versions_->Recover();
  if (!s.ok()) return s;

  // Recover any log files newer than the descriptor's log number, in order.
  SequenceNumber max_sequence = versions_->LastSequence();
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) return s;
  std::vector<uint64_t> logs;
  for (const std::string& fname : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(fname, &number, &type) && type == kLogFile &&
        number >= min_log) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  for (uint64_t log_number : logs) {
    s = RecoverLogFile(log_number, edit, &max_sequence);
    if (!s.ok()) return s;
    versions_->ReuseFileNumber(log_number);  // Best effort
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }
  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      // WAL tails may be torn after a crash; remember the first error but
      // keep whatever parsed (paranoid mode would fail instead).
      if (status != nullptr && status->ok()) *status = s;
    }
  };

  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;

  LogReporter reporter;
  Status log_status;
  reporter.status = options_.paranoid_checks ? &log_status : nullptr;
  log::Reader reader(file.get(), &reporter, true /*checksum*/);

  std::string scratch;
  Slice record;
  WriteBatch batch;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && log_status.ok()) {
    if (record.size() < 12) {
      continue;  // Too small to be a valid batch header
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_, options_.secondary_attributes,
                         options_.attribute_extractor);
      mem->Ref();
    }
    s = WriteBatchInternal::InsertInto(&batch, mem, options_.value_merger);
    if (!s.ok()) break;
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      s = WriteLevel0Table(mem, edit);
      mem->Unref();
      mem = nullptr;
      if (!s.ok()) break;
    }
  }
  if (s.ok() && !log_status.ok()) s = log_status;

  if (s.ok() && mem != nullptr && mem->NumEntries() > 0) {
    s = WriteLevel0Table(mem, edit);
  }
  if (mem != nullptr) mem->Unref();
  return s;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit) {
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  Iterator* iter = mem->NewIterator();
  Status s = BuildTable(dbname_, env_, options_, internal_comparator_,
                        table_cache_.get(), iter, &meta);
  delete iter;
  if (s.ok() && meta.file_size > 0) {
    edit->AddFile(0, meta);
  }
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kFlushCount);
  }
  return s;
}

std::string DBImpl::MaybeMergeWithMemTable(const Slice& key,
                                           const Slice& value) {
  // Handled inside WriteBatchInternal::InsertInto; retained for clarity of
  // the write path (see header comment).
  (void)key;
  return value.ToString();
}

Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& o, const Slice& key) {
  if (options_.value_merger != nullptr) {
    // Whole-key deletes cannot be combined with merge-on-collision
    // semantics: a tombstone that later gets newer fragments merged above
    // it would stop shadowing the pre-tombstone fragments in lower levels
    // (fragment reads union ALL levels, and flush/GetFragments surface only
    // the newest version per residence). The Lazy index deletes entries via
    // in-list deletion markers instead — so does any other client of a
    // merged table.
    return Status::NotSupported(
        "point Delete on a ValueMerger table; use an in-value deletion "
        "marker");
  }
  WriteBatch batch;
  batch.Delete(key);
  return Write(o, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  if (!bg_error_.ok()) return bg_error_;

  Status s = MakeRoomForWrite();
  if (!s.ok()) return s;

  const SequenceNumber last_sequence = versions_->LastSequence();
  WriteBatchInternal::SetSequence(updates, last_sequence + 1);
  versions_->SetLastSequence(last_sequence +
                             WriteBatchInternal::Count(updates));

  s = log_->AddRecord(WriteBatchInternal::Contents(updates));
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kWalBytesWritten,
                                WriteBatchInternal::ByteSize(updates));
  }
  if (s.ok() && options.sync) {
    s = logfile_->Sync();
  }
  if (s.ok()) {
    s = WriteBatchInternal::InsertInto(updates, mem_, options_.value_merger);
  }
  return s;
}

Status DBImpl::MakeRoomForWrite() {
  if (mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
    return Status::OK();
  }

  // Switch to a fresh memtable + log file, flush the old one inline, then
  // drive any triggered compactions to quiescence (synchronous design).
  uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                   &lfile);
  if (!s.ok()) {
    versions_->ReuseFileNumber(new_log_number);
    return s;
  }
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(logfile_.get());
  imm_ = mem_;
  mem_ = new MemTable(internal_comparator_, options_.secondary_attributes,
                      options_.attribute_extractor);
  mem_->Ref();

  s = CompactMemTable();
  if (s.ok()) {
    s = MaybeCompact();
  }
  if (!s.ok()) {
    bg_error_ = s;
  }
  return s;
}

Status DBImpl::CompactMemTable() {
  assert(imm_ != nullptr);
  VersionEdit edit;
  Status s = WriteLevel0Table(imm_, &edit);
  if (s.ok()) {
    edit.SetLogNumber(logfile_number_);  // Earlier logs no longer needed
    s = versions_->LogAndApply(&edit);
  }
  if (s.ok()) {
    imm_->Unref();
    imm_ = nullptr;
    RemoveObsoleteFiles();
  }
  return s;
}

Status DBImpl::MaybeCompact() {
  Status s;
  while (s.ok() && versions_->NeedsCompaction()) {
    s = BackgroundCompaction();
  }
  return s;
}

Status DBImpl::BackgroundCompaction() {
  std::unique_ptr<Compaction> c(versions_->PickCompaction());
  if (c == nullptr) return Status::OK();

  Status status;
  if (c->IsTrivialMove()) {
    // Move file to next level.
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->level() + 1, *f);
    status = versions_->LogAndApply(c->edit());
  } else {
    status = DoCompactionWork(c.get());
  }
  c->ReleaseInputs();
  RemoveObsoleteFiles();
  return status;
}

namespace {

// Accumulates one "run" of consecutive entries sharing a user key (newest
// first), then emits the compaction output for the run.
struct RunState {
  std::string user_key;
  bool active = false;
  // Values of the leading kTypeValue entries (newest first).
  std::vector<std::string> values;
  SequenceNumber newest_seq = 0;
  bool saw_tombstone = false;
  SequenceNumber tombstone_seq = 0;
};

}  // namespace

Status DBImpl::DoCompactionWork(Compaction* c) {
  Statistics* stats = options_.statistics;
  if (stats != nullptr) {
    stats->Record(kCompactionCount);
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < c->num_input_files(which); i++) {
        stats->Record(kCompactionBytesRead, c->input(which, i)->file_size);
      }
    }
  }

  std::unique_ptr<Iterator> input(versions_->MakeInputIterator(c));
  input->SeekToFirst();

  Status status;
  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;
  std::vector<FileMetaData> outputs;

  const Comparator* ucmp = internal_comparator_.user_comparator();
  const ValueMerger* merger = options_.value_merger;

  auto open_output = [&]() -> Status {
    FileMetaData meta;
    meta.number = versions_->NewFileNumber();
    outputs.push_back(meta);
    std::string fname = TableFileName(dbname_, meta.number);
    Status s = env_->NewWritableFile(fname, &outfile);
    if (s.ok()) {
      builder = std::make_unique<TableBuilder>(options_, outfile.get());
    }
    return s;
  };

  auto finish_output = [&]() -> Status {
    assert(builder != nullptr);
    FileMetaData& meta = outputs.back();
    Status s = builder->Finish();
    if (s.ok()) {
      meta.file_size = builder->FileSize();
      for (size_t i = 0; i < options_.secondary_attributes.size(); i++) {
        meta.zone_ranges.push_back(builder->FileZoneRange(i));
      }
      if (stats != nullptr) {
        stats->Record(kCompactionBytesWritten, meta.file_size);
      }
    }
    builder.reset();
    if (s.ok()) s = outfile->Sync();
    if (s.ok()) s = outfile->Close();
    outfile.reset();
    return s;
  };

  auto emit = [&](const Slice& internal_key, const Slice& value) -> Status {
    Status s;
    if (builder == nullptr) {
      s = open_output();
      if (!s.ok()) return s;
    }
    FileMetaData& meta = outputs.back();
    if (builder->NumEntries() == 0) {
      meta.smallest.DecodeFrom(internal_key);
    }
    meta.largest.DecodeFrom(internal_key);
    builder->Add(internal_key, value);
    if (builder->FileSize() >= c->MaxOutputFileSize()) {
      s = finish_output();
    }
    return s;
  };

  // Emit the accumulated run's output entries.
  RunState run;
  auto flush_run = [&]() -> Status {
    if (!run.active) return Status::OK();
    Status s;
    const bool base = c->IsBaseLevelForKey(Slice(run.user_key));
    if (merger == nullptr) {
      // Ordinary LSM semantics: newest version wins; tombstones survive
      // until the base level.
      if (!run.values.empty()) {
        std::string ikey;
        AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                   run.newest_seq,
                                                   kTypeValue));
        s = emit(Slice(ikey), Slice(run.values[0]));
      } else if (run.saw_tombstone && !base) {
        std::string ikey;
        AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                   run.tombstone_seq,
                                                   kTypeDeletion));
        s = emit(Slice(ikey), Slice());
      }
    } else {
      // Lazy-index semantics: merge all fragments above the first
      // tombstone; anything below a tombstone is dead.
      if (!run.values.empty()) {
        std::vector<Slice> vals;
        vals.reserve(run.values.size());
        for (const std::string& v : run.values) vals.emplace_back(v);
        const bool at_bottom = base || run.saw_tombstone;
        std::string merged;
        if (merger->Merge(Slice(run.user_key), vals, at_bottom, &merged)) {
          std::string ikey;
          AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                     run.newest_seq,
                                                     kTypeValue));
          s = emit(Slice(ikey), Slice(merged));
        }
      }
      if (s.ok() && run.saw_tombstone && !base) {
        // The tombstone must survive above the base level EVEN IF a merged
        // value was emitted: unlike plain LSM reads (which stop at the
        // newest version), the Lazy index's read path UNIONS fragments from
        // every level, so only the tombstone keeps the pre-tombstone
        // fragments in lower levels shadowed. Its sequence number is lower
        // than the merged value's, preserving internal-key order.
        std::string ikey;
        AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                   run.tombstone_seq,
                                                   kTypeDeletion));
        s = emit(Slice(ikey), Slice());
      }
    }
    run = RunState();
    return s;
  };

  for (; input->Valid() && status.ok(); input->Next()) {
    Slice key = input->key();
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      status = Status::Corruption("corrupted internal key in compaction");
      break;
    }

    if (!run.active || ucmp->Compare(ikey.user_key, Slice(run.user_key)) != 0) {
      status = flush_run();
      if (!status.ok()) break;
      run.active = true;
      run.user_key.assign(ikey.user_key.data(), ikey.user_key.size());
      run.newest_seq = ikey.sequence;
    }

    if (run.saw_tombstone) {
      continue;  // Everything below the first tombstone is invisible.
    }
    if (ikey.type == kTypeDeletion) {
      run.saw_tombstone = true;
      run.tombstone_seq = ikey.sequence;
    } else if (merger != nullptr) {
      run.values.emplace_back(input->value().data(), input->value().size());
    } else if (run.values.empty()) {
      // Without a merger only the newest value matters.
      run.values.emplace_back(input->value().data(), input->value().size());
    }
  }
  if (status.ok()) status = flush_run();
  if (status.ok()) status = input->status();
  input.reset();

  if (status.ok() && builder != nullptr) {
    status = finish_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    outfile.reset();
  }

  if (status.ok()) {
    c->AddInputDeletions(c->edit());
    for (const FileMetaData& out : outputs) {
      if (out.file_size > 0) {
        c->edit()->AddFile(c->level() + 1, out);
      }
    }
    status = versions_->LogAndApply(c->edit());
  }
  return status;
}

void DBImpl::RemoveObsoleteFiles() {
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage collect.
    return;
  }

  // Make a set of all of the live files
  std::set<uint64_t> live;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  env_->GetChildren(dbname_, &filenames);  // Ignoring errors on purpose
  uint64_t number;
  FileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = (number >= versions_->LogNumber());
          break;
        case kDescriptorFile:
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case kTempFile:
          keep = false;
          break;
        case kCurrentFile:
        case kDBLockFile:
          keep = true;
          break;
      }

      if (!keep) {
        if (type == kTableFile) {
          table_cache_->Evict(number);
        }
        env_->RemoveFile(dbname_ + "/" + filename);
      }
    }
  }
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  RecordLocation loc;
  return GetWithMeta(options, key, value, &loc);
}

Status DBImpl::GetWithMeta(const ReadOptions& options, const Slice& key,
                           std::string* value, RecordLocation* loc) {
  Status s;
  SequenceNumber snapshot = versions_->LastSequence();
  LookupKey lkey(key, snapshot);
  std::string mem_value;
  SequenceNumber seq;
  bool deleted;
  if (mem_->GetNewest(key, &mem_value, &seq, &deleted)) {
    loc->seq = seq;
    loc->level = -1;
    if (deleted) return Status::NotFound(Slice());
    value->swap(mem_value);
    return Status::OK();
  }
  if (imm_ != nullptr && imm_->GetNewest(key, &mem_value, &seq, &deleted)) {
    loc->seq = seq;
    loc->level = -2;
    if (deleted) return Status::NotFound(Slice());
    value->swap(mem_value);
    return Status::OK();
  }
  Version* current = versions_->current();
  current->Ref();
  int level = -1;
  s = current->Get(options, lkey, value, &seq, &level);
  current->Unref();
  if (s.ok()) {
    loc->seq = seq;
    loc->level = level;
  }
  return s;
}

bool DBImpl::IsNewestVersion(const Slice& key, SequenceNumber seq,
                             int record_level, uint64_t record_file) {
  Statistics* stats = options_.statistics;
  if (stats != nullptr) stats->Record(kGetLiteCalls);

  std::string unused;
  SequenceNumber found_seq;
  bool deleted;
  if (mem_->GetNewest(key, &unused, &found_seq, &deleted)) {
    return found_seq <= seq;
  }
  if (imm_ != nullptr &&
      imm_->GetNewest(key, &unused, &found_seq, &deleted)) {
    return found_seq <= seq;
  }
  if (record_level < 0) {
    // The record lives in a memtable; nothing on disk can be newer.
    return true;
  }

  Version* current = versions_->current();
  current->Ref();
  const Comparator* ucmp = internal_comparator_.user_comparator();
  LookupKey lkey(key, kMaxSequenceNumber);
  Slice ikey = lkey.internal_key();
  bool result = true;
  bool resolved = false;

  auto check_file = [&](FileMetaData* f) -> bool /* keep scanning */ {
    // Metadata-only probe first (this is the GetLite saving).
    bool may_exist = true;
    table_cache_->WithTable(f->number, f->file_size, [&](Table* t) {
      // The table's index block and filters are keyed on internal keys.
      may_exist = t->KeyMayExistNoIO(ikey);
    });
    if (!may_exist) return true;
    // Bloom positive: confirming bounded read of one block.
    if (stats != nullptr) stats->Record(kGetLiteConfirmReads);
    struct Ctx {
      const Comparator* ucmp;
      Slice key;
      bool found = false;
      SequenceNumber seq = 0;
    } ctx{ucmp, key};
    table_cache_->Get(
        ReadOptions(), f->number, f->file_size, ikey, &ctx,
        [](void* arg, const Slice& found_key, const Slice&) {
          Ctx* c = reinterpret_cast<Ctx*>(arg);
          ParsedInternalKey parsed;
          if (ParseInternalKey(found_key, &parsed) &&
              c->ucmp->Compare(parsed.user_key, c->key) == 0) {
            c->found = true;
            c->seq = parsed.sequence;
          }
        });
    if (ctx.found) {
      result = (ctx.seq <= seq);
      resolved = true;
      return false;
    }
    return true;
  };

  // L0 newest-to-oldest, then deeper levels, but only residences STRICTLY
  // NEWER than the record's own: for an L0 record that means L0 files with
  // a higher file number; for a level-i record it means all of L0 plus
  // levels 1..i-1. The first version found while walking downward is the
  // newest in the store.
  std::vector<FileMetaData*> l0;
  for (FileMetaData* f : current->files(0)) {
    if (record_level == 0 && f->number <= record_file) {
      continue;  // The record's own flush, or an older one.
    }
    if (ucmp->Compare(key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(key, f->largest.user_key()) <= 0) {
      l0.push_back(f);
    }
  }
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    if (!check_file(f)) break;
  }
  if (!resolved) {
    const int max_level = std::min(record_level, current->NumLevels());
    for (int level = 1; level < max_level; level++) {
      const auto& files = current->files(level);
      if (files.empty()) continue;
      int index = FindFile(internal_comparator_, files, ikey);
      if (index >= static_cast<int>(files.size())) continue;
      FileMetaData* f = files[index];
      if (ucmp->Compare(key, f->smallest.user_key()) < 0) continue;
      if (!check_file(f)) break;
    }
  }
  current->Unref();
  return result;
}

Status DBImpl::GetFragments(
    const ReadOptions& options, const Slice& key,
    const std::function<bool(int, SequenceNumber, bool, const Slice&)>& fn) {
  int rank = 0;
  std::string value;
  SequenceNumber seq;
  bool deleted;
  if (mem_->GetNewest(key, &value, &seq, &deleted)) {
    if (!fn(rank, seq, deleted, Slice(value))) return Status::OK();
  }
  rank++;
  if (imm_ != nullptr && imm_->GetNewest(key, &value, &seq, &deleted)) {
    if (!fn(rank, seq, deleted, Slice(value))) return Status::OK();
  }
  rank++;

  Version* current = versions_->current();
  current->Ref();
  Status s = current->GetFragments(
      options, key,
      [&](int level, SequenceNumber fseq, bool fdel, const Slice& fval) {
        return fn(rank + level, fseq, fdel, fval);
      });
  current->Unref();
  return s;
}

Iterator* DBImpl::NewInternalIterator(
    const ReadOptions& options, SequenceNumber* latest_snapshot,
    std::vector<std::function<void()>>* cleanups) {
  *latest_snapshot = versions_->LastSequence();

  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* mem = mem_;
  cleanups->push_back([mem]() { mem->Unref(); });
  if (imm_ != nullptr) {
    list.push_back(imm_->NewIterator());
    imm_->Ref();
    MemTable* imm = imm_;
    cleanups->push_back([imm]() { imm->Unref(); });
  }
  Version* current = versions_->current();
  current->AddIterators(options, &list);
  current->Ref();
  cleanups->push_back([current]() { current->Unref(); });

  return NewMergingIterator(&internal_comparator_, list.data(),
                            static_cast<int>(list.size()));
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  std::vector<std::function<void()>> cleanups;
  Iterator* internal_iter =
      NewInternalIterator(options, &latest_snapshot, &cleanups);
  Iterator* db_iter = NewDBIterator(internal_comparator_.user_comparator(),
                                    internal_iter, latest_snapshot);
  for (auto& fn : cleanups) {
    db_iter->RegisterCleanup(std::move(fn));
  }
  return db_iter;
}

DBImpl::LevelIterators::~LevelIterators() {
  for (Iterator* it : iters) delete it;
  for (auto& fn : cleanups_) fn();
}

Status DBImpl::NewLevelIterators(const ReadOptions& options,
                                 LevelIterators* out) {
  out->iters.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* mem = mem_;
  out->cleanups_.push_back([mem]() { mem->Unref(); });
  if (imm_ != nullptr) {
    out->iters.push_back(imm_->NewIterator());
    imm_->Ref();
    MemTable* imm = imm_;
    out->cleanups_.push_back([imm]() { imm->Unref(); });
  }
  out->first_disk = out->iters.size();

  Version* current = versions_->current();
  current->Ref();
  out->cleanups_.push_back([current]() { current->Unref(); });

  std::vector<FileMetaData*> l0 = current->files(0);
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    out->iters.push_back(
        table_cache_->NewIterator(options, f->number, f->file_size));
  }
  for (int level = 1; level < current->NumLevels(); level++) {
    if (current->NumFiles(level) > 0) {
      out->iters.push_back(current->NewConcatenatingIterator(options, level));
    }
  }
  return Status::OK();
}

Status DBImpl::EmbeddedScan(
    const ReadOptions&, const std::string& attr, const Slice& lo,
    const Slice& hi,
    const std::function<void(Table*, size_t, int, uint64_t)>& block_visitor,
    const std::function<bool()>& level_boundary) {
  Version* current = versions_->current();
  current->Ref();
  const bool point = (lo == hi);
  Status s;
  bool stopped = false;

  auto scan_file = [&](FileMetaData* f, int level) {
    // File-level zone map (persisted in the MANIFEST metadata) prunes the
    // file without opening it at all.
    size_t attr_idx = options_.secondary_attributes.size();
    for (size_t i = 0; i < options_.secondary_attributes.size(); i++) {
      if (options_.secondary_attributes[i] == attr) {
        attr_idx = i;
        break;
      }
    }
    if (attr_idx < f->zone_ranges.size() &&
        !f->zone_ranges[attr_idx].Overlaps(lo, hi)) {
      if (options_.statistics != nullptr) {
        options_.statistics->Record(kZoneMapFilePruned);
      }
      return;
    }
    Status ws = table_cache_->WithTable(f->number, f->file_size, [&](Table* t) {
      const size_t nblocks = t->NumDataBlocks();
      for (size_t b = 0; b < nblocks; b++) {
        bool may = point ? t->SecondaryBlockMayContain(attr, lo, b)
                         : t->SecondaryBlockMayOverlap(attr, lo, hi, b);
        if (may) {
          block_visitor(t, b, level, f->number);
        }
      }
    });
    if (!ws.ok() && s.ok()) s = ws;
  };

  // Each L0 file is its own recency bucket (newest first).
  std::vector<FileMetaData*> l0 = current->files(0);
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    scan_file(f, 0);
    if (!level_boundary()) {
      stopped = true;
      break;
    }
  }
  if (!stopped) {
    for (int level = 1; level < current->NumLevels(); level++) {
      if (current->NumFiles(level) == 0) continue;
      for (FileMetaData* f : current->files(level)) {
        scan_file(f, level);
      }
      if (!level_boundary()) break;
    }
  }
  current->Unref();
  return s;
}

Status DBImpl::ScanAll(
    const ReadOptions& options,
    const std::function<bool(const Slice&, SequenceNumber, const Slice&)>&
        fn) {
  SequenceNumber snapshot;
  std::vector<std::function<void()>> cleanups;
  std::unique_ptr<Iterator> it(
      NewInternalIterator(options, &snapshot, &cleanups));
  std::string current_key;
  bool has_current = false;
  bool stop = false;
  for (it->SeekToFirst(); it->Valid() && !stop; it->Next()) {
    ParsedInternalKey ikey;
    if (!ParseInternalKey(it->key(), &ikey)) continue;
    if (ikey.sequence > snapshot) continue;
    if (has_current && Slice(current_key) == ikey.user_key) continue;
    current_key.assign(ikey.user_key.data(), ikey.user_key.size());
    has_current = true;
    if (ikey.type == kTypeDeletion) continue;
    if (!fn(ikey.user_key, ikey.sequence, it->value())) stop = true;
  }
  Status s = it->status();
  it.reset();
  for (auto& c : cleanups) c();
  return s;
}

void DBImpl::MemTableSecondaryLookup(const std::string& attr, const Slice& lo,
                                     const Slice& hi,
                                     const MemTable::SecondaryMatchFn& fn) {
  mem_->SecondaryLookup(attr, lo, hi, fn);
  if (imm_ != nullptr) {
    imm_->SecondaryLookup(attr, lo, hi, fn);
  }
}

Status DBImpl::CompactAll() {
  Status s;
  if (mem_->NumEntries() > 0) {
    // Force a memtable rotation + flush regardless of size.
    uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) return s;
    logfile_ = std::move(lfile);
    logfile_number_ = new_log_number;
    log_ = std::make_unique<log::Writer>(logfile_.get());
    imm_ = mem_;
    mem_ = new MemTable(internal_comparator_, options_.secondary_attributes,
                        options_.attribute_extractor);
    mem_->Ref();
    s = CompactMemTable();
    if (!s.ok()) return s;
  }
  CompactRange(nullptr, nullptr);
  return bg_error_;
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  InternalKey begin_storage, end_storage;
  InternalKey* begin_key = nullptr;
  InternalKey* end_key = nullptr;
  if (begin != nullptr) {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    begin_key = &begin_storage;
  }
  if (end != nullptr) {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    end_key = &end_storage;
  }
  // Find the highest level with overlapping files and compact everything
  // above it down into it (LevelDB semantics) — do NOT push data into
  // deeper, empty levels.
  int max_level_with_files = 1;
  {
    Version* base = versions_->current();
    for (int level = 1; level < options_.num_levels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  for (int level = 0; level < max_level_with_files; level++) {
    while (true) {
      std::unique_ptr<Compaction> c(
          versions_->CompactRange(level, begin_key, end_key));
      if (c == nullptr) break;
      Status s = DoCompactionWork(c.get());
      c->ReleaseInputs();
      RemoveObsoleteFiles();
      if (!s.ok()) {
        bg_error_ = s;
        return;
      }
    }
  }
}

uint64_t DBImpl::TotalSizeBytes() {
  uint64_t total = mem_->ApproximateMemoryUsage();
  if (imm_ != nullptr) total += imm_->ApproximateMemoryUsage();
  for (int level = 0; level < options_.num_levels; level++) {
    total += static_cast<uint64_t>(versions_->NumLevelBytes(level));
  }
  return total;
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  Slice in = property;
  Slice prefix("leveldbpp.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    uint64_t level = 0;
    for (size_t i = 0; i < in.size(); i++) {
      if (in[i] < '0' || in[i] > '9') return false;
      level = level * 10 + (in[i] - '0');
    }
    if (level >= static_cast<uint64_t>(options_.num_levels)) return false;
    *value = std::to_string(versions_->NumLevelFiles(static_cast<int>(level)));
    return true;
  } else if (in == Slice("sstables")) {
    Version* current = versions_->current();
    current->Ref();
    *value = current->DebugString();
    current->Unref();
    return true;
  } else if (in == Slice("total-bytes")) {
    *value = std::to_string(TotalSizeBytes());
    return true;
  } else if (in == Slice("approximate-memory-usage")) {
    uint64_t total = mem_->ApproximateMemoryUsage();
    if (imm_ != nullptr) total += imm_->ApproximateMemoryUsage();
    *value = std::to_string(total);
    return true;
  } else if (in == Slice("levels")) {
    *value = versions_->LevelSummary();
    return true;
  }
  return false;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      Status del = env->RemoveFile(dbname + "/" + filename);
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  env->RemoveDir(dbname);  // Ignore error in case dir contains other files
  return result;
}

}  // namespace leveldbpp
