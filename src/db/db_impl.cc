#include "db/db_impl.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "db/builder.h"
#include "db/db_iter.h"
#include "db/event_listener.h"
#include "db/filename.h"
#include "db/value_merger.h"
#include "env/thread_pool.h"
#include "json/json.h"
#include "table/merger.h"
#include "table/table_builder.h"
#include "util/coding.h"
#include "util/mutexlock.h"
#include "util/perf_context.h"
#include "wal/log_reader.h"

namespace leveldbpp {

// One parked Write() call. The queue head writes the whole group's combined
// batch; everyone else waits on their own condvar until the head marks them
// done (or they become the head after a partial group).
struct DBImpl::Writer {
  explicit Writer(port::Mutex* mu)
      : batch(nullptr), sync(false), done(false), cv(mu) {}

  Status status;
  WriteBatch* batch;
  bool sync;
  bool done;
  uint64_t assigned_seq = 0;  // WriteOptions::assigned_seq (0 = engine picks)
  port::CondVar cv;
};

namespace {

template <class T, class V>
static void ClipToRange(T* ptr, V minvalue, V maxvalue) {
  if (static_cast<V>(*ptr) > maxvalue) *ptr = maxvalue;
  if (static_cast<V>(*ptr) < minvalue) *ptr = minvalue;
}

Options SanitizeOptions(const InternalKeyComparator* icmp,
                        const InternalFilterPolicy* ipolicy,
                        const Options& src) {
  Options result = src;
  result.comparator = icmp;
  result.filter_policy = (src.filter_policy != nullptr) ? ipolicy : nullptr;
  if (result.env == nullptr) {
    result.env = Env::Posix();
  }
  ClipToRange(&result.write_buffer_size, 64 << 10, 1 << 30);
  ClipToRange(&result.max_file_size, 16 << 10, 1 << 30);
  ClipToRange(&result.block_size, 1 << 10, 4 << 20);
  ClipToRange(&result.max_immutable_memtables, 1, 8);
  ClipToRange(&result.ingest_parallelism, 1, 16);
  if (result.l0_slowdown_writes_trigger > result.l0_stop_writes_trigger) {
    result.l0_slowdown_writes_trigger = result.l0_stop_writes_trigger;
  }
  if (!result.secondary_attributes.empty() &&
      result.attribute_extractor == nullptr) {
    // Secondary meta cannot be built without an extractor; drop the attrs
    // rather than building empty filters.
    result.secondary_attributes.clear();
  }
  return result;
}

}  // namespace

DB::~DB() = default;

Snapshot::~Snapshot() = default;

Status DB::MultiGet(const ReadOptions& options, const std::vector<Slice>& keys,
                    std::vector<std::string>* values,
                    std::vector<Status>* statuses) {
  // Default: a plain Get loop. DBImpl overrides this with the batched,
  // optionally parallel implementation.
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  Status result;
  for (size_t i = 0; i < keys.size(); i++) {
    (*statuses)[i] = Get(options, keys[i], &(*values)[i]);
    if (result.ok() && !(*statuses)[i].ok() && !(*statuses)[i].IsNotFound()) {
      result = (*statuses)[i];
    }
  }
  return result;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env != nullptr ? raw_options.env : Env::Posix()),
      internal_comparator_(raw_options.comparator != nullptr
                               ? raw_options.comparator
                               : BytewiseComparator()),
      internal_filter_policy_(raw_options.filter_policy),
      options_(SanitizeOptions(&internal_comparator_, &internal_filter_policy_,
                               raw_options)),
      dbname_(dbname),
      table_cache_(new TableCache(dbname_, options_, 10000)),
      background_work_finished_signal_(&mutex_),
      mem_(nullptr),
      logfile_number_(0),
      versions_(new VersionSet(dbname_, &options_, table_cache_.get(),
                               &internal_comparator_)) {
  table_cache_->SetQuarantine(&quarantine_);
  if (!options_.listeners.empty()) {
    // Installed before any read can fail a checksum; BlockQuarantine fires
    // the callback outside its own lock, and block reads never hold mutex_.
    quarantine_.SetNotifyFn([this](uint64_t file, uint64_t offset) {
      BlockQuarantinedInfo info;
      info.db_name = dbname_;
      info.file_number = file;
      info.block_offset = offset;
      NotifyListeners([&](EventListener* l) { l->OnBlockQuarantined(info); });
    });
  }
}

void DBImpl::NotifyListeners(const std::function<void(EventListener*)>& fn) {
  for (const std::shared_ptr<EventListener>& l : options_.listeners) {
    if (l == nullptr) continue;
    try {
      fn(l.get());
    } catch (...) {
      // A listener must never wedge the engine; its exception is dropped.
    }
  }
}

DBImpl::~DBImpl() {
  // Wait for any in-flight background flush/compaction. A work item that is
  // scheduled but not yet running will still run; it observes shutting_down_
  // and exits without touching the tree.
  mutex_.Lock();
  shutting_down_.store(true, std::memory_order_release);
  while (background_compaction_scheduled_ || compaction_token_held_ ||
         flush_in_progress_) {
    background_work_finished_signal_.Wait();
  }
  mutex_.Unlock();

  if (mem_ != nullptr) mem_->Unref();
  for (const ImmEntry& e : imm_queue_) e.mem->Unref();
}

Status DB::Open(const Options& options, const std::string& name, DB** dbptr) {
  DBImpl* impl = nullptr;
  Status s = DBImpl::Open(options, name, &impl);
  *dbptr = impl;
  return s;
}

Status DBImpl::Open(const Options& options, const std::string& dbname,
                    DBImpl** dbptr) {
  *dbptr = nullptr;
  DBImpl* impl = new DBImpl(options, dbname);
  impl->mutex_.Lock();
  VersionEdit edit;
  Status s = impl->Recover(&edit);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = impl->env_->NewWritableFile(LogFileName(dbname, new_log_number),
                                    &lfile);
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_ = std::move(lfile);
      impl->logfile_number_ = new_log_number;
      impl->log_ = std::make_unique<log::Writer>(impl->logfile_.get());
      impl->mem_ = new MemTable(impl->internal_comparator_,
                                impl->options_.secondary_attributes,
                                impl->options_.attribute_extractor);
      impl->mem_->Ref();
    }
  }
  if (s.ok()) {
    s = impl->versions_->LogAndApply(&edit);
  }
  if (s.ok()) {
    impl->RemoveObsoleteFiles();
  }
  impl->mutex_.Unlock();
  if (s.ok() && impl->options_.shared_sequence != nullptr) {
    // Future claims from the shared counter must be fresher than anything
    // this instance recovered (max, not store: sibling instances may have
    // already pushed the counter further).
    std::atomic<uint64_t>* shared = impl->options_.shared_sequence;
    const uint64_t last = impl->versions_->LastSequence();
    uint64_t cur = shared->load(std::memory_order_relaxed);
    while (cur < last && !shared->compare_exchange_weak(
                             cur, last, std::memory_order_relaxed)) {
    }
  }
  if (s.ok()) {
    // Drain any compaction debt left by recovery before handing the DB out
    // (both modes; keeps Open deterministic).
    s = impl->MaybeCompact();
  }
  if (s.ok()) {
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DBImpl::Recover(VersionEdit* edit) {
  mutex_.AssertHeld();
  env_->CreateDir(dbname_);

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      // Write an initial MANIFEST so Recover() below has something to read.
      VersionEdit new_db;
      new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
      new_db.SetLogNumber(0);
      new_db.SetNextFile(2);
      new_db.SetLastSequence(0);

      const std::string manifest = DescriptorFileName(dbname_, 1);
      std::unique_ptr<WritableFile> file;
      Status s = env_->NewWritableFile(manifest, &file);
      if (!s.ok()) return s;
      {
        log::Writer log(file.get());
        std::string record;
        new_db.EncodeTo(&record);
        s = log.AddRecord(Slice(record));
        if (s.ok()) s = file->Sync();
        if (s.ok()) s = file->Close();
      }
      if (s.ok()) {
        s = SetCurrentFile(env_, dbname_, 1);
      } else {
        env_->RemoveFile(manifest);
      }
      if (!s.ok()) return s;
    } else {
      return Status::InvalidArgument(dbname_,
                                     "does not exist (create_if_missing=false)");
    }
  } else if (options_.error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists=true)");
  }

  Status s = versions_->Recover();
  if (!s.ok()) return s;

  // Recover any log files newer than the descriptor's log number, in order.
  SequenceNumber max_sequence = versions_->LastSequence();
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) return s;
  std::vector<uint64_t> logs;
  for (const std::string& fname : filenames) {
    uint64_t number;
    FileType type;
    if (ParseFileName(fname, &number, &type) && type == kLogFile &&
        number >= min_log) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  for (uint64_t log_number : logs) {
    s = RecoverLogFile(log_number, edit, &max_sequence);
    if (!s.ok()) return s;
    versions_->ReuseFileNumber(log_number);  // Best effort
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }
  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  mutex_.AssertHeld();
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t, const Status& s) override {
      // WAL tails may be torn after a crash; remember the first error but
      // keep whatever parsed (paranoid mode would fail instead).
      if (status != nullptr && status->ok()) *status = s;
    }
  };

  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;

  LogReporter reporter;
  Status log_status;
  reporter.status = options_.paranoid_checks ? &log_status : nullptr;
  log::Reader reader(file.get(), &reporter, true /*checksum*/);

  std::string scratch;
  Slice record;
  WriteBatch batch;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && log_status.ok()) {
    if (options_.statistics != nullptr) {
      options_.statistics->Record(kRecoveryWalRecords);
    }
    if (record.size() < 12) {
      continue;  // Too small to be a valid batch header
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_, options_.secondary_attributes,
                         options_.attribute_extractor);
      mem->Ref();
    }
    s = WriteBatchInternal::InsertInto(&batch, mem, options_.value_merger);
    if (!s.ok()) break;
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      s = WriteLevel0Table(mem, edit);
      mem->Unref();
      mem = nullptr;
      if (!s.ok()) break;
    }
  }
  if (s.ok() && !log_status.ok()) s = log_status;
  if (options_.statistics != nullptr && reader.TornTailBytes() > 0) {
    options_.statistics->Record(kRecoveryTornTailBytes, reader.TornTailBytes());
  }

  if (s.ok() && mem != nullptr && mem->NumEntries() > 0) {
    s = WriteLevel0Table(mem, edit);
  }
  if (mem != nullptr) mem->Unref();
  return s;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit,
                                FileMetaData* meta_out) {
  mutex_.AssertHeld();
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  Iterator* iter = mem->NewIterator();

  // Versions shadowed only above the oldest live snapshot must survive the
  // flush so snapshot reads stay exact (same bound DoCompactionWork uses).
  const SequenceNumber smallest_snapshot =
      snapshots_.empty() ? versions_->LastSequence()
                         : snapshots_.oldest()->sequence();

  // The build reads only `mem` (pinned by the caller's reference) and
  // writes a file no Version knows about yet (pinned via pending_outputs_),
  // so the mutex can be released for the duration of the I/O.
  mutex_.Unlock();
  Status s = BuildTable(dbname_, env_, options_, internal_comparator_,
                        table_cache_.get(), iter, smallest_snapshot, &meta);
  delete iter;
  mutex_.Lock();

  pending_outputs_.erase(meta.number);
  if (s.ok() && meta.file_size > 0) {
    edit->AddFile(0, meta);
  }
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kFlushCount);
  }
  if (meta_out != nullptr) *meta_out = meta;
  return s;
}

std::string DBImpl::MaybeMergeWithMemTable(const Slice& key,
                                           const Slice& value) {
  // Handled inside WriteBatchInternal::InsertInto; retained for clarity of
  // the write path (see header comment).
  (void)key;
  return value.ToString();
}

Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& o, const Slice& key) {
  if (options_.value_merger != nullptr) {
    // Whole-key deletes cannot be combined with merge-on-collision
    // semantics: a tombstone that later gets newer fragments merged above
    // it would stop shadowing the pre-tombstone fragments in lower levels
    // (fragment reads union ALL levels, and flush/GetFragments surface only
    // the newest version per residence). The Lazy index deletes entries via
    // in-list deletion markers instead — so does any other client of a
    // merged table.
    return Status::NotSupported(
        "point Delete on a ValueMerger table; use an in-value deletion "
        "marker");
  }
  WriteBatch batch;
  batch.Delete(key);
  return Write(o, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  const bool sync = options.sync || options_.sync_writes;
  // Put latency includes queue wait: it is what the caller experiences.
  // Memtable-rotation markers (updates == nullptr) are not Puts.
  Statistics* const stats = options_.statistics;
  const uint64_t put_start_micros =
      (stats != nullptr && updates != nullptr) ? env_->NowMicros() : 0;
  Writer w(&mutex_);
  w.batch = updates;
  w.sync = sync;
  w.done = false;
  w.assigned_seq = options.assigned_seq;

  MutexLock l(&mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.Wait();
  }
  if (w.done) {
    if (stats != nullptr && updates != nullptr) {
      stats->RecordHistogram(kHistPutMicros,
                             env_->NowMicros() - put_start_micros);
    }
    return w.status;
  }

  // This writer is the queue head: write on behalf of the whole group. A
  // no_stall head that hits a ladder rung gets Busy back before any group
  // is built, so only THIS writer is refused — followers become the next
  // head and decide for themselves. (A no_stall writer parked BEHIND a
  // blocking head still waits for that head; the serving layer issues only
  // no_stall writes per shard, so its queue never mixes the two.)
  Status status = bg_error_;
  if (status.ok()) {
    status = MakeRoomForWrite(updates == nullptr, options.no_stall);
  }
  uint64_t last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {
    int group_size = 0;
    WriteBatch* write_batch = BuildBatchGroup(&last_writer, &group_size);
    const uint32_t count = WriteBatchInternal::Count(write_batch);
    SequenceNumber first_seq;
    if (w.assigned_seq != 0) {
      // Caller-reserved window (BuildBatchGroup kept the batch solo, so the
      // reservation covers exactly this writer's records). The reservation
      // came from this instance's own counter or the shared one, both of
      // which only move forward — but take max defensively so LastSequence
      // stays monotonic.
      first_seq = w.assigned_seq;
      last_sequence = std::max<uint64_t>(last_sequence, first_seq + count - 1);
    } else if (options_.shared_sequence != nullptr) {
      // Claim a window from the cross-instance counter. Claims by this
      // instance are serialized here (only the queue head claims), so the
      // local sequence stays monotonic; other instances may consume the
      // skipped values.
      first_seq = options_.shared_sequence->fetch_add(
                      count, std::memory_order_relaxed) +
                  1;
      last_sequence = first_seq + count - 1;
    } else {
      first_seq = last_sequence + 1;
      last_sequence += count;
    }
    WriteBatchInternal::SetSequence(write_batch, first_seq);

    // Release the mutex for the WAL append + memtable insert: new writers
    // may enqueue meanwhile, but only the queue head touches log_ and
    // mem_, and the memtable skiplist supports one writer alongside
    // concurrent readers. LastSequence is bumped only after the insert, so
    // followers never build on an unpublished sequence window.
    MemTable* mem = mem_;
    {
      mutex_.Unlock();
      status = log_->AddRecord(WriteBatchInternal::Contents(write_batch));
      if (options_.statistics != nullptr) {
        options_.statistics->Record(kWalBytesWritten,
                                    WriteBatchInternal::ByteSize(write_batch));
        options_.statistics->Record(kGroupCommitBatches);
        options_.statistics->Record(kGroupCommitWrites, group_size);
      }
      if (status.ok() && sync) {
        const bool observe_sync =
            stats != nullptr || !options_.listeners.empty();
        const uint64_t sync_start = observe_sync ? env_->NowMicros() : 0;
        status = logfile_->Sync();
        if (observe_sync) {
          const uint64_t sync_micros = env_->NowMicros() - sync_start;
          if (stats != nullptr) {
            stats->RecordHistogram(kHistWalSyncMicros, sync_micros);
          }
          if (!options_.listeners.empty()) {
            WalSyncInfo info;
            info.db_name = dbname_;
            info.bytes = WriteBatchInternal::ByteSize(write_batch);
            info.micros = sync_micros;
            info.status = status;
            NotifyListeners([&](EventListener* l) { l->OnWalSync(info); });
          }
        }
      }
      if (status.ok()) {
        status = WriteBatchInternal::InsertInto(write_batch, mem,
                                                options_.value_merger);
      }
      mutex_.Lock();
      if (!status.ok()) {
        // The WAL tail — or the memtable — is now in an unknown state
        // relative to what callers were (or will be) told. Appending more
        // records after a torn one could let a later replay surface writes
        // the application saw fail, or drop writes it saw succeed. Make the
        // error sticky: reject everything until a reopen re-derives a
        // consistent tail from the log, or Resume() abandons the damaged
        // WAL for a fresh one.
        RecordBackgroundError(status);
      }
    }
    if (write_batch == &tmp_batch_) tmp_batch_.Clear();
    versions_->SetLastSequence(last_sequence);
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  }
  if (stats != nullptr && updates != nullptr) {
    stats->RecordHistogram(kHistPutMicros,
                           env_->NowMicros() - put_start_micros);
  }
  return status;
}

WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer, int* group_size) {
  mutex_.AssertHeld();
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Allow the group to grow up to a maximum size, but if the head write is
  // small, limit the growth so we do not slow down the small write too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *group_size = 1;
  *last_writer = first;
  if (first->assigned_seq != 0) {
    // A caller-reserved sequence window covers exactly this writer's
    // records; absorbing followers would extend the batch past it.
    return result;
  }
  for (auto iter = writers_.begin() + 1; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a non-sync
      // write: its durability requirement would be silently dropped.
      break;
    }
    if (w->assigned_seq != 0) {
      // A reserved-sequence write must head its own batch (see above).
      break;
    }
    if (w->batch == nullptr) {
      // A forced-rotation marker (Write(nullptr)) must become the queue
      // head so it runs MakeRoomForWrite(force) itself.
      break;
    }
    size += WriteBatchInternal::ByteSize(w->batch);
    if (size > max_size) {
      break;  // Do not make the batch too big.
    }
    if (result == first->batch) {
      // Switch to the reusable side batch on the first join; the head
      // writer's own batch must not be mutated.
      result = &tmp_batch_;
      assert(WriteBatchInternal::Count(result) == 0);
      WriteBatchInternal::Append(result, first->batch);
    }
    WriteBatchInternal::Append(result, w->batch);
    (*group_size)++;
    *last_writer = w;
  }
  return result;
}

uint64_t DBImpl::QueuedImmBytes() {
  mutex_.AssertHeld();
  uint64_t total = 0;
  for (const ImmEntry& e : imm_queue_) {
    total += e.mem->ApproximateMemoryUsage();
  }
  return total;
}

Status DBImpl::RotateMemTable() {
  mutex_.AssertHeld();
  uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status s = env_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                   &lfile);
  if (!s.ok()) {
    versions_->ReuseFileNumber(new_log_number);
    return s;
  }
  const uint64_t old_log_number = logfile_number_;
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(logfile_.get());
  imm_queue_.push_back(ImmEntry{mem_, old_log_number});
  mem_ = new MemTable(internal_comparator_, options_.secondary_attributes,
                      options_.attribute_extractor);
  mem_->Ref();
  if (options_.statistics != nullptr) {
    options_.statistics->RecordHistogram(
        kHistFlushQueueDepth, static_cast<double>(imm_queue_.size()));
  }
  return Status::OK();
}

Status DBImpl::MakeRoomForWrite(bool force, bool no_stall) {
  mutex_.AssertHeld();
  assert(!writers_.empty());
  Statistics* stats = options_.statistics;

  if (force && mem_->NumEntries() == 0) {
    return Status::OK();  // Nothing to rotate.
  }

  if (!options_.background_compaction) {
    // ---- Synchronous paper mode: the seed's deterministic inline design.
    if (!force &&
        mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      return Status::OK();
    }

    // Switch to a fresh memtable + log file, flush the old one inline, then
    // (for size-triggered rotations) drive any triggered compactions to
    // quiescence. Forced rotations (CompactAll) skip the drain, exactly as
    // the seed did: CompactRange follows and does the full merge itself.
    Status s = RotateMemTable();
    if (!s.ok()) {
      return s;
    }

    AcquireCompactionToken();
    while (s.ok() && !imm_queue_.empty()) {
      s = CompactMemTable();
      while (!s.ok() && MaybeRetryBackgroundError(s)) {
        s = CompactMemTable();  // Transient failure absorbed: retry the flush
      }
    }
    if (s.ok() && !force) {
      while (s.ok() && versions_->NeedsCompaction()) {
        s = BackgroundCompaction();
        while (!s.ok() && MaybeRetryBackgroundError(s)) {
          s = BackgroundCompaction();
        }
      }
    }
    ReleaseCompactionToken();
    if (!s.ok()) {
      RecordBackgroundError(s);  // No-op if the retry path already did
    } else {
      NoteBackgroundWorkSucceeded();
    }
    return s;
  }

  // ---- Background mode: the classic LevelDB slowdown/stop ladder. The
  // write path never compacts; it rotates memtables and, when the engine
  // falls behind, first delays then parks writers until the background
  // thread catches up. With max_immutable_memtables > 1 the rotation rung
  // keeps accepting writes while earlier memtables drain oldest-first; the
  // backpressure triggers count the TOTAL queued bytes so the ladder stays
  // monotone as the queue deepens.
  bool allow_delay = !force;
  const size_t max_imm = static_cast<size_t>(options_.max_immutable_memtables);
  // The imm queue deliberately has NO soft-delay rung: a near-full queue is
  // handled by the queue-full rung below, whose park wakes the moment one
  // flush lands (or whose inline flush makes progress directly). A 1 ms
  // sleep per write while the queue is deep was measured to cost more than
  // the stalls it was smoothing — the queue's whole point is to absorb
  // bursts at memtable speed. Memory stays bounded regardless: rotation
  // caps the queue at max_imm memtables of write_buffer_size each
  // (QueuedImmBytes() is exported via the approximate-memory properties).
  Status s;
  while (true) {
    if (!bg_error_.ok()) {
      s = bg_error_;
      break;
    }
    if (allow_delay &&
        versions_->NumLevelFiles(0) >= options_.l0_slowdown_writes_trigger) {
      if (no_stall) {
        s = Status::Busy("write stall: L0 slowdown");
        break;
      }
      // Soft limit: surrender the CPU (and the mutex) for 1ms so the
      // compactor gains ground; pay the penalty once per write.
      mutex_.Unlock();
      env_->SleepForMicroseconds(1000);
      if (stats != nullptr) stats->Record(kWriteSlowdownMicros, 1000);
      allow_delay = false;
      mutex_.Lock();
    } else if (!force &&
               mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      break;  // There is room in the current memtable.
    } else if (imm_queue_.size() >= max_imm) {
      if (no_stall) {
        // Both sub-branches block — the inline flush on table I/O, the
        // park on another thread's flush — so a no_stall writer is shed
        // here either way. Nothing has been applied or rotated.
        s = Status::Busy("write stall: immutable memtable queue full");
        break;
      }
      if (!flush_in_progress_) {
        // Flush the oldest queued memtable ourselves instead of queueing
        // behind whatever compaction the background thread is running: the
        // flush only appends an L0 file, so it is safe alongside an
        // in-flight merge, and the write path resumes as soon as it
        // completes.
        Status fs = CompactMemTable();
        if (!fs.ok()) {
          // If the failure is transient and retries remain, the backoff
          // sleep happens here and the loop tries the flush again;
          // otherwise this records the sticky error and the loop exits.
          MaybeRetryBackgroundError(fs);
        } else {
          NoteBackgroundWorkSucceeded();
        }
      } else {
        // Another thread is already flushing: stop-stall until it lands.
        const uint64_t start = env_->NowMicros();
        background_work_finished_signal_.Wait();
        if (stats != nullptr) {
          stats->Record(kWriteStallMicros, env_->NowMicros() - start);
        }
      }
    } else if (versions_->NumLevelFiles(0) >=
               options_.l0_stop_writes_trigger) {
      if (no_stall) {
        s = Status::Busy("write stall: L0 stop trigger");
        break;
      }
      // Hard L0 limit: stop-stall until a compaction retires L0 files.
      const uint64_t start = env_->NowMicros();
      background_work_finished_signal_.Wait();
      if (stats != nullptr) {
        stats->Record(kWriteStallMicros, env_->NowMicros() - start);
      }
    } else {
      // Rotate to a fresh memtable + log and hand the full one to the
      // background thread.
      s = RotateMemTable();
      if (!s.ok()) {
        break;
      }
      force = false;
      MaybeScheduleCompaction();
    }
  }
  return s;
}

DBImpl::WriteStallState DBImpl::GetWriteStallState() {
  MutexLock l(&mutex_);
  WriteStallState st;
  st.l0_files = versions_->NumLevelFiles(0);
  st.imm_queue_depth = imm_queue_.size();
  st.imm_queue_capacity =
      static_cast<size_t>(options_.max_immutable_memtables);
  st.bg_error = bg_error_;
  // Mirror MakeRoomForWrite's ladder order so the reported rung is exactly
  // what a write arriving now would hit. Retry hints scale with how long
  // the rung typically takes to clear: the slowdown delay is 1 ms by
  // construction; a queued flush or an L0 compaction is tens of ms of
  // table I/O.
  if (st.l0_files >= options_.l0_stop_writes_trigger) {
    st.rung = 3;
    st.suggested_retry_micros = 50000;
  } else if (st.imm_queue_depth >= st.imm_queue_capacity) {
    st.rung = 2;
    st.suggested_retry_micros = 10000;
  } else if (st.l0_files >= options_.l0_slowdown_writes_trigger) {
    st.rung = 1;
    st.suggested_retry_micros = 2000;
  }
  if (!st.bg_error.ok() && st.suggested_retry_micros == 0) {
    // Writes are refused outright until Resume()/retry clears the error;
    // suggest a coarse backoff so shed clients do not spin.
    st.suggested_retry_micros = 100000;
  }
  return st;
}

void DBImpl::RecordBackgroundError(const Status& s) {
  mutex_.AssertHeld();
  if (bg_error_.ok()) {
    bg_error_ = s;
    background_work_finished_signal_.SignalAll();
    if (!options_.listeners.empty()) {
      // The sticky error is already published and waiters woken, so the
      // state any concurrent thread observes during the unlock window is
      // final; every caller tolerates an unlock here (MaybeRetryBackground-
      // Error already releases the mutex to sleep).
      BackgroundErrorInfo info;
      info.db_name = dbname_;
      info.status = s;
      mutex_.Unlock();
      NotifyListeners([&](EventListener* l) { l->OnBackgroundError(info); });
      mutex_.Lock();
    }
  }
}

namespace {

// Transient errors may heal on their own (disk briefly full, EIO on a flaky
// device); retrying is worthwhile. Permanent errors mean the bytes or the
// request itself are bad — a retry reproduces the exact same failure.
bool IsPermanentBackgroundError(const Status& s) {
  return s.IsCorruption() || s.IsNotSupported() || s.IsInvalidArgument() ||
         s.IsNotFound();
}

}  // namespace

bool DBImpl::MaybeRetryBackgroundError(const Status& s) {
  mutex_.AssertHeld();
  assert(!s.ok());
  if (IsPermanentBackgroundError(s) ||
      bg_retry_attempts_ >= options_.bg_error_retries ||
      shutting_down_.load(std::memory_order_acquire)) {
    RecordBackgroundError(s);
    return false;
  }
  const int attempt = bg_retry_attempts_++;
  // 1ms, 2ms, 4ms, ... capped at ~1s per wait.
  const int backoff_micros = 1000 << std::min(attempt, 10);
  mutex_.Unlock();
  env_->SleepForMicroseconds(backoff_micros);
  mutex_.Lock();
  return true;
}

void DBImpl::NoteBackgroundWorkSucceeded() {
  mutex_.AssertHeld();
  if (bg_retry_attempts_ > 0) {
    bg_retry_attempts_ = 0;
    if (options_.statistics != nullptr) {
      options_.statistics->Record(kBgErrorAutorecovered);
    }
  }
}

void DBImpl::MaybeScheduleCompaction() {
  mutex_.AssertHeld();
  if (!options_.background_compaction) return;  // Sync mode works inline.
  if (background_compaction_scheduled_) return;
  if (shutting_down_.load(std::memory_order_acquire)) return;
  if (!bg_error_.ok()) return;
  if (imm_queue_.empty() && !versions_->NeedsCompaction()) return;
  background_compaction_scheduled_ = true;
  env_->Schedule(&DBImpl::BGWork, this);
}

void DBImpl::BGWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundCall();
}

void DBImpl::BackgroundCall() {
  MutexLock l(&mutex_);
  assert(background_compaction_scheduled_);
  if (!shutting_down_.load(std::memory_order_acquire) && bg_error_.ok()) {
    AcquireCompactionToken();
    // Re-check under the token: a manual compaction or a stalled writer's
    // inline flush may have drained the work while this call waited.
    Status s;
    bool did_work = false;
    // Flush-first keeps the imm queue short, but strict flush preference
    // starves level compaction whenever the queue is non-empty — with a
    // deep queue (max_immutable_memtables > 1) under sustained writes, L0
    // then grows past the slowdown trigger and every write pays the ladder's
    // 1 ms sleep, erasing the pipeline's benefit. Once L0 reaches the
    // slowdown trigger, relieving it is the more urgent work: the queue
    // absorbs incoming memtables meanwhile, and if it fills, the writers'
    // own queue-full rung flushes inline (a flush is safe alongside an
    // in-flight merge), so progress never depends on this thread.
    const bool l0_pressure =
        versions_->NeedsCompaction() &&
        versions_->NumLevelFiles(0) >= options_.l0_slowdown_writes_trigger;
    if (!imm_queue_.empty() && !flush_in_progress_ && !l0_pressure) {
      did_work = true;
      s = CompactMemTable();
    } else if (versions_->NeedsCompaction()) {
      did_work = true;
      s = BackgroundCompaction();
    }
    ReleaseCompactionToken();
    if (!s.ok()) {
      // Absorbed transient failures leave bg_error_ clear, so the
      // reschedule below re-arms the same work after the backoff sleep.
      MaybeRetryBackgroundError(s);
    } else if (did_work) {
      NoteBackgroundWorkSucceeded();
    }
  }
  background_compaction_scheduled_ = false;
  // One unit of work per call: reschedule if more is pending so the queue
  // stays responsive, then wake stalled writers / waiting destructors.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

void DBImpl::AcquireCompactionToken() {
  mutex_.AssertHeld();
  while (compaction_token_held_) {
    background_work_finished_signal_.Wait();
  }
  compaction_token_held_ = true;
}

void DBImpl::ReleaseCompactionToken() {
  mutex_.AssertHeld();
  assert(compaction_token_held_);
  compaction_token_held_ = false;
  background_work_finished_signal_.SignalAll();
}

Status DBImpl::CompactMemTable() {
  mutex_.AssertHeld();
  assert(!imm_queue_.empty());
  assert(!flush_in_progress_);
  flush_in_progress_ = true;
  Statistics* const stats = options_.statistics;
  const bool observe = stats != nullptr || !options_.listeners.empty();
  const uint64_t start_micros = observe ? env_->NowMicros() : 0;
  if (!options_.listeners.empty()) {
    // flush_in_progress_ guards re-entry and pins this job's claim on the
    // queue front, so the mutex may be released to keep the
    // no-lock-in-callback rule.
    FlushJobInfo info;
    info.db_name = dbname_;
    mutex_.Unlock();
    NotifyListeners([&](EventListener* l) { l->OnFlushBegin(info); });
    mutex_.Lock();
  }
  // Only the FRONT (oldest) entry is flushed, so L0 files keep recency
  // order. Writers may push NEW entries while the mutex is released inside
  // WriteLevel0Table; only this thread pops.
  MemTable* const imm = imm_queue_.front().mem;
  VersionEdit edit;
  FileMetaData meta;
  Status s = WriteLevel0Table(imm, &edit, &meta);
  if (s.ok()) {
    // Advance the MANIFEST's log number only past fully-flushed logs: the
    // oldest WAL still holding unflushed data is the next queued
    // memtable's (or the live memtable's once the queue empties). A crash
    // must be able to replay every memtable still in the queue.
    const uint64_t earliest_unflushed_log =
        imm_queue_.size() > 1 ? imm_queue_[1].log_number : logfile_number_;
    edit.SetLogNumber(earliest_unflushed_log);
    s = versions_->LogAndApply(&edit);
  }
  if (s.ok()) {
    imm->Unref();
    imm_queue_.pop_front();
    RemoveObsoleteFiles();
  }
  const uint64_t flush_micros = observe ? env_->NowMicros() - start_micros : 0;
  if (stats != nullptr) {
    stats->RecordHistogram(kHistFlushMicros, flush_micros);
  }
  if (!options_.listeners.empty()) {
    FlushJobInfo info;
    info.db_name = dbname_;
    info.file_number = meta.number;
    info.file_size = meta.file_size;
    info.micros = flush_micros;
    info.status = s;
    mutex_.Unlock();
    NotifyListeners([&](EventListener* l) { l->OnFlushEnd(info); });
    mutex_.Lock();
  }
  flush_in_progress_ = false;
  // Wake writers parked on the "imm_ still flushing" rung (and error
  // waiters: they re-check bg_error_).
  background_work_finished_signal_.SignalAll();
  return s;
}

Status DBImpl::MaybeCompact() {
  MutexLock l(&mutex_);
  AcquireCompactionToken();
  Status s;
  while (s.ok() && versions_->NeedsCompaction()) {
    s = BackgroundCompaction();
  }
  ReleaseCompactionToken();
  return s;
}

Status DBImpl::WaitForBackgroundWork() {
  MutexLock l(&mutex_);
  if (!options_.background_compaction) {
    return bg_error_;
  }
  MaybeScheduleCompaction();  // In case pending work was never scheduled.
  while (bg_error_.ok() &&
         (!imm_queue_.empty() || background_compaction_scheduled_ ||
          compaction_token_held_ || flush_in_progress_)) {
    background_work_finished_signal_.Wait();
  }
  return bg_error_;
}

Status DBImpl::Resume() {
  MutexLock l(&mutex_);
  // Let any in-flight background work report its outcome before deciding.
  while (compaction_token_held_ || flush_in_progress_ ||
         background_compaction_scheduled_) {
    background_work_finished_signal_.Wait();
  }
  if (bg_error_.ok()) {
    return Status::OK();
  }
  if (IsPermanentBackgroundError(bg_error_)) {
    return bg_error_;  // Corruption stays sticky: run RepairDB instead.
  }
  bg_error_ = Status::OK();
  bg_retry_attempts_ = 0;

  Status s;
  AcquireCompactionToken();
  // Flush the pending immutable memtables first (the failed flush left
  // them behind) so the WAL rotation below keeps the invariant that mem_'s
  // entries live in the current log.
  while (s.ok() && !imm_queue_.empty()) {
    s = CompactMemTable();
  }
  if (s.ok()) {
    // Abandon the old WAL: the failure may have left a torn append in it,
    // and records written after a torn one are unreadable at replay. A
    // fresh log (plus rotating mem_ out so its entries get re-persisted as
    // an SSTable) guarantees future acknowledged writes recover cleanly.
    uint64_t new_log_number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    if (!s.ok()) {
      versions_->ReuseFileNumber(new_log_number);
    } else {
      const uint64_t old_log_number = logfile_number_;
      logfile_ = std::move(lfile);
      logfile_number_ = new_log_number;
      log_ = std::make_unique<log::Writer>(logfile_.get());
      if (mem_->NumEntries() > 0) {
        imm_queue_.push_back(ImmEntry{mem_, old_log_number});
        mem_ = new MemTable(internal_comparator_,
                            options_.secondary_attributes,
                            options_.attribute_extractor);
        mem_->Ref();
        s = CompactMemTable();
      }
    }
  }
  while (s.ok() && versions_->NeedsCompaction()) {
    s = BackgroundCompaction();
  }
  ReleaseCompactionToken();
  if (!s.ok()) {
    RecordBackgroundError(s);
    return s;
  }
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kBgErrorAutorecovered);
  }
  // Wake writers parked on the sticky error, and (background mode) re-arm
  // the scheduler in case new work arrived while we held the token.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
  return Status::OK();
}

namespace {

// Forward iterator over a sorted in-memory vector of (internal key, value)
// pairs; feeds BuildTable with one ingest chunk.
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(
      const std::vector<std::pair<std::string, std::string>>* entries)
      : entries_(entries) {}
  bool Valid() const override { return pos_ < entries_->size(); }
  void SeekToFirst() override { pos_ = 0; }
  void SeekToLast() override {
    pos_ = entries_->empty() ? 0 : entries_->size() - 1;
  }
  void Seek(const Slice& target) override {
    pos_ = 0;
    while (Valid() && Slice((*entries_)[pos_].first).compare(target) < 0) {
      pos_++;
    }
  }
  void Next() override { pos_++; }
  void Prev() override { pos_ = (pos_ == 0) ? entries_->size() : pos_ - 1; }
  Slice key() const override { return (*entries_)[pos_].first; }
  Slice value() const override { return (*entries_)[pos_].second; }
  Status status() const override { return Status::OK(); }

 private:
  const std::vector<std::pair<std::string, std::string>>* entries_;
  size_t pos_ = 0;
};

}  // namespace

Status DBImpl::IngestExternalFiles(const IngestFeed& feed,
                                   IngestStats* stats_out,
                                   bool force_level0) {
  if (!feed) {
    return Status::InvalidArgument("IngestExternalFiles: null feed");
  }

  // Claim the ingest slot: a second concurrent ingest would interleave its
  // sequence allocation with ours.
  {
    MutexLock l(&mutex_);
    if (!bg_error_.ok()) return bg_error_;
    if (ingest_in_progress_) {
      return Status::InvalidArgument(
          "IngestExternalFiles: another ingest is in progress");
    }
    ingest_in_progress_ = true;
  }

  // Flush all in-memory data first. The records below receive sequence
  // numbers newer than every existing write, but memtables are searched
  // BEFORE disk — an older in-memory version of an ingested key would
  // shadow it. With empty memtables, recency is fully encoded in the tree
  // (L0 file numbers / level depth), which the placement rule respects.
  Status s;
  bool need_flush;
  {
    MutexLock l(&mutex_);
    need_flush = mem_->NumEntries() > 0;
  }
  if (need_flush) {
    s = Write(WriteOptions(), nullptr);  // Rotate via the writer queue
  }
  if (s.ok()) {
    s = WaitForBackgroundWork();  // Drains the imm queue in background mode
  }

  const Comparator* ucmp = internal_comparator_.user_comparator();
  IngestStats local;
  std::vector<FileMetaData> files;
  std::string prev_key;
  bool have_prev = false;
  bool more = true;
  uint64_t fed_keys = 0;

  // One chunk = one SSTable. Records are read and sequence-stamped
  // serially in feed order; only the CPU-heavy table builds (compression,
  // checksums, filters, zone maps) fan out, one wave of up to
  // ingest_parallelism chunks at a time. Chunks of a strictly-increasing
  // feed are fully independent until the splice, so build order cannot
  // change the resulting tables.
  struct IngestChunk {
    std::vector<std::pair<std::string, std::string>> entries;  // ikey, value
    FileMetaData meta;
    Status status;
  };
  const int parallelism = options_.ingest_parallelism;

  while (s.ok() && more) {
    // ---- Serially read one wave of chunks, allocating each chunk's
    // sequence window and file number in feed order. Sequence numbers must
    // be globally fresh so ingested records win any future comparison
    // against older versions; the no-concurrent-writers requirement keeps
    // each window private.
    std::vector<IngestChunk> wave;
    wave.reserve(parallelism);
    while (s.ok() && more && static_cast<int>(wave.size()) < parallelism) {
      std::vector<std::pair<std::string, std::string>> records;
      size_t chunk_bytes = 0;
      std::string key, value;
      while (chunk_bytes < options_.max_file_size) {
        key.clear();
        value.clear();
        if (!feed(&key, &value)) {
          more = false;
          break;
        }
        if (have_prev && ucmp->Compare(Slice(key), Slice(prev_key)) <= 0) {
          s = Status::InvalidArgument(
              "IngestExternalFiles: keys must be strictly increasing");
          break;
        }
        prev_key = key;
        have_prev = true;
        chunk_bytes += key.size() + value.size();
        records.emplace_back(std::move(key), std::move(value));
      }
      if (!s.ok() || records.empty()) break;
      fed_keys += records.size();

      SequenceNumber first;
      uint64_t file_number;
      {
        MutexLock l(&mutex_);
        if (!bg_error_.ok()) {
          s = bg_error_;
          break;
        }
        if (options_.shared_sequence != nullptr) {
          // Shared-counter mode: the window must be globally fresh, not
          // just locally (the counter is >= every sibling's LastSequence).
          first = options_.shared_sequence->fetch_add(
                      records.size(), std::memory_order_relaxed) +
                  1;
        } else {
          first = versions_->LastSequence() + 1;
        }
        versions_->SetLastSequence(first + records.size() - 1);
        file_number = versions_->NewFileNumber();
        pending_outputs_.insert(file_number);
      }
      if (local.keys == 0) local.first_seq = first;
      local.last_seq = first + records.size() - 1;
      local.keys += records.size();

      IngestChunk chunk;
      chunk.meta.number = file_number;
      chunk.entries.reserve(records.size());
      for (size_t i = 0; i < records.size(); i++) {
        std::string ikey;
        AppendInternalKey(&ikey,
                          ParsedInternalKey(Slice(records[i].first),
                                            first + i, kTypeValue));
        chunk.entries.emplace_back(std::move(ikey),
                                   std::move(records[i].second));
      }
      wave.push_back(std::move(chunk));
    }
    if (!s.ok()) {
      // Mid-wave read failure: drop the allocated-but-unbuilt chunks
      // (nothing reached disk; the burned sequence windows are harmless).
      MutexLock l(&mutex_);
      for (const IngestChunk& chunk : wave) {
        pending_outputs_.erase(chunk.meta.number);
      }
      break;
    }
    if (wave.empty()) break;

    // ---- Build the wave's SSTables concurrently through the regular
    // builder (zone maps, embedded secondary filters, sync and verify
    // included). The mutex is not held: the files are invisible until the
    // splice, and pending_outputs_ protects them from RemoveObsoleteFiles.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(wave.size());
    for (IngestChunk& chunk : wave) {
      tasks.push_back([this, &chunk]() {
        VectorIterator iter(&chunk.entries);
        // Ingest feeds carry one version per user key and the sequences are
        // newer than any snapshot, so unconditional collapse is safe.
        chunk.status =
            BuildTable(dbname_, env_, options_, internal_comparator_,
                       table_cache_.get(), &iter, kMaxSequenceNumber,
                       &chunk.meta);
      });
    }
    ParallelRun(&tasks, parallelism, options_.statistics);

    // ---- Collect in feed order; the first failure fails the ingest.
    {
      MutexLock l(&mutex_);
      for (const IngestChunk& chunk : wave) {
        pending_outputs_.erase(chunk.meta.number);
      }
    }
    for (IngestChunk& chunk : wave) {
      if (!chunk.status.ok()) {
        if (s.ok()) s = chunk.status;
      } else if (chunk.meta.file_size > 0) {
        local.files++;
        local.bytes += chunk.meta.file_size;
        files.push_back(chunk.meta);
      }
    }
  }

  // ---- Splice every built file in ONE VersionEdit: the ingest becomes
  // visible (and durable — LogAndApply syncs the MANIFEST, which also
  // records the advanced last-sequence) atomically.
  if (s.ok() && !files.empty()) {
    MutexLock l(&mutex_);
    if (!bg_error_.ok()) {
      s = bg_error_;
    } else {
      VersionEdit edit;
      Version* base = versions_->current();
      for (const FileMetaData& f : files) {
        // Deepest level whose files (and those of every shallower level)
        // are disjoint from this file's range: Get walks newest-to-oldest
        // residences, so correctness only requires that no OLDER version
        // of an ingested key lives deeper than the splice point — and any
        // such version lies inside some overlapping file's range. With
        // overlap anywhere, fall back to L0, where the fresh file number
        // makes the file the newest residence.
        const Slice smallest = f.smallest.user_key();
        const Slice largest = f.largest.user_key();
        int target = 0;
        if (!force_level0 && !base->OverlapInLevel(0, &smallest, &largest)) {
          for (int level = 1; level < options_.num_levels &&
                              !base->OverlapInLevel(level, &smallest, &largest);
               level++) {
            target = level;
          }
        }
        edit.AddFile(target, f);
      }
      s = versions_->LogAndApply(&edit);
      if (s.ok()) {
        // A splice into levels >= 1 just invalidated any sorted view;
        // rebuild under the compaction token (waiting briefly if a
        // compaction is mid-flight) so iterators regain the fast path.
        AcquireCompactionToken();
        MaybeRebuildSortedView();
        ReleaseCompactionToken();
        RemoveObsoleteFiles();
      }
    }
  }

  {
    MutexLock l(&mutex_);
    if (!s.ok()) {
      // Remove the orphaned builds; the burned sequence window is harmless.
      for (const FileMetaData& f : files) {
        table_cache_->Evict(f.number);
        env_->RemoveFile(TableFileName(dbname_, f.number));
      }
    }
    ingest_in_progress_ = false;
  }

  if (s.ok()) {
    if (options_.statistics != nullptr && local.files > 0) {
      options_.statistics->Record(kIngestFiles, local.files);
      options_.statistics->Record(kIngestBytes, local.bytes);
      options_.statistics->Record(kIngestKeys, local.keys);
    }
    if (stats_out != nullptr) *stats_out = local;
  }
  (void)fed_keys;
  return s;
}

Status DBImpl::BackgroundCompaction() {
  mutex_.AssertHeld();
  std::unique_ptr<Compaction> c(versions_->PickCompaction());
  if (c == nullptr) return Status::OK();

  Status status;
  if (c->IsTrivialMove()) {
    // Move file to next level.
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->level() + 1, *f);
    status = versions_->LogAndApply(c->edit());
  } else {
    status = DoCompactionWork(c.get());
  }
  c->ReleaseInputs();
  // Rebuild the sorted view once the tree settles; while more compactions
  // are pending each rebuild would be invalidated immediately, so wait.
  if (status.ok() && !versions_->NeedsCompaction()) {
    MaybeRebuildSortedView();
  }
  RemoveObsoleteFiles();
  return status;
}

namespace {

// Accumulates one "run" of consecutive entries sharing a user key (newest
// first), then emits the compaction output for the run.
struct RunState {
  std::string user_key;
  bool active = false;
  // Values of the leading kTypeValue entries (newest first).
  std::vector<std::string> values;
  SequenceNumber newest_seq = 0;
  bool saw_tombstone = false;
  SequenceNumber tombstone_seq = 0;
};

}  // namespace

Status DBImpl::DoCompactionWork(Compaction* c) {
  mutex_.AssertHeld();
  Statistics* stats = options_.statistics;
  CompactionJobInfo job_info;  // Filled for OnCompactionBegin, reused for End
  job_info.db_name = dbname_;
  job_info.level = c->level();
  job_info.output_level = c->level() + 1;
  for (int which = 0; which < 2; which++) {
    job_info.input_files += c->num_input_files(which);
    for (int i = 0; i < c->num_input_files(which); i++) {
      job_info.input_bytes[which] += c->input(which, i)->file_size;
    }
  }
  if (stats != nullptr) {
    stats->Record(kCompactionCount);
    stats->Record(kCompactionBytesRead,
                  job_info.input_bytes[0] + job_info.input_bytes[1]);
  }
  const bool observe = stats != nullptr || !options_.listeners.empty();

  // Oldest sequence any live snapshot can still read. Record versions at or
  // below this bound behave classically (newest wins, the rest drop);
  // versions above it must survive the merge so snapshot reads stay exact.
  // With no live snapshots this is LastSequence and every version is "at or
  // below" it, reproducing plain newest-wins semantics.
  const SequenceNumber smallest_snapshot =
      snapshots_.empty() ? versions_->LastSequence()
                         : snapshots_.oldest()->sequence();

  // The merge loop runs with the mutex released: the inputs are pinned by
  // the compaction's input-version reference, and the outputs are invisible
  // to every Version until LogAndApply (protected from garbage collection
  // via pending_outputs_). Only file-number allocation retakes the mutex.
  mutex_.Unlock();
  const uint64_t start_micros = observe ? env_->NowMicros() : 0;
  if (!options_.listeners.empty()) {
    NotifyListeners(
        [&](EventListener* l) { l->OnCompactionBegin(job_info); });
  }

  std::unique_ptr<Iterator> input(versions_->MakeInputIterator(c));
  input->SeekToFirst();

  Status status;
  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;
  std::vector<FileMetaData> outputs;

  const Comparator* ucmp = internal_comparator_.user_comparator();
  const ValueMerger* merger = options_.value_merger;

  auto open_output = [&]() -> Status {
    FileMetaData meta;
    {
      MutexLock l(&mutex_);
      meta.number = versions_->NewFileNumber();
      pending_outputs_.insert(meta.number);
    }
    outputs.push_back(meta);
    std::string fname = TableFileName(dbname_, meta.number);
    Status s = env_->NewWritableFile(fname, &outfile);
    if (s.ok()) {
      builder = std::make_unique<TableBuilder>(options_, outfile.get());
    }
    return s;
  };

  auto finish_output = [&]() -> Status {
    assert(builder != nullptr);
    FileMetaData& meta = outputs.back();
    Status s = builder->Finish();
    if (s.ok()) {
      meta.file_size = builder->FileSize();
      for (size_t i = 0; i < options_.secondary_attributes.size(); i++) {
        meta.zone_ranges.push_back(builder->FileZoneRange(i));
      }
      if (stats != nullptr) {
        stats->Record(kCompactionBytesWritten, meta.file_size);
      }
      job_info.bytes_written += meta.file_size;
      job_info.output_files++;
    }
    builder.reset();
    if (s.ok()) s = outfile->Sync();
    if (s.ok()) s = outfile->Close();
    outfile.reset();
    return s;
  };

  auto emit = [&](const Slice& internal_key, const Slice& value) -> Status {
    Status s;
    if (builder == nullptr) {
      s = open_output();
      if (!s.ok()) return s;
    }
    FileMetaData& meta = outputs.back();
    if (builder->NumEntries() == 0) {
      meta.smallest.DecodeFrom(internal_key);
    }
    meta.largest.DecodeFrom(internal_key);
    const SequenceNumber seq = ExtractSequence(internal_key);
    if (seq > meta.max_seq) meta.max_seq = seq;
    builder->Add(internal_key, value);
    if (builder->FileSize() >= c->MaxOutputFileSize()) {
      s = finish_output();
    }
    return s;
  };

  // Emit the accumulated run's output entries (Lazy-index merger path
  // only; the ordinary path drops per entry inside the loop below).
  RunState run;
  auto flush_run = [&]() -> Status {
    if (!run.active) return Status::OK();
    assert(merger != nullptr);
    Status s;
    const bool base = c->IsBaseLevelForKey(Slice(run.user_key));
    // Lazy-index semantics: merge all fragments above the first
    // tombstone; anything below a tombstone is dead.
    if (!run.values.empty()) {
      std::vector<Slice> vals;
      vals.reserve(run.values.size());
      for (const std::string& v : run.values) vals.emplace_back(v);
      const bool at_bottom = base || run.saw_tombstone;
      std::string merged;
      if (merger->Merge(Slice(run.user_key), vals, at_bottom, &merged)) {
        std::string ikey;
        AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                   run.newest_seq,
                                                   kTypeValue));
        s = emit(Slice(ikey), Slice(merged));
      }
    }
    if (s.ok() && run.saw_tombstone && !base) {
      // The tombstone must survive above the base level EVEN IF a merged
      // value was emitted: unlike plain LSM reads (which stop at the
      // newest version), the Lazy index's read path UNIONS fragments from
      // every level, so only the tombstone keeps the pre-tombstone
      // fragments in lower levels shadowed. Its sequence number is lower
      // than the merged value's, preserving internal-key order.
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(Slice(run.user_key),
                                                 run.tombstone_seq,
                                                 kTypeDeletion));
      s = emit(Slice(ikey), Slice());
    }
    run = RunState();
    return s;
  };

  // Per-entry state for the ordinary (merger == nullptr) drop rule.
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  for (; input->Valid() && status.ok(); input->Next()) {
    Slice key = input->key();
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      status = Status::Corruption("corrupted internal key in compaction");
      break;
    }

    if (merger == nullptr) {
      // Ordinary LSM semantics, snapshot-aware: a version is dropped only
      // when a NEWER version of the same user key is itself invisible to
      // every live snapshot (then no read can ever land between the two),
      // or when it is a tombstone no snapshot can see that has reached its
      // base level (nothing older survives below). With no snapshots this
      // collapses each key to its newest version, with tombstones carried
      // until the base level — the classic rule.
      bool drop = false;
      if (!has_current_user_key ||
          ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= smallest_snapshot) {
        drop = true;  // Shadowed by a newer entry no snapshot can miss
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= smallest_snapshot &&
                 c->IsBaseLevelForKey(ikey.user_key)) {
        drop = true;
      }
      last_sequence_for_key = ikey.sequence;
      if (!drop) {
        status = emit(key, input->value());
      }
      continue;
    }

    if (!run.active || ucmp->Compare(ikey.user_key, Slice(run.user_key)) != 0) {
      status = flush_run();
      if (!status.ok()) break;
      run.active = true;
      run.user_key.assign(ikey.user_key.data(), ikey.user_key.size());
      run.newest_seq = ikey.sequence;
    }

    if (run.saw_tombstone) {
      continue;  // Everything below the first tombstone is invisible.
    }
    if (ikey.type == kTypeDeletion) {
      run.saw_tombstone = true;
      run.tombstone_seq = ikey.sequence;
    } else {
      run.values.emplace_back(input->value().data(), input->value().size());
    }
  }
  if (status.ok()) status = flush_run();
  if (status.ok()) status = input->status();
  input.reset();

  if (status.ok() && builder != nullptr) {
    status = finish_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    outfile.reset();
  }

  mutex_.Lock();
  if (status.ok()) {
    c->AddInputDeletions(c->edit());
    for (const FileMetaData& out : outputs) {
      if (out.file_size > 0) {
        c->edit()->AddFile(c->level() + 1, out);
      }
    }
    status = versions_->LogAndApply(c->edit());
  }
  for (const FileMetaData& out : outputs) {
    pending_outputs_.erase(out.number);
  }
  const uint64_t micros = observe ? env_->NowMicros() - start_micros : 0;
  if (stats != nullptr) {
    stats->RecordHistogram(kHistCompactionMicros, micros);
  }
  if (!options_.listeners.empty()) {
    // Fired after LogAndApply so listeners observe the final outcome; the
    // compaction token (held by every caller) still serializes the job.
    job_info.micros = micros;
    job_info.status = status;
    mutex_.Unlock();
    NotifyListeners([&](EventListener* l) { l->OnCompactionEnd(job_info); });
    mutex_.Lock();
  }
  return status;
}

void DBImpl::RemoveObsoleteFiles() {
  mutex_.AssertHeld();
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage collect.
    return;
  }

  // Make a set of all of the live files: everything referenced by some
  // version plus in-progress flush/compaction outputs.
  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  env_->GetChildren(dbname_, &filenames);  // Ignoring errors on purpose
  std::vector<std::string> files_to_delete;
  uint64_t number;
  FileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = (number >= versions_->LogNumber());
          break;
        case kDescriptorFile:
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case kTempFile:
          keep = false;
          break;
        case kSortedViewFile:
          // Only the MANIFEST-referenced sorted view is live; a superseded
          // or orphaned (build crashed before LogAndApply) view is garbage.
          keep = (number == versions_->SortedViewNumber() ||
                  pending_outputs_.find(number) != pending_outputs_.end());
          break;
        case kCurrentFile:
        case kDBLockFile:
          keep = true;
          break;
      }

      if (!keep) {
        if (type == kTableFile) {
          table_cache_->Evict(number);
        }
        files_to_delete.push_back(filename);
      }
    }
  }

  // The deletions can run unlocked: everything in files_to_delete is
  // unreferenced by now, so nobody can observe the files disappearing.
  mutex_.Unlock();
  for (const std::string& filename : files_to_delete) {
    env_->RemoveFile(dbname_ + "/" + filename);
  }
  mutex_.Lock();
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  // Public point lookups only: internal GetWithMeta callers (candidate
  // validation) are timed as validate_micros, not get latency.
  Statistics* const stats = options_.statistics;
  const uint64_t start = stats != nullptr ? env_->NowMicros() : 0;
  ScopedPerfTimer timer(&PerfContext::get_micros);
  RecordLocation loc;
  Status s = GetWithMeta(options, key, value, &loc);
  if (stats != nullptr) {
    stats->RecordHistogram(kHistGetMicros, env_->NowMicros() - start);
  }
  return s;
}

Status DBImpl::GetWithMeta(const ReadOptions& options, const Slice& key,
                           std::string* value, RecordLocation* loc) {
  MemTable* mem;
  std::vector<MemTable*> imms;  // Newest first
  Version* current;
  {
    MutexLock l(&mutex_);
    mem = mem_;
    mem->Ref();
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      it->mem->Ref();
      imms.push_back(it->mem);
    }
    current = versions_->current();
    current->Ref();
  }

  Status s;
  bool found = false;
  const SequenceNumber snapshot =
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
          : versions_->LastSequence();
  LookupKey lkey(key, snapshot);
  std::string mem_value;
  SequenceNumber seq;
  bool deleted;
  if (mem->GetNewest(key, &mem_value, &seq, &deleted, snapshot)) {
    loc->seq = seq;
    loc->level = -1;
    s = deleted ? Status::NotFound(Slice()) : Status::OK();
    if (!deleted) value->swap(mem_value);
    found = true;
  }
  for (MemTable* imm : imms) {
    if (found) break;
    if (imm->GetNewest(key, &mem_value, &seq, &deleted, snapshot)) {
      loc->seq = seq;
      loc->level = -2;
      s = deleted ? Status::NotFound(Slice()) : Status::OK();
      if (!deleted) value->swap(mem_value);
      found = true;
    }
  }
  if (!found) {
    int level = -1;
    s = current->Get(options, lkey, value, &seq, &level);
    if (s.ok()) {
      loc->seq = seq;
      loc->level = level;
    }
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  mem->Unref();
  for (MemTable* imm : imms) imm->Unref();
  return s;
}

namespace {

// Result of probing one SSTable for one key (MultiGet's per-(key,file) unit).
struct ProbeResult {
  enum State { kProbeNotFound, kProbeFound, kProbeDeleted, kProbeCorrupt };
  State state = kProbeNotFound;
  SequenceNumber seq = 0;
  std::string value;
  Status io;  // Status of the table open / block reads themselves
};

struct ProbeSaver {
  const Comparator* ucmp;
  Slice user_key;
  ProbeResult* out;
};

void SaveProbe(void* arg, const Slice& ikey, const Slice& v) {
  ProbeSaver* s = reinterpret_cast<ProbeSaver*>(arg);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) {
    s->out->state = ProbeResult::kProbeCorrupt;
  } else if (s->ucmp->Compare(parsed.user_key, s->user_key) == 0) {
    s->out->state = (parsed.type == kTypeValue) ? ProbeResult::kProbeFound
                                                : ProbeResult::kProbeDeleted;
    s->out->seq = parsed.sequence;
    if (parsed.type == kTypeValue) s->out->value.assign(v.data(), v.size());
  }
}

// Sub-task size when splitting a level's per-file probe groups: aim for ~2
// tasks per executor so the barrier stays balanced. In sequential mode one
// chunk per group (ParallelRun inlines the tasks in order regardless).
size_t SplitGroupSize(size_t total_probes, int read_parallelism) {
  if (read_parallelism <= 1) return std::max<size_t>(total_probes, 1);
  return std::max<size_t>(
      1, total_probes / (static_cast<size_t>(read_parallelism) * 2));
}

}  // namespace

Status DBImpl::MultiGet(const ReadOptions& options,
                        const std::vector<Slice>& keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) {
  std::vector<RecordLocation> locs;
  return MultiGetWithMeta(options, keys, values, &locs, statuses);
}

Status DBImpl::MultiGetWithMeta(const ReadOptions& options,
                                const std::vector<Slice>& keys,
                                std::vector<std::string>* values,
                                std::vector<RecordLocation>* locs,
                                std::vector<Status>* statuses) {
  const size_t n = keys.size();
  values->assign(n, std::string());
  locs->assign(n, RecordLocation());
  statuses->assign(n, Status::NotFound(Slice()));
  if (n == 0) return Status::OK();
  ScopedPerfTimer timer(&PerfContext::multiget_micros);

  Statistics* stats = options_.statistics;
  if (stats != nullptr) {
    stats->Record(kMultiGetBatches);
    stats->Record(kMultiGetKeys, n);
  }

  MemTable* mem;
  std::vector<MemTable*> imms;  // Newest first
  Version* current;
  {
    MutexLock l(&mutex_);
    mem = mem_;
    mem->Ref();
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      it->mem->Ref();
      imms.push_back(it->mem);
    }
    current = versions_->current();
    current->Ref();
  }
  const SequenceNumber snapshot =
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
          : versions_->LastSequence();
  const Comparator* ucmp = internal_comparator_.user_comparator();

  // Phase 1 (sequential — memtable probes are pure in-memory work): keys
  // answered by the live or immutable memtables never touch disk.
  std::vector<char> resolved(n, 0);
  for (size_t i = 0; i < n; i++) {
    std::string mem_value;
    SequenceNumber seq;
    bool deleted;
    bool hit = false;
    if (mem->GetNewest(keys[i], &mem_value, &seq, &deleted, snapshot)) {
      (*locs)[i].seq = seq;
      (*locs)[i].level = -1;
      hit = true;
    } else {
      for (MemTable* imm : imms) {
        if (imm->GetNewest(keys[i], &mem_value, &seq, &deleted, snapshot)) {
          (*locs)[i].seq = seq;
          (*locs)[i].level = -2;
          hit = true;
          break;
        }
      }
    }
    if (!hit) continue;
    (*statuses)[i] = deleted ? Status::NotFound(Slice()) : Status::OK();
    if (!deleted) (*values)[i].swap(mem_value);
    resolved[i] = 1;
  }

  // Keys still pending go to disk, sorted by user key so that grouping and
  // the per-table probe order are deterministic regardless of caller order.
  std::vector<size_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; i++) {
    if (!resolved[i]) pending.push_back(i);
  }
  std::sort(pending.begin(), pending.end(), [&](size_t a, size_t b) {
    int c = ucmp->Compare(keys[a], keys[b]);
    if (c != 0) return c < 0;
    return a < b;  // Duplicate keys keep caller order
  });

  std::vector<std::unique_ptr<LookupKey>> lkeys(n);
  for (size_t i : pending) {
    lkeys[i] = std::make_unique<LookupKey>(keys[i], snapshot);
  }

  // Applies one probe's outcome to key `i`; returns true once the key's
  // answer is final (found / deleted / error), mirroring Version::Get.
  auto apply = [&](size_t i, ProbeResult& r, int level) -> bool {
    if (!r.io.ok()) {
      if (r.io.IsCorruption() && !options_.paranoid_checks) {
        // Quarantined block (or unopenable table): same fallthrough as
        // Version::Get — keep probing older residences for a valid copy.
        return false;
      }
      (*statuses)[i] = r.io;
      return true;
    }
    switch (r.state) {
      case ProbeResult::kProbeNotFound:
        return false;  // Keep searching deeper
      case ProbeResult::kProbeFound:
        (*statuses)[i] = Status::OK();
        (*values)[i] = std::move(r.value);
        (*locs)[i].seq = r.seq;
        (*locs)[i].level = level;
        return true;
      case ProbeResult::kProbeDeleted:
        (*statuses)[i] = Status::NotFound(Slice());
        return true;
      case ProbeResult::kProbeCorrupt:
        if (!options_.paranoid_checks) return false;
        (*statuses)[i] = Status::Corruption("corrupted key for ", keys[i]);
        return true;
    }
    return false;
  };

  // Phase 2: level 0. Files overlap, so one key may probe several files;
  // group the (key, file) probes per file (table pinned once per group),
  // run all of a level's groups — possibly in parallel — then resolve each
  // key newest-file-first after the barrier. The barrier is what keeps the
  // newest-residence-wins rule exact: no key consults level L+1 until every
  // probe at level L has reported.
  if (!pending.empty() && current->NumFiles(0) > 0) {
    struct L0Group {
      FileMetaData* f = nullptr;
      std::vector<std::pair<size_t, size_t>> probes;  // (key idx, file rank)
    };
    std::map<uint64_t, L0Group> groups;
    std::vector<std::vector<FileMetaData*>> kfiles(n);
    std::vector<std::vector<ProbeResult>> results(n);
    for (size_t i : pending) {
      current->OverlappingL0Files(keys[i], &kfiles[i]);
      results[i].resize(kfiles[i].size());
      for (size_t p = 0; p < kfiles[i].size(); p++) {
        L0Group& g = groups[kfiles[i][p]->number];
        g.f = kfiles[i][p];
        g.probes.emplace_back(i, p);
      }
    }
    if (!groups.empty()) {
      // Probes are independent point gets writing disjoint result slots, so
      // a big group is further split across tasks: secondary-index
      // candidates cluster heavily (one user's records usually live in one
      // or two tables), and an unsplit group would serialize them behind a
      // single executor while the rest of the pool idles.
      size_t total_probes = 0;
      for (const auto& entry : groups) {
        total_probes += entry.second.probes.size();
      }
      const size_t per_task =
          SplitGroupSize(total_probes, options_.read_parallelism);
      std::vector<std::function<void()>> tasks;
      tasks.reserve(groups.size());
      for (auto& entry : groups) {
        L0Group* g = &entry.second;
        for (size_t begin = 0; begin < g->probes.size(); begin += per_task) {
          const size_t end = std::min(g->probes.size(), begin + per_task);
          tasks.push_back([this, g, begin, end, &options, &keys, &lkeys,
                           &results, ucmp]() {
            Table* t = nullptr;
            Cache::Handle* h = nullptr;
            Status ts =
                table_cache_->Pin(g->f->number, g->f->file_size, &t, &h);
            for (size_t j = begin; j < end; j++) {
              const auto& pr = g->probes[j];
              ProbeResult& r = results[pr.first][pr.second];
              if (!ts.ok()) {
                r.io = ts;
                continue;
              }
              ProbeSaver saver{ucmp, keys[pr.first], &r};
              r.io = t->InternalGet(options, lkeys[pr.first]->internal_key(),
                                    &saver, SaveProbe);
            }
            if (h != nullptr) table_cache_->Unpin(h);
          });
        }
      }
      ParallelRun(&tasks, options_.read_parallelism, stats);
      std::vector<size_t> still;
      for (size_t i : pending) {
        bool done = false;
        for (size_t p = 0; p < results[i].size() && !done; p++) {
          done = apply(i, results[i][p], 0);
        }
        if (!done) still.push_back(i);
      }
      pending.swap(still);
    }
  }

  // Phase 3: levels >= 1. Disjoint files mean at most one file per key, so
  // a group is simply the keys that binary-search into the same file. One
  // barrier per level.
  for (int level = 1; level < current->NumLevels() && !pending.empty();
       level++) {
    if (current->NumFiles(level) == 0) continue;
    struct LevelGroup {
      FileMetaData* f = nullptr;
      std::vector<size_t> key_idx;
    };
    std::map<uint64_t, LevelGroup> groups;
    for (size_t i : pending) {
      FileMetaData* f =
          current->FileForKey(level, keys[i], lkeys[i]->internal_key());
      if (f == nullptr) continue;
      LevelGroup& g = groups[f->number];
      g.f = f;
      g.key_idx.push_back(i);
    }
    if (groups.empty()) continue;
    // Same group splitting as level 0 (see above): clustered keys must not
    // serialize behind one executor.
    size_t total_keys = 0;
    for (const auto& entry : groups) {
      total_keys += entry.second.key_idx.size();
    }
    const size_t per_task =
        SplitGroupSize(total_keys, options_.read_parallelism);
    std::vector<ProbeResult> results(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups.size());
    for (auto& entry : groups) {
      LevelGroup* g = &entry.second;
      for (size_t begin = 0; begin < g->key_idx.size(); begin += per_task) {
        const size_t end = std::min(g->key_idx.size(), begin + per_task);
        tasks.push_back([this, g, begin, end, &options, &keys, &lkeys,
                         &results, ucmp]() {
          Table* t = nullptr;
          Cache::Handle* h = nullptr;
          Status ts = table_cache_->Pin(g->f->number, g->f->file_size, &t, &h);
          for (size_t j = begin; j < end; j++) {
            const size_t i = g->key_idx[j];
            ProbeResult& r = results[i];
            if (!ts.ok()) {
              r.io = ts;
              continue;
            }
            ProbeSaver saver{ucmp, keys[i], &r};
            r.io = t->InternalGet(options, lkeys[i]->internal_key(), &saver,
                                  SaveProbe);
          }
          if (h != nullptr) table_cache_->Unpin(h);
        });
      }
    }
    ParallelRun(&tasks, options_.read_parallelism, stats);
    std::vector<size_t> still;
    for (size_t i : pending) {
      if (!apply(i, results[i], level)) still.push_back(i);
    }
    pending.swap(still);
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  mem->Unref();
  for (MemTable* imm : imms) imm->Unref();

  // Keys never found anywhere keep their initial NotFound status. The
  // aggregate result is the first (in caller order) non-NotFound error.
  for (size_t i = 0; i < n; i++) {
    if (!(*statuses)[i].ok() && !(*statuses)[i].IsNotFound()) {
      return (*statuses)[i];
    }
  }
  return Status::OK();
}

bool DBImpl::IsNewestVersion(const Slice& key, SequenceNumber seq,
                             int record_level, uint64_t record_file) {
  Statistics* stats = options_.statistics;
  if (stats != nullptr) stats->Record(kGetLiteCalls);

  MemTable* mem;
  std::vector<MemTable*> imms;  // Newest first
  Version* current;
  {
    MutexLock l(&mutex_);
    mem = mem_;
    mem->Ref();
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      it->mem->Ref();
      imms.push_back(it->mem);
    }
    current = versions_->current();
    current->Ref();
  }

  bool result = true;
  bool resolved = false;

  std::string unused;
  SequenceNumber found_seq;
  bool deleted;
  if (mem->GetNewest(key, &unused, &found_seq, &deleted)) {
    result = found_seq <= seq;
    resolved = true;
  }
  for (MemTable* imm : imms) {
    if (resolved) break;
    if (imm->GetNewest(key, &unused, &found_seq, &deleted)) {
      result = found_seq <= seq;
      resolved = true;
    }
  }
  if (!resolved && record_level < 0) {
    // The record lives in a memtable; nothing on disk can be newer.
    resolved = true;
  }

  if (!resolved) {
    const Comparator* ucmp = internal_comparator_.user_comparator();
    LookupKey lkey(key, kMaxSequenceNumber);
    Slice ikey = lkey.internal_key();

    auto check_file = [&](FileMetaData* f) -> bool /* keep scanning */ {
      // Metadata-only probe first (this is the GetLite saving).
      bool may_exist = true;
      table_cache_->WithTable(f->number, f->file_size, [&](Table* t) {
        // The table's index block and filters are keyed on internal keys.
        may_exist = t->KeyMayExistNoIO(ikey);
      });
      if (!may_exist) return true;
      // Bloom positive: confirming bounded read of one block.
      if (stats != nullptr) stats->Record(kGetLiteConfirmReads);
      struct Ctx {
        const Comparator* ucmp;
        Slice key;
        bool found = false;
        SequenceNumber seq = 0;
      } ctx{ucmp, key};
      table_cache_->Get(
          ReadOptions(), f->number, f->file_size, ikey, &ctx,
          [](void* arg, const Slice& found_key, const Slice&) {
            Ctx* c = reinterpret_cast<Ctx*>(arg);
            ParsedInternalKey parsed;
            if (ParseInternalKey(found_key, &parsed) &&
                c->ucmp->Compare(parsed.user_key, c->key) == 0) {
              c->found = true;
              c->seq = parsed.sequence;
            }
          });
      if (ctx.found) {
        result = (ctx.seq <= seq);
        resolved = true;
        return false;
      }
      return true;
    };

    // L0 newest-to-oldest, then deeper levels, but only residences STRICTLY
    // NEWER than the record's own: for an L0 record that means L0 files with
    // a higher file number; for a level-i record it means all of L0 plus
    // levels 1..i-1. The first version found while walking downward is the
    // newest in the store.
    std::vector<FileMetaData*> l0;
    for (FileMetaData* f : current->files(0)) {
      if (record_level == 0 && f->number <= record_file) {
        continue;  // The record's own flush, or an older one.
      }
      if (ucmp->Compare(key, f->smallest.user_key()) >= 0 &&
          ucmp->Compare(key, f->largest.user_key()) <= 0) {
        l0.push_back(f);
      }
    }
    std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
      return a->number > b->number;
    });
    for (FileMetaData* f : l0) {
      if (!check_file(f)) break;
    }
    if (!resolved) {
      const int max_level = std::min(record_level, current->NumLevels());
      for (int level = 1; level < max_level; level++) {
        const auto& files = current->files(level);
        if (files.empty()) continue;
        int index = FindFile(internal_comparator_, files, ikey);
        if (index >= static_cast<int>(files.size())) continue;
        FileMetaData* f = files[index];
        if (ucmp->Compare(key, f->smallest.user_key()) < 0) continue;
        if (!check_file(f)) break;
      }
    }
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  mem->Unref();
  for (MemTable* imm : imms) imm->Unref();
  return result;
}

Status DBImpl::GetFragments(
    const ReadOptions& options, const Slice& key,
    const std::function<bool(int, SequenceNumber, bool, const Slice&)>& fn) {
  MemTable* mem;
  Version* current;
  std::vector<MemTable*> imms;  // Newest first
  {
    MutexLock l(&mutex_);
    mem = mem_;
    mem->Ref();
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      it->mem->Ref();
      imms.push_back(it->mem);
    }
    current = versions_->current();
    current->Ref();
  }

  Status s;
  bool stopped = false;
  int rank = 0;
  std::string value;
  SequenceNumber seq;
  bool deleted;
  if (mem->GetNewest(key, &value, &seq, &deleted)) {
    if (!fn(rank, seq, deleted, Slice(value))) stopped = true;
  }
  rank++;
  for (MemTable* imm : imms) {
    if (stopped) break;
    if (imm->GetNewest(key, &value, &seq, &deleted)) {
      if (!fn(rank, seq, deleted, Slice(value))) stopped = true;
    }
    rank++;
  }
  if (imms.empty()) rank++;  // Keep disk ranks stable when no imm exists

  if (!stopped) {
    s = current->GetFragments(
        options, key,
        [&](int level, SequenceNumber fseq, bool fdel, const Slice& fval) {
          return fn(rank + level, fseq, fdel, fval);
        });
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  mem->Unref();
  for (MemTable* imm : imms) imm->Unref();
  return s;
}

namespace {

// True iff `view` describes exactly `v`'s levels >= 1: same non-empty
// levels, same file numbers in the same order.
bool SortedViewMatchesVersion(const SortedView& view, Version* v) {
  size_t run = 0;
  for (int level = 1; level < v->NumLevels(); level++) {
    const std::vector<FileMetaData*>& files = v->files(level);
    if (files.empty()) continue;
    if (run >= view.levels.size() || view.levels[run] != level) return false;
    const std::vector<uint64_t>& numbers = view.level_files[run];
    if (numbers.size() != files.size()) return false;
    for (size_t i = 0; i < files.size(); i++) {
      if (files[i]->number != numbers[i]) return false;
    }
    run++;
  }
  return run == view.levels.size();
}

}  // namespace

void DBImpl::MaybeRebuildSortedView() {
  mutex_.AssertHeld();
  assert(compaction_token_held_);
  if (!options_.sorted_views ||
      shutting_down_.load(std::memory_order_acquire)) {
    return;
  }
  if (versions_->SortedViewNumber() != 0) {
    // The MANIFEST still points at a view, so no edit has touched levels
    // >= 1 since it was built (e.g. an L0-only ingest): keep it.
    return;
  }
  Version* base = versions_->current();
  std::vector<int> covered;
  for (int level = 1; level < base->NumLevels(); level++) {
    if (base->NumFiles(level) > 0) covered.push_back(level);
  }
  if (covered.size() < 2) {
    // Zero or one sorted run below L0: the concatenating iterator is
    // already a pre-merged view, nothing to gain. Any previous view's
    // number was cleared by the edit that got us here.
    sorted_view_cache_.reset();
    return;
  }

  auto view = std::make_shared<SortedView>();
  view->number = versions_->NewFileNumber();
  view->levels = covered;
  for (int level : covered) {
    std::vector<uint64_t> numbers;
    numbers.reserve(base->files(level).size());
    for (const FileMetaData* f : base->files(level)) {
      numbers.push_back(f->number);
    }
    view->level_files.push_back(std::move(numbers));
  }
  pending_outputs_.insert(view->number);
  base->Ref();

  mutex_.Unlock();
  const uint64_t start_micros = env_->NowMicros();
  ReadOptions read_options;
  read_options.fill_cache = false;
  std::vector<Iterator*> runs;
  for (int level : covered) {
    runs.push_back(base->NewConcatenatingIterator(read_options, level));
  }
  Status s = BuildSortedView(&internal_comparator_, runs, view.get());
  for (Iterator* run : runs) delete run;
  const std::string fname = SortedViewFileName(dbname_, view->number);
  if (s.ok()) {
    s = WriteSortedViewFile(env_, fname, *view);
  }
  const uint64_t micros = env_->NowMicros() - start_micros;
  mutex_.Lock();
  base->Unref();

  // An ingest may have spliced files while the mutex was released (it does
  // not hold the compaction token): the sweep then describes a stale tree.
  // Drop the build — if that ingest touched levels >= 1 it schedules its
  // own rebuild after its splice.
  if (s.ok() && !SortedViewMatchesVersion(*view, versions_->current())) {
    s = Status::InvalidArgument("sorted view superseded during build");
  }
  if (s.ok() && !shutting_down_.load(std::memory_order_acquire)) {
    VersionEdit edit;
    edit.SetSortedView(view->number);
    s = versions_->LogAndApply(&edit);
  }
  pending_outputs_.erase(view->number);
  if (s.ok()) {
    if (options_.statistics != nullptr) {
      options_.statistics->Record(kSortedViewBuilds);
      options_.statistics->Record(kSortedViewBuildEntries, view->entry_count);
      options_.statistics->RecordHistogram(kHistSortedViewBuildMicros,
                                           static_cast<double>(micros));
    }
    sorted_view_cache_ = std::move(view);
  } else {
    // The view is only an optimization: absorb the failure (no sticky
    // background error), delete the partial artifact, keep heap-merging.
    sorted_view_cache_.reset();
    env_->RemoveFile(fname);
  }
}

std::shared_ptr<const SortedView> DBImpl::GetOrLoadSortedView() {
  mutex_.AssertHeld();
  const uint64_t number = versions_->SortedViewNumber();
  if (number == 0) return nullptr;
  if (sorted_view_cache_ != nullptr && sorted_view_cache_->number == number) {
    return sorted_view_cache_;
  }
  // First use since reopen: load the artifact the recovered MANIFEST
  // points at. Any mismatch (corruption, manual file tampering) just
  // disables the view.
  auto view = std::make_shared<SortedView>();
  Status s = ReadSortedViewFile(env_, SortedViewFileName(dbname_, number),
                                number, view.get());
  if (s.ok() && !SortedViewMatchesVersion(*view, versions_->current())) {
    s = Status::Corruption("sorted view does not match current layout");
  }
  if (!s.ok()) {
    sorted_view_cache_.reset();
    return nullptr;
  }
  sorted_view_cache_ = std::move(view);
  return sorted_view_cache_;
}

Iterator* DBImpl::NewInternalIterator(
    const ReadOptions& options, SequenceNumber* latest_snapshot,
    std::vector<std::function<void()>>* cleanups) {
  MutexLock l(&mutex_);
  *latest_snapshot = versions_->LastSequence();

  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* mem = mem_;
  cleanups->push_back([mem]() { mem->Unref(); });
  for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
    list.push_back(it->mem->NewIterator());
    it->mem->Ref();
    MemTable* imm = it->mem;
    cleanups->push_back([imm]() { imm->Unref(); });
  }
  Version* current = versions_->current();
  bool used_sorted_view = false;
  if (options_.sorted_views) {
    std::shared_ptr<const SortedView> view = GetOrLoadSortedView();
    if (view != nullptr) {
      // L0 files still merge on the fly (they overlap and churn with
      // every flush); levels >= 1 collapse into one pre-merged run.
      current->AddL0Iterators(options, &list);
      std::vector<Iterator*> runs;
      for (int level : view->levels) {
        runs.push_back(current->NewConcatenatingIterator(options, level));
      }
      list.push_back(NewSortedViewIterator(&internal_comparator_,
                                           std::move(view), std::move(runs)));
      used_sorted_view = true;
      if (options_.statistics != nullptr) {
        options_.statistics->Record(kSortedViewUsed);
      }
    } else if (options_.statistics != nullptr) {
      options_.statistics->Record(kSortedViewFallbacks);
    }
  }
  if (!used_sorted_view) {
    current->AddIterators(options, &list);
  }
  current->Ref();
  // Version refs are only safe to drop under the DB mutex (Unref may unlink
  // the version and delete obsolete files' metadata).
  cleanups->push_back([this, current]() {
    MutexLock cleanup_lock(&mutex_);
    current->Unref();
  });

  return NewMergingIterator(&internal_comparator_, list.data(),
                            static_cast<int>(list.size()));
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  std::vector<std::function<void()>> cleanups;
  Iterator* internal_iter =
      NewInternalIterator(options, &latest_snapshot, &cleanups);
  const SequenceNumber sequence =
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
          : latest_snapshot;
  Iterator* db_iter = NewDBIterator(internal_comparator_.user_comparator(),
                                    internal_iter, sequence);
  for (auto& fn : cleanups) {
    db_iter->RegisterCleanup(std::move(fn));
  }
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kIterCreated);
  }
  return db_iter;
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock l(&mutex_);
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kIterSnapshotsAcquired);
  }
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock l(&mutex_);
  if (options_.statistics != nullptr) {
    options_.statistics->Record(kIterSnapshotsReleased);
  }
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

DBImpl::LevelIterators::~LevelIterators() {
  for (Iterator* it : iters) delete it;
  for (auto& fn : cleanups_) fn();
}

Status DBImpl::NewLevelIterators(const ReadOptions& options,
                                 LevelIterators* out) {
  MutexLock l(&mutex_);
  out->iters.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* mem = mem_;
  out->cleanups_.push_back([mem]() { mem->Unref(); });
  for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
    out->iters.push_back(it->mem->NewIterator());
    it->mem->Ref();
    MemTable* imm = it->mem;
    out->cleanups_.push_back([imm]() { imm->Unref(); });
  }
  out->first_disk = out->iters.size();

  Version* current = versions_->current();
  current->Ref();
  out->cleanups_.push_back([this, current]() {
    MutexLock cleanup_lock(&mutex_);
    current->Unref();
  });

  std::vector<FileMetaData*> l0 = current->files(0);
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    out->iters.push_back(
        table_cache_->NewIterator(options, f->number, f->file_size));
  }
  for (int level = 1; level < current->NumLevels(); level++) {
    if (current->NumFiles(level) > 0) {
      out->iters.push_back(current->NewConcatenatingIterator(options, level));
    }
  }
  return Status::OK();
}

namespace {

// The recency buckets of one Version's disk data: each L0 file on its own
// (newest file number first), then every non-empty deeper level as one
// bucket. `remaining_max[i]` bounds the sequence numbers in buckets i+1..n
// (0 after the last bucket), so a scan that has bucket i behind it knows
// the newest record the rest of the tree could still produce.
struct RecencyBuckets {
  std::vector<std::vector<std::pair<FileMetaData*, int>>> buckets;
  std::vector<SequenceNumber> remaining_max;
};

RecencyBuckets MakeRecencyBuckets(Version* current) {
  RecencyBuckets out;
  std::vector<FileMetaData*> l0 = current->files(0);
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    out.buckets.push_back({{f, 0}});
  }
  for (int level = 1; level < current->NumLevels(); level++) {
    if (current->NumFiles(level) == 0) continue;
    std::vector<std::pair<FileMetaData*, int>> files;
    files.reserve(current->files(level).size());
    for (FileMetaData* f : current->files(level)) {
      files.emplace_back(f, level);
    }
    out.buckets.push_back(std::move(files));
  }
  out.remaining_max.assign(out.buckets.size(), 0);
  SequenceNumber suffix = 0;
  for (size_t i = out.buckets.size(); i-- > 0;) {
    out.remaining_max[i] = suffix;
    for (const auto& fl : out.buckets[i]) {
      suffix = std::max(suffix, fl.first->max_seq);
    }
  }
  return out;
}

}  // namespace

Status DBImpl::EmbeddedScan(
    const ReadOptions&, const std::string& attr, const Slice& lo,
    const Slice& hi,
    const std::function<void(Table*, size_t, int, uint64_t)>& block_visitor,
    const std::function<bool(SequenceNumber)>& level_boundary) {
  Version* current;
  {
    MutexLock l(&mutex_);
    current = versions_->current();
    current->Ref();
  }
  const bool point = (lo == hi);
  Status s;

  auto scan_file = [&](FileMetaData* f, int level) {
    // File-level zone map (persisted in the MANIFEST metadata) prunes the
    // file without opening it at all.
    size_t attr_idx = options_.secondary_attributes.size();
    for (size_t i = 0; i < options_.secondary_attributes.size(); i++) {
      if (options_.secondary_attributes[i] == attr) {
        attr_idx = i;
        break;
      }
    }
    if (attr_idx < f->zone_ranges.size() &&
        !f->zone_ranges[attr_idx].Overlaps(lo, hi)) {
      if (options_.statistics != nullptr) {
        options_.statistics->Record(kZoneMapFilePruned);
      }
      return;
    }
    Status ws = table_cache_->WithTable(f->number, f->file_size, [&](Table* t) {
      const size_t nblocks = t->NumDataBlocks();
      for (size_t b = 0; b < nblocks; b++) {
        bool may = point ? t->SecondaryBlockMayContain(attr, lo, b)
                         : t->SecondaryBlockMayOverlap(attr, lo, hi, b);
        if (may) {
          block_visitor(t, b, level, f->number);
        }
      }
    });
    if (!ws.ok() && s.ok()) s = ws;
  };

  const RecencyBuckets rb = MakeRecencyBuckets(current);
  for (size_t i = 0; i < rb.buckets.size(); i++) {
    for (const auto& fl : rb.buckets[i]) {
      scan_file(fl.first, fl.second);
    }
    if (!level_boundary(rb.remaining_max[i])) break;
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  return s;
}

Status DBImpl::EmbeddedScanBuckets(
    const ReadOptions&, const std::string& attr, const Slice& lo,
    const Slice& hi,
    const std::function<void(const std::vector<BlockCandidate>&)>&
        bucket_visitor,
    const std::function<bool(SequenceNumber)>& level_boundary) {
  Version* current;
  {
    MutexLock l(&mutex_);
    current = versions_->current();
    current->Ref();
  }
  const bool point = (lo == hi);
  Status s;

  size_t attr_idx = options_.secondary_attributes.size();
  for (size_t i = 0; i < options_.secondary_attributes.size(); i++) {
    if (options_.secondary_attributes[i] == attr) {
      attr_idx = i;
      break;
    }
  }

  // One file of a bucket: pinned table + its candidate block ordinals. The
  // filter/zone-map probes are pure functions of the (immutable) table, so
  // they can run concurrently; the visitor then sees candidates in the same
  // (file, block) order EmbeddedScan would have produced them.
  struct PinnedFile {
    FileMetaData* f = nullptr;
    int level = 0;
    Table* table = nullptr;
    Cache::Handle* handle = nullptr;
    std::vector<size_t> blocks;
    Status status;
  };

  auto run_bucket =
      [&](const std::vector<std::pair<FileMetaData*, int>>& files,
          SequenceNumber remaining_max) -> bool {
    std::vector<PinnedFile> pins;
    pins.reserve(files.size());
    for (const auto& fl : files) {
      // File-level zone map (persisted in the MANIFEST metadata) prunes the
      // file without opening it at all.
      if (attr_idx < fl.first->zone_ranges.size() &&
          !fl.first->zone_ranges[attr_idx].Overlaps(lo, hi)) {
        if (options_.statistics != nullptr) {
          options_.statistics->Record(kZoneMapFilePruned);
        }
        continue;
      }
      PinnedFile pf;
      pf.f = fl.first;
      pf.level = fl.second;
      pins.push_back(std::move(pf));
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pins.size());
    for (PinnedFile& pf : pins) {
      PinnedFile* p = &pf;
      tasks.push_back([this, p, &attr, &lo, &hi, point]() {
        p->status =
            table_cache_->Pin(p->f->number, p->f->file_size, &p->table,
                              &p->handle);
        if (!p->status.ok()) return;
        const size_t nblocks = p->table->NumDataBlocks();
        for (size_t b = 0; b < nblocks; b++) {
          bool may = point ? p->table->SecondaryBlockMayContain(attr, lo, b)
                           : p->table->SecondaryBlockMayOverlap(attr, lo, hi,
                                                                b);
          if (may) p->blocks.push_back(b);
        }
      });
    }
    ParallelRun(&tasks, options_.read_parallelism, options_.statistics);
    std::vector<BlockCandidate> candidates;
    for (const PinnedFile& pf : pins) {
      if (!pf.status.ok()) {
        if (s.ok()) s = pf.status;
        continue;
      }
      for (size_t b : pf.blocks) {
        candidates.push_back(BlockCandidate{pf.table, b, pf.level,
                                            pf.f->number});
      }
    }
    bucket_visitor(candidates);
    for (const PinnedFile& pf : pins) {
      if (pf.handle != nullptr) table_cache_->Unpin(pf.handle);
    }
    return level_boundary(remaining_max);
  };

  // Each L0 file is its own recency bucket (newest first); every deeper
  // level is one bucket whose files can be probed concurrently.
  const RecencyBuckets rb = MakeRecencyBuckets(current);
  for (size_t i = 0; i < rb.buckets.size(); i++) {
    if (!run_bucket(rb.buckets[i], rb.remaining_max[i])) break;
  }

  {
    MutexLock l(&mutex_);
    current->Unref();
  }
  return s;
}

Status DBImpl::ScanAll(
    const ReadOptions& options,
    const std::function<bool(const Slice&, SequenceNumber, const Slice&)>&
        fn) {
  SequenceNumber snapshot;
  std::vector<std::function<void()>> cleanups;
  std::unique_ptr<Iterator> it(
      NewInternalIterator(options, &snapshot, &cleanups));
  std::string current_key;
  bool has_current = false;
  bool stop = false;
  for (it->SeekToFirst(); it->Valid() && !stop; it->Next()) {
    ParsedInternalKey ikey;
    if (!ParseInternalKey(it->key(), &ikey)) continue;
    if (ikey.sequence > snapshot) continue;
    if (has_current && Slice(current_key) == ikey.user_key) continue;
    current_key.assign(ikey.user_key.data(), ikey.user_key.size());
    has_current = true;
    if (ikey.type == kTypeDeletion) continue;
    if (!fn(ikey.user_key, ikey.sequence, it->value())) stop = true;
  }
  Status s = it->status();
  if (s.IsCorruption() && !options_.paranoid_checks) {
    // Quarantine fallthrough, scan flavor: the two-level iterator already
    // skipped past every unreadable block (their entries are simply absent
    // from the scan), so surface the damage only in paranoid mode — same
    // contract as Version::Get.
    s = Status::OK();
  }
  it.reset();
  for (auto& c : cleanups) c();
  return s;
}

void DBImpl::MemTableSecondaryLookup(const std::string& attr, const Slice& lo,
                                     const Slice& hi,
                                     const MemTable::SecondaryMatchFn& fn) {
  MemTable* mem;
  std::vector<MemTable*> imms;  // Newest first
  {
    MutexLock l(&mutex_);
    mem = mem_;
    mem->Ref();
    for (auto it = imm_queue_.rbegin(); it != imm_queue_.rend(); ++it) {
      it->mem->Ref();
      imms.push_back(it->mem);
    }
  }
  mem->SecondaryLookup(attr, lo, hi, fn);
  for (MemTable* imm : imms) {
    imm->SecondaryLookup(attr, lo, hi, fn);
  }
  mem->Unref();
  for (MemTable* imm : imms) imm->Unref();
}

Status DBImpl::CompactAll() {
  bool need_rotate;
  {
    MutexLock l(&mutex_);
    need_rotate = (mem_->NumEntries() > 0);
  }
  if (need_rotate) {
    // Force the rotation through the writer queue so it cannot race an
    // in-flight group commit.
    Status s = Write(WriteOptions(), nullptr);
    if (!s.ok()) return s;
  }
  Status s = WaitForBackgroundWork();  // No-op in synchronous mode.
  if (!s.ok()) return s;
  CompactRange(nullptr, nullptr);
  MutexLock l(&mutex_);
  return bg_error_;
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  InternalKey begin_storage, end_storage;
  InternalKey* begin_key = nullptr;
  InternalKey* end_key = nullptr;
  if (begin != nullptr) {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    begin_key = &begin_storage;
  }
  if (end != nullptr) {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    end_key = &end_storage;
  }

  MutexLock l(&mutex_);
  AcquireCompactionToken();
  // A writer may be flushing imm_ inline right now; it does not need the
  // token, so waiting here cannot deadlock.
  while (flush_in_progress_) {
    background_work_finished_signal_.Wait();
  }
  Status s;
  while (s.ok() && !imm_queue_.empty()) {
    // Background mode: unflushed immutable memtables would be invisible
    // to the range merge; drain them first (sync mode never gets here with
    // any pending).
    s = CompactMemTable();
  }

  // Find the highest level with overlapping files and compact everything
  // above it down into it (LevelDB semantics) — do NOT push data into
  // deeper, empty levels.
  int max_level_with_files = 1;
  {
    Version* base = versions_->current();
    for (int level = 1; level < options_.num_levels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  for (int level = 0; s.ok() && level < max_level_with_files; level++) {
    while (s.ok()) {
      std::unique_ptr<Compaction> c(
          versions_->CompactRange(level, begin_key, end_key));
      if (c == nullptr) break;
      s = DoCompactionWork(c.get());
      c->ReleaseInputs();
      RemoveObsoleteFiles();
    }
  }
  if (s.ok()) {
    MaybeRebuildSortedView();
    RemoveObsoleteFiles();  // Drop the view the manual compaction replaced
  }
  ReleaseCompactionToken();
  if (!s.ok()) {
    RecordBackgroundError(s);
  }
}

uint64_t DBImpl::TotalSizeBytes() {
  MutexLock l(&mutex_);
  uint64_t total = mem_->ApproximateMemoryUsage() + QueuedImmBytes();
  for (int level = 0; level < options_.num_levels; level++) {
    total += static_cast<uint64_t>(versions_->NumLevelBytes(level));
  }
  return total;
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  Slice in = property;
  Slice prefix("leveldbpp.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  MutexLock l(&mutex_);
  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    uint64_t level = 0;
    for (size_t i = 0; i < in.size(); i++) {
      if (in[i] < '0' || in[i] > '9') return false;
      level = level * 10 + (in[i] - '0');
    }
    if (level >= static_cast<uint64_t>(options_.num_levels)) return false;
    *value = std::to_string(versions_->NumLevelFiles(static_cast<int>(level)));
    return true;
  } else if (in == Slice("sstables")) {
    Version* current = versions_->current();
    current->Ref();
    *value = current->DebugString();
    current->Unref();
    return true;
  } else if (in == Slice("total-bytes")) {
    uint64_t total = mem_->ApproximateMemoryUsage() + QueuedImmBytes();
    for (int level = 0; level < options_.num_levels; level++) {
      total += static_cast<uint64_t>(versions_->NumLevelBytes(level));
    }
    *value = std::to_string(total);
    return true;
  } else if (in == Slice("approximate-memory-usage")) {
    uint64_t total = mem_->ApproximateMemoryUsage() + QueuedImmBytes();
    *value = std::to_string(total);
    return true;
  } else if (in == Slice("levels")) {
    *value = versions_->LevelSummary();
    return true;
  } else if (in == Slice("stats")) {
    // Write-stall / group-commit / I/O tickers (engine-wide counters
    // attached via Options::statistics), plus block-cache occupancy and
    // hit ratio when a cache is configured.
    if (options_.statistics == nullptr) return false;
    *value = options_.statistics->ToString();
    char buf[128];
    const uint64_t hits = options_.statistics->Get(kBlockCacheHit);
    const uint64_t misses = options_.statistics->Get(kBlockCacheMiss);
    if (hits + misses > 0) {
      std::snprintf(buf, sizeof(buf), "%-28s %12.4f\n",
                    "block.cache.hit.ratio",
                    static_cast<double>(hits) /
                        static_cast<double>(hits + misses));
      value->append(buf);
    }
    if (options_.block_cache != nullptr) {
      std::snprintf(buf, sizeof(buf), "%-28s %12llu\n", "block.cache.charge",
                    static_cast<unsigned long long>(
                        options_.block_cache->TotalCharge()));
      value->append(buf);
    }
    if (quarantine_.Count() > 0) {
      value->append("quarantined blocks: ");
      value->append(quarantine_.Summary());
      value->append("\n");
    }
    value->append(options_.statistics->HistogramsToString());
    return true;
  } else if (in == Slice("stats.json")) {
    // Machine-readable twin of "stats": every ticker (zeros included, so
    // consumers need no schema discovery), per-histogram summaries, and the
    // quarantine state, as one compact JSON object.
    if (options_.statistics == nullptr) return false;
    const Statistics* stats = options_.statistics;
    json::Object tickers;
    for (uint32_t i = 0; i < kTickerCount; i++) {
      const Ticker t = static_cast<Ticker>(i);
      tickers[TickerName(t)] =
          json::Value(static_cast<int64_t>(stats->Get(t)));
    }
    json::Object hists;
    for (uint32_t i = 0; i < kHistogramCount; i++) {
      const HistogramType h = static_cast<HistogramType>(i);
      const Histogram hist = stats->GetHistogram(h);
      json::Object hj;
      hj["count"] = json::Value(static_cast<int64_t>(hist.Count()));
      hj["avg"] = json::Value(hist.Average());
      hj["min"] = json::Value(hist.Min());
      hj["max"] = json::Value(hist.Max());
      hj["p25"] = json::Value(hist.Percentile(25));
      hj["p50"] = json::Value(hist.Median());
      hj["p75"] = json::Value(hist.Percentile(75));
      hists[HistogramName(h)] = json::Value(std::move(hj));
    }
    json::Object quarantine;
    quarantine["blocks"] =
        json::Value(static_cast<int64_t>(quarantine_.Count()));
    quarantine["files"] =
        json::Value(static_cast<int64_t>(quarantine_.FileCount()));
    json::Object root;
    root["tickers"] = json::Value(std::move(tickers));
    root["histograms"] = json::Value(std::move(hists));
    root["quarantine"] = json::Value(std::move(quarantine));
    *value = json::Value(std::move(root)).ToString();
    return true;
  } else if (in == Slice("quarantine")) {
    // Checksum-failed blocks reads are currently routing around; non-empty
    // means the store needs RepairDB.
    *value = quarantine_.Summary();
    return true;
  }
  return false;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env != nullptr ? options.env : Env::Posix();
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      Status del = env->RemoveFile(dbname + "/" + filename);
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  env->RemoveDir(dbname);  // Ignore error in case dir contains other files
  return result;
}

}  // namespace leveldbpp
