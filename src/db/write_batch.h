// WriteBatch: atomic group of Put/Delete edits, serialized into the WAL as a
// single record and replayed into the memtable.

#ifndef LEVELDBPP_DB_WRITE_BATCH_H_
#define LEVELDBPP_DB_WRITE_BATCH_H_

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace leveldbpp {

class MemTable;
class ValueMerger;

class WriteBatch {
 public:
  WriteBatch();
  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;
  ~WriteBatch();

  /// Store the mapping key->value in the database.
  void Put(const Slice& key, const Slice& value);

  /// Erase the mapping for key, if any.
  void Delete(const Slice& key);

  /// Clear all updates buffered in this batch.
  void Clear();

  /// Approximate size of the serialized batch.
  size_t ApproximateSize() const;

  /// Iterate over the batch contents.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;  // See comment in write_batch.cc for the format of rep_
};

/// Internal accessors used by the DB implementation (kept out of the public
/// WriteBatch surface).
class WriteBatchInternal {
 public:
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);
  static uint64_t Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, uint64_t seq);
  static Slice Contents(const WriteBatch* batch) { return Slice(batch->rep_); }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);
  /// Replay the batch into a memtable, assigning consecutive sequence
  /// numbers starting at Sequence(batch). When `merger` is non-null, each
  /// Put is first merged with the memtable's current newest version of the
  /// key (the Lazy index's in-memory posting merge: no disk read, and at
  /// most one fragment per memtable). Deterministic, so WAL replay through
  /// the same path reproduces the exact memtable state.
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable,
                           const ValueMerger* merger = nullptr);
  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_WRITE_BATCH_H_
