// DBIter: converts a merged internal-key iterator into a user-facing
// iterator — hides entries above the read sequence, collapses versions to
// the newest visible one, and drops deleted keys.

#ifndef LEVELDBPP_DB_DB_ITER_H_
#define LEVELDBPP_DB_DB_ITER_H_

#include "db/dbformat.h"
#include "table/iterator.h"

namespace leveldbpp {

/// Return a new iterator that yields the user-visible contents of
/// `internal_iter` at snapshot `sequence`. Takes ownership of
/// internal_iter.
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence);

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_DB_ITER_H_
