// Options controlling a DB instance, plus per-read/per-write option structs.

#ifndef LEVELDBPP_DB_OPTIONS_H_
#define LEVELDBPP_DB_OPTIONS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace leveldbpp {

class AttributeExtractor;
class Cache;
class Comparator;
class Env;
class EventListener;
class FilterPolicy;
class Snapshot;
class Statistics;
class ValueMerger;

struct Options {
  /// Comparator for user keys. Default: bytewise.
  const Comparator* comparator = nullptr;  // nullptr => BytewiseComparator()

  /// If true, create the database if missing.
  bool create_if_missing = true;
  /// If true, raise an error if the database already exists.
  bool error_if_exists = false;
  /// If true, aggressively verify checksums and fail fast on corruption.
  bool paranoid_checks = false;

  /// Environment used for all file access. Default: Env::Posix().
  Env* env = nullptr;

  /// Optional engine-wide counters; benches attribute I/O through this.
  Statistics* statistics = nullptr;

  /// Observers of background / lifecycle events (flush, compaction, WAL
  /// sync, background errors, block quarantine, index rebuild). Callbacks
  /// run on the thread doing the work with the DB mutex released; listener
  /// exceptions are swallowed. See db/event_listener.h for the contract.
  /// Empty (default) costs nothing on any path.
  std::vector<std::shared_ptr<EventListener>> listeners;

  /// Amount of data to build up in the memtable before flushing to an L0
  /// SSTable. The default is deliberately small (the paper's experiments are
  /// scaled down so benches still develop 4+ levels on laptop-size data).
  size_t write_buffer_size = 1 << 20;  // 1 MB

  /// Approximate uncompressed size of SSTable data blocks.
  size_t block_size = 4096;

  /// Number of keys between block restart points.
  int block_restart_interval = 16;

  /// Target size of one SSTable file.
  size_t max_file_size = 512 * 1024;

  /// Per-block compression (paper default: Snappy; here SimpleLZ).
  CompressionType compression = kSimpleLZCompression;

  /// Optional block cache; nullptr = no block cache (paper configuration).
  Cache* block_cache = nullptr;

  /// Primary-key filter policy (per data block). nullptr disables filters.
  const FilterPolicy* filter_policy = nullptr;

  /// Secondary attributes indexed by the EMBEDDED index: for each name,
  /// every SSTable gets per-block bloom filters and zone maps. Empty for
  /// plain tables and for stand-alone index tables.
  std::vector<std::string> secondary_attributes;

  /// Filter policy for embedded secondary blooms (defaults to
  /// `filter_policy`'s bits when nullptr; Appendix C.1 sweeps this).
  const FilterPolicy* secondary_filter_policy = nullptr;

  /// Extracts secondary-attribute values from record values. Required when
  /// `secondary_attributes` is non-empty.
  const AttributeExtractor* attribute_extractor = nullptr;

  /// When set, duplicate user keys met during compaction are MERGED with
  /// this instead of older versions being dropped. Used by the Stand-Alone
  /// Lazy index table to merge posting-list fragments.
  const ValueMerger* value_merger = nullptr;

  /// Number of L0 files that triggers a compaction into L1.
  int l0_compaction_trigger = 4;

  /// Soft limit on L0 files: in background-compaction mode each write is
  /// delayed 1ms beyond this so one compaction can win CPU from writers
  /// (the classic slowdown rung; ignored in synchronous mode).
  int l0_slowdown_writes_trigger = 8;

  /// Hard limit on L0 files: writes stall (synchronous mode: compact
  /// inline; background mode: park on the stall ladder) beyond this.
  int l0_stop_writes_trigger = 12;

  /// Opt-in concurrent write path. When true, memtable flushes and
  /// size-triggered compactions run on a background thread
  /// (Env::Schedule) and DBImpl::Write stalls via the slowdown/stop
  /// ladder instead of compacting inline. The default (false) preserves
  /// the paper's deterministic single-threaded behavior byte-for-byte,
  /// which the Figure 7-15 reproduction benches depend on for exact I/O
  /// attribution. Concurrent Write/Get/scan calls are thread-safe in BOTH
  /// modes via the group-commit writer queue.
  bool background_compaction = false;

  /// Flush pipeline depth: how many immutable memtables may queue behind
  /// the active one before writers stall. The default (1) reproduces the
  /// classic single-slot behavior — a writer that fills the memtable while
  /// a flush is in flight parks on the stall ladder. Values > 1 (clipped
  /// to 8) let `MakeRoomForWrite` rotate and keep accepting writes while
  /// earlier memtables drain oldest-first, smoothing the stall spikes of
  /// Figs 8-9 under concurrent writers. Only useful together with
  /// `background_compaction`; the synchronous mode flushes inline and
  /// never accumulates a queue. Memory stays bounded: rotation caps the
  /// queue at max_immutable_memtables memtables of ~write_buffer_size
  /// each, so the total is roughly
  /// (1 + max_immutable_memtables) * write_buffer_size.
  int max_immutable_memtables = 1;

  /// How many SSTables one IngestExternalFiles call may build
  /// concurrently (on the same shared pool as read_parallelism; the
  /// calling thread included). The feed is still consumed strictly in
  /// order — only the CPU-heavy table builds (compression, checksums,
  /// filters, zone maps) fan out, one wave of up to this many chunks at a
  /// time. 1 builds strictly serially. Results are identical at any
  /// value; only wall-clock changes. Clipped to [1, 16].
  int ingest_parallelism = 4;

  /// Opt-in parallel read path. When > 1, MultiGet batches, the
  /// stand-alone indexes' candidate resolution, and the Embedded index's
  /// block scans fan out onto a shared fixed-size thread pool with up to
  /// this many concurrent executors (the calling thread included). The
  /// default (0, like 1) keeps every read strictly sequential on the
  /// calling thread, preserving the paper benches' deterministic ordering
  /// and exact I/O attribution. Parallel mode returns byte-identical
  /// results; only wall-clock and scheduling change. See DESIGN.md
  /// "Parallel read path".
  int read_parallelism = 0;

  /// Force every write through the WriteOptions{sync=true} path, fsyncing
  /// the WAL before the write is acknowledged. This is how SecondaryDB's
  /// crash-consistency mode makes its internal index-table writes durable
  /// without threading a WriteOptions through every index hook; it is also
  /// what the fault-injection crash tests flip on so that "acknowledged"
  /// equals "survives power loss". Default off: the paper benches measure
  /// the buffered write path.
  bool sync_writes = false;

  /// When non-null, write sequence numbers are claimed from this shared
  /// counter (fetch_add under the writer queue) instead of the instance's
  /// own LastSequence + 1. ShardedDB points every shard's primary table at
  /// one counter so sequence numbers are globally comparable across shards:
  /// cross-shard top-K merges order results by sequence exactly as a single
  /// instance would, and a reopened shard bumps the counter to its
  /// recovered LastSequence so new claims stay fresh. The counter holds the
  /// LAST claimed sequence (0 = none yet). Per-instance sequences may skip
  /// values claimed by other shards; recovery and snapshots only ever rely
  /// on monotonicity, which per-shard claim order preserves. Default null:
  /// the instance numbers its own writes densely, byte-identical to the
  /// paper engine.
  std::atomic<uint64_t>* shared_sequence = nullptr;

  /// How many times a failed background flush/compaction is retried (with
  /// exponential backoff) before the error is recorded as the sticky
  /// background error that stops all writes. Only transient failures
  /// (I/O errors) are retried; corruption is never retried. A retry that
  /// succeeds bumps the bg.error.autorecovered ticker. 0 (default)
  /// preserves the classic fail-fast behavior: first failure sticks, and
  /// recovery requires an explicit DB::Resume().
  int bg_error_retries = 0;

  /// Size ratio between adjacent levels (paper/LevelDB: 10).
  int level_size_multiplier = 10;

  /// Max bytes for level 1; level i holds base * multiplier^(i-1).
  uint64_t max_bytes_for_level_base = 4ull << 20;  // 4 MB

  /// Number of levels (L0..L6 like LevelDB).
  int num_levels = 7;

  /// Opt-in REMIX-style sorted views. When true, after each compaction or
  /// ingest splice that leaves >= 2 non-empty levels below L0 the engine
  /// sweeps levels >= 1 once and persists a run-selector artifact
  /// (<number>.svw, referenced from the MANIFEST): for every group of
  /// `kSortedViewSegmentSize` merged entries it records an anchor key,
  /// per-level cursors, and one selector byte per entry. Iterators then
  /// read levels >= 1 as ONE pre-merged run — a seek is a binary search
  /// over anchors plus a bounded replay, and every Next() follows a
  /// selector byte instead of re-heapifying across levels. Memtables and
  /// L0 still merge on the fly, so the view never goes stale on flushes;
  /// any structural change to levels >= 1 invalidates it (iterators fall
  /// back to the classic heap merge until the next rebuild). Results are
  /// byte-identical either way; only seek/scan cost changes. Default off:
  /// the paper's figures measure the classic read path.
  bool sorted_views = false;
};

struct ReadOptions {
  /// Verify block checksums on every read. Defaults ON: a flipped bit must
  /// never surface as data. In non-paranoid mode a failed check quarantines
  /// the block and the lookup falls through to older levels; paranoid mode
  /// fails fast. CPU-only cost — the I/O tickers the paper's figures are
  /// built from are identical either way.
  bool verify_checksums = true;
  /// Populate the block cache with blocks read by this operation.
  bool fill_cache = true;
  /// Read as of this snapshot; nullptr = latest.
  const Snapshot* snapshot = nullptr;
};

struct WriteOptions {
  /// fsync the WAL before acknowledging the write.
  bool sync = false;

  /// Never park on the write-stall ladder: if admitting this write would
  /// require waiting (L0 slowdown delay, full immutable-memtable queue, or
  /// the L0 stop rung), return Status::Busy immediately instead of blocking
  /// the calling thread. Nothing is applied on a Busy return, so the caller
  /// can safely retry after a backoff — the serving layer uses this to shed
  /// writes to a stalled shard with a retry-after hint rather than wedging
  /// a connection thread. Only meaningful with `background_compaction`
  /// (the synchronous mode makes room by compacting inline on this very
  /// thread, so there is nothing to wait for and the flag is ignored).
  /// A sticky background error still surfaces as that error, not Busy.
  bool no_stall = false;

  /// Non-zero: the exact sequence number this write's first record must be
  /// assigned (the caller reserved it — e.g. SecondaryDB's crash-ordered
  /// Put claims a sequence, durably writes index postings tagged with it,
  /// THEN issues the primary write). Such a write is never merged into a
  /// group-commit batch with other writers, so the reservation cannot be
  /// renumbered. 0 (default): the engine assigns the next sequence itself.
  uint64_t assigned_seq = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_OPTIONS_H_
