// EventListener: callbacks for background / lifecycle events.
//
// Register listeners via Options::listeners to observe flushes, compactions,
// WAL syncs, background errors, block quarantines, and index rebuilds —
// RocksDB-style, scaled to this engine. The built-in TraceWriter
// (db/trace_writer.h) is an EventListener that appends each event as one
// JSONL record.
//
// Threading & ordering guarantees (see DESIGN.md "Observability"):
//  - Callbacks run on whichever thread performs the work: the writer thread
//    in synchronous mode, the Env::Schedule background thread in
//    background-compaction mode, and any reading thread for
//    OnBlockQuarantined.
//  - The DB mutex is NOT held during any callback, but the operation that
//    fired it is still in flight: a listener must not call back into the DB
//    that invoked it (deadlock-free is only guaranteed for passive
//    observation), and must be thread-safe if the DB runs background work.
//  - Begin/End pairs are ordered per job; events of independent jobs may
//    interleave.
//  - Exceptions thrown by a listener are swallowed by the engine: a broken
//    listener can lose its own trace records but can never wedge the DB.

#ifndef LEVELDBPP_DB_EVENT_LISTENER_H_
#define LEVELDBPP_DB_EVENT_LISTENER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace leveldbpp {

struct FlushJobInfo {
  std::string db_name;
  uint64_t file_number = 0;  // L0 table produced (0 in OnFlushBegin)
  uint64_t file_size = 0;    // bytes (0 in OnFlushBegin)
  uint64_t micros = 0;       // wall-clock flush duration (End only)
  Status status;             // flush outcome (End only)
};

struct CompactionJobInfo {
  std::string db_name;
  int level = 0;         // input level
  int output_level = 0;  // level + 1
  int input_files = 0;   // across both input levels
  uint64_t input_bytes[2] = {0, 0};  // bytes from level / level+1 inputs
  uint64_t bytes_written = 0;        // output bytes (End only)
  int output_files = 0;              // output tables (End only)
  uint64_t micros = 0;               // wall-clock duration (End only)
  Status status;                     // compaction outcome (End only)
};

struct WalSyncInfo {
  std::string db_name;
  uint64_t bytes = 0;   // size of the group-commit batch that was synced
  uint64_t micros = 0;  // fsync duration
  Status status;
};

struct BackgroundErrorInfo {
  std::string db_name;
  Status status;  // the error that became the sticky bg_error_
};

struct BlockQuarantinedInfo {
  std::string db_name;
  uint64_t file_number = 0;
  uint64_t block_offset = 0;
};

struct IndexRebuildInfo {
  std::string db_name;   // the SecondaryDB primary path
  std::string attribute; // which index was rebuilt
  uint64_t entries = 0;  // postings re-derived for this index
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushEnd(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionEnd(const CompactionJobInfo& /*info*/) {}
  virtual void OnWalSync(const WalSyncInfo& /*info*/) {}
  virtual void OnBackgroundError(const BackgroundErrorInfo& /*info*/) {}
  virtual void OnBlockQuarantined(const BlockQuarantinedInfo& /*info*/) {}
  virtual void OnIndexRebuild(const IndexRebuildInfo& /*info*/) {}
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_EVENT_LISTENER_H_
