#include "db/version_set.h"

#include <algorithm>
#include <cstdio>

#include "db/filename.h"
#include "table/merger.h"
#include "table/two_level_iterator.h"
#include "util/coding.h"
#include "wal/log_reader.h"

namespace leveldbpp {

double VersionSet::MaxBytesForLevel(const Options& options, int level) {
  // Level 0 is limited by file count, not bytes; level >= 1 grows by the
  // configured multiplier (paper/LevelDB: 10x).
  double result = static_cast<double>(options.max_bytes_for_level_base);
  for (int l = 1; l < level; l++) {
    result *= options.level_size_multiplier;
  }
  return result;
}

static uint64_t TargetFileSize(const Options* options) {
  return options->max_file_size;
}

Version::Version(VersionSet* vset)
    : vset_(vset),
      next_(this),
      prev_(this),
      refs_(0),
      files_(vset->options()->num_levels),
      compaction_score_(-1),
      compaction_level_(-1) {}

Version::~Version() {
  assert(refs_ == 0);

  // Remove from linked list
  prev_->next_ = next_;
  next_->prev_ = prev_;

  // Drop references to files
  for (auto& level_files : files_) {
    for (FileMetaData* f : level_files) {
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target". Therefore all files at or
      // before "mid" are uninteresting.
      left = mid + 1;
    } else {
      // Key at "mid.largest" is >= "target". Therefore all files after
      // "mid" are uninteresting.
      right = mid;
    }
  }
  return static_cast<int>(right);
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const FileMetaData* f) {
  // null user_key occurs before all keys and is therefore never after *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const FileMetaData* f) {
  // null user_key occurs after all keys and is therefore never before *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files
    for (FileMetaData* f : files) {
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap
      } else {
        return true;  // Overlap
      }
    }
    return false;
  }

  // Binary search over file list
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    // Find the earliest possible internal key for smallest_user_key
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = static_cast<uint32_t>(FindFile(icmp, files, small_key.Encode()));
  }

  if (index >= files.size()) {
    // Beyond the end of all files
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

namespace {

// An internal iterator. For a given version/level pair, yields information
// about the files in the level. For a given entry, key() is the largest key
// that occurs in the file, and value() is a 16-byte value containing the
// file number and file size.
class LevelFileNumIterator : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp,
                       const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {}  // Invalid

  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = static_cast<size_t>(FindFile(icmp_, *flist_, target));
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // Marks as invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  size_t index_;

  // Backing store for value(). Holds the file number and size.
  mutable char value_buf_[16];
};

Iterator* GetFileIterator(void* arg, const ReadOptions& options,
                          const Slice& file_value) {
  TableCache* cache = reinterpret_cast<TableCache*>(arg);
  if (file_value.size() != 16) {
    return NewErrorIterator(
        Status::Corruption("FileReader invoked with unexpected value"));
  }
  return cache->NewIterator(options, DecodeFixed64(file_value.data()),
                            DecodeFixed64(file_value.data() + 8));
}

}  // namespace

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options,
                                            int level) const {
  assert(level >= 1);
  return NewTwoLevelIterator(
      new LevelFileNumIterator(vset_->icmp_, &files_[level]), &GetFileIterator,
      vset_->table_cache_, options);
}

void Version::AddL0Iterators(const ReadOptions& options,
                             std::vector<Iterator*>* iters) {
  // Merge all level zero files together since they may overlap; newest
  // (highest file number) first so ties resolve toward newer data.
  std::vector<FileMetaData*> l0(files_[0]);
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    iters->push_back(
        vset_->table_cache_->NewIterator(options, f->number, f->file_size));
  }
}

void Version::AddIterators(const ReadOptions& options,
                           std::vector<Iterator*>* iters) {
  AddL0Iterators(options, iters);

  // For levels > 0, use a concatenating iterator that sequentially walks
  // through the non-overlapping files in the level, opening them lazily.
  for (int level = 1; level < NumLevels(); level++) {
    if (!files_[level].empty()) {
      iters->push_back(NewTwoLevelIterator(
          new LevelFileNumIterator(vset_->icmp_, &files_[level]),
          &GetFileIterator, vset_->table_cache_, options));
    }
  }
}

namespace {

enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
  SequenceNumber seq;
};

void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
  } else {
    if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
      s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
      s->seq = parsed_key.sequence;
      if (s->state == kFound) {
        s->value->assign(v.data(), v.size());
      }
    }
  }
}

}  // namespace

void Version::OverlappingL0Files(const Slice& user_key,
                                 std::vector<FileMetaData*>* out) const {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  for (FileMetaData* f : files_[0]) {
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      out->push_back(f);
    }
  }
  std::sort(out->begin(), out->end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
}

FileMetaData* Version::FileForKey(int level, const Slice& user_key,
                                  const Slice& ikey) const {
  assert(level >= 1);
  const std::vector<FileMetaData*>& files = files_[level];
  if (files.empty()) return nullptr;
  // Binary search to find earliest file whose largest key >= ikey.
  int index = FindFile(vset_->icmp_, files, ikey);
  if (index >= static_cast<int>(files.size())) return nullptr;
  FileMetaData* f = files[index];
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) return nullptr;
  return f;
}

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value, SequenceNumber* seq_out,
                    int* level_out) {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  Slice user_key = k.user_key();
  Slice ikey = k.internal_key();

  // Level-0 files may overlap each other; collect the ones whose range
  // covers the key and search newest-to-oldest.
  std::vector<FileMetaData*> tmp;
  tmp.reserve(files_[0].size());
  OverlappingL0Files(user_key, &tmp);

  for (int level = 0; level < NumLevels(); level++) {
    const std::vector<FileMetaData*>* candidates = nullptr;
    FileMetaData* single = nullptr;
    if (level == 0) {
      if (tmp.empty()) continue;
      candidates = &tmp;
    } else {
      single = FileForKey(level, user_key, ikey);
      if (single == nullptr) continue;
    }

    const int num_candidates =
        (candidates != nullptr) ? static_cast<int>(candidates->size()) : 1;
    for (int i = 0; i < num_candidates; i++) {
      FileMetaData* f = (candidates != nullptr) ? (*candidates)[i] : single;
      Saver saver;
      saver.state = kNotFound;
      saver.ucmp = ucmp;
      saver.user_key = user_key;
      saver.value = value;
      saver.seq = 0;
      Status s = vset_->table_cache_->Get(options, f->number, f->file_size,
                                          ikey, &saver, SaveValue);
      if (!s.ok()) {
        // Quarantine fallthrough: a table whose open (footer/index) fails
        // its checks is unreadable, but older levels may still hold the
        // key. Skip it in non-paranoid mode — block-level damage inside a
        // readable table took the same fallthrough inside InternalGet.
        if (s.IsCorruption() && !vset_->options_->paranoid_checks) {
          continue;
        }
        return s;
      }
      switch (saver.state) {
        case kNotFound:
          break;  // Keep searching
        case kFound:
          if (seq_out != nullptr) *seq_out = saver.seq;
          if (level_out != nullptr) *level_out = level;
          return Status::OK();
        case kDeleted:
          return Status::NotFound(Slice());
        case kCorrupt:
          return Status::Corruption("corrupted key for ", user_key);
      }
    }
  }
  return Status::NotFound(Slice());
}

Status Version::GetFragments(
    const ReadOptions& options, const Slice& user_key,
    const std::function<bool(int, SequenceNumber, bool, const Slice&)>& fn) {
  const Comparator* ucmp = vset_->icmp_.user_comparator();
  LookupKey lk(user_key, kMaxSequenceNumber);
  Slice ikey = lk.internal_key();

  struct FragSaver {
    const Comparator* ucmp;
    Slice user_key;
    bool found = false;
    SequenceNumber seq = 0;
    bool deleted = false;
    std::string value;
  };
  auto save = [](void* arg, const Slice& found_ikey, const Slice& v) {
    FragSaver* fs = reinterpret_cast<FragSaver*>(arg);
    ParsedInternalKey parsed;
    if (ParseInternalKey(found_ikey, &parsed) &&
        fs->ucmp->Compare(parsed.user_key, fs->user_key) == 0) {
      fs->found = true;
      fs->seq = parsed.sequence;
      fs->deleted = (parsed.type == kTypeDeletion);
      fs->value.assign(v.data(), v.size());
    }
  };

  // L0: newest file first; each file is its own "sub-level" fragment.
  std::vector<FileMetaData*> l0;
  for (FileMetaData* f : files_[0]) {
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      l0.push_back(f);
    }
  }
  std::sort(l0.begin(), l0.end(), [](FileMetaData* a, FileMetaData* b) {
    return a->number > b->number;
  });
  for (FileMetaData* f : l0) {
    FragSaver fs;
    fs.ucmp = ucmp;
    fs.user_key = user_key;
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size, ikey,
                                        &fs, save);
    if (!s.ok()) {
      // Same quarantine fallthrough as Version::Get: skip an unreadable
      // table in non-paranoid mode, older fragments are still reachable.
      if (s.IsCorruption() && !vset_->options_->paranoid_checks) continue;
      return s;
    }
    if (fs.found) {
      if (!fn(0, fs.seq, fs.deleted, Slice(fs.value))) return Status::OK();
    }
  }

  for (int level = 1; level < NumLevels(); level++) {
    if (files_[level].empty()) continue;
    int index = FindFile(vset_->icmp_, files_[level], ikey);
    if (index >= static_cast<int>(files_[level].size())) continue;
    FileMetaData* f = files_[level][index];
    if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) continue;
    FragSaver fs;
    fs.ucmp = ucmp;
    fs.user_key = user_key;
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size, ikey,
                                        &fs, save);
    if (!s.ok()) {
      if (s.IsCorruption() && !vset_->options_->paranoid_checks) continue;
      return s;
    }
    if (fs.found) {
      if (!fn(level, fs.seq, fs.deleted, Slice(fs.value))) return Status::OK();
    }
  }
  return Status::OK();
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(vset_->icmp_, (level > 0), files_[level],
                               smallest_user_key, largest_user_key);
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < NumLevels());
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_.user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it
    } else {
      inputs->push_back(f);
      if (level == 0) {
        // Level-0 files may overlap each other. So check if the newly added
        // file has expanded the range. If so, restart search.
        if (begin != nullptr && user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < NumLevels(); level++) {
    // E.g.,
    //   --- level 1 ---
    //   17:123['a' .. 'd']
    //   20:43['e' .. 'g']
    r.append("--- level ");
    r.append(std::to_string(level));
    r.append(" ---\n");
    for (const FileMetaData* f : files_[level]) {
      r.push_back(' ');
      r.append(std::to_string(f->number));
      r.push_back(':');
      r.append(std::to_string(f->file_size));
      r.append("[");
      r.append(f->smallest.user_key().ToString());
      r.append(" .. ");
      r.append(f->largest.user_key().ToString());
      r.append("]\n");
    }
  }
  return r;
}

// A helper class so we can efficiently apply a whole sequence of edits to a
// particular state without creating intermediate Versions that contain full
// copies of the intermediate state.
class VersionSet::Builder {
 public:
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    levels_.resize(vset_->options()->num_levels);
  }

  ~Builder() {
    for (auto& level_state : levels_) {
      for (FileMetaData* f : level_state.added_files) {
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  /// Apply all of the edits in *edit to the current state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers
    for (const auto& [level, key] : edit->compact_pointers_) {
      vset_->compact_pointer_[level] = key.Encode().ToString();
    }

    // Delete files
    for (const auto& [level, number] : edit->deleted_files_) {
      levels_[level].deleted_files.insert(number);
    }

    // Add new files
    for (const auto& [level, meta] : edit->new_files_) {
      FileMetaData* f = new FileMetaData(meta);
      f->refs = 1;
      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files.push_back(f);
    }
  }

  /// Save the current state in *v.
  void SaveTo(Version* v) {
    auto cmp = [this](FileMetaData* f1, FileMetaData* f2) {
      int r = vset_->icmp_.Compare(f1->smallest.Encode(),
                                   f2->smallest.Encode());
      if (r != 0) return r < 0;
      return f1->number < f2->number;
    };

    for (int level = 0; level < vset_->options()->num_levels; level++) {
      // Merge the set of added files with the set of pre-existing files,
      // dropping any deleted files.
      std::vector<FileMetaData*> merged = base_->files_[level];
      for (FileMetaData* f : levels_[level].added_files) {
        merged.push_back(f);
      }
      std::sort(merged.begin(), merged.end(), cmp);
      for (FileMetaData* f : merged) {
        if (levels_[level].deleted_files.count(f->number) > 0) {
          continue;  // File is deleted: do nothing
        }
        if (level > 0 && !v->files_[level].empty()) {
          // Must not overlap
          assert(vset_->icmp_.Compare(
                     v->files_[level].back()->largest.Encode(),
                     f->smallest.Encode()) < 0);
        }
        f->refs++;
        v->files_[level].push_back(f);
      }
    }
  }

 private:
  struct LevelState {
    std::set<uint64_t> deleted_files;
    std::vector<FileMetaData*> added_files;
  };

  VersionSet* vset_;
  Version* base_;
  std::vector<LevelState> levels_;
};

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : dbname_(dbname),
      options_(options),
      env_(options->env),
      table_cache_(table_cache),
      icmp_(*cmp),
      next_file_number_(2),
      manifest_file_number_(0),  // Filled by Recover()
      last_sequence_(0),
      log_number_(0),
      dummy_versions_(this),
      current_(nullptr),
      compact_pointer_(options->num_levels) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // List must be empty
}

void VersionSet::AppendVersion(Version* v) {
  // Make "v" current
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }

  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize new descriptor log file if necessary by creating a temporary
  // file that contains a snapshot of the current version.
  Status s;
  std::string new_manifest_file;
  if (descriptor_log_ == nullptr) {
    assert(descriptor_file_ == nullptr);
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = env_->NewWritableFile(new_manifest_file, &descriptor_file_);
    if (s.ok()) {
      descriptor_log_ = std::make_unique<log::Writer>(descriptor_file_.get());
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  // Write new record to MANIFEST log
  if (s.ok()) {
    std::string record;
    edit->EncodeTo(&record);
    s = descriptor_log_->AddRecord(Slice(record));
    if (s.ok()) {
      s = descriptor_file_->Sync();
    }
  }

  // If we just created a new descriptor file, install it by writing a new
  // CURRENT file that points to it.
  if (s.ok() && !new_manifest_file.empty()) {
    s = SetCurrentFile(env_, dbname_, manifest_file_number_);
  }

  // Install the new version
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
    if (edit->has_sorted_view_) {
      sorted_view_number_ = edit->sorted_view_number_;
    } else {
      // Any structural change to levels >= 1 makes the current view's run
      // selectors stale; the next qualifying rebuild re-installs one.
      for (const auto& [level, number] : edit->deleted_files_) {
        (void)number;
        if (level >= 1) sorted_view_number_ = 0;
      }
      for (const auto& [level, f] : edit->new_files_) {
        (void)f;
        if (level >= 1) sorted_view_number_ = 0;
      }
    }
  } else {
    v->Ref();
    v->Unref();
    if (!new_manifest_file.empty()) {
      descriptor_log_.reset();
      descriptor_file_.reset();
      env_->RemoveFile(new_manifest_file);
    }
  }

  return s;
}

Status VersionSet::Recover() {
  // Read "CURRENT" file, which contains a pointer to the current manifest.
  std::string current;
  {
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(CurrentFileName(dbname_), &file);
    if (!s.ok()) return s;
    char scratch[512];
    Slice result;
    s = file->Read(sizeof(scratch), &result, scratch);
    if (!s.ok()) return s;
    current = result.ToString();
  }
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file",
                                s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  uint64_t sorted_view = 0;
  Builder builder(this, current_);

  {
    struct LogReporter : public log::Reader::Reporter {
      Status* status;
      void Corruption(size_t, const Status& s) override {
        if (this->status->ok()) *this->status = s;
      }
    };
    LogReporter reporter;
    reporter.status = &s;
    log::Reader reader(file.get(), &reporter, true /*checksum*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ &&
            edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        builder.Apply(&edit);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }
      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }
      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
      // Mirror LogAndApply's sorted-view bookkeeping so a reopened DB
      // trusts the artifact exactly when the closing process did.
      if (edit.has_sorted_view_) {
        sorted_view = edit.sorted_view_number_;
      } else {
        for (const auto& [level, number] : edit.deleted_files_) {
          (void)number;
          if (level >= 1) sorted_view = 0;
        }
        for (const auto& [level, f] : edit.new_files_) {
          (void)f;
          if (level >= 1) sorted_view = 0;
        }
      }
    }
  }
  file.reset();

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
    sorted_view_number_ = sorted_view;
  }

  return s;
}

void VersionSet::Finalize(Version* v) {
  // Precomputed best level for next compaction
  int best_level = -1;
  double best_score = -1;

  for (int level = 0; level < options_->num_levels - 1; level++) {
    double score;
    if (level == 0) {
      // We treat level-0 specially by bounding the number of files instead
      // of number of bytes: with a small write buffer, too many L0 files
      // hurt read cost more than bytes do.
      score = v->files_[level].size() /
              static_cast<double>(options_->l0_compaction_trigger);
    } else {
      // Compute the ratio of current size to size limit.
      uint64_t level_bytes = 0;
      for (FileMetaData* f : v->files_[level]) {
        level_bytes += f->file_size;
      }
      score = static_cast<double>(level_bytes) /
              MaxBytesForLevel(*options_, level);
    }

    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  // Save metadata
  VersionEdit edit;
  edit.SetComparatorName(icmp_.user_comparator()->Name());

  // Save compaction pointers
  for (int level = 0; level < options_->num_levels; level++) {
    if (!compact_pointer_[level].empty()) {
      InternalKey key;
      key.DecodeFrom(Slice(compact_pointer_[level]));
      edit.SetCompactPointer(level, key);
    }
  }

  // Save files
  for (int level = 0; level < options_->num_levels; level++) {
    for (FileMetaData* f : current_->files_[level]) {
      edit.AddFile(level, *f);
    }
  }

  // The snapshot's AddFile records would otherwise read as an implicit
  // view invalidation on replay; restate the live view explicitly.
  if (sorted_view_number_ != 0) {
    edit.SetSortedView(sorted_view_number_);
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(Slice(record));
}

int VersionSet::NumLevelFiles(int level) const {
  assert(level >= 0);
  assert(level < options_->num_levels);
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  assert(level >= 0);
  assert(level < options_->num_levels);
  int64_t sum = 0;
  for (FileMetaData* f : current_->files_[level]) {
    sum += static_cast<int64_t>(f->file_size);
  }
  return sum;
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < options_->num_levels; level++) {
      for (FileMetaData* f : v->files_[level]) {
        live->insert(f->number);
      }
    }
  }
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  // Compaction inputs are ALWAYS checksum-verified, regardless of the
  // paranoid setting: rewriting a corrupt block into a fresh SSTable would
  // launder the damage into a file whose checksums then all pass.
  options.verify_checksums = true;
  options.fill_cache = false;

  // Level-0 files have to be merged together. For other levels, we will
  // make a concatenating iterator per level.
  const int space = (c->level() == 0 ? c->num_input_files(0) + 1 : 2);
  Iterator** list = new Iterator*[space];
  int num = 0;
  for (int which = 0; which < 2; which++) {
    if (!c->inputs_[which].empty()) {
      if (c->level() + which == 0) {
        for (FileMetaData* f : c->inputs_[which]) {
          list[num++] = table_cache_->NewIterator(options, f->number,
                                                  f->file_size);
        }
      } else {
        // Create concatenating iterator for the files from this level
        list[num++] = NewTwoLevelIterator(
            new LevelFileNumIterator(icmp_, &c->inputs_[which]),
            &GetFileIterator, table_cache_, options);
      }
    }
  }
  assert(num <= space);
  Iterator* result = NewMergingIterator(&icmp_, list, num);
  delete[] list;
  return result;
}

Compaction* VersionSet::PickCompaction() {
  // We only consider size-triggered compactions (the paper's workloads do
  // not exercise LevelDB's seek-triggered compactions).
  if (!(current_->compaction_score_ >= 1)) {
    return nullptr;
  }
  const int level = current_->compaction_level_;
  assert(level >= 0);
  assert(level + 1 < options_->num_levels);
  Compaction* c = new Compaction(options_, level);

  // Pick the first file that comes after compact_pointer_[level]: this is
  // the round-robin rotation through the level's key space.
  for (FileMetaData* f : current_->files_[level]) {
    if (compact_pointer_[level].empty() ||
        icmp_.Compare(f->largest.Encode(), Slice(compact_pointer_[level])) >
            0) {
      c->inputs_[0].push_back(f);
      break;
    }
  }
  if (c->inputs_[0].empty()) {
    // Wrap-around to the beginning of the key space
    c->inputs_[0].push_back(current_->files_[level][0]);
  }

  c->input_version_ = current_;
  c->input_version_->Ref();

  // Files in level 0 may overlap each other, so pick up all overlapping ones
  if (level == 0) {
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    // Note that the next call will discard the file we placed in c->inputs_[0]
    // earlier and replace it with an overlapping set which will include the
    // picked file.
    current_->GetOverlappingInputs(0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);
  return c;
}

void VersionSet::GetRange(const std::vector<FileMetaData*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest.Encode(), smallest->Encode()) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest.Encode(), largest->Encode()) > 0) {
        *largest = f->largest;
      }
    }
  }
}

void VersionSet::GetRange2(const std::vector<FileMetaData*>& inputs1,
                           const std::vector<FileMetaData*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<FileMetaData*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                 &c->inputs_[1]);

  // Compute the overall range covered by this compaction.
  InternalKey all_start, all_limit;
  GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);

  // See if we can grow the number of inputs in "level" without changing the
  // number of "level+1" files we pick up, bounded to keep compactions small.
  if (!c->inputs_[1].empty()) {
    std::vector<FileMetaData*> expanded0;
    current_->GetOverlappingInputs(level, &all_start, &all_limit, &expanded0);
    int64_t inputs0_size = 0, inputs1_size = 0, expanded0_size = 0;
    for (FileMetaData* f : c->inputs_[0]) inputs0_size += f->file_size;
    for (FileMetaData* f : c->inputs_[1]) inputs1_size += f->file_size;
    for (FileMetaData* f : expanded0) expanded0_size += f->file_size;
    const int64_t expanded_limit = 25 * static_cast<int64_t>(
        TargetFileSize(options_));
    if (expanded0.size() > c->inputs_[0].size() &&
        inputs1_size + expanded0_size < expanded_limit) {
      InternalKey new_start, new_limit;
      GetRange(expanded0, &new_start, &new_limit);
      std::vector<FileMetaData*> expanded1;
      current_->GetOverlappingInputs(level + 1, &new_start, &new_limit,
                                     &expanded1);
      if (expanded1.size() == c->inputs_[1].size()) {
        smallest = new_start;
        largest = new_limit;
        c->inputs_[0] = expanded0;
        c->inputs_[1] = expanded1;
        GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);
      }
    }
  }

  // Update the place where we will do the next compaction for this level.
  // We update this immediately instead of waiting for the VersionEdit to be
  // applied so that if the compaction fails, we will try a different key
  // range next time.
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.SetCompactPointer(level, largest);
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<FileMetaData*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  Compaction* c = new Compaction(options_, level);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  SetupOtherInputs(c);
  return c;
}

std::string VersionSet::LevelSummary() const {
  std::string r = "files[";
  for (int level = 0; level < options_->num_levels; level++) {
    r += " " + std::to_string(current_->files_[level].size());
  }
  r += " ]";
  return r;
}

Compaction::Compaction(const Options* options, int level)
    : level_(level),
      max_output_file_size_(TargetFileSize(options)),
      input_version_(nullptr),
      level_ptrs_(options->num_levels, 0) {}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

bool Compaction::IsTrivialMove() const {
  // A move is trivial when a single input file at `level` overlaps nothing
  // at `level+1`. Never trivial for merged (value_merger) tables: a move
  // would skip the fragment merge the Lazy index relies on — but since the
  // file contents are identical either way (merging only combines entries
  // within the inputs and a trivial move has exactly one input), moving is
  // still correct and we allow it.
  return (num_input_files(0) == 1 && num_input_files(1) == 0);
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (FileMetaData* f : inputs_[which]) {
      edit->RemoveFile(level_ + which, f->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  // Maybe use binary search to find right entry instead of linear search?
  const Comparator* user_cmp =
      input_version_->vset_->icmp_.user_comparator();
  for (int lvl = level_ + 2; lvl < input_version_->NumLevels(); lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // We've advanced far enough
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          // Key falls in this file's range, so definitely not base level
          return false;
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace leveldbpp
