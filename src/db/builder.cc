#include "db/builder.h"

#include "db/dbformat.h"
#include "db/filename.h"
#include "db/table_cache.h"
#include "db/version_edit.h"
#include "env/env.h"
#include "env/statistics.h"
#include "table/table_builder.h"

namespace leveldbpp {

Status BuildTable(const std::string& dbname, Env* env, const Options& options,
                  const InternalKeyComparator& icmp, TableCache* table_cache,
                  Iterator* iter, SequenceNumber smallest_snapshot,
                  FileMetaData* meta) {
  Status s;
  meta->file_size = 0;
  iter->SeekToFirst();

  std::string fname = TableFileName(dbname, meta->number);
  if (iter->Valid()) {
    std::unique_ptr<WritableFile> file;
    s = env->NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }

    TableBuilder* builder = new TableBuilder(options, file.get());
    meta->smallest.DecodeFrom(iter->key());
    Slice key;
    std::string current_user_key;
    std::string last_added_key;
    bool has_current_user_key = false;
    SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
    for (; iter->Valid(); iter->Next()) {
      key = iter->key();
      // Drop superseded older versions — but only once the newer entry
      // shadowing them is visible to every live snapshot (internal keys
      // sort newest-first within a user key, so `last_sequence_for_key` is
      // the sequence of the entry directly above this one). This is the
      // same rule the compaction merge applies.
      Slice user_key = ExtractUserKey(key);
      bool drop = false;
      if (has_current_user_key &&
          icmp.user_comparator()->Compare(
              ExtractUserKey(Slice(current_user_key)), user_key) == 0) {
        drop = last_sequence_for_key <= smallest_snapshot;
      } else {
        current_user_key.assign(key.data(), key.size());
        has_current_user_key = true;
      }
      last_sequence_for_key = ExtractSequence(key);
      if (drop) continue;
      if (last_sequence_for_key > meta->max_seq) {
        meta->max_seq = last_sequence_for_key;
      }
      builder->Add(key, iter->value());
      last_added_key.assign(key.data(), key.size());
    }
    if (!last_added_key.empty()) {
      meta->largest.DecodeFrom(Slice(last_added_key));
    }

    // Persist the file-level zone ranges so the DB can prune whole files
    // from in-memory metadata (the paper's per-SSTable global zone map).
    s = builder->Finish();
    if (s.ok()) {
      meta->file_size = builder->FileSize();
      assert(meta->file_size > 0);
      meta->zone_ranges.clear();
      for (size_t i = 0; i < options.secondary_attributes.size(); i++) {
        meta->zone_ranges.push_back(builder->FileZoneRange(i));
      }
      if (options.statistics != nullptr) {
        options.statistics->Record(kCompactionBytesWritten, meta->file_size);
      }
    }
    delete builder;

    // Finish and check for file errors
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
    file.reset();

    if (s.ok()) {
      // Verify that the table is usable
      Iterator* it = table_cache->NewIterator(ReadOptions(), meta->number,
                                              meta->file_size);
      s = it->status();
      delete it;
    }
  }

  // Check for input iterator errors
  if (!iter->status().ok()) {
    s = iter->status();
  }

  if (s.ok() && meta->file_size > 0) {
    // Keep it
  } else {
    env->RemoveFile(fname);
  }
  return s;
}

}  // namespace leveldbpp
