#include "db/db_iter.h"

#include <memory>
#include <string>

namespace leveldbpp {

namespace {

class DBIter : public Iterator {
 public:
  DBIter(const Comparator* user_cmp, Iterator* internal_iter,
         SequenceNumber sequence)
      : user_cmp_(user_cmp),
        iter_(internal_iter),
        sequence_(sequence),
        valid_(false) {}

  ~DBIter() override = default;

  bool Valid() const override { return valid_; }
  Slice key() const override {
    assert(valid_);
    return ExtractUserKey(iter_->key());
  }
  Slice value() const override {
    assert(valid_);
    return iter_->value();
  }
  Status status() const override {
    if (status_.ok()) {
      return iter_->status();
    }
    return status_;
  }

  void SeekToFirst() override {
    iter_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void Seek(const Slice& target) override {
    std::string seek_key;
    AppendInternalKey(&seek_key, ParsedInternalKey(target, sequence_,
                                                   kValueTypeForSeek));
    iter_->Seek(Slice(seek_key));
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    assert(valid_);
    // Remember the current user key and skip all its remaining versions.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    iter_->Next();
    FindNextUserEntry(/*skipping=*/true);
  }

 private:
  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  // Position at the first entry whose user key (a) is the newest visible
  // version and (b) when `skipping`, is greater than saved_key_.
  void FindNextUserEntry(bool skipping) {
    valid_ = false;
    while (iter_->Valid()) {
      ParsedInternalKey ikey;
      if (!ParseInternalKey(iter_->key(), &ikey)) {
        status_ = Status::Corruption("corrupted internal key in DBIter");
        return;
      }
      if (ikey.sequence > sequence_) {
        iter_->Next();
        continue;
      }
      if (skipping && user_cmp_->Compare(ikey.user_key, Slice(saved_key_)) <=
                          0) {
        // Older version (or same key) — skip.
        iter_->Next();
        continue;
      }
      switch (ikey.type) {
        case kTypeDeletion:
          // This user key is deleted; arrange to skip all of its versions.
          SaveKey(ikey.user_key, &saved_key_);
          skipping = true;
          iter_->Next();
          break;
        case kTypeValue:
          valid_ = true;
          return;
      }
    }
  }

  const Comparator* const user_cmp_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;
  Status status_;
  std::string saved_key_;
  bool valid_;
};

}  // namespace

Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence) {
  return new DBIter(user_key_comparator, internal_iter, sequence);
}

}  // namespace leveldbpp
