#include "db/db_iter.h"

#include <memory>
#include <string>

namespace leveldbpp {

namespace {

// Wraps an internal-key iterator into a user-key iterator: hides entries
// newer than the iterator's snapshot sequence, collapses the per-key version
// history to the newest visible version, and suppresses deleted keys — in
// both directions.
class DBIter : public Iterator {
 public:
  DBIter(const Comparator* user_cmp, Iterator* internal_iter,
         SequenceNumber sequence)
      : user_cmp_(user_cmp),
        iter_(internal_iter),
        sequence_(sequence),
        direction_(kForward),
        valid_(false) {}

  ~DBIter() override = default;

  bool Valid() const override { return valid_; }
  Slice key() const override {
    assert(valid_);
    return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                    : Slice(saved_key_);
  }
  Slice value() const override {
    assert(valid_);
    return (direction_ == kForward) ? iter_->value() : Slice(saved_value_);
  }
  Status status() const override {
    if (status_.ok()) {
      return iter_->status();
    }
    return status_;
  }

  void SeekToFirst() override {
    direction_ = kForward;
    ClearSavedValue();
    iter_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void SeekToLast() override {
    direction_ = kReverse;
    ClearSavedValue();
    saved_key_.clear();
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    direction_ = kForward;
    ClearSavedValue();
    std::string seek_key;
    AppendInternalKey(&seek_key, ParsedInternalKey(target, sequence_,
                                                   kValueTypeForSeek));
    iter_->Seek(Slice(seek_key));
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    assert(valid_);
    if (direction_ == kReverse) {
      // iter_ is pointing just before the entries for this->key(), so
      // advance into those entries and then past them. saved_key_ already
      // holds the key to skip.
      direction_ = kForward;
      if (!iter_->Valid()) {
        iter_->SeekToFirst();
      } else {
        iter_->Next();
      }
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    } else {
      // Remember the current user key and skip all its remaining versions.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      iter_->Next();
    }
    FindNextUserEntry(/*skipping=*/true);
  }

  void Prev() override {
    assert(valid_);
    if (direction_ == kForward) {
      // iter_ is pointing at the current entry. Scan backwards until the
      // user key changes so the reverse-scan invariant (iter_ just before
      // the entries for key()) holds, then reuse the normal reverse path.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      while (true) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          ClearSavedValue();
          return;
        }
        if (user_cmp_->Compare(ExtractUserKey(iter_->key()),
                               Slice(saved_key_)) < 0) {
          break;
        }
      }
      direction_ = kReverse;
    }
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    if (saved_value_.capacity() > 1048576) {
      std::string empty;
      std::swap(empty, saved_value_);
    } else {
      saved_value_.clear();
    }
  }

  // Position at the first entry whose user key (a) is the newest visible
  // version and (b) when `skipping`, is greater than saved_key_.
  void FindNextUserEntry(bool skipping) {
    assert(direction_ == kForward);
    valid_ = false;
    while (iter_->Valid()) {
      ParsedInternalKey ikey;
      if (!ParseInternalKey(iter_->key(), &ikey)) {
        status_ = Status::Corruption("corrupted internal key in DBIter");
        return;
      }
      if (ikey.sequence > sequence_) {
        iter_->Next();
        continue;
      }
      if (skipping && user_cmp_->Compare(ikey.user_key, Slice(saved_key_)) <=
                          0) {
        // Older version (or same key) — skip.
        iter_->Next();
        continue;
      }
      switch (ikey.type) {
        case kTypeDeletion:
          // This user key is deleted; arrange to skip all of its versions.
          SaveKey(ikey.user_key, &saved_key_);
          skipping = true;
          iter_->Next();
          break;
        case kTypeValue:
          valid_ = true;
          return;
      }
    }
    saved_key_.clear();
  }

  // Scan backwards for the previous visible user key, buffering its newest
  // visible version in saved_key_/saved_value_ (internal order puts the
  // newest version LAST when walking backwards, so the buffer is
  // overwritten until the key changes). Leaves iter_ just before the
  // buffered key's entries.
  void FindPrevUserEntry() {
    assert(direction_ == kReverse);
    ValueType value_type = kTypeDeletion;
    if (iter_->Valid()) {
      do {
        ParsedInternalKey ikey;
        if (!ParseInternalKey(iter_->key(), &ikey)) {
          status_ = Status::Corruption("corrupted internal key in DBIter");
          break;
        }
        if (ikey.sequence <= sequence_) {
          if ((value_type != kTypeDeletion) &&
              user_cmp_->Compare(ikey.user_key, Slice(saved_key_)) < 0) {
            // A visible value for saved_key_ is buffered and this entry
            // belongs to an earlier key: done.
            break;
          }
          value_type = ikey.type;
          if (value_type == kTypeDeletion) {
            saved_key_.clear();
            ClearSavedValue();
          } else {
            Slice raw_value = iter_->value();
            SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
            saved_value_.assign(raw_value.data(), raw_value.size());
          }
        }
        iter_->Prev();
      } while (iter_->Valid());
    }

    if (value_type == kTypeDeletion) {
      // Ran off the beginning without a visible value.
      valid_ = false;
      saved_key_.clear();
      ClearSavedValue();
      direction_ = kForward;
    } else {
      valid_ = true;
    }
  }

  const Comparator* const user_cmp_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;
  Status status_;
  std::string saved_key_;    // == current key when direction_ == kReverse
  std::string saved_value_;  // == current value when direction_ == kReverse
  Direction direction_;
  bool valid_;
};

}  // namespace

Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence) {
  return new DBIter(user_key_comparator, internal_iter, sequence);
}

}  // namespace leveldbpp
