#include "db/filename.h"

#include <cassert>
#include <cstdio>

#include "env/env.h"

namespace leveldbpp {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "ldb");
}

std::string SortedViewFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "svw");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "dbtmp");
}

// Owned filenames have the form:
//    dbname/CURRENT
//    dbname/LOCK
//    dbname/MANIFEST-[0-9]+
//    dbname/[0-9]+.(log|ldb|svw|dbtmp)
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == Slice("CURRENT")) {
    *number = 0;
    *type = kCurrentFile;
  } else if (rest == Slice("LOCK")) {
    *number = 0;
    *type = kDBLockFile;
  } else if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    if (rest.empty()) return false;
    for (size_t i = 0; i < rest.size(); i++) {
      char c = rest[i];
      if (c < '0' || c > '9') return false;
      num = num * 10 + (c - '0');
    }
    *number = num;
    *type = kDescriptorFile;
  } else {
    // Expect <number>.<suffix>
    uint64_t num = 0;
    size_t i = 0;
    for (; i < rest.size() && rest[i] >= '0' && rest[i] <= '9'; i++) {
      num = num * 10 + (rest[i] - '0');
    }
    if (i == 0 || i >= rest.size() || rest[i] != '.') return false;
    Slice suffix(rest.data() + i, rest.size() - i);
    if (suffix == Slice(".log")) {
      *type = kLogFile;
    } else if (suffix == Slice(".ldb")) {
      *type = kTableFile;
    } else if (suffix == Slice(".svw")) {
      *type = kSortedViewFile;
    } else if (suffix == Slice(".dbtmp")) {
      *type = kTempFile;
    } else {
      return false;
    }
    *number = num;
  }
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  // Remove leading "dbname/" and add newline to manifest file name.
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.starts_with(dbname + "/"));
  contents.remove_prefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(tmp, &file);
  if (!s.ok()) return s;
  s = file->Append(contents.ToString() + "\n");
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  file.reset();
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (s.ok()) {
    // The rename is only durable once the directory entry itself is synced;
    // without this, a power cut can roll CURRENT back to the previous
    // manifest even though the rename "succeeded".
    s = env->SyncDir(dbname);
  }
  if (!s.ok()) {
    env->RemoveFile(tmp);
  }
  return s;
}

}  // namespace leveldbpp
