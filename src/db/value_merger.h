// ValueMerger: compaction-time merge hook.
//
// An ordinary LSM compaction keeps only the newest version of each user key.
// The Stand-Alone LAZY index table instead needs duplicate keys *combined*:
// each PUT appended a posting-list fragment, and compaction must merge
// fragments (and apply per-entry deletion markers) rather than discard old
// ones. Installing a ValueMerger on a DB switches compaction (and flush) to
// this merge-on-collision behaviour, mirroring Cassandra's index-table merge
// described in the paper (Section 4.1.2, Figure 5).
//
// CONTRACT: a DB with a ValueMerger does not support whole-key Delete()
// (rejected with NotSupported). Deletions must be expressed inside the
// merged values (e.g. posting-list deletion markers) so that the merge
// function alone defines visibility; a NUL whole-key tombstone cannot keep
// shadowing older fragments once newer fragments are merged above it.

#ifndef LEVELDBPP_DB_VALUE_MERGER_H_
#define LEVELDBPP_DB_VALUE_MERGER_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace leveldbpp {

class ValueMerger {
 public:
  virtual ~ValueMerger() = default;

  /// Name recorded for debugging.
  virtual const char* Name() const = 0;

  /// Merge all versions of `key`'s value, newest first, into *result.
  /// `at_bottom` is true when the merge output lands in the lowest level
  /// that can contain the key — per-entry deletion markers may then be
  /// dropped for good. Return false to drop the key entirely (e.g. the
  /// merged posting list became empty).
  virtual bool Merge(const Slice& key,
                     const std::vector<Slice>& values_newest_first,
                     bool at_bottom, std::string* result) const = 0;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_DB_VALUE_MERGER_H_
