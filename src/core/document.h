// JSON document helpers: the default AttributeExtractor over JSON record
// values (tweets are stored as JSON objects, per the paper's data model
// v = {A1: val(A1), ..., Al: val(Al)}).

#ifndef LEVELDBPP_CORE_DOCUMENT_H_
#define LEVELDBPP_CORE_DOCUMENT_H_

#include <string>

#include "json/json.h"
#include "table/attribute_extractor.h"

namespace leveldbpp {

/// Extracts top-level attributes from JSON-object record values. String
/// attribute values extract as their raw bytes; numbers as their compact
/// serialization. Attribute encodings must be order-preserving under
/// bytewise comparison for zone maps / range queries to prune correctly
/// (e.g. use fixed-width decimal timestamps).
class JsonAttributeExtractor : public AttributeExtractor {
 public:
  bool Extract(const Slice& record_value, const std::string& attr,
               std::string* out) const override;

  /// Process-wide instance.
  static const JsonAttributeExtractor* Instance();
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_DOCUMENT_H_
