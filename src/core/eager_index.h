// EagerIndex (paper Section 4.1.1): stand-alone index table with in-place
// (read-modify-write) posting-list updates, as MongoDB/CouchDB/Riak do.
//
// Every primary PUT costs a read + a write on the index table, and each
// rewrite re-copies the whole list — the write amplification explosion
// (WAMF ≈ PL_S · 2·(N+1)·(L-1)) that makes Eager "unusable" for large
// non-time-correlated indexes in the paper's Figure 9c.
//
// The payoff is reads: LOOKUP needs exactly ONE index-table read, because
// the newest list is always complete (all lower-level copies obsolete).

#ifndef LEVELDBPP_CORE_EAGER_INDEX_H_
#define LEVELDBPP_CORE_EAGER_INDEX_H_

#include "core/standalone_index.h"

namespace leveldbpp {

class EagerIndex : public StandAloneIndex {
 public:
  /// Factory: opens the index table at `path`.
  static Status Open(std::string attribute, DBImpl* primary,
                     const Options& base, const std::string& path,
                     std::unique_ptr<SecondaryIndex>* out);

  IndexType type() const override { return IndexType::kEager; }

  Status OnPut(const Slice& primary_key, const Slice& attr_value,
               SequenceNumber seq) override;
  Status OnDelete(const Slice& primary_key, const Slice& attr_value,
                  SequenceNumber seq) override;
  /// Deferred-batch payoff: ONE read-modify-write per distinct attribute
  /// value in the batch (in-group FIFO preserved), instead of one per op.
  Status OnPutBatch(const std::vector<IndexOp>& ops) override;
  /// Into an EMPTY index table, builds the complete per-attribute posting
  /// lists in memory and splices them in as SSTables (no WAL, no RMW). A
  /// non-empty table falls back to the OnPut replay — an ingested list
  /// would shadow existing postings wholesale.
  Status BulkLoad(const std::vector<IndexOp>& entries) override;
  Status Lookup(const Slice& value, size_t k,
                std::vector<QueryResult>* results) override;
  Status RangeLookup(const Slice& lo, const Slice& hi, size_t k,
                     std::vector<QueryResult>* results) override;

 private:
  using StandAloneIndex::StandAloneIndex;
};

}  // namespace leveldbpp

#endif  // LEVELDBPP_CORE_EAGER_INDEX_H_
