#include "core/document.h"

namespace leveldbpp {

bool JsonAttributeExtractor::Extract(const Slice& record_value,
                                     const std::string& attr,
                                     std::string* out) const {
  json::Value doc;
  if (!json::Parse(record_value, &doc) || !doc.is_object()) {
    return false;
  }
  const json::Value& v = doc[attr];
  switch (v.type()) {
    case json::Value::Type::kString:
      *out = v.as_string();
      return true;
    case json::Value::Type::kNumber:
    case json::Value::Type::kBool: {
      out->clear();
      v.Serialize(out);
      return true;
    }
    default:
      return false;  // null / array / object values are not indexable
  }
}

const JsonAttributeExtractor* JsonAttributeExtractor::Instance() {
  static JsonAttributeExtractor singleton;
  return &singleton;
}

}  // namespace leveldbpp
